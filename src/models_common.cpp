#include <cstdio>
#include <cstdlib>

#include "models/specs.h"

namespace acrobat::models {

int hidden_dim(bool large) { return large ? 40 : 16; }

Value remap_trefs(const Value& v, const std::vector<TRef>& refs) {
  switch (v.kind) {
    case Value::kTensor:
      return Value::tensor(refs[v.tref.id]);
    case Value::kAdt: {
      std::vector<Value> fields;
      fields.reserve(v.adt->fields.size());
      for (const Value& f : v.adt->fields) fields.push_back(remap_trefs(f, refs));
      return Value::make_adt(v.adt->tag, std::move(fields));
    }
    case Value::kTuple: {
      std::vector<Value> elems;
      elems.reserve(v.tuple->elems.size());
      for (const Value& e : v.tuple->elems) elems.push_back(remap_trefs(e, refs));
      return Value::make_tuple(std::move(elems));
    }
    default:
      return v;
  }
}

Value dataset_tensor(Dataset& ds, const Tensor& t) {
  ds.tensors.push_back(t);
  return Value::tensor(TRef{static_cast<std::uint32_t>(ds.tensors.size() - 1)});
}

Dataset make_token_dataset(bool large, int batch, std::uint64_t seed, int min_len, int max_len) {
  Dataset ds;
  ds.pool = std::make_shared<TensorPool>();
  Rng rng(seed);
  const int h = hidden_dim(large);
  for (int i = 0; i < batch; ++i) {
    const int len = rng.range(min_len, max_len);
    std::vector<Value> toks;
    toks.reserve(static_cast<std::size_t>(len));
    for (int t = 0; t < len; ++t)
      toks.push_back(dataset_tensor(ds, ds.pool->alloc_random(RowVec(h), rng, 1.0f)));
    ds.inputs.push_back(Value::make_tuple(std::move(toks)));
  }
  return ds;
}

const std::vector<ModelSpec>& all_models() {
  static const std::vector<ModelSpec> specs = {
      make_treelstm_spec(), make_mvrnn_spec(),     make_birnn_spec(),  make_drnn_spec(),
      make_stackrnn_spec(), make_nestedrnn_spec(), make_berxit_spec(),
  };
  return specs;
}

const ModelSpec& model_by_name(const std::string& name) {
  for (const ModelSpec& s : all_models())
    if (s.name == name) return s;
  static const ModelSpec graphrnn = make_graphrnn_spec();
  if (name == graphrnn.name) return graphrnn;
  // Decoder is a serving workload (iteration-level scheduling), not one of
  // the paper's closed-batch evaluation models, so like GraphRNN it stays
  // out of all_models() — the bench sweeps and their goldens are unchanged.
  static const ModelSpec decoder = make_decoder_spec();
  if (name == decoder.name) return decoder;
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  std::abort();
}

}  // namespace acrobat::models
