#include "grad/backward.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>

namespace acrobat::grad {
namespace {

struct Ctx {
  Engine& eng;
  std::unordered_map<std::uint32_t, std::vector<float>>& grads;

  std::vector<float>* find(TRef r) {
    auto it = grads.find(r.id);
    return it == grads.end() ? nullptr : &it->second;
  }
  std::vector<float>& acc(TRef r) {
    std::vector<float>& v = grads[r.id];
    if (v.empty()) v.assign(static_cast<std::size_t>(eng.shape(r).numel()), 0.0f);
    return v;
  }
};

// Accumulates `g` (shaped like `out_shape`) into the gradient of input `in`,
// handling the row-broadcast case (bias adds) by summing over rows.
void acc_maybe_broadcast(Ctx& c, TRef in, const float* g, const Shape& out_shape, float sign) {
  std::vector<float>& dst = c.acc(in);
  const std::int64_t n_in = c.eng.shape(in).numel();
  const std::int64_t n_out = out_shape.numel();
  if (n_in == n_out) {
    for (std::int64_t i = 0; i < n_out; ++i) dst[static_cast<std::size_t>(i)] += sign * g[i];
    return;
  }
  const int cols = out_shape.cols();
  const int rows = static_cast<int>(n_out / cols);
  for (int r = 0; r < rows; ++r)
    for (int j = 0; j < cols; ++j)
      dst[static_cast<std::size_t>(j)] += sign * g[static_cast<std::int64_t>(r) * cols + j];
}

}  // namespace

BackwardResult backward(Engine& engine, const KernelRegistry& registry,
                        const std::vector<Seed>& seeds, const BackwardOptions& opts) {
  if (engine.recycling()) {
    // Recycling drops the exec log (retired node ids would dangle), so a
    // replay here would silently return zero gradients — refuse instead.
    std::fprintf(stderr,
                 "acrobat: backward() on a recycling engine — the exec log is not "
                 "kept under EngineConfig::recycle; train with recycling off\n");
    std::abort();
  }
  BackwardResult res;
  Ctx ctx{engine, res.grads};
  for (const Seed& s : seeds) {
    std::vector<float>& g = ctx.acc(s.ref);
    for (std::size_t i = 0; i < g.size() && i < s.grad.size(); ++i) g[i] += s.grad[i];
  }

  const auto& log = engine.exec_log();
  for (auto batch = log.rbegin(); batch != log.rend(); ++batch) {
    const Kernel& k = registry.kernel(batch->kernel_id);
    int slots_used = 0;
    bool any = false;
    for (const std::uint32_t id : batch->nodes) {
      const TRef out{id};
      const std::vector<float>* gv = ctx.find(out);
      if (gv == nullptr || gv->empty()) continue;
      any = true;
      const float* g = gv->data();
      const Shape& os = engine.shape(out);
      const std::span<const TRef> ins = engine.inputs_of(out);
      const float* y = engine.data(out);

      switch (k.op) {
        case OpKind::kDense: {
          // out = x·Wᵀ → dx = g·W, dW += gᵀ·x
          const TRef x = ins[0], w = ins[1];
          const Shape& xs = engine.shape(x);
          const Shape& wsh = engine.shape(w);
          const int m = xs.rows(), kk = xs.cols(), n = wsh.dim[0];
          const float* xd = engine.data(x);
          const float* wd = engine.data(w);
          std::vector<float>& dx = ctx.acc(x);
          std::vector<float>& dw = ctx.acc(w);
          for (int r = 0; r < m; ++r)
            for (int j = 0; j < n; ++j) {
              const float gj = g[static_cast<std::int64_t>(r) * n + j];
              if (gj == 0.0f) continue;
              for (int i = 0; i < kk; ++i) {
                dx[static_cast<std::size_t>(r) * kk + i] +=
                    gj * wd[static_cast<std::int64_t>(j) * kk + i];
                dw[static_cast<std::size_t>(j) * kk + i] +=
                    gj * xd[static_cast<std::int64_t>(r) * kk + i];
              }
            }
          slots_used = 2;
          break;
        }
        case OpKind::kMatMul: {
          // out = a·b → da = g·bᵀ, db = aᵀ·g
          const TRef a = ins[0], b = ins[1];
          const Shape& as = engine.shape(a);
          const Shape& bs = engine.shape(b);
          const int m = as.rows(), kk = as.cols(), n = bs.dim[1];
          const float* ad = engine.data(a);
          const float* bd = engine.data(b);
          std::vector<float>& da = ctx.acc(a);
          std::vector<float>& db = ctx.acc(b);
          for (int r = 0; r < m; ++r)
            for (int j = 0; j < n; ++j) {
              const float gj = g[static_cast<std::int64_t>(r) * n + j];
              if (gj == 0.0f) continue;
              for (int l = 0; l < kk; ++l) {
                da[static_cast<std::size_t>(r) * kk + l] +=
                    gj * bd[static_cast<std::int64_t>(l) * n + j];
                db[static_cast<std::size_t>(l) * n + j] +=
                    gj * ad[static_cast<std::int64_t>(r) * kk + l];
              }
            }
          slots_used = 2;
          break;
        }
        case OpKind::kMatMulBT: {
          // out = a·bᵀ → da = g·b, db = gᵀ·a
          const TRef a = ins[0], b = ins[1];
          const Shape& as = engine.shape(a);
          const Shape& bs = engine.shape(b);
          const int m = as.rows(), kk = as.cols(), n = bs.dim[0];
          const float* ad = engine.data(a);
          const float* bd = engine.data(b);
          std::vector<float>& da = ctx.acc(a);
          std::vector<float>& db = ctx.acc(b);
          for (int r = 0; r < m; ++r)
            for (int j = 0; j < n; ++j) {
              const float gj = g[static_cast<std::int64_t>(r) * n + j];
              if (gj == 0.0f) continue;
              for (int i = 0; i < kk; ++i) {
                da[static_cast<std::size_t>(r) * kk + i] +=
                    gj * bd[static_cast<std::int64_t>(j) * kk + i];
                db[static_cast<std::size_t>(j) * kk + i] +=
                    gj * ad[static_cast<std::int64_t>(r) * kk + i];
              }
            }
          slots_used = 2;
          break;
        }
        case OpKind::kAdd:
          acc_maybe_broadcast(ctx, ins[0], g, os, 1.0f);
          acc_maybe_broadcast(ctx, ins[1], g, os, 1.0f);
          slots_used = 2;
          break;
        case OpKind::kSub:
          acc_maybe_broadcast(ctx, ins[0], g, os, 1.0f);
          acc_maybe_broadcast(ctx, ins[1], g, os, -1.0f);
          slots_used = 2;
          break;
        case OpKind::kMul: {
          const float* a = engine.data(ins[0]);
          const float* b = engine.data(ins[1]);
          const std::int64_t n = os.numel();
          const bool bcast = engine.shape(ins[1]).numel() != n;
          std::vector<float>& da = ctx.acc(ins[0]);
          std::vector<float>& db = ctx.acc(ins[1]);
          const int cols = os.cols();
          for (std::int64_t i = 0; i < n; ++i) {
            const std::int64_t bi = bcast ? i % cols : i;
            da[static_cast<std::size_t>(i)] += g[i] * b[bi];
            db[static_cast<std::size_t>(bi)] += g[i] * a[i];
          }
          slots_used = 2;
          break;
        }
        case OpKind::kTanh: {
          std::vector<float>& da = ctx.acc(ins[0]);
          const std::int64_t n = os.numel();
          for (std::int64_t i = 0; i < n; ++i)
            da[static_cast<std::size_t>(i)] += g[i] * (1.0f - y[i] * y[i]);
          slots_used = 1;
          break;
        }
        case OpKind::kSigmoid: {
          std::vector<float>& da = ctx.acc(ins[0]);
          const std::int64_t n = os.numel();
          for (std::int64_t i = 0; i < n; ++i)
            da[static_cast<std::size_t>(i)] += g[i] * y[i] * (1.0f - y[i]);
          slots_used = 1;
          break;
        }
        case OpKind::kRelu: {
          const float* x = engine.data(ins[0]);
          std::vector<float>& da = ctx.acc(ins[0]);
          const std::int64_t n = os.numel();
          for (std::int64_t i = 0; i < n; ++i)
            if (x[i] > 0.0f) da[static_cast<std::size_t>(i)] += g[i];
          slots_used = 1;
          break;
        }
        case OpKind::kScale: {
          const float c = static_cast<float>(static_cast<double>(k.attr) * 1e-6);
          std::vector<float>& da = ctx.acc(ins[0]);
          const std::int64_t n = os.numel();
          for (std::int64_t i = 0; i < n; ++i) da[static_cast<std::size_t>(i)] += g[i] * c;
          slots_used = 1;
          break;
        }
        case OpKind::kConcat: {
          std::int64_t off = 0;
          for (const TRef in : ins) {
            std::vector<float>& da = ctx.acc(in);
            const std::int64_t n = engine.shape(in).numel();
            for (std::int64_t i = 0; i < n; ++i) da[static_cast<std::size_t>(i)] += g[off + i];
            off += n;
          }
          slots_used = 1;
          break;
        }
        case OpKind::kSoftmax: {
          // da_j = y_j (g_j − Σ_k g_k y_k), row-wise.
          std::vector<float>& da = ctx.acc(ins[0]);
          const int cols = os.cols();
          const int rows = static_cast<int>(os.numel() / cols);
          for (int r = 0; r < rows; ++r) {
            const std::int64_t off = static_cast<std::int64_t>(r) * cols;
            float dot = 0.0f;
            for (int j = 0; j < cols; ++j) dot += g[off + j] * y[off + j];
            for (int j = 0; j < cols; ++j)
              da[static_cast<std::size_t>(off) + j] += y[off + j] * (g[off + j] - dot);
          }
          slots_used = 1;
          break;
        }
        case OpKind::kSumAll: {
          std::vector<float>& da = ctx.acc(ins[0]);
          const std::int64_t n = engine.shape(ins[0]).numel();
          for (std::int64_t i = 0; i < n; ++i) da[static_cast<std::size_t>(i)] += g[0];
          slots_used = 1;
          break;
        }
        case OpKind::kZeros:
        case OpKind::kMaxProb:
        default:
          // Constants have no inputs; fused/coarse cell kernels are
          // inference-only (training_pipeline_config keeps them out).
          break;
      }
    }
    if (any && slots_used > 0) {
      // One backward launch per input slot of the batch, mirroring the
      // forward batching: a whole forward batch costs the same fixed number
      // of backward launches regardless of how many ops it held.
      res.backward_launches += slots_used;
      for (int s = 0; s < slots_used; ++s) spin_ns(opts.launch_overhead_ns);
    }
  }
  return res;
}

}  // namespace acrobat::grad
