#include "serve/server.h"

#include <sched.h>

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "exec/aot.h"
#include "runtime/fiber.h"
#include "serve/spsc.h"
#include "support/rng.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace acrobat::serve {
namespace {

using detail::exp_gap_ns;
using detail::uniform01;

// Loud config validation: fprintf + abort (not assert) so a nonsense sweep
// fails identically in Release and Debug, and the death tests in
// tests/test_serve.cpp can cover it in either build type.
[[noreturn]] void config_die(const char* what) {
  std::fprintf(stderr, "acrobat serve: invalid configuration: %s\n", what);
  std::abort();
}

// Waiting sides (dispatcher between arrivals, shard with nothing runnable)
// yield the core on every poll: unlike the engine's spin_ns — which charges
// simulated device time and must burn the CPU — these waits are for *other
// threads'* progress, and on a small machine a pure spin would starve them
// for a whole preemption quantum.
void relax() { sched_yield(); }

// ------------------------------------------------------------------ policies

class GreedyPolicy final : public BatchPolicy {
 public:
  AdmitDecision decide(const PolicyCtx&) override { return AdmitDecision{}; }
  const char* name() const override { return policy_name(PolicyKind::kGreedy); }
};

class MaxBatchPolicy final : public BatchPolicy {
 public:
  explicit MaxBatchPolicy(std::size_t max_batch) : max_batch_(max_batch) {}
  AdmitDecision decide(const PolicyCtx& ctx) override {
    AdmitDecision d;
    d.max_admit = ctx.live >= max_batch_ ? 0 : max_batch_ - ctx.live;
    return d;
  }
  const char* name() const override { return policy_name(PolicyKind::kMaxBatch); }

 private:
  std::size_t max_batch_;
};

class DeadlinePolicy final : public BatchPolicy {
 public:
  explicit DeadlinePolicy(const PolicyConfig& cfg) : cfg_(cfg) {}
  AdmitDecision decide(const PolicyCtx& ctx) override {
    AdmitDecision d;  // admission itself is greedy unless capped
    if (cfg_.max_admit > 0 && cfg_.decode_admit > 0) {
      // Decode-aware split (policy.h): the width budget gates *prefill*
      // admissions against non-decode live sessions only, while parked
      // decode steps re-admit in chunks of decode_admit per trigger window.
      // At overload this keeps trigger width available for new arrivals —
      // TTFT stays flat instead of spiking behind a wall of decode steps.
      const std::size_t prefill_live = ctx.live - ctx.live_decode;
      d.max_admit =
          prefill_live >= cfg_.max_admit ? 0 : cfg_.max_admit - prefill_live;
      d.max_step_admit = cfg_.decode_admit;
    } else if (cfg_.max_admit > 0) {
      d.max_admit = ctx.live >= cfg_.max_admit ? 0 : cfg_.max_admit - ctx.live;
    }
    // Batch-forming pause: with a small in-flight pool, hold the trigger for
    // future arrivals — but never past the oldest request's SLO deadline.
    if (ctx.live > 0 && ctx.live + ctx.queued < cfg_.min_batch && ctx.inbox_open)
      d.hold_until_ns = std::min(ctx.oldest_live_arrival_ns + cfg_.slo_ns,
                                 ctx.now_ns + cfg_.max_hold_ns);
    return d;
  }
  const char* name() const override { return policy_name(PolicyKind::kDeadline); }

 private:
  PolicyConfig cfg_;
};

// -------------------------------------------------------------- shard worker

struct Shard {
  explicit Shard(std::size_t inbox_capacity) : inbox(inbox_capacity) {}

  int index = 0;
  const harness::Prepared* prep = nullptr;
  const models::Dataset* ds = nullptr;
  const std::vector<Request>* trace = nullptr;
  const ServeOptions* opts = nullptr;
  std::vector<RequestRecord>* records = nullptr;
  std::int64_t epoch_ns = 0;

  SpscQueue<int> inbox;           // dispatcher → this shard (request ids)
  std::atomic<int> outstanding{0};  // dispatched - completed (least-loaded reads)
  ShardReport report;

  // Observability (DESIGN.md §9): ring + tick stream exist only when
  // ServeOptions::trace.enabled; both are preallocated before the worker
  // starts, written only by the worker thread, and read after join (the
  // ticks queue is the one live cross-thread channel — SPSC, like the
  // inbox). metric_names is worker-written before the first tick.
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<SpscQueue<trace::MetricsTick>> ticks;
  std::uint64_t dropped_ticks = 0;
  std::vector<std::string> metric_names;

  void run_worker();
};

void Shard::run_worker() {
  const harness::Prepared& p = *prep;
  // Exclusive ownership: this engine, its arena, and the fiber pool live and
  // die on this thread. No locks anywhere downstream of the inbox.
  EngineConfig ec = harness::engine_config_for(
      p.cfg, opts->launch_overhead_ns, opts->time_activities);
  ec.recycle = opts->recycle;
  ec.sched_memo = opts->sched_memo;
  Engine eng(p.compiled.module.registry, ec);

  std::vector<TRef> wrefs, drefs;
  wrefs.reserve(p.weights.tensors.size());
  for (const Tensor& t : p.weights.tensors) wrefs.push_back(eng.add_concrete(t.view()));
  drefs.reserve(ds->tensors.size());
  for (const Tensor& t : ds->tensors) drefs.push_back(eng.add_concrete(t.view()));
  aot::AotExecutor exec(p.compiled.program, eng, wrefs);

  FiberScheduler fs;
  eng.set_fiber_scheduler(&fs);
  // Reap = retire: when a completed request's fiber is recycled, its engine
  // node span goes onto the free list and dead arena epochs return to the
  // page pool — this is what keeps steady-state memory flat (§7 Recycling).
  fs.set_reap_hook([&eng](int request_id) { eng.retire_request(request_id); });
  const std::unique_ptr<BatchPolicy> policy = make_policy(opts->policy);

  // Observability (DESIGN.md §9): everything below is preallocated here —
  // the ring in the Tracer, the gauge slots in the registry — so tracing
  // adds zero steady-state allocation to the worker.
  trace::Tracer* const tr = tracer.get();
  eng.set_tracer(tr);
  fs.set_tracer(tr);
  std::int64_t slow_ns = opts->trace.slow_threshold_ns;
  if (slow_ns <= 0 && opts->policy.kind == PolicyKind::kDeadline)
    slow_ns = opts->policy.slo_ns;
  trace::MetricsRegistry reg;
  int m_live = -1, m_queued = -1, m_done = -1, m_launches = -1, m_hits = -1,
      m_live_nodes = -1, m_arena_kb = -1;
  if (tr != nullptr) {
    m_live = reg.add("live_requests");
    m_queued = reg.add("queued_requests");
    m_done = reg.add("completed_requests");
    m_launches = reg.add("kernel_launches");
    m_hits = reg.add("memo_hit_permille");
    m_live_nodes = reg.add("live_nodes");
    m_arena_kb = reg.add("arena_kb");
    metric_names = reg.names();
  }
  std::deque<int> queue;      // arrived at this shard, not yet admitted
  std::deque<int> in_flight;  // admitted, not yet completed (arrival order)
  // Iteration-level scheduling (DESIGN.md §7): a generative session parks
  // its fiber at every token boundary (Engine::session_step) and rejoins
  // the admission cycle here, so each trigger batches decode steps across
  // sessions old and new. `awaiting[id]` marks a session between its park
  // and its re-admission; the step hook's second consult (after unpark)
  // reads it to tell re-admission apart from a fresh token boundary.
  std::deque<int> step_queue;  // parked sessions wanting their next token
  std::vector<char> awaiting(trace->size(), 0);
  // Decode-aware split (policy.h AdmitDecision::max_step_admit): how many of
  // in_flight are past their first token, and how many parked steps this
  // trigger window may still unpark. The budget is reset from the policy
  // once per window — in the admission hook — not per admit() call, or the
  // main loop would drain every parked step between triggers and chunked
  // re-admission would be a no-op.
  std::size_t live_decode = 0;
  std::size_t step_budget = static_cast<std::size_t>(-1);

  long long last_tick_trigger = 0;
  const auto maybe_tick = [&](std::int64_t t_now) {
    if (fs.idle_triggers() - last_tick_trigger <
        static_cast<long long>(opts->trace.tick_every_triggers))
      return;
    last_tick_trigger = fs.idle_triggers();
    const ActivityStats& st = eng.stats();
    const long long probes = st.sched_cache_hits + st.sched_cache_misses;
    reg.set(m_live, static_cast<double>(in_flight.size()));
    reg.set(m_queued, static_cast<double>(queue.size()));
    reg.set(m_done, static_cast<double>(report.requests));
    reg.set(m_launches, static_cast<double>(st.kernel_launches));
    reg.set(m_hits, probes > 0 ? 1000.0 * static_cast<double>(st.sched_cache_hits) /
                                     static_cast<double>(probes)
                               : 0.0);
    reg.set(m_live_nodes, static_cast<double>(eng.live_nodes()));
    reg.set(m_arena_kb,
            static_cast<double>(eng.memory().arena_active_bytes) / 1024.0);
    if (!ticks->push(reg.tick(t_now, index))) ++dropped_ticks;
  };

  const auto now = [&] { return now_ns() - epoch_ns; };
  const auto drain_inbox = [&] {
    int id;
    while (inbox.pop(id)) queue.push_back(id);
  };
  const auto prune_in_flight = [&] {
    while (!in_flight.empty() &&
           (*records)[static_cast<std::size_t>(in_flight.front())].completion_ns >= 0) {
      if ((*records)[static_cast<std::size_t>(in_flight.front())].tokens > 0)
        --live_decode;
      in_flight.pop_front();
    }
  };
  const auto make_ctx = [&] {
    PolicyCtx c;
    c.now_ns = now();
    c.queued = queue.size();
    // Parked sessions stay `live`: they hold session state (the per-session
    // buffer, an SLO clock mid-stream), so a width-capped policy bounds
    // concurrent *sessions* — which is what makes session memory plateau at
    // peak concurrency instead of growing with the trace.
    c.live = in_flight.size();
    c.live_decode = live_decode;
    c.queued_steps = step_queue.size();
    if (!queue.empty())
      c.oldest_queued_arrival_ns = (*trace)[static_cast<std::size_t>(queue.front())].arrival_ns;
    if (!in_flight.empty())
      c.oldest_live_arrival_ns =
          (*trace)[static_cast<std::size_t>(in_flight.front())].arrival_ns;
    c.inbox_open = !inbox.closed() || !inbox.empty_hint();
    return c;
  };

  const auto admit = [&](std::size_t max_admit) {
    // Decode steps are re-admitted outside the policy's *session* budget:
    // that budget gates how many sessions hold state concurrently, and a
    // step belongs to a session already in the live pool. Gating steps on
    // the same budget would livelock a width-capped pool of parked sessions
    // (budget 0, nothing to unpark them). With a decode-aware policy the
    // separate per-window step budget meters them instead; the main loop
    // guarantees at least one step per window so progress never stalls.
    while (!step_queue.empty() && step_budget > 0) {
      if (step_budget != static_cast<std::size_t>(-1)) --step_budget;
      const int id = step_queue.front();
      step_queue.pop_front();
      const bool ok = fs.unpark(id);
      assert(ok && "queued step must correspond to a parked fiber");
      (void)ok;
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kAdmit, id,
                                    (*trace)[static_cast<std::size_t>(id)].model_id,
                                    (*records)[static_cast<std::size_t>(id)].tokens));
    }
    while (max_admit > 0 && !queue.empty()) {
      --max_admit;
      const int id = queue.front();
      queue.pop_front();
      RequestRecord& rec = (*records)[static_cast<std::size_t>(id)];
      rec.shard = index;
      rec.admit_ns = now();
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kAdmit, id,
                                    (*trace)[static_cast<std::size_t>(id)].model_id,
                                    rec.admit_ns - rec.arrival_ns));
      in_flight.push_back(id);
      eng.begin_request(id);  // pins this epoch's arena pages until retirement
      fs.spawn([&, id] {
        RequestRecord& r = (*records)[static_cast<std::size_t>(id)];
        InstCtx ctx;
        ctx.instance = id;
        const Value in = models::remap_trefs(
            ds->inputs[(*trace)[static_cast<std::size_t>(id)].input_index], drefs);
        const Value out = exec.run(std::span<const Value>(&in, 1), ctx);
        std::vector<TRef> outs;
        harness::collect_output_trefs(out, outs);
        std::vector<float> flat;
        for (const TRef ref : outs) {
          // Suspends this request until a trigger materializes the result;
          // completion is stamped when the final batch lands.
          const Tensor t = eng.force(ref);
          if (opts->collect_outputs) flat.insert(flat.end(), t.data, t.data + t.numel());
        }
        r.completion_ns = now();
        ACROBAT_TRACE(tr, {
          const std::int64_t lat = r.completion_ns - r.arrival_ns;
          if (slow_ns > 0 && lat >= slow_ns)
            tr->capture_exemplar(id, r.admit_ns, r.completion_ns, lat);
        });
        if (opts->collect_outputs) r.output = std::move(flat);
        ++report.requests;
        outstanding.fetch_sub(1, std::memory_order_relaxed);
      }, /*tag=*/id);
    }
    report.max_live = std::max(report.max_live, in_flight.size());
  };

  // Trigger-boundary admission (DESIGN.md §7): whatever arrived while the
  // live pool was recording is admitted and records its ops *before* the
  // pending set is scheduled, so one trigger batches old and new requests.
  eng.set_admission_hook([&] {
    drain_inbox();
    const AdmitDecision d = policy->decide(make_ctx());
    step_budget = d.max_step_admit;  // new trigger window
    admit(d.max_admit);
    fs.step_ready();  // new fibers record until they suspend
  });

  // Token-boundary hook (iteration-level scheduling): the engine consults
  // this from inside a generative fiber at every kStepKeep. First consult
  // per token stamps the token, queues the session for re-admission, and
  // parks; the consult after unpark decides run vs stop (a cancelled
  // session exits through the model's tail so its output stays valid).
  eng.set_step_hook([&](int id) -> Engine::StepVerdict {
    RequestRecord& r = (*records)[static_cast<std::size_t>(id)];
    if (awaiting[static_cast<std::size_t>(id)] != 0) {
      awaiting[static_cast<std::size_t>(id)] = 0;
      return r.cancelled ? Engine::StepVerdict::kStop : Engine::StepVerdict::kRun;
    }
    const std::int64_t t = now();
    ++r.tokens;
    ++report.tokens;
    if (r.first_token_ns < 0) {
      r.first_token_ns = t;
      ++live_decode;
      report.ttft_ms.add(static_cast<double>(t - r.arrival_ns) * 1e-6);
    } else {
      const std::int64_t gap = t - r.last_token_ns;
      report.inter_token_ms.add(static_cast<double>(gap) * 1e-6);
      // Slow-request exemplars fire at serve time on an inter-token breach
      // (DESIGN.md §9), not only on end-to-end latency at completion — a
      // mid-stream stall surfaces while the session is still running.
      ACROBAT_TRACE(tr, {
        if (slow_ns > 0 && gap >= slow_ns)
          tr->capture_exemplar(id, r.last_token_ns, t, gap);
      });
    }
    r.last_token_ns = t;
    if (r.cancelled) return Engine::StepVerdict::kStop;
    awaiting[static_cast<std::size_t>(id)] = 1;
    step_queue.push_back(id);
    return Engine::StepVerdict::kPark;
  });

  for (;;) {
    drain_inbox();
    fs.reap_done();
    prune_in_flight();
    ACROBAT_TRACE(tr, maybe_tick(now()));
    if (in_flight.empty() && queue.empty()) {
      if (inbox.closed() && inbox.empty_hint()) break;
      relax();  // idle: poll for the next arrival (open-loop clock)
      continue;
    }
    const AdmitDecision d = policy->decide(make_ctx());
    admit(d.max_admit);
    if (fs.step_ready() > 0) continue;
    if (fs.any_blocked()) {
      if (d.hold_until_ns > now() && (!inbox.closed() || !inbox.empty_hint())) {
        // Batch-forming pause: poll for arrivals, then re-decide.
        while (now() < d.hold_until_ns && inbox.empty_hint() && !inbox.closed()) relax();
        continue;
      }
      eng.trigger_execution();  // admission hook folds in late arrivals
      fs.wake_blocked();
    } else if (!step_queue.empty()) {
      // Every live session is parked and the window's step budget is spent:
      // no trigger is coming to reset it, so open a minimal window by hand —
      // progress is guaranteed for any decode_admit >= 1.
      step_budget = std::max<std::size_t>(step_budget, 1);
    }
  }

  eng.set_step_hook(nullptr);
  eng.set_admission_hook(nullptr);
  eng.set_fiber_scheduler(nullptr);
  report.triggers = fs.idle_triggers();
  report.stacks_allocated = fs.stacks_allocated();
  report.stats = eng.stats();
  report.mem = eng.memory();
}

}  // namespace

const char* latency_class_name(LatencyClass c) {
  switch (c) {
    case LatencyClass::kInteractive: return "interactive";
    case LatencyClass::kBatch: return "batch";
    case LatencyClass::kBestEffort: return "best-effort";
  }
  return "?";
}

void validate(const LoadSpec& spec) {
  if (!(spec.rate_rps > 0) || !std::isfinite(spec.rate_rps))
    config_die("LoadSpec.rate_rps must be a positive finite rate");
  if (spec.num_requests <= 0) config_die("LoadSpec.num_requests must be > 0");
  if (spec.kind == ArrivalKind::kBurst && spec.burst_size <= 0)
    config_die("LoadSpec.burst_size must be > 0 for burst arrivals");
}

void validate(const ServeOptions& opts) {
  if (opts.shards <= 0) config_die("ServeOptions.shards must be > 0");
  if (opts.launch_overhead_ns < 0)
    config_die("ServeOptions.launch_overhead_ns must be >= 0");
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGreedy: return "greedy";
    case PolicyKind::kMaxBatch: return "max-batch";
    case PolicyKind::kDeadline: return "deadline";
  }
  return "?";
}

std::unique_ptr<BatchPolicy> make_policy(const PolicyConfig& cfg) {
  switch (cfg.kind) {
    case PolicyKind::kGreedy: return std::make_unique<GreedyPolicy>();
    case PolicyKind::kMaxBatch: return std::make_unique<MaxBatchPolicy>(cfg.max_batch);
    case PolicyKind::kDeadline: return std::make_unique<DeadlinePolicy>(cfg);
  }
  return std::make_unique<GreedyPolicy>();
}

std::vector<Request> generate_load(const LoadSpec& spec, std::size_t num_inputs) {
  return generate_load(spec, {ModelMix{0, 1.0, num_inputs, 1.0, 0.0}});
}

std::vector<Request> generate_load(const LoadSpec& spec, const std::vector<ModelMix>& mix) {
  validate(spec);
  if (mix.empty()) config_die("generate_load: empty model mix");
  double total_weight = 0;
  for (const ModelMix& m : mix) {
    if (m.num_inputs == 0) config_die("generate_load: mix entry with no inputs");
    if (!(m.weight > 0)) config_die("generate_load: mix weights must be > 0");
    if (m.p_interactive < 0 || m.p_batch < 0 || m.p_interactive + m.p_batch > 1.0 + 1e-12)
      config_die("generate_load: class probabilities must be a sub-distribution");
    total_weight += m.weight;
  }

  // All draws come from this one stream in a fixed per-request order
  // (arrival gap, model, input, class), so the trace is a pure function of
  // (spec, mix) — identical across runs and across any serving config.
  // Degenerate draws are skipped (not consumed), so a single all-
  // interactive entry reproduces the legacy single-model stream exactly.
  Rng rng(spec.seed ^ 0x10adull);
  const auto draw_request = [&](int id, std::int64_t t_ns) {
    Request r;
    r.id = id;
    r.arrival_ns = t_ns;
    std::size_t pick = 0;
    if (mix.size() > 1) {
      const double u = uniform01(rng) * total_weight;
      double cum = 0;
      for (std::size_t i = 0; i < mix.size(); ++i) {
        cum += mix[i].weight;
        if (u <= cum) {
          pick = i;
          break;
        }
      }
    }
    const ModelMix& m = mix[pick];
    r.model_id = m.model_id;
    r.input_index =
        static_cast<std::size_t>(rng.uniform_int(static_cast<int>(m.num_inputs)));
    if (m.p_interactive < 1.0) {
      const double u = uniform01(rng);
      r.latency_class = u <= m.p_interactive ? LatencyClass::kInteractive
                        : u <= m.p_interactive + m.p_batch ? LatencyClass::kBatch
                                                           : LatencyClass::kBestEffort;
    }
    return r;
  };

  std::vector<Request> trace;
  trace.reserve(static_cast<std::size_t>(spec.num_requests));
  std::int64_t t_ns = 0;
  int id = 0;
  while (id < spec.num_requests) {
    if (spec.kind == ArrivalKind::kPoisson) {
      t_ns += exp_gap_ns(rng, spec.rate_rps);
      trace.push_back(draw_request(id, t_ns));
      ++id;
    } else {
      // Bursts arrive as a Poisson process at rate/burst_size, so the mean
      // request rate still matches rate_rps.
      t_ns += exp_gap_ns(rng, spec.rate_rps / spec.burst_size);
      for (int b = 0; b < spec.burst_size && id < spec.num_requests; ++b, ++id)
        trace.push_back(draw_request(id, t_ns));
    }
  }
  return trace;
}

ServeResult serve(const harness::Prepared& p, const models::Dataset& ds,
                  const std::vector<Request>& trace, const ServeOptions& opts) {
  validate(opts);
  const int nshards = opts.shards;
  ServeResult res;
  res.records.resize(trace.size());
  // Validate the documented trace contract loudly (not via assert): a
  // hand-built trace that skips generate_load — the usual source of these —
  // must fail identically in Release, where an assert would let the bad ids
  // index records out of bounds instead.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].id != static_cast<int>(i))
      config_die("serve trace ids must be 0..N-1 in order (generate_load's contract)");
    if (i > 0 && trace[i].arrival_ns < trace[i - 1].arrival_ns)
      config_die("serve trace must be sorted by arrival_ns");
    if (trace[i].input_index >= ds.inputs.size())
      config_die("serve trace input_index out of range for the dataset");
    res.records[i].id = trace[i].id;
    res.records[i].arrival_ns = trace[i].arrival_ns;
  }

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(static_cast<std::size_t>(nshards));
  for (int s = 0; s < nshards; ++s) {
    auto sh = std::make_unique<Shard>(trace.size());
    sh->index = s;
    sh->prep = &p;
    sh->ds = &ds;
    sh->trace = &trace;
    sh->opts = &opts;
    sh->records = &res.records;
    if (opts.trace.enabled) {
      sh->tracer = std::make_unique<trace::Tracer>(s, opts.trace.config);
      sh->ticks = std::make_unique<SpscQueue<trace::MetricsTick>>(4096);
    }
    shards.push_back(std::move(sh));
  }
  // The dispatcher thread gets its own ring (single-writer discipline: it
  // must never write a shard's ring).
  std::unique_ptr<trace::Tracer> disp_tracer;
  if (opts.trace.enabled)
    disp_tracer = std::make_unique<trace::Tracer>(0, opts.trace.config);
  trace::Tracer* const dtr = disp_tracer.get();
  const auto drain_ticks = [&] {
    if (!opts.trace.enabled) return;
    trace::MetricsTick t;
    for (auto& sh : shards)
      while (sh->ticks->pop(t)) res.trace.ticks.push_back(t);
  };

  const std::int64_t epoch = now_ns();
  for (auto& sh : shards) {
    sh->epoch_ns = epoch;
    if (sh->tracer) sh->tracer->set_epoch(epoch);
  }
  if (dtr != nullptr) dtr->set_epoch(epoch);
  std::vector<std::thread> workers;
  workers.reserve(shards.size());
  for (auto& sh : shards) workers.emplace_back([&shard = *sh] { shard.run_worker(); });

  // Open-loop dispatcher: replay the trace in real time, yielding while it
  // waits so shard workers get the core between arrivals.
  for (const Request& req : trace) {
    while (now_ns() - epoch < req.arrival_ns) {
      drain_ticks();
      relax();
    }
    int target = 0;
    if (opts.dispatch == DispatchKind::kRoundRobin) {
      target = req.id % nshards;
    } else {
      int best_load = INT_MAX;
      for (int s = 0; s < nshards; ++s) {
        const int load = shards[static_cast<std::size_t>(s)]->outstanding.load(
            std::memory_order_relaxed);
        if (load < best_load) {
          best_load = load;
          target = s;
        }
      }
    }
    Shard& sh = *shards[static_cast<std::size_t>(target)];
    sh.outstanding.fetch_add(1, std::memory_order_relaxed);
    const bool pushed = sh.inbox.push(req.id);
    assert(pushed && "inbox sized for the whole trace");
    (void)pushed;
    ACROBAT_TRACE(dtr, dtr->instant(trace::EventKind::kDispatch, req.id, target));
  }
  for (auto& sh : shards) sh->inbox.close();
  for (std::thread& w : workers) w.join();

  // Latency aggregation is histogram-backed (serve/stats.h): O(1) memory
  // at any request count — no per-sample storage on the serve path.
  LatencyHisto lat;
  std::int64_t last_completion = 0;
  const std::int64_t first_arrival = trace.empty() ? 0 : trace.front().arrival_ns;
  for (const RequestRecord& r : res.records) {
    assert(r.completion_ns >= 0 && "every request must complete");
    lat.add(r.latency_ms());
    last_completion = std::max(last_completion, r.completion_ns);
  }
  res.latency_ms = Percentiles::from(lat);
  res.makespan_ms = static_cast<double>(last_completion - first_arrival) * 1e-6;
  if (res.makespan_ms > 0)
    res.throughput_rps =
        static_cast<double>(trace.size()) / (res.makespan_ms * 1e-3);
  for (auto& sh : shards) res.shards.push_back(std::move(sh->report));
  // Decode split: shard-local token histograms merge here (same O(1)-memory
  // scheme as latency), so TTFT and inter-token tails are reportable even
  // though no per-token samples were stored.
  LatencyHisto ttft, gap;
  for (const ShardReport& s : res.shards) {
    ttft.merge(s.ttft_ms);
    gap.merge(s.inter_token_ms);
    res.tokens += s.tokens;
    res.cancelled += s.cancelled;
  }
  res.ttft_ms = Percentiles::from(ttft);
  res.inter_token_ms = Percentiles::from(gap);
  if (res.makespan_ms > 0)
    res.tokens_per_sec = static_cast<double>(res.tokens) / (res.makespan_ms * 1e-3);
  if (opts.trace.enabled) {
    drain_ticks();
    res.trace.tracks.push_back(trace::dump_track(*disp_tracer, 0, "dispatcher"));
    for (int s = 0; s < nshards; ++s)
      res.trace.tracks.push_back(
          trace::dump_track(*shards[static_cast<std::size_t>(s)]->tracer, s + 1,
                            "shard" + std::to_string(s)));
    res.trace.metric_names = shards[0]->metric_names;
    for (auto& sh : shards) res.trace.dropped_ticks += sh->dropped_ticks;
  }
  return res;
}

}  // namespace acrobat::serve
