// ACROBAT_FAULT_SPEC parser (DESIGN.md §11). Kept out of the header so the
// grammar has one definition; the hot-path hook methods live in fault.h.
#include "fault/fault.h"

#include <cstdlib>
#include <vector>

namespace acrobat::fault {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse_u64(const std::string& v, std::uint64_t& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_double(const std::string& v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool fail(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

}  // namespace

bool parse_fault_spec(const std::string& spec, FaultPlan& plan, std::string* err) {
  FaultPlan p;
  for (const std::string& seg : split(spec, ';')) {
    if (seg.empty()) continue;  // tolerate a trailing ';'
    const std::size_t at = seg.find('@');
    if (at == std::string::npos)
      return fail(err, "fault action needs '@key=val': " + seg);
    const std::string action = seg.substr(0, at);
    // Collect this action's key=val pairs first, then check completeness.
    std::uint64_t req = 0, dur_ms = 0, seed = 0, shard = 0;
    double prob = -1.0;
    bool has_req = false, has_dur = false, has_seed = false, has_shard = false;
    for (const std::string& kv : split(seg.substr(at + 1), ',')) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) return fail(err, "expected key=val: " + kv);
      const std::string k = kv.substr(0, eq);
      const std::string v = kv.substr(eq + 1);
      if (k == "req") {
        if (!parse_u64(v, req) || req == 0) return fail(err, "bad req= in " + seg);
        has_req = true;
      } else if (k == "dur_ms") {
        if (!parse_u64(v, dur_ms)) return fail(err, "bad dur_ms= in " + seg);
        has_dur = true;
      } else if (k == "seed") {
        if (!parse_u64(v, seed)) return fail(err, "bad seed= in " + seg);
        has_seed = true;
      } else if (k == "shard") {
        if (!parse_u64(v, shard)) return fail(err, "bad shard= in " + seg);
        has_shard = true;
      } else if (k == "p") {
        if (!parse_double(v, prob) || prob < 0.0 || prob > 1.0)
          return fail(err, "bad p= in " + seg + " (want 0..1)");
      } else {
        return fail(err, "unknown fault key '" + k + "' in " + seg);
      }
    }
    if (action == "kill_worker") {
      if (!has_req) return fail(err, "kill_worker needs req=N");
      p.kill_every_req = req;
      if (has_shard) p.kill_shard = static_cast<int>(shard);
    } else if (action == "crash_worker") {
      if (!has_req) return fail(err, "crash_worker needs req=N");
      p.crash_at_req = req;
    } else if (action == "wedge_shard") {
      if (!has_req || !has_dur) return fail(err, "wedge_shard needs req=N,dur_ms=D");
      p.wedge_every_req = req;
      p.wedge_dur_ms = static_cast<std::int64_t>(dur_ms);
    } else if (action == "short_write") {
      if (prob < 0.0) return fail(err, "short_write needs p=P");
      p.short_write_p = prob;
      if (has_seed) p.seed = seed;
    } else {
      return fail(err, "unknown fault action '" + action + "'");
    }
  }
  plan = p;
  return true;
}

std::string Injector::spec_from_env() {
  const char* e = std::getenv("ACROBAT_FAULT_SPEC");
  return e != nullptr ? std::string(e) : std::string();
}

}  // namespace acrobat::fault
