#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "support/timer.h"

namespace acrobat::net {

NetClient::~NetClient() { close(); }

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool NetClient::connect_tcp(const std::string& host, int port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = "socket() failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad address: " + host;
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error_ = "connect() failed: " + std::string(std::strerror(errno));
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  host_ = host;
  port_ = port;
  uds_.clear();
  return true;
}

bool NetClient::connect_uds(const std::string& path) {
  close();
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    error_ = "bad uds path";
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = "socket() failed";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error_ = "connect() failed: " + std::string(std::strerror(errno));
    ::close(fd);
    return false;
  }
  fd_ = fd;
  uds_ = path;
  host_.clear();
  port_ = -1;
  return true;
}

bool NetClient::reconnect() {
  if (host_.empty() && uds_.empty()) {
    error_ = "reconnect() before any connect";
    return false;
  }
  reader_.reset();
  pending_.clear();
  partial_.clear();
  const bool ok = uds_.empty() ? connect_tcp(host_, port_) : connect_uds(uds_);
  if (ok) ++stats_.reconnects;
  return ok;
}

void NetClient::set_auth(const std::string& token) {
  auth_ = token.empty() ? 0 : auth_token16(token);
}

bool NetClient::send_request(std::uint32_t req_id, std::uint32_t input_index,
                             std::uint16_t model_id, std::uint8_t latency_class,
                             bool stream) {
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> wire;
  encode_request(wire, req_id, input_index, model_id, latency_class, stream, auth_);
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = "send() failed: " + std::string(std::strerror(errno));
      close();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads whatever is available within timeout_ms, sorting terminal frames
// into pending_ and token stamps into partial_. Returns false on EOF /
// error, true if any bytes were consumed or the wait simply timed out.
bool NetClient::pump(int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r <= 0) return r == 0;  // timeout is not an error; caller re-checks
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      reader_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      error_ = "connection closed by server";
      close();
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    error_ = "recv() failed: " + std::string(std::strerror(errno));
    close();
    return false;
  }

  const std::int64_t t_recv = now_ns();
  Frame f;
  while (reader_.next(f) == FrameReader::Status::kFrame) {
    const auto take_partial = [&](std::uint32_t id) {
      for (std::size_t i = 0; i < partial_.size(); ++i)
        if (partial_[i].req_id == id) {
          ClientResponse r2 = std::move(partial_[i]);
          partial_.erase(partial_.begin() + static_cast<std::ptrdiff_t>(i));
          return r2;
        }
      ClientResponse r2;
      r2.req_id = id;
      return r2;
    };
    switch (f.type) {
      case FrameType::kToken: {
        if (f.payload.size() < 8) break;
        const std::uint32_t id = wire::get_u32(f.payload.data());
        ClientResponse* p = nullptr;
        for (ClientResponse& c : partial_)
          if (c.req_id == id) p = &c;
        if (p == nullptr) {
          partial_.emplace_back();
          partial_.back().req_id = id;
          p = &partial_.back();
        }
        p->token_recv_ns.push_back(t_recv);
        break;
      }
      case FrameType::kDone: {
        DoneFields df;
        if (!parse_done(f, df)) break;
        ClientResponse r2 = take_partial(df.id);
        r2.kind = ClientResponse::Kind::kDone;
        r2.tokens = df.tokens;
        r2.cancelled = df.cancelled;
        r2.output.assign(df.data, df.data + df.n_floats);
        r2.done_recv_ns = t_recv;
        pending_.push_back(std::move(r2));
        break;
      }
      case FrameType::kRetry: {
        if (f.payload.size() < 4) break;
        ClientResponse r2 = take_partial(wire::get_u32(f.payload.data()));
        r2.kind = ClientResponse::Kind::kRetry;
        r2.done_recv_ns = t_recv;
        pending_.push_back(std::move(r2));
        break;
      }
      case FrameType::kError: {
        if (f.payload.size() < 8) break;
        ClientResponse r2 = take_partial(wire::get_u32(f.payload.data()));
        r2.kind = ClientResponse::Kind::kError;
        r2.error_code = wire::get_u32(f.payload.data() + 4);
        r2.done_recv_ns = t_recv;
        pending_.push_back(std::move(r2));
        break;
      }
      default:
        break;  // unknown frame types are ignored, not fatal
    }
  }
  return true;
}

// Sleep helper for backoff waits: plain nanosleep, no socket involvement —
// a dead connection must not turn the backoff into a busy loop.
static void sleep_ns(std::int64_t ns) {
  if (ns <= 0) return;
  timespec ts{static_cast<time_t>(ns / 1'000'000'000),
              static_cast<long>(ns % 1'000'000'000)};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

bool NetClient::call(std::uint32_t req_id, std::uint32_t input_index,
                     ClientResponse& out, const CallOptions& opts) {
  const std::int64_t deadline = now_ns() + opts.deadline_ms * 1'000'000;
  int attempt = 0;
  for (;;) {
    const std::int64_t left_ns = deadline - now_ns();
    if (left_ns <= 0 || attempt >= opts.max_attempts) {
      ++stats_.timeouts;
      if (error_.empty()) error_ = "call() deadline exhausted";
      return false;
    }
    // A broken (or never-made) connection is itself a retryable failure:
    // reconnect-and-resubmit against the stored endpoint.
    const bool sent = connected() &&
                      send_request(req_id, input_index, 0, 0, opts.stream);
    bool terminal = false;
    if (sent) {
      const int wait_ms = static_cast<int>(
          std::min<std::int64_t>(left_ns / 1'000'000 + 1,
                                 std::numeric_limits<int>::max() / 2));
      if (wait(req_id, out, wait_ms)) {
        if (out.kind == ClientResponse::Kind::kDone) return true;
        if (out.kind == ClientResponse::Kind::kError &&
            out.error_code != static_cast<std::uint32_t>(ErrorCode::kWorkerDied) &&
            out.error_code != static_cast<std::uint32_t>(ErrorCode::kUnavailable))
          return false;  // kBadRequest / kUnauthorized: retrying cannot help
        terminal = true;  // kRetry or a retryable kError
      } else if (connected()) {
        ++stats_.timeouts;  // deadline passed while the request was live
        return false;
      }
    }
    // Retryable outcome (429 / worker died / transport down): back off,
    // then resubmit. The jitter stream advances once per retry, so a fixed
    // seed gives a reproducible schedule.
    ++stats_.retries;
    sleep_ns(std::min(left_ns, retry_backoff_ns(attempt, opts.backoff_base_ms * 1'000'000,
                                                opts.backoff_cap_ms * 1'000'000, jitter_)));
    ++attempt;
    if (!connected() && !reconnect()) continue;  // server may still be coming back
    (void)terminal;
  }
}

bool NetClient::wait(std::uint32_t req_id, ClientResponse& out, int timeout_ms) {
  const std::int64_t deadline = now_ns() + static_cast<std::int64_t>(timeout_ms) * 1'000'000;
  for (;;) {
    for (std::size_t i = 0; i < pending_.size(); ++i)
      if (pending_[i].req_id == req_id) {
        out = std::move(pending_[i]);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    const std::int64_t left_ns = deadline - now_ns();
    if (left_ns <= 0) {
      error_ = "timed out waiting for response";
      return false;
    }
    const int slice = static_cast<int>(std::min<std::int64_t>(left_ns / 1'000'000 + 1, 100));
    if (!pump(slice)) return false;
  }
}

}  // namespace acrobat::net
