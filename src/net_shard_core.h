// Internal to acrobat/net: the shard engine loop shared by the router's
// in-process shard threads (src/net.cpp) and the `--shard-worker` process
// loop (src/net_worker.cpp). Same batching machinery as serve.cpp's
// Shard::run_worker — trigger-boundary admission hook, token-boundary step
// hook, fiber pool, policy — but driven through a Slot table and an IO
// adapter instead of the in-proc request trace, so the identical engine
// code serves both transports. Not installed; include from src/ only.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "harness/harness.h"
#include "serve/policy.h"
#include "serve/server.h"
#include "trace/trace.h"

namespace acrobat::net::detail {

// Owner tag for a slot: which (connection, generation) the result belongs
// to. 0 = free. Cancellation is owner-tagged rather than a plain flag so a
// cancel aimed at a dropped connection can never hit a slot that has since
// been recycled to a new request: the shard compares cancel_owner against
// the slot's *current* pack, and generations never repeat.
inline std::uint64_t pack_owner(int conn, std::uint64_t gen) {
  return (gen << 16) | static_cast<std::uint64_t>(conn + 1);
}

// One admitted-but-not-completed request. Exactly one thread owns the
// non-atomic fields at any time (event loop → dispatcher → shard → event
// loop), with ownership handed over through SPSC queues; `owner` and
// `cancel_owner` are the only concurrently-touched members.
struct Slot {
  std::atomic<std::uint64_t> owner{0};
  std::atomic<std::uint64_t> cancel_owner{0};

  // Wire identity (dispatcher-written; event loop reads at completion).
  int conn = -1;
  std::uint64_t conn_gen = 0;
  std::uint32_t req_id = 0;

  // Request fields.
  std::uint32_t input_index = 0;
  std::uint8_t latency_class = 0;
  bool stream = false;
  std::int64_t arrival_ns = 0;

  // Results (shard-written before the done message).
  std::vector<float> output;
  std::uint32_t tokens = 0;
  bool cancelled = false;
  std::int64_t admit_ns = -1;
  std::int64_t completion_ns = -1;
  std::int64_t first_token_ns = -1;
  std::int64_t last_token_ns = -1;
};

inline bool slot_cancelled(const Slot& s) {
  return s.cancel_owner.load(std::memory_order_acquire) ==
         pack_owner(s.conn, s.conn_gen);
}

struct CoreConfig {
  const harness::Prepared* prep = nullptr;
  const models::Dataset* ds = nullptr;
  serve::PolicyConfig policy;
  std::int64_t launch_overhead_ns = 0;
  bool recycle = true;
  bool sched_memo = true;
  int shard_index = 0;
  std::int64_t epoch_ns = 0;
  trace::Tracer* tracer = nullptr;  // may be null
};

// Transport adapter. poll_input appends newly arrived slot ids (and handles
// any transport control traffic: cancels, pings, drain). input_open answers
// "can more arrivals still appear?". emit_* publish results; emit_done runs
// after the slot's result fields are fully written. idle_wait yields/polls
// when there is nothing runnable.
struct CoreIo {
  std::function<Slot&(int)> slot;
  std::function<void(std::deque<int>&)> poll_input;
  std::function<bool()> input_open;
  std::function<void(int slot_id, std::uint32_t ordinal)> emit_token;
  std::function<void(int slot_id)> emit_done;
  std::function<void()> idle_wait;
  // Overload signal (may be null = never degraded): while true, the core
  // halves its per-window decode step budget (floor 1) so prefill of
  // already-admitted work outranks token streaming. In-proc shards read the
  // server's degraded flag; worker processes latch kWorkerMode frames.
  std::function<bool()> degraded;
};

// Runs the shard loop until input is closed and all work has drained.
void run_shard_core(const CoreConfig& cfg, CoreIo& io, serve::ShardReport& report);

}  // namespace acrobat::net::detail
