#include "tensor/ops.h"

#include <cassert>
#include <cmath>

namespace acrobat {
namespace {

inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// x (m,k) · Wᵀ with W (n,k) row-major. Per-(row, output) accumulation is
// i-ascending in every variant so fine-grained gate denses sum to exactly
// the coarse concat-dense (DESIGN.md §3 numerics invariant).
void dense(int variant, const float* x, int m, int k, const float* w, int n, float* out) {
  switch (variant) {
    case 0:  // i-outer: strided walk over W, cache-hostile on purpose.
      for (int r = 0; r < m; ++r) {
        float* o = out + static_cast<std::int64_t>(r) * n;
        for (int j = 0; j < n; ++j) o[j] = 0.0f;
        const float* xr = x + static_cast<std::int64_t>(r) * k;
        for (int i = 0; i < k; ++i) {
          const float xi = xr[i];
          for (int j = 0; j < n; ++j) o[j] += xi * w[static_cast<std::int64_t>(j) * k + i];
        }
      }
      return;
    case 1:  // o-outer, contiguous inner dot products.
      for (int r = 0; r < m; ++r) {
        const float* xr = x + static_cast<std::int64_t>(r) * k;
        float* o = out + static_cast<std::int64_t>(r) * n;
        for (int j = 0; j < n; ++j) {
          const float* wj = w + static_cast<std::int64_t>(j) * k;
          float acc = 0.0f;
          for (int i = 0; i < k; ++i) acc += xr[i] * wj[i];
          o[j] = acc;
        }
      }
      return;
    default:  // 2: contiguous dots with 4-wide accumulators.
      for (int r = 0; r < m; ++r) {
        const float* xr = x + static_cast<std::int64_t>(r) * k;
        float* o = out + static_cast<std::int64_t>(r) * n;
        for (int j = 0; j < n; ++j) {
          const float* wj = w + static_cast<std::int64_t>(j) * k;
          float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
          int i = 0;
          for (; i + 4 <= k; i += 4) {
            a0 += xr[i] * wj[i];
            a1 += xr[i + 1] * wj[i + 1];
            a2 += xr[i + 2] * wj[i + 2];
            a3 += xr[i + 3] * wj[i + 3];
          }
          float acc = (a0 + a1) + (a2 + a3);
          for (; i < k; ++i) acc += xr[i] * wj[i];
          o[j] = acc;
        }
      }
      return;
  }
}

void matmul(int variant, const float* a, int m, int k, const float* b, int n, float* out) {
  if (variant == 0) {  // j-inner over strided b columns.
    for (int r = 0; r < m; ++r) {
      const float* ar = a + static_cast<std::int64_t>(r) * k;
      float* o = out + static_cast<std::int64_t>(r) * n;
      for (int j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int l = 0; l < k; ++l) acc += ar[l] * b[static_cast<std::int64_t>(l) * n + j];
        o[j] = acc;
      }
    }
    return;
  }
  // 1+: accumulate whole output rows, contiguous b rows.
  for (int r = 0; r < m; ++r) {
    const float* ar = a + static_cast<std::int64_t>(r) * k;
    float* o = out + static_cast<std::int64_t>(r) * n;
    for (int j = 0; j < n; ++j) o[j] = 0.0f;
    for (int l = 0; l < k; ++l) {
      const float al = ar[l];
      const float* bl = b + static_cast<std::int64_t>(l) * n;
      for (int j = 0; j < n; ++j) o[j] += al * bl[j];
    }
  }
}

void matmul_bt(int variant, const float* a, int m, int k, const float* b, int n, float* out) {
  for (int r = 0; r < m; ++r) {
    const float* ar = a + static_cast<std::int64_t>(r) * k;
    float* o = out + static_cast<std::int64_t>(r) * n;
    for (int j = 0; j < n; ++j) {
      const float* bj = b + static_cast<std::int64_t>(j) * k;
      float acc = 0.0f;
      if (variant == 0) {
        for (int i = 0; i < k; ++i) acc += ar[i] * bj[i];
      } else {
        float a0 = 0.0f, a1 = 0.0f;
        int i = 0;
        for (; i + 2 <= k; i += 2) {
          a0 += ar[i] * bj[i];
          a1 += ar[i + 1] * bj[i + 1];
        }
        acc = a0 + a1;
        for (; i < k; ++i) acc += ar[i] * bj[i];
      }
      o[j] = acc;
    }
  }
}

template <typename F>
void binary(int variant, const float* a, const Shape& sa, const float* b, const Shape& sb,
            float* out, F f) {
  const std::int64_t n = sa.numel();
  if (sb == sa) {
    if (variant == 0) {
      for (std::int64_t i = 0; i < n; ++i) out[i] = f(a[i], b[i]);
    } else {
      std::int64_t i = 0;
      for (; i + 4 <= n; i += 4) {
        out[i] = f(a[i], b[i]);
        out[i + 1] = f(a[i + 1], b[i + 1]);
        out[i + 2] = f(a[i + 2], b[i + 2]);
        out[i + 3] = f(a[i + 3], b[i + 3]);
      }
      for (; i < n; ++i) out[i] = f(a[i], b[i]);
    }
    return;
  }
  // Row-broadcast: b is a row vector applied to each row of a.
  const int cols = sa.cols();
  assert(sb.numel() == cols);
  const int rows = static_cast<int>(n / cols);
  for (int r = 0; r < rows; ++r) {
    const float* ar = a + static_cast<std::int64_t>(r) * cols;
    float* o = out + static_cast<std::int64_t>(r) * cols;
    for (int j = 0; j < cols; ++j) o[j] = f(ar[j], b[j]);
  }
}

template <typename F>
void unary(int variant, const float* a, std::int64_t n, float* out, F f) {
  if (variant == 0) {
    for (std::int64_t i = 0; i < n; ++i) out[i] = f(a[i]);
  } else {
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      out[i] = f(a[i]);
      out[i + 1] = f(a[i + 1]);
      out[i + 2] = f(a[i + 2]);
      out[i + 3] = f(a[i + 3]);
    }
    for (; i < n; ++i) out[i] = f(a[i]);
  }
}

}  // namespace

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kDense: return "dense";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kMatMulBT: return "matmul_bt";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kTanh: return "tanh";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kRelu: return "relu";
    case OpKind::kScale: return "scale";
    case OpKind::kAddBiasTanh: return "add_bias_tanh";
    case OpKind::kAddBiasSigmoid: return "add_bias_sigmoid";
    case OpKind::kFma2: return "fma2";
    case OpKind::kMulTanh: return "mul_tanh";
    case OpKind::kLstmNewC: return "lstm_new_c";
    case OpKind::kLstmNewH: return "lstm_new_h";
    case OpKind::kGruPoint: return "gru_point";
    case OpKind::kConcat: return "concat";
    case OpKind::kZeros: return "zeros";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kSumAll: return "sum_all";
    case OpKind::kMaxProb: return "max_prob";
  }
  return "?";
}

int op_num_variants(OpKind kind) {
  switch (kind) {
    case OpKind::kDense:
    case OpKind::kMatMul:
      return 3;
    case OpKind::kMatMulBT:
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kTanh:
    case OpKind::kSigmoid:
    case OpKind::kRelu:
    case OpKind::kAddBiasTanh:
    case OpKind::kAddBiasSigmoid:
    case OpKind::kFma2:
    case OpKind::kMulTanh:
      return 2;
    default:
      return 1;
  }
}

int op_arity(OpKind kind) {
  switch (kind) {
    case OpKind::kZeros: return 0;
    case OpKind::kTanh:
    case OpKind::kSigmoid:
    case OpKind::kRelu:
    case OpKind::kScale:
    case OpKind::kSoftmax:
    case OpKind::kSumAll:
    case OpKind::kMaxProb:
      return 1;
    case OpKind::kAddBiasTanh:
    case OpKind::kAddBiasSigmoid:
      return 3;
    case OpKind::kFma2: return 4;
    case OpKind::kConcat: return -1;
    default: return 2;
  }
}

Shape infer_shape(OpKind kind, std::int64_t attr, const Shape* s, int n_ins) {
  (void)n_ins;
  switch (kind) {
    case OpKind::kDense: {
      assert(s[1].ndim == 2 && s[0].cols() == s[1].dim[1]);
      const int n = s[1].dim[0];
      return s[0].ndim == 1 ? RowVec(n) : Shape(s[0].dim[0], n);
    }
    case OpKind::kMatMul: {
      assert(s[1].ndim == 2 && s[0].cols() == s[1].dim[0]);
      const int n = s[1].dim[1];
      return s[0].ndim == 1 ? RowVec(n) : Shape(s[0].dim[0], n);
    }
    case OpKind::kMatMulBT: {
      assert(s[1].ndim == 2 && s[0].cols() == s[1].dim[1]);
      const int n = s[1].dim[0];
      return s[0].ndim == 1 ? RowVec(n) : Shape(s[0].dim[0], n);
    }
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
      assert(s[1] == s[0] || s[1].numel() == s[0].cols());
      return s[0];
    case OpKind::kAddBiasTanh:
    case OpKind::kAddBiasSigmoid:
      assert(s[1] == s[0] && s[2].numel() == s[0].cols());
      return s[0];
    case OpKind::kFma2:
      assert(s[1] == s[0] && s[2] == s[0] && s[3] == s[0]);
      return s[0];
    case OpKind::kMulTanh:
      assert(s[1] == s[0]);
      return s[0];
    case OpKind::kLstmNewC:
    case OpKind::kLstmNewH:
      assert(s[0].cols() == 4 * s[1].cols() && s[0].rows() == s[1].rows());
      return s[1];
    case OpKind::kGruPoint:
      assert(s[0].cols() == 3 * s[1].cols() && s[0].rows() == s[1].rows());
      return s[1];
    case OpKind::kZeros:
      return RowVec(static_cast<int>(attr));
    case OpKind::kSumAll:
    case OpKind::kMaxProb:
      return Shape(1);
    case OpKind::kConcat: {
      // axis = attr: 0 stacks rows (equal cols), 1 extends a single row.
      if (attr == 0 && s[0].ndim >= 2) {
        int rows = 0;
        for (int i = 0; i < n_ins; ++i) {
          assert(s[i].cols() == s[0].cols());
          rows += s[i].rows();
        }
        return Shape(rows, s[0].cols());
      }
      int total = 0;
      for (int i = 0; i < n_ins; ++i) total += static_cast<int>(s[i].numel());
      return RowVec(total);
    }
    default:  // unary, same shape
      return s[0];
  }
}

void run_op(OpKind kind, int variant, const float* const* ins, const Shape* s, float* out,
            const Shape& out_shape, std::int64_t attr) {
  switch (kind) {
    case OpKind::kDense:
      dense(variant, ins[0], s[0].rows(), s[0].cols(), ins[1], s[1].dim[0], out);
      return;
    case OpKind::kMatMul:
      matmul(variant, ins[0], s[0].rows(), s[0].cols(), ins[1], s[1].dim[1], out);
      return;
    case OpKind::kMatMulBT:
      matmul_bt(variant, ins[0], s[0].rows(), s[0].cols(), ins[1], s[1].dim[0], out);
      return;
    case OpKind::kAdd:
      binary(variant, ins[0], s[0], ins[1], s[1], out, [](float a, float b) { return a + b; });
      return;
    case OpKind::kSub:
      binary(variant, ins[0], s[0], ins[1], s[1], out, [](float a, float b) { return a - b; });
      return;
    case OpKind::kMul:
      binary(variant, ins[0], s[0], ins[1], s[1], out, [](float a, float b) { return a * b; });
      return;
    case OpKind::kTanh:
      unary(variant, ins[0], s[0].numel(), out, [](float a) { return std::tanh(a); });
      return;
    case OpKind::kSigmoid:
      unary(variant, ins[0], s[0].numel(), out, sigmoidf);
      return;
    case OpKind::kRelu:
      unary(variant, ins[0], s[0].numel(), out, [](float a) { return a > 0.0f ? a : 0.0f; });
      return;
    case OpKind::kScale: {
      const float c = static_cast<float>(static_cast<double>(attr) * 1e-6);
      unary(variant, ins[0], s[0].numel(), out, [c](float a) { return a * c; });
      return;
    }
    case OpKind::kAddBiasTanh:
    case OpKind::kAddBiasSigmoid: {
      const int cols = s[0].cols();
      const int rows = static_cast<int>(s[0].numel() / cols);
      const bool tanh_act = kind == OpKind::kAddBiasTanh;
      for (int r = 0; r < rows; ++r) {
        const std::int64_t off = static_cast<std::int64_t>(r) * cols;
        for (int j = 0; j < cols; ++j) {
          const float v = ins[0][off + j] + ins[1][off + j] + ins[2][j];
          out[off + j] = tanh_act ? std::tanh(v) : sigmoidf(v);
        }
      }
      return;
    }
    case OpKind::kFma2: {
      const std::int64_t n = s[0].numel();
      for (std::int64_t i = 0; i < n; ++i)
        out[i] = ins[0][i] * ins[1][i] + ins[2][i] * ins[3][i];
      return;
    }
    case OpKind::kMulTanh: {
      const std::int64_t n = s[0].numel();
      for (std::int64_t i = 0; i < n; ++i) out[i] = ins[0][i] * std::tanh(ins[1][i]);
      return;
    }
    case OpKind::kLstmNewC: {
      const int n = s[1].cols();
      const int rows = s[1].rows();
      for (int r = 0; r < rows; ++r) {
        const float* g = ins[0] + static_cast<std::int64_t>(r) * 4 * n;
        const float* c = ins[1] + static_cast<std::int64_t>(r) * n;
        float* o = out + static_cast<std::int64_t>(r) * n;
        for (int j = 0; j < n; ++j)
          o[j] = sigmoidf(g[n + j] + 1.0f) * c[j] + sigmoidf(g[j]) * std::tanh(g[2 * n + j]);
      }
      return;
    }
    case OpKind::kLstmNewH: {
      const int n = s[1].cols();
      const int rows = s[1].rows();
      for (int r = 0; r < rows; ++r) {
        const float* g = ins[0] + static_cast<std::int64_t>(r) * 4 * n;
        const float* c = ins[1] + static_cast<std::int64_t>(r) * n;
        float* o = out + static_cast<std::int64_t>(r) * n;
        for (int j = 0; j < n; ++j) o[j] = sigmoidf(g[3 * n + j]) * std::tanh(c[j]);
      }
      return;
    }
    case OpKind::kGruPoint: {
      const int n = s[1].cols();
      const int rows = s[1].rows();
      for (int r = 0; r < rows; ++r) {
        const float* g = ins[0] + static_cast<std::int64_t>(r) * 3 * n;
        const float* h = ins[1] + static_cast<std::int64_t>(r) * n;
        float* o = out + static_cast<std::int64_t>(r) * n;
        for (int j = 0; j < n; ++j) {
          const float z = sigmoidf(g[j]);
          o[j] = (1.0f - z) * h[j] + z * std::tanh(g[2 * n + j]);
        }
      }
      return;
    }
    case OpKind::kZeros: {
      const std::int64_t n = out_shape.numel();
      for (std::int64_t i = 0; i < n; ++i) out[i] = 0.0f;
      return;
    }
    case OpKind::kSoftmax: {
      const int cols = s[0].cols();
      const int rows = static_cast<int>(s[0].numel() / cols);
      for (int r = 0; r < rows; ++r) {
        const float* a = ins[0] + static_cast<std::int64_t>(r) * cols;
        float* o = out + static_cast<std::int64_t>(r) * cols;
        float mx = a[0];
        for (int j = 1; j < cols; ++j) mx = a[j] > mx ? a[j] : mx;
        float sum = 0.0f;
        for (int j = 0; j < cols; ++j) {
          o[j] = std::exp(a[j] - mx);
          sum += o[j];
        }
        const float inv = 1.0f / sum;
        for (int j = 0; j < cols; ++j) o[j] *= inv;
      }
      return;
    }
    case OpKind::kSumAll: {
      const std::int64_t n = s[0].numel();
      float acc = 0.0f;
      for (std::int64_t i = 0; i < n; ++i) acc += ins[0][i];
      out[0] = acc;
      return;
    }
    case OpKind::kMaxProb: {
      const std::int64_t n = s[0].numel();
      float mx = ins[0][0];
      for (std::int64_t i = 1; i < n; ++i) mx = ins[0][i] > mx ? ins[0][i] : mx;
      float sum = 0.0f;
      float best = 0.0f;
      for (std::int64_t i = 0; i < n; ++i) {
        const float e = std::exp(ins[0][i] - mx);
        sum += e;
        best = e > best ? e : best;
      }
      out[0] = best / sum;
      return;
    }
    case OpKind::kConcat:
      assert(false && "concat executes inside the engine");
      return;
  }
}

}  // namespace acrobat
