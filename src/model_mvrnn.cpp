// MV-RNN (matrix-vector recursive network): every tree node carries a
// vector and a matrix; combining children multiplies each child's vector by
// the sibling's matrix. The per-node matrices are what break DyNet's
// first-argument-keyed matmul batching (Table 7) — shape-keyed batching
// collapses them.
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

Value build_tree(Dataset& ds, Rng& rng, int leaves, int h) {
  if (leaves == 1) {
    Value v = dataset_tensor(ds, ds.pool->alloc_random(RowVec(h), rng, 1.0f));
    Value m = dataset_tensor(ds, ds.pool->alloc_random(Shape(h, h), rng, 0.4f));
    return Value::make_adt(0, {std::move(v), std::move(m)});
  }
  const int left = rng.range(1, leaves - 1);
  Value l = build_tree(ds, rng, left, h);
  Value r = build_tree(ds, rng, leaves - left, h);
  return Value::make_adt(1, {std::move(l), std::move(r)});
}

Dataset dataset(bool large, int batch, std::uint64_t seed) {
  Dataset ds;
  ds.pool = std::make_shared<TensorPool>();
  Rng rng(seed);
  const int h = hidden_dim(large);
  for (int i = 0; i < batch; ++i) ds.inputs.push_back(build_tree(ds, rng, rng.range(8, 13), h));
  return ds;
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const Shape v(h), m(h, h), v2(2 * h), w(h, 2 * h);
  const int w_comb = ctx.add_weight(w, 0.5f / static_cast<float>(h));
  const int b_comb = ctx.add_weight(Shape(h), 0.05f);
  const int k_vmat = ctx.kernel("mvrnn.vmat", OpKind::kMatMul, 0, {v, m});
  const int k_concat = ctx.kernel("mvrnn.concat", OpKind::kConcat, 1, {v, v});
  const int k_comb = ctx.kernel("mvrnn.combine", OpKind::kDense, 0, {v2, w});
  const int k_bias = ctx.kernel("mvrnn.bias", OpKind::kAdd, 0, {v, v});
  const int k_tanh = ctx.kernel("mvrnn.tanh", OpKind::kTanh, 0, {v});
  const int k_madd = ctx.kernel("mvrnn.madd", OpKind::kAdd, 0, {m, m});
  const int k_mhalf = ctx.kernel("mvrnn.mhalf", OpKind::kScale, 500000, {m});  // ×0.5
  const ClassifierHead cls = make_classifier(ctx, "mvrnn", h);

  // mv(node) -> (v, M)
  ir::FuncBuilder mv(ctx.program, "mv", 1);
  {
    const int tag = mv.adt_tag(mv.arg(0));
    const int to_internal = mv.br_if(tag);
    mv.ret(mv.tuple({mv.adt_field(mv.arg(0), 0), mv.adt_field(mv.arg(0), 1)}));
    mv.patch(to_internal, mv.here());
    const int l = mv.call(mv.index(), {mv.adt_field(mv.arg(0), 0)});
    const int r = mv.call(mv.index(), {mv.adt_field(mv.arg(0), 1)});
    const int v1 = mv.tuple_get(l, 0), m1 = mv.tuple_get(l, 1);
    const int vr = mv.tuple_get(r, 0), m2 = mv.tuple_get(r, 1);
    const int a = mv.kernel(k_vmat, {v1, m2});
    const int bb = mv.kernel(k_vmat, {vr, m1});
    const int ab = mv.kernel(k_concat, {a, bb});
    const int d = mv.kernel(k_comb, {ab, mv.weight(w_comb)});
    const int db = mv.kernel(k_bias, {d, mv.weight(b_comb)});
    const int vv = mv.kernel(k_tanh, {db});
    const int ms = mv.kernel(k_madd, {m1, m2});
    const int mm = mv.kernel(k_mhalf, {ms});
    mv.ret(mv.tuple({vv, mm}));
    mv.finish();
  }

  ir::FuncBuilder main(ctx.program, "main", 1);
  {
    const int r = main.call(mv.index(), {main.arg(0)});
    main.set_phase(1);
    main.ret(emit_classifier(main, cls, main.tuple_get(r, 0)));
    main.finish();
  }
  return main.index();
}

}  // namespace

ModelSpec make_mvrnn_spec() { return ModelSpec{"MV-RNN", dataset, build}; }

}  // namespace acrobat::models
