#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <tuple>

#include "runtime/fiber.h"

namespace acrobat {
namespace {

// Matmul-family ops are the ones DyNet's default heuristic batches only per
// shared parameter operand (Table 7's "first-argument" keying).
bool matmul_family(OpKind op) {
  return op == OpKind::kDense || op == OpKind::kMatMul || op == OpKind::kMatMulBT;
}

}  // namespace

Engine::Engine(const KernelRegistry& registry, EngineConfig cfg)
    : registry_(registry), cfg_(cfg) {
  stats_.kernel_invocations.assign(registry.num_kernels(), 0);
  assert((!cfg_.recycle || cfg_.lazy) && "recycling requires lazy recording");
}

void Engine::check_ref(TRef r) const {
#ifndef NDEBUG
  if (r.id >= nodes_.size() || nodes_[r.id].gen != r.gen) {
    std::fprintf(stderr,
                 "acrobat: stale TRef deref: id=%u gen=%u, slot gen=%u (table size %zu) — "
                 "ref outlived its request's epoch\n",
                 r.id, r.gen, r.id < nodes_.size() ? nodes_[r.id].gen : 0u, nodes_.size());
    std::abort();
  }
#else
  (void)r;
#endif
}

TRef Engine::alloc_node(Node&& n, bool reusable_slot) {
  const bool track = cfg_.recycle && reusable_slot;
  TRef ref;
  if (track && !free_slots_.empty()) {
    ref.id = free_slots_.back();
    free_slots_.pop_back();
    Node& slot = nodes_[ref.id];
    n.gen = slot.gen;  // already bumped at retirement
    slot = std::move(n);
  } else {
    ref.id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(std::move(n));
  }
  ref.gen = nodes_[ref.id].gen;
  if (track) request_nodes_[nodes_[ref.id].instance].push_back(ref.id);
  if (cfg_.recycle && live_nodes() > live_nodes_peak_) live_nodes_peak_ = live_nodes();
  return ref;
}

TRef Engine::add_concrete(TensorView v) {
  Node n;
  n.data = v.data;
  n.shape = v.shape;
  n.persist = true;
  return alloc_node(std::move(n), /*reusable_slot=*/false);
}

TRef Engine::add_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx, int phase) {
  TRef ref;
  {
    // Timer scope covers recording only — eager-mode execution below charges
    // its own kernel/launch buckets.
    ScopedTimer timer(stats_.dfg_construction, cfg_.time_activities);
    ref = record_op(kernel_id, ins, n_ins, ctx, phase);
  }
  if (!cfg_.lazy && !materialized(ref)) {
    // Eager baseline: one launch per op, recorded and executed in place.
    std::vector<std::uint32_t> one{ref.id};
    pending_.pop_back();
    execute_batch(kernel_id, one, /*merge_launch=*/false);
  }
  return ref;
}

TRef Engine::record_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx,
                       int phase) {
  const Kernel& k = registry_.kernel(kernel_id);

  if (cfg_.const_reuse && n_ins == 0) {
    // Static hoisting of constant nodes (e.g. TreeLSTM leaf zero states):
    // the compiler derives this for free; DyNet only gets it with the
    // hand-improved heuristics (Table 7).
    auto it = const_cache_.find(kernel_id);
    if (it != const_cache_.end()) return it->second;
  }

  if (cfg_.boxed_dfg) {
    // DyNet-style dynamic DFG construction: a boxed per-node signature
    // object built with string formatting — the per-node cost Table 6's
    // "DFG construction" row measures.
    std::string sig;
    sig.reserve(64);
    sig += k.name;
    for (int i = 0; i < n_ins; ++i) {
      sig += ':';
      sig += std::to_string(node(ins[i]).shape.numel());
    }
    sig += '@';
    sig += std::to_string(ctx.instance);
    boxed_.push_back(std::make_shared<std::string>(std::move(sig)));
  }

  Shape in_shapes[8];
  assert(n_ins <= 8);
  int depth = 0;
  for (int i = 0; i < n_ins; ++i) {
    const Node& in = node(ins[i]);
    in_shapes[i] = in.shape;
    depth = std::max(depth, in.depth);
  }

  Node n;
  n.kernel_id = kernel_id;
  n.ins.assign(ins, ins + n_ins);
  n.shape = infer_shape(k.op, k.attr, in_shapes, n_ins);
  n.depth = depth + 1;  // inline depth computation: maintained at record time
  n.phase = phase;
  n.instance = ctx.instance;
  // Cached constants are shared across requests of any epoch, so under
  // recycling they join the persistent region: the slot is never retired
  // and execute_batch materializes them into the persistent arena.
  n.persist = cfg_.recycle && cfg_.const_reuse && n_ins == 0;
  const bool persist = n.persist;
  const TRef ref = alloc_node(std::move(n), /*reusable_slot=*/!persist);
  pending_.push_back(ref.id);
  if (cfg_.const_reuse && n_ins == 0) const_cache_.emplace(kernel_id, ref);
  return ref;
}

void Engine::begin_request(int instance) {
  if (!cfg_.recycle) return;
  live_requests_.emplace(instance, epoch_);
}

void Engine::retire_request(int instance) {
  if (!cfg_.recycle) return;
  const auto span = request_nodes_.find(instance);
  if (span != request_nodes_.end()) {
    for (const std::uint32_t id : span->second) {
      Node& n = nodes_[id];
      // A retired request's ops were all executed by its completing trigger;
      // a still-pending node here would alias its reused slot later.
      assert(n.data != nullptr && "retiring a request with pending ops");
      if (n.data == nullptr) continue;
      ++n.gen;  // stale refs now fault in debug
      n.data = nullptr;
      n.kernel_id = -1;
      n.ins.clear();
      free_slots_.push_back(id);
      ++nodes_recycled_;
    }
    request_nodes_.erase(span);
  }
  live_requests_.erase(instance);
  // Epoch reclamation: a page is dead once every request admitted at or
  // before its last allocation epoch has retired — later requests only read
  // their own (younger) nodes plus the persistent region.
  std::uint64_t min_live = epoch_;
  for (const auto& [inst, admitted] : live_requests_)
    min_live = std::min(min_live, admitted);
  arena_.reclaim_before(min_live);
}

Engine::MemoryStats Engine::memory() const {
  MemoryStats m;
  m.node_table_size = nodes_.size();
  m.live_nodes = live_nodes();
  m.live_nodes_peak = cfg_.recycle ? live_nodes_peak_ : nodes_.size();
  m.nodes_recycled = nodes_recycled_;
  m.arena_active_bytes = static_cast<std::size_t>(arena_.active_floats()) * sizeof(float);
  m.arena_high_water_bytes =
      static_cast<std::size_t>(arena_.high_water_floats()) * sizeof(float);
  m.arena_pages_recycled = arena_.pages_recycled();
  m.persist_arena_high_water_bytes =
      static_cast<std::size_t>(persist_arena_.high_water_floats()) * sizeof(float);
  return m;
}

bool Engine::materialized(TRef r) const { return node(r).data != nullptr; }
const Shape& Engine::shape(TRef r) const { return node(r).shape; }
const float* Engine::data(TRef r) const { return node(r).data; }
int Engine::kernel_of(TRef r) const { return node(r).kernel_id; }
const std::vector<TRef>& Engine::inputs_of(TRef r) const { return node(r).ins; }

Tensor Engine::force(TRef r) {
  sync(r);
  Tensor t;
  t.data = const_cast<float*>(node(r).data);
  t.shape = node(r).shape;
  return t;
}

void Engine::sync(TRef r) {
  if (materialized(r)) return;
  if (fibers_ != nullptr && fibers_->in_fiber()) {
    // Suspend this instance; the scheduler triggers the engine once every
    // live instance is blocked, then resumes us.
    while (!materialized(r)) fibers_->block_current();
    return;
  }
  trigger_execution();
  assert(materialized(r));
}

float Engine::scalar(TRef r) {
  sync(r);
  return node(r).data[0];
}

void Engine::charge_bytes(std::size_t bytes) {
  live_bytes_ += bytes;
  if (cfg_.memory_cap_bytes == 0) return;
  // Under recycling, reclaimed pages leave the footprint, so the cap is
  // checked against live arena pages; the append-only path keeps the
  // cumulative counter (nothing is ever freed there).
  const std::size_t live =
      cfg_.recycle ? static_cast<std::size_t>(arena_.active_floats() +
                                              persist_arena_.active_floats()) *
                         sizeof(float)
                   : live_bytes_;
  if (live > cfg_.memory_cap_bytes) throw OomError{};
}

void Engine::charge_launch() {
  ++stats_.kernel_launches;
  if (cfg_.launch_overhead_ns > 0) {
    stats_.launch_overhead.add(cfg_.launch_overhead_ns);
    spin_ns(cfg_.launch_overhead_ns);
  }
}

void Engine::recover_depths(const std::vector<std::uint32_t>& pending) {
  // Dynamic depth recovery: the per-trigger graph traversal that inline
  // depth computation eliminates (paper §4.1). Pending ids are recorded in
  // topological order, so one forward pass suffices.
  for (const std::uint32_t id : pending) {
    Node& n = nodes_[id];
    int depth = 0;
    for (const TRef in : n.ins) {
      const Node& src = node(in);
      if (src.data == nullptr) depth = std::max(depth, src.depth);
    }
    n.depth = depth + 1;
  }
}

void Engine::schedule_depth(std::vector<std::uint32_t>& pending) {
  std::int64_t t0 = now_ns();
  if (!cfg_.inline_depth) recover_depths(pending);

  // Phases run strictly in order; within phase 0 batches are the static
  // (depth, kernel) buckets inline depth computation makes free. Phase-
  // tagged nodes (phase > 0) are scheduled by readiness waves keyed on
  // kernel alone — that is what lets e.g. per-instance root classifiers
  // sitting at different tree depths share one launch. Builders keep
  // dependencies monotone in phase.
  std::map<int, std::vector<std::uint32_t>> by_phase;
  for (const std::uint32_t id : pending)
    by_phase[cfg_.phases ? nodes_[id].phase : 0].push_back(id);

  for (auto& [phase, ids] : by_phase) {
    if (phase == 0) {
      std::map<std::pair<int, int>, std::vector<std::uint32_t>> groups;
      for (const std::uint32_t id : ids)
        groups[{nodes_[id].depth, nodes_[id].kernel_id}].push_back(id);
      if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
      int last_depth = -1;
      for (auto& [key, batch] : groups) {
        // Cortex persistent-kernel mode: batches in one depth wave share a
        // single launch.
        const bool merge = cfg_.fuse_waves && key.first == last_depth;
        last_depth = key.first;
        execute_batch(key.second, batch, merge);
      }
      t0 = now_ns();
      continue;
    }
    std::vector<std::uint32_t> todo = ids;
    while (!todo.empty()) {
      std::map<int, std::vector<std::uint32_t>> wave;  // kernel → ready nodes
      std::vector<std::uint32_t> rest;
      for (const std::uint32_t id : todo) {
        bool ready = true;
        for (const TRef in : nodes_[id].ins)
          if (node(in).data == nullptr) {
            ready = false;
            break;
          }
        if (ready)
          wave[nodes_[id].kernel_id].push_back(id);
        else
          rest.push_back(id);
      }
      assert(!wave.empty() && "phase-group dependency cycle");
      if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
      for (auto& [kid, batch] : wave) execute_batch(kid, batch, false);
      t0 = now_ns();
      todo.swap(rest);
    }
  }
  if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
}

void Engine::schedule_agenda(std::vector<std::uint32_t>& pending) {
  // DyNet's agenda scheduler: maintain the set of ready nodes, repeatedly
  // launch the largest same-signature class. All bookkeeping is charged to
  // scheduling time — this is the dynamic analysis cost the paper's static
  // scheduling avoids.
  std::int64_t sched_ns = 0;
  std::int64_t t0 = now_ns();

  std::map<std::uint32_t, int> remaining;  // pending id → unexecuted input count
  std::map<std::uint32_t, std::vector<std::uint32_t>> consumers;
  for (const std::uint32_t id : pending) remaining[id] = 0;
  for (const std::uint32_t id : pending) {
    for (const TRef in : nodes_[id].ins) {
      if (node(in).data == nullptr && remaining.count(in.id)) {
        ++remaining[id];
        consumers[in.id].push_back(id);
      }
    }
  }

  // Signature: kernel id, plus the parameter operand when the heuristic is
  // not shape-keyed (DyNet's default batches matmuls only per shared
  // parameter — MV-RNN's per-node matrices then never batch, Table 7).
  auto signature = [&](std::uint32_t id) -> std::uint64_t {
    const Node& n = nodes_[id];
    const OpKind op = registry_.kernel(n.kernel_id).op;
    std::uint64_t sig = static_cast<std::uint64_t>(n.kernel_id) << 32;
    if (!cfg_.shape_keyed_batching && matmul_family(op) && n.ins.size() >= 2)
      sig |= n.ins[1].id;
    return sig;
  };

  std::map<std::uint64_t, std::vector<std::uint32_t>> ready;
  for (const auto& [id, cnt] : remaining)
    if (cnt == 0) ready[signature(id)].push_back(id);

  while (!ready.empty()) {
    auto best = ready.begin();
    for (auto it = ready.begin(); it != ready.end(); ++it)
      if (it->second.size() > best->second.size()) best = it;
    std::vector<std::uint32_t> ids = std::move(best->second);
    ready.erase(best);

    sched_ns += now_ns() - t0;
    execute_batch(nodes_[ids[0]].kernel_id, ids, /*merge_launch=*/false);
    t0 = now_ns();

    for (const std::uint32_t id : ids) {
      auto it = consumers.find(id);
      if (it == consumers.end()) continue;
      for (const std::uint32_t c : it->second)
        if (--remaining[c] == 0) ready[signature(c)].push_back(c);
    }
  }
  sched_ns += now_ns() - t0;
  if (cfg_.time_activities) stats_.scheduling.add(sched_ns);
}

void Engine::trigger_execution() {
  if (in_trigger_) return;
  if (admission_hook_ && !in_admission_) {
    // Last-call admission: requests that arrived while instances were
    // recording get their ops into this trigger's pending set, so old and
    // new requests share the same batches.
    in_admission_ = true;
    try {
      admission_hook_();
    } catch (...) {
      in_admission_ = false;
      throw;
    }
    in_admission_ = false;
  }
  if (pending_.empty()) return;
  in_trigger_ = true;
  std::vector<std::uint32_t> pend;
  pend.swap(pending_);
  try {
    if (cfg_.scheduler == SchedulerKind::kAgenda) {
      schedule_agenda(pend);
    } else {
      schedule_depth(pend);
    }
  } catch (...) {
    in_trigger_ = false;  // keep the engine usable after a caught OOM
    throw;
  }
  in_trigger_ = false;
  if (cfg_.recycle) {
    // One batching iteration = one epoch: requests admitted from here on
    // can never reference pages last written in this trigger or earlier
    // (their inputs are their own nodes plus the persistent region).
    ++epoch_;
    arena_.set_epoch(epoch_);
  }
}

void Engine::execute_batch(int kernel_id, const std::vector<std::uint32_t>& ids,
                           bool merge_launch) {
  const Kernel& k = registry_.kernel(kernel_id);
  const std::size_t n = ids.size();
  stats_.kernel_invocations[static_cast<std::size_t>(kernel_id)] +=
      static_cast<long long>(n);
  if (!merge_launch) charge_launch();

  // Allocate every output of the batch back-to-back: downstream batches
  // over these results see contiguous inputs (the iterative-model fast path
  // in ablation_gather.cpp). Persistent nodes (cached constants under
  // recycling) land in the persistent arena instead — a batch is uniform
  // here because persistence is decided per kernel (zero-arity + cache).
  std::int64_t total = 0;
  for (const std::uint32_t id : ids) total += nodes_[id].shape.numel();
  const bool persist_batch = nodes_[ids[0]].persist;
#ifndef NDEBUG
  for (const std::uint32_t id : ids)
    assert(nodes_[id].persist == persist_batch && "mixed persistence in one batch");
#endif
  float* out_base = persist_batch ? persist_arena_.alloc_raw(total) : arena_.alloc_raw(total);
  charge_bytes(static_cast<std::size_t>(total) * sizeof(float));

  std::int64_t off = 0;
  std::vector<float*> outs(n);
  for (std::size_t i = 0; i < n; ++i) {
    outs[i] = out_base + off;
    off += nodes_[ids[i]].shape.numel();
  }

#ifndef NDEBUG
  // Scheduler correctness invariant (DESIGN.md §5).
  for (const std::uint32_t id : ids)
    for (const TRef in : nodes_[id].ins) assert(node(in).data != nullptr && "batch ordering bug");
#endif

  // Dense fast path: a batch of row-vector denses sharing one weight is a
  // single stacked (n×k)·Wᵀ call when the rows are contiguous — or after an
  // explicit staging gather when they are not and fusion is off.
  bool stacked = false;
  if (k.op == OpKind::kDense && n > 1) {
    bool uniform = true;
    const TRef w = nodes_[ids[0]].ins[1];
    const int kdim = static_cast<int>(node(nodes_[ids[0]].ins[0]).shape.numel());
    for (const std::uint32_t id : ids) {
      const Node& nd = nodes_[id];
      if (nd.ins[1].id != w.id || node(nd.ins[0]).shape.ndim != 1 ||
          node(nd.ins[0]).shape.numel() != kdim) {
        uniform = false;
        break;
      }
    }
    if (uniform) {
      const float* first = node(nodes_[ids[0]].ins[0]).data;
      bool contiguous = true;
      for (std::size_t i = 0; i < n; ++i) {
        if (node(nodes_[ids[i]].ins[0]).data != first + static_cast<std::int64_t>(i) * kdim) {
          contiguous = false;
          break;
        }
      }
      const float* x_stacked = nullptr;
      if (contiguous) {
        x_stacked = first;
      } else if (!cfg_.gather_fusion) {
        // Explicit gather: stage scattered rows into a contiguous buffer
        // (DyNet-style), charging copy time and bytes.
        ScopedTimer timer(stats_.gather_copy, cfg_.time_activities);
        float* staged = arena_.alloc_raw(static_cast<std::int64_t>(n) * kdim);
        for (std::size_t i = 0; i < n; ++i)
          std::memcpy(staged + static_cast<std::int64_t>(i) * kdim,
                      node(nodes_[ids[i]].ins[0]).data, sizeof(float) * kdim);
        stats_.gather_bytes += static_cast<long long>(n) * kdim * sizeof(float);
        charge_bytes(static_cast<std::size_t>(n) * kdim * sizeof(float));
        x_stacked = staged;
      }
      if (x_stacked != nullptr) {
        ScopedTimer timer(stats_.kernel_exec, cfg_.time_activities);
        const Shape xs(static_cast<int>(n), kdim);
        const Shape ws = node(w).shape;
        const Shape os(static_cast<int>(n), static_cast<int>(nodes_[ids[0]].shape.numel()));
        const float* ins[2] = {x_stacked, node(w).data};
        const Shape shapes[2] = {xs, ws};
        run_op(k.op, k.variant, ins, shapes, out_base, os, k.attr);
        stacked = true;
      }
    }
  }

  if (!stacked) {
    ScopedTimer timer(stats_.kernel_exec, cfg_.time_activities);
    for (std::size_t i = 0; i < n; ++i) {
      Node& nd = nodes_[ids[i]];
      if (k.op == OpKind::kConcat) {
        // Engine-executed (variable arity): copy inputs end to end; axis 0
        // row-stacking and flat vector concat have identical layout.
        float* dst = outs[i];
        for (const TRef in : nd.ins) {
          const Node& src = node(in);
          std::memcpy(dst, src.data, sizeof(float) * static_cast<std::size_t>(src.shape.numel()));
          dst += src.shape.numel();
        }
        continue;
      }
      const float* ins[8];
      Shape shapes[8];
      const int arity = static_cast<int>(nd.ins.size());
      for (int j = 0; j < arity; ++j) {
        const Node& src = node(nd.ins[j]);
        ins[j] = src.data;
        shapes[j] = src.shape;
      }
      if (cfg_.stage_all_amp > 0 && matmul_family(k.op)) {
        // Cortex's restrictive interface on MV-RNN: inputs must be copied
        // into the accelerator's layout (repeatedly) before every call.
        ScopedTimer copy_timer(stats_.gather_copy, cfg_.time_activities);
        for (int rep = 0; rep < cfg_.stage_all_amp; ++rep) {
          for (int j = 0; j < arity; ++j) {
            const std::int64_t numel = shapes[j].numel();
            float* staged = arena_.alloc_raw(numel);
            std::memcpy(staged, ins[j], sizeof(float) * static_cast<std::size_t>(numel));
            stats_.gather_bytes += numel * static_cast<long long>(sizeof(float));
            if (rep == cfg_.stage_all_amp - 1) ins[j] = staged;
          }
        }
      }
      run_op(k.op, k.variant, ins, shapes, outs[i], nd.shape, k.attr);
    }
  }

  for (std::size_t i = 0; i < n; ++i) nodes_[ids[i]].data = outs[i];
  // The replay log is only meaningful while node ids are append-only;
  // recycling reuses them, and serving has no backward pass to feed.
  if (!cfg_.recycle) exec_log_.push_back(ExecBatch{kernel_id, ids});
}

}  // namespace acrobat
