#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/fiber.h"
#include "trace/trace.h"

namespace acrobat {
namespace {

// Matmul-family ops are the ones DyNet's default heuristic batches only per
// shared parameter operand (Table 7's "first-argument" keying).
bool matmul_family(OpKind op) {
  return op == OpKind::kDense || op == OpKind::kMatMul || op == OpKind::kMatMulBT;
}

}  // namespace

// ------------------------------------------------------------ scratch reuse

template <class T>
void Engine::scratch_reserve(std::vector<T>& v, std::size_t need) {
  if (need <= v.capacity()) return;
  // Explicit doubling (not the stdlib's policy) so the alloc count is
  // deterministic across toolchains — CI diffs it against a golden.
  std::size_t cap = v.capacity() == 0 ? 16 : v.capacity() * 2;
  if (cap < need) cap = need;
  v.reserve(cap);
  ++stats_.scheduling_allocs;
}

void Engine::bucket_push(BucketScratch& b, std::uint32_t key, std::uint32_t id) {
  if (key >= b.index.size()) {
    scratch_reserve(b.index, static_cast<std::size_t>(key) + 1);
    b.index.resize(static_cast<std::size_t>(key) + 1, -1);
  }
  std::int32_t slot = b.index[key];
  if (slot < 0) {
    if (b.used == b.lists.size()) {
      scratch_reserve(b.lists, b.used + 1);
      b.lists.emplace_back();
    }
    slot = static_cast<std::int32_t>(b.used++);
    b.index[key] = slot;
    scratch_reserve(b.keys, b.keys.size() + 1);
    b.keys.push_back(key);
  }
  std::vector<std::uint32_t>& lst = b.lists[static_cast<std::size_t>(slot)];
  scratch_reserve(lst, lst.size() + 1);
  lst.push_back(id);
}

void Engine::bucket_reset(BucketScratch& b) {
  for (const std::uint32_t key : b.keys) {
    b.lists[static_cast<std::size_t>(b.index[key])].clear();
    b.index[key] = -1;
  }
  b.keys.clear();
  b.used = 0;
}

void Engine::reset_sched_scratch() {
  bucket_reset(phase_buckets_);
  bucket_reset(depth_buckets_);
  bucket_reset(wave_buckets_);
  wave_todo_.clear();
  wave_rest_.clear();
  agenda_batch_.clear();
  ready_classes_.clear();
  ready_free_.clear();
  for (std::size_t i = 0; i < ready_pool_.size(); ++i) {
    ready_pool_[i].clear();
    ready_free_.push_back(static_cast<std::uint32_t>(i));
  }
}

Engine::Engine(const KernelRegistry& registry, EngineConfig cfg)
    : registry_(registry), cfg_(cfg) {
  stats_.kernel_invocations.assign(registry.num_kernels(), 0);
  assert((!cfg_.recycle || cfg_.lazy) && "recycling requires lazy recording");
}

void Engine::check_ref(TRef r) const {
#ifndef NDEBUG
  if (r.id >= nodes_.size() || nodes_[r.id].gen != r.gen) {
    std::fprintf(stderr,
                 "acrobat: stale TRef deref: id=%u gen=%u, slot gen=%u (table size %zu) — "
                 "ref outlived its request's epoch\n",
                 r.id, r.gen, r.id < nodes_.size() ? nodes_[r.id].gen : 0u, nodes_.size());
    std::abort();
  }
#else
  (void)r;
#endif
}

TRef Engine::alloc_node(Node&& n, bool reusable_slot) {
  const bool track = cfg_.recycle && reusable_slot;
  TRef ref;
  if (track && !free_slots_.empty()) {
    ref.id = free_slots_.back();
    free_slots_.pop_back();
    Node& slot = nodes_[ref.id];
    n.gen = slot.gen;  // already bumped at retirement
    slot = std::move(n);
  } else {
    ref.id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(std::move(n));
  }
  ref.gen = nodes_[ref.id].gen;
  if (track) {
    std::vector<std::uint32_t>& span = request_nodes_[nodes_[ref.id].instance];
    // A fresh entry adopts a retired request's warm vector when one is
    // pooled — steady-state recording then never re-grows span storage.
    if (span.capacity() == 0 && !req_span_pool_.empty()) {
      span = std::move(req_span_pool_.back());
      req_span_pool_.pop_back();
    }
    span.push_back(ref.id);
  }
  if (cfg_.recycle && live_nodes() > live_nodes_peak_) live_nodes_peak_ = live_nodes();
  return ref;
}

TRef Engine::add_concrete(TensorView v) {
  Node n;
  n.data = v.data;
  n.shape = v.shape;
  n.persist = true;
  return alloc_node(std::move(n), /*reusable_slot=*/false);
}

TRef Engine::add_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx, int phase) {
  TRef ref;
  {
    // Timer scope covers recording only — eager-mode execution below charges
    // its own kernel/launch buckets.
    ScopedTimer timer(stats_.dfg_construction, cfg_.time_activities);
    ref = record_op(kernel_id, ins, n_ins, ctx, phase);
  }
  if (!cfg_.lazy && !materialized(ref)) {
    // Eager baseline: one launch per op, recorded and executed in place.
    eager_scratch_.clear();
    scratch_reserve(eager_scratch_, 1);
    eager_scratch_.push_back(ref.id);
    pending_.pop_back();
    execute_batch(kernel_id, eager_scratch_, /*merge_launch=*/false);
  }
  return ref;
}

TRef Engine::record_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx,
                       int phase) {
  const Kernel& k = registry_.kernel(kernel_id);

  if (cfg_.const_reuse && n_ins == 0) {
    // Static hoisting of constant nodes (e.g. TreeLSTM leaf zero states):
    // the compiler derives this for free; DyNet only gets it with the
    // hand-improved heuristics (Table 7).
    auto it = const_cache_.find(kernel_id);
    if (it != const_cache_.end()) return it->second;
  }

  if (cfg_.boxed_dfg) {
    // DyNet-style dynamic DFG construction: a boxed per-node signature
    // object built with string formatting — the per-node cost Table 6's
    // "DFG construction" row measures.
    std::string sig;
    sig.reserve(64);
    sig += k.name;
    for (int i = 0; i < n_ins; ++i) {
      sig += ':';
      sig += std::to_string(node(ins[i]).shape.numel());
    }
    sig += '@';
    sig += std::to_string(ctx.instance);
    boxed_.push_back(std::make_shared<std::string>(std::move(sig)));
  }

  Shape in_shapes[8];
  assert(n_ins <= 8);
  int depth = 0;
  for (int i = 0; i < n_ins; ++i) {
    const Node& in = node(ins[i]);
    in_shapes[i] = in.shape;
    depth = std::max(depth, in.depth);
  }

  // Phases are dense scheduler bucket keys now (not map keys): a negative
  // tag — only possible from a malformed compiled program — would cast to
  // a ~4G index. Fault loudly in every build instead.
  if (phase < 0) {
    std::fprintf(stderr, "acrobat: negative program phase tag %d on kernel %s\n", phase,
                 k.name.c_str());
    std::abort();
  }

  Node n;
  n.kernel_id = kernel_id;
  n.ins.assign(ins, n_ins);
  n.shape = infer_shape(k.op, k.attr, in_shapes, n_ins);
  n.depth = depth + 1;  // inline depth computation: maintained at record time
  n.phase = phase;
  n.instance = ctx.instance;
  // Cached constants are shared across requests of any epoch, so under
  // recycling they join the persistent region: the slot is never retired
  // and execute_batch materializes them into the persistent arena.
  n.persist = cfg_.recycle && cfg_.const_reuse && n_ins == 0;
  const bool persist = n.persist;
  const TRef ref = alloc_node(std::move(n), /*reusable_slot=*/!persist);
  pending_.push_back(ref.id);
  // Schedule-memo key capture rides the recording pass while the node's
  // fields are cache-hot — the trigger hot path never rebuilds the key.
  if (cfg_.sched_memo && cfg_.lazy) memo_capture_op(ref.id, nodes_[ref.id], k);
  if (cfg_.const_reuse && n_ins == 0) const_cache_.emplace(kernel_id, ref);
  return ref;
}

void Engine::begin_request(int instance) {
  if (!cfg_.recycle) return;
  live_requests_.emplace(instance, epoch_);
}

void Engine::retire_span(int instance) {
  const auto span = request_nodes_.find(instance);
  if (span == request_nodes_.end()) return;
  for (const std::uint32_t id : span->second) {
    Node& n = nodes_[id];
    // A retired request's ops were all executed by its completing trigger;
    // a still-pending node here would alias its reused slot later. Debug
    // builds abort; Release builds must abandon the slot (it can never be
    // reissued safely) and COUNT the leak — MemoryStats::leaked_slots
    // surfaces it in the soak gauges instead of hiding a growing table.
    assert(n.data != nullptr && "retiring a request with pending ops");
    if (n.data == nullptr) {
      ++leaked_slots_;
      continue;
    }
    ++n.gen;  // stale refs now fault in debug
    n.data = nullptr;
    n.kernel_id = -1;
    n.ins.clear();
    free_slots_.push_back(id);
    ++nodes_recycled_;
  }
  span->second.clear();
  scratch_reserve(req_span_pool_, req_span_pool_.size() + 1);
  req_span_pool_.push_back(std::move(span->second));
  request_nodes_.erase(span);
}

void Engine::reclaim_arena_pages() {
  // Epoch reclamation: a page is dead once every request admitted at or
  // before its last allocation epoch has retired — later requests only read
  // their own (younger) nodes plus the persistent region.
  std::uint64_t min_live = epoch_;
  for (const auto& [inst, admitted] : live_requests_)
    min_live = std::min(min_live, admitted);
  arena_.reclaim_before(min_live);
}

void Engine::pool_session_buf(SessionBuf&& buf) {
  if (buf.data == nullptr) return;
  session_buf_pool_[session_buf_pool_index(session_buf_class(buf.cap))]
      .push_back(std::move(buf));
}

void Engine::retire_request(int instance) {
  if (!cfg_.recycle) return;
  retire_span(instance);
  live_requests_.erase(instance);
  const auto sb = session_bufs_.find(instance);
  if (sb != session_bufs_.end()) {
    // The session's kept-state buffer returns to its size-class pool with
    // capacity intact; the next session needing that class adopts it.
    pool_session_buf(std::move(sb->second));
    session_bufs_.erase(sb);
  }
  reclaim_arena_pages();
}

TRef Engine::checkpoint_state(TRef state, int instance) {
  const Node& src = node(state);
  // The step's sync already completed a trigger, so every node the step
  // recorded — including the carried state — is materialized.
  assert(src.data != nullptr && "session_step before the step's sync");
  const Shape shape = src.shape;
  const std::size_t numel = static_cast<std::size_t>(shape.numel());
  SessionBuf& buf = session_bufs_[instance];
  if (buf.cap < numel) {
    // Growth path: the outgrown buffer goes back to its class pool before
    // the session adopts from the target class — mid-session growth swaps
    // classes instead of leaking the old allocation, so a cohort of growing
    // sessions cycles one ladder of buffers per concurrency slot.
    if (buf.data != nullptr) pool_session_buf(std::move(buf));
    const int cls = session_buf_class(numel);
    std::vector<SessionBuf>& pool = session_buf_pool_[session_buf_pool_index(cls)];
    if (!pool.empty() && pool.back().cap >= numel) {
      buf = std::move(pool.back());
      pool.pop_back();
    } else {
      const std::size_t cap = std::size_t{1} << cls;
      buf.data.reset(new float[cap]);
      buf.cap = cap;
      session_floats_allocated_ += cap;
    }
  }
  std::memcpy(buf.data.get(), src.data, numel * sizeof(float));
  if (session_bufs_.size() > session_bufs_peak_) session_bufs_peak_ = session_bufs_.size();
  // Retire the step's transient nodes (the carried state's slot included —
  // its bits now live in the session buffer) and re-admit the session at
  // the current epoch, so arena pages the finished steps wrote become
  // reclaimable while the session is still live.
  retire_span(instance);
  live_requests_[instance] = epoch_;
  reclaim_arena_pages();
  // The kept state re-enters the graph as a depth-0 materialized node over
  // the session buffer: downstream steps see a constant input (memo
  // signatures key materialized inputs position-independently), so
  // steady-state step triggers recur and hit the schedule cache.
  Node n;
  n.shape = shape;
  n.data = buf.data.get();
  n.instance = instance;
  return alloc_node(std::move(n), /*reusable_slot=*/true);
}

Engine::StepResult Engine::session_step(TRef state, const InstCtx& ctx) {
  StepResult res;
  res.state = state;
  if (cfg_.recycle) res.state = checkpoint_state(state, ctx.instance);
  if (step_hook_) {
    for (;;) {
      const StepVerdict v = step_hook_(ctx.instance);
      if (v == StepVerdict::kStop) {
        res.cont = 0;
        break;
      }
      if (v == StepVerdict::kRun) break;
      assert(fibers_ != nullptr && fibers_->in_fiber() &&
             "StepVerdict::kPark outside a fiber");
      fibers_->park_current();
    }
  }
  return res;
}

Engine::MemoryStats Engine::memory() const {
  MemoryStats m;
  m.node_table_size = nodes_.size();
  m.live_nodes = live_nodes();
  m.live_nodes_peak = cfg_.recycle ? live_nodes_peak_ : nodes_.size();
  m.nodes_recycled = nodes_recycled_;
  m.arena_active_bytes = static_cast<std::size_t>(arena_.active_floats()) * sizeof(float);
  m.arena_high_water_bytes =
      static_cast<std::size_t>(arena_.high_water_floats()) * sizeof(float);
  m.arena_pages_recycled = arena_.pages_recycled();
  m.leaked_slots = leaked_slots_;
  m.persist_arena_high_water_bytes =
      static_cast<std::size_t>(persist_arena_.high_water_floats()) * sizeof(float);
  m.session_buffers_live = session_bufs_.size();
  m.session_buffers_peak = session_bufs_peak_;
  m.session_bytes_allocated = session_floats_allocated_ * sizeof(float);
  return m;
}

bool Engine::materialized(TRef r) const { return node(r).data != nullptr; }
const Shape& Engine::shape(TRef r) const { return node(r).shape; }
const float* Engine::data(TRef r) const { return node(r).data; }
int Engine::kernel_of(TRef r) const { return node(r).kernel_id; }
std::span<const TRef> Engine::inputs_of(TRef r) const {
  const Node& n = node(r);
  return {n.ins.begin(), n.ins.size()};
}

Tensor Engine::force(TRef r) {
  sync(r);
  Tensor t;
  t.data = const_cast<float*>(node(r).data);
  t.shape = node(r).shape;
  return t;
}

void Engine::sync(TRef r) {
  if (materialized(r)) return;
  if (fibers_ != nullptr && fibers_->in_fiber()) {
    // Suspend this instance; the scheduler triggers the engine once every
    // live instance is blocked, then resumes us.
    while (!materialized(r)) fibers_->block_current();
    return;
  }
  trigger_execution();
  assert(materialized(r));
}

float Engine::scalar(TRef r) {
  sync(r);
  return node(r).data[0];
}

void Engine::charge_bytes(std::size_t bytes) {
  live_bytes_ += bytes;
  if (cfg_.memory_cap_bytes == 0) return;
  // Under recycling, reclaimed pages leave the footprint, so the cap is
  // checked against live arena pages; the append-only path keeps the
  // cumulative counter (nothing is ever freed there).
  const std::size_t live =
      cfg_.recycle ? static_cast<std::size_t>(arena_.active_floats() +
                                              persist_arena_.active_floats()) *
                         sizeof(float)
                   : live_bytes_;
  if (live > cfg_.memory_cap_bytes) throw OomError{};
}

void Engine::charge_launch() {
  ++stats_.kernel_launches;
  if (cfg_.launch_overhead_ns > 0) {
    stats_.launch_overhead.add(cfg_.launch_overhead_ns);
    spin_ns(cfg_.launch_overhead_ns);
  }
}

void Engine::recover_depths(const std::vector<std::uint32_t>& pending) {
  // Dynamic depth recovery: the per-trigger graph traversal that inline
  // depth computation eliminates (paper §4.1). Pending ids are recorded in
  // topological order, so one forward pass suffices.
  for (const std::uint32_t id : pending) {
    Node& n = nodes_[id];
    int depth = 0;
    for (const TRef in : n.ins) {
      const Node& src = node(in);
      if (src.data == nullptr) depth = std::max(depth, src.depth);
    }
    n.depth = depth + 1;
  }
}

void Engine::schedule_depth(std::vector<std::uint32_t>& pending) {
  std::int64_t t0 = now_ns();
  if (!cfg_.inline_depth) recover_depths(pending);

  // Phases run strictly in order; within phase 0 batches are the static
  // (depth, kernel) buckets inline depth computation makes free. Phase-
  // tagged nodes (phase > 0) are scheduled by readiness waves keyed on
  // kernel alone — that is what lets e.g. per-instance root classifiers
  // sitting at different tree depths share one launch. Builders keep
  // dependencies monotone in phase.
  //
  // All grouping state lives in engine-owned scratch reused across
  // triggers: dense-keyed buckets plus a sort of the (small) touched-key
  // list reproduce the old std::map's ascending iteration order with zero
  // steady-state heap traffic.
  const std::uint32_t K = static_cast<std::uint32_t>(registry_.num_kernels());
  for (const std::uint32_t id : pending)
    bucket_push(phase_buckets_,
                cfg_.phases ? static_cast<std::uint32_t>(nodes_[id].phase) : 0u, id);
  std::sort(phase_buckets_.keys.begin(), phase_buckets_.keys.end());

  for (const std::uint32_t phase : phase_buckets_.keys) {
    std::vector<std::uint32_t>& ids =
        phase_buckets_.lists[static_cast<std::size_t>(phase_buckets_.index[phase])];
    if (phase == 0) {
      for (const std::uint32_t id : ids)
        bucket_push(depth_buckets_,
                    static_cast<std::uint32_t>(nodes_[id].depth) * K +
                        static_cast<std::uint32_t>(nodes_[id].kernel_id),
                    id);
      // key = depth*K + kernel, so ascending keys == the old ascending
      // (depth, kernel) pair order.
      std::sort(depth_buckets_.keys.begin(), depth_buckets_.keys.end());
      if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
      std::uint32_t last_depth = 0xffffffffu;
      for (const std::uint32_t key : depth_buckets_.keys) {
        // Cortex persistent-kernel mode: batches in one depth wave share a
        // single launch.
        const std::uint32_t depth = key / K;
        const bool merge = cfg_.fuse_waves && depth == last_depth;
        last_depth = depth;
        execute_batch(static_cast<int>(key % K),
                      depth_buckets_.lists[static_cast<std::size_t>(
                          depth_buckets_.index[key])],
                      merge);
      }
      bucket_reset(depth_buckets_);
      t0 = now_ns();
      continue;
    }
    scratch_reserve(wave_todo_, ids.size());
    wave_todo_.assign(ids.begin(), ids.end());
    while (!wave_todo_.empty()) {
      wave_rest_.clear();
      for (const std::uint32_t id : wave_todo_) {
        bool ready = true;
        for (const TRef in : nodes_[id].ins)
          if (node(in).data == nullptr) {
            ready = false;
            break;
          }
        if (ready) {
          bucket_push(wave_buckets_, static_cast<std::uint32_t>(nodes_[id].kernel_id), id);
        } else {
          scratch_reserve(wave_rest_, wave_rest_.size() + 1);
          wave_rest_.push_back(id);
        }
      }
      assert(!wave_buckets_.keys.empty() && "phase-group dependency cycle");
      std::sort(wave_buckets_.keys.begin(), wave_buckets_.keys.end());
      if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
      for (const std::uint32_t kid : wave_buckets_.keys)
        execute_batch(static_cast<int>(kid),
                      wave_buckets_.lists[static_cast<std::size_t>(wave_buckets_.index[kid])],
                      false);
      bucket_reset(wave_buckets_);
      t0 = now_ns();
      wave_todo_.swap(wave_rest_);
    }
  }
  bucket_reset(phase_buckets_);
  if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
}

void Engine::schedule_agenda(std::vector<std::uint32_t>& pending) {
  // DyNet's agenda scheduler: maintain the set of ready nodes, repeatedly
  // launch the largest same-signature class. All bookkeeping is charged to
  // scheduling time — this is the dynamic analysis cost the paper's static
  // scheduling avoids. The bookkeeping itself runs over engine-owned
  // scratch (stamped per-node arrays + a consumers CSR + a sorted ready
  // vector), so even this baseline does zero steady-state heap allocation;
  // what it keeps paying is the per-trigger dependency analysis time.
  std::int64_t sched_ns = 0;
  std::int64_t t0 = now_ns();
  const std::size_t n = pending.size();

  // Pending membership + dense rank per node id. Stamps avoid O(table)
  // clears; rank indexes the per-pending arrays below.
  ++agenda_gen_;
  scratch_reserve(agenda_stamp_, nodes_.size());
  agenda_stamp_.resize(nodes_.size(), 0);
  scratch_reserve(agenda_rank_, nodes_.size());
  agenda_rank_.resize(nodes_.size());
  // Ascending-id order reproduces the old std::map's initial ready fill.
  scratch_reserve(agenda_order_, n);
  agenda_order_.assign(pending.begin(), pending.end());
  std::sort(agenda_order_.begin(), agenda_order_.end());
  for (std::size_t i = 0; i < n; ++i) {
    agenda_stamp_[agenda_order_[i]] = agenda_gen_;
    agenda_rank_[agenda_order_[i]] = static_cast<std::uint32_t>(i);
  }
  const auto is_pending = [&](std::uint32_t id) {
    return id < agenda_stamp_.size() && agenda_stamp_[id] == agenda_gen_;
  };

  // remaining[rank] = unexecuted input count; consumers as a CSR over the
  // pending set, filled in recording order (the old per-input push order).
  scratch_reserve(agenda_remaining_, n);
  agenda_remaining_.assign(n, 0);
  scratch_reserve(agenda_cons_off_, n + 1);
  agenda_cons_off_.assign(n + 1, 0);
  for (const std::uint32_t id : pending) {
    for (const TRef in : nodes_[id].ins) {
      if (node(in).data == nullptr && is_pending(in.id)) {
        ++agenda_remaining_[agenda_rank_[id]];
        ++agenda_cons_off_[agenda_rank_[in.id] + 1];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) agenda_cons_off_[i + 1] += agenda_cons_off_[i];
  const std::size_t edges = agenda_cons_off_[n];
  scratch_reserve(agenda_cons_, edges);
  agenda_cons_.resize(edges);
  scratch_reserve(agenda_cons_cur_, n);
  agenda_cons_cur_.assign(agenda_cons_off_.begin(), agenda_cons_off_.end() - 1);
  for (const std::uint32_t id : pending) {
    for (const TRef in : nodes_[id].ins) {
      if (node(in).data == nullptr && is_pending(in.id))
        agenda_cons_[agenda_cons_cur_[agenda_rank_[in.id]]++] = id;
    }
  }

  // Signature: kernel id, plus the parameter operand when the heuristic is
  // not shape-keyed (DyNet's default batches matmuls only per shared
  // parameter — MV-RNN's per-node matrices then never batch, Table 7).
  auto signature = [&](std::uint32_t id) -> std::uint64_t {
    const Node& nd = nodes_[id];
    const OpKind op = registry_.kernel(nd.kernel_id).op;
    std::uint64_t sig = static_cast<std::uint64_t>(nd.kernel_id) << 32;
    if (!cfg_.shape_keyed_batching && matmul_family(op) && nd.ins.size() >= 2)
      sig |= nd.ins[1].id;
    return sig;
  };

  // Ready classes kept sig-ascending (the old map iteration order); lists
  // come from a reusable pool.
  ready_classes_.clear();
  ready_free_.clear();
  scratch_reserve(ready_free_, ready_pool_.size());
  for (std::size_t i = ready_pool_.size(); i > 0; --i)
    ready_free_.push_back(static_cast<std::uint32_t>(i - 1));
  const auto ready_push = [&](std::uint32_t id) {
    const std::uint64_t sig = signature(id);
    auto it = std::lower_bound(
        ready_classes_.begin(), ready_classes_.end(), sig,
        [](const ReadyClass& rc, std::uint64_t s) { return rc.sig < s; });
    if (it == ready_classes_.end() || it->sig != sig) {
      std::uint32_t slot;
      if (ready_free_.empty()) {
        scratch_reserve(ready_pool_, ready_pool_.size() + 1);
        ready_pool_.emplace_back();
        slot = static_cast<std::uint32_t>(ready_pool_.size() - 1);
      } else {
        slot = ready_free_.back();
        ready_free_.pop_back();
      }
      const std::size_t pos = static_cast<std::size_t>(it - ready_classes_.begin());
      scratch_reserve(ready_classes_, ready_classes_.size() + 1);  // invalidates it
      it = ready_classes_.insert(ready_classes_.begin() + static_cast<std::ptrdiff_t>(pos),
                                 ReadyClass{sig, slot});
    }
    std::vector<std::uint32_t>& lst = ready_pool_[it->list];
    scratch_reserve(lst, lst.size() + 1);
    lst.push_back(id);
  };
  for (const std::uint32_t id : agenda_order_)
    if (agenda_remaining_[agenda_rank_[id]] == 0) ready_push(id);

  while (!ready_classes_.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready_classes_.size(); ++i)
      if (ready_pool_[ready_classes_[i].list].size() >
          ready_pool_[ready_classes_[best].list].size())
        best = i;
    const std::uint32_t slot = ready_classes_[best].list;
    ready_classes_.erase(ready_classes_.begin() + static_cast<std::ptrdiff_t>(best));
    // Swap the class out: ready_push below may grow the pool, and the
    // executing batch must not dangle into it.
    agenda_batch_.clear();
    agenda_batch_.swap(ready_pool_[slot]);
    scratch_reserve(ready_free_, ready_free_.size() + 1);
    ready_free_.push_back(slot);

    sched_ns += now_ns() - t0;
    execute_batch(nodes_[agenda_batch_[0]].kernel_id, agenda_batch_,
                  /*merge_launch=*/false);
    t0 = now_ns();

    for (const std::uint32_t id : agenda_batch_) {
      const std::uint32_t r = agenda_rank_[id];
      for (std::uint32_t e = agenda_cons_off_[r]; e < agenda_cons_off_[r + 1]; ++e) {
        const std::uint32_t c = agenda_cons_[e];
        if (--agenda_remaining_[agenda_rank_[c]] == 0) ready_push(c);
      }
    }
  }
  sched_ns += now_ns() - t0;
  if (cfg_.time_activities) stats_.scheduling.add(sched_ns);
}

// ---------------------------------------------------- schedule memoization
//
// A trigger's batch plan is a pure function of its ready set's structural
// signature, so the signature must capture everything either scheduler's
// decisions read: per node (in ready-set position order) the kernel id
// (which is post-dedupe identity, carries op+attr, and under a fleet's
// merged registry is shared across models), the variant chosen by PGO at
// record time, arity, phase tag, depth, and shape; per input whether it is
// a member of this ready set (named by POSITION, never by node id — slot
// recycling reuses ids) or an already-materialized tensor. Two agenda-
// scheduler extras keep that scheduler's id-dependent choices pure: the
// ascending-id initial fill order is appended as a position permutation,
// and first-argument keying (shape_keyed_batching off) appends the raw
// parameter id it groups by. Engine-fixed config bits need no words: the
// cache is per-engine.
//
// The key is captured INCREMENTALLY: record_op appends each op's words the
// moment the node is built, while its fields are still in cache. A trigger-
// time key construction would re-walk the whole ready set through the node
// table — a memory-latency-bound pass as expensive as the live grouping it
// is meant to replace — so the hot trigger path only hashes the sequential
// word buffer, probes, and replays. In dynamic-depth mode the captured
// depth is the inline record-time depth rather than the recovered one; the
// recovered depths are themselves a pure function of the captured
// membership structure, so equal keys still imply equal plans (the key is
// merely finer than it strictly needs to be there).

// Word tags live in bits 62–63 (meta/shape words keep them 0, see the
// field guards); the word stream is prefix-decodable — arity sits in the
// meta word — so equal signatures mean equal trigger structure.
namespace {
constexpr std::uint64_t kSigInPending = 1ull << 62;  // payload: position
constexpr std::uint64_t kSigInArgKey = 2ull << 62;   // payload: raw node id
constexpr std::uint64_t kSigInConst = 3ull << 62;    // materialized input
}  // namespace

void Engine::memo_capture_op(std::uint32_t id, const Node& nd, const Kernel& k) {
  if (!memo_sig_ok_) return;
  const std::size_t arity = nd.ins.size();
  // Generous field widths for any real model; an exotic graph falls back
  // to live scheduling for this trigger rather than risk an ambiguous key.
  if (nd.kernel_id < 0 || nd.kernel_id >= (1 << 14) || k.variant < 0 ||
      k.variant >= (1 << 8) || arity > 0xff || nd.phase >= (1 << 8) ||
      nd.depth < 0 || nd.depth >= (1 << 24)) {
    memo_sig_ok_ = false;
    return;
  }
  // node id → ready-set position, stamped (no O(table) clears). Read back
  // for input-membership words below, by memo_note_batch when the live
  // scheduler runs on a miss, and by the replay position mapping.
  if (id >= memo_pos_stamp_.size()) {
    scratch_reserve(memo_pos_stamp_, nodes_.size());
    memo_pos_stamp_.resize(memo_pos_stamp_.capacity(), 0);
    scratch_reserve(memo_pos_, nodes_.size());
    memo_pos_.resize(memo_pos_.capacity());
  }
  memo_pos_stamp_[id] = memo_gen_;
  memo_pos_[id] = static_cast<std::uint32_t>(pending_.size() - 1);

  // size() tracks capacity() on this buffer (never shrunk), so after one
  // reservation the writes below are plain indexed stores.
  if (memo_sig_n_ + arity + 3 > memo_sig_.size()) {
    scratch_reserve(memo_sig_, memo_sig_n_ + arity + 3);
    memo_sig_.resize(memo_sig_.capacity());
  }
  // Dynamic-depth mode recovers depths from the pending structure at
  // schedule time and a HIT skips that pass, leaving node depths exactly
  // as recorded — so record-time depths diverge between hit and live
  // histories there. The recovered depths the scheduler actually groups by
  // are a pure function of the membership words already in the key, so the
  // depth field is dropped from the key in that mode rather than letting
  // the divergence break key recurrence.
  const std::uint64_t depth_key =
      cfg_.scheduler == SchedulerKind::kDepth && !cfg_.inline_depth
          ? 0
          : static_cast<std::uint64_t>(nd.depth);
  std::uint64_t* w = memo_sig_.data() + memo_sig_n_;
  *w++ = (static_cast<std::uint64_t>(nd.kernel_id) << 48) |
         (static_cast<std::uint64_t>(k.variant) << 40) |
         (static_cast<std::uint64_t>(arity) << 32) |
         (static_cast<std::uint64_t>(nd.phase) << 24) |
         depth_key;
  std::uint64_t sw = static_cast<std::uint64_t>(nd.shape.ndim) << 48;
  for (int d = 0; d < nd.shape.ndim; ++d) {
    if (nd.shape.dim[d] < 0 || nd.shape.dim[d] >= (1 << 16)) {
      memo_sig_ok_ = false;
      return;
    }
    sw |= static_cast<std::uint64_t>(nd.shape.dim[d]) << (16 * d);
  }
  *w++ = sw;
  const bool arg_keyed = cfg_.scheduler == SchedulerKind::kAgenda &&
                         !cfg_.shape_keyed_batching && matmul_family(k.op);
  for (std::size_t j = 0; j < arity; ++j) {
    const TRef in = nd.ins[j];
    // Inputs recorded in this same trigger window carry the current stamp
    // and are therefore pending; anything else is already materialized.
    *w++ = in.id < memo_pos_stamp_.size() && memo_pos_stamp_[in.id] == memo_gen_
               ? (kSigInPending | memo_pos_[in.id])
               : kSigInConst;
    // First-argument keying groups AND orders classes by this raw id, so
    // the plan is only reusable when the exact id recurs.
    if (arg_keyed && j == 1) *w++ = kSigInArgKey | in.id;
  }
  memo_sig_n_ = static_cast<std::size_t>(w - memo_sig_.data());
  ++memo_sig_nodes_;
}

void Engine::memo_capture_reset() {
  memo_sig_n_ = 0;
  memo_sig_nodes_ = 0;
  memo_sig_ok_ = true;
  ++memo_gen_;
}

bool Engine::memo_try_replay(const std::vector<std::uint32_t>& pending) {
  std::int64_t t0 = now_ns();
  memo_recording_ = false;
  // The key was captured during recording. Trust it only if every pending
  // node went through memo_capture_op — a count mismatch (or a poisoned
  // window) means this trigger is unmemoizable and runs live, unrecorded.
  if (!memo_sig_ok_ || memo_sig_nodes_ != pending.size()) {
    if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
    return false;
  }
  if (cfg_.scheduler == SchedulerKind::kAgenda) {
    // The agenda's initial ready fill walks ascending node id; slot reuse
    // can reorder structurally identical triggers, so the id-order
    // permutation is appended to the key at trigger time (the only part of
    // the key that needs the assembled ready set).
    const std::size_t n = pending.size();
    scratch_reserve(memo_order_, n);
    memo_order_.assign(pending.begin(), pending.end());
    std::sort(memo_order_.begin(), memo_order_.end());
    if (memo_sig_n_ + n > memo_sig_.size()) {
      scratch_reserve(memo_sig_, memo_sig_n_ + n);
      memo_sig_.resize(memo_sig_.capacity());
    }
    std::uint64_t* w = memo_sig_.data() + memo_sig_n_;
    for (std::size_t i = 0; i < n; ++i) *w++ = kSigInPending | memo_pos_[memo_order_[i]];
    memo_sig_n_ += n;
  }
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over signature words
  for (std::size_t i = 0; i < memo_sig_n_; ++i) {
    h ^= memo_sig_[i];
    h *= 1099511628211ull;
  }
  memo_hash_ = h;
  MemoEntry* hit = nullptr;
  for (MemoEntry& e : memo_cache_) {
    if (e.hash == h && e.sig.size() == memo_sig_n_ &&
        std::memcmp(e.sig.data(), memo_sig_.data(),
                    memo_sig_n_ * sizeof(std::uint64_t)) == 0) {
      hit = &e;
      break;
    }
  }
  if (hit == nullptr) {
    ++stats_.sched_cache_misses;
    ACROBAT_TRACE(tracer_, tracer_->instant(trace::EventKind::kMemoMiss,
                                            static_cast<std::int32_t>(pending.size())));
    memo_recording_ = true;
    memo_rec_batches_.clear();
    memo_rec_members_.clear();
    if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
    return false;
  }
  ++stats_.sched_cache_hits;
  ACROBAT_TRACE(tracer_, tracer_->instant(trace::EventKind::kMemoHit,
                                          static_cast<std::int32_t>(pending.size())));
  hit->last_used = ++memo_tick_;
  // Replay: map recorded positions through the live ready set and hand each
  // batch straight to execute_batch, which re-derives flat/stacked/gather
  // dispatch from live pointers — bitwise-identical outputs and identical
  // launch counters to the live scheduler, by construction.
  for (const MemoBatch& b : hit->batches) {
    memo_replay_ids_.clear();
    scratch_reserve(memo_replay_ids_, b.count);
    for (std::uint32_t i = 0; i < b.count; ++i)
      memo_replay_ids_.push_back(pending[hit->members[b.begin + i]]);
    if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
    execute_batch(b.kernel_id, memo_replay_ids_, b.merge);
    t0 = now_ns();
  }
  if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
  return true;
}

void Engine::memo_note_batch(int kernel_id, const std::vector<std::uint32_t>& ids,
                             bool merge) {
  MemoBatch b;
  b.kernel_id = kernel_id;
  b.merge = merge;
  b.begin = static_cast<std::uint32_t>(memo_rec_members_.size());
  b.count = static_cast<std::uint32_t>(ids.size());
  for (const std::uint32_t id : ids) {
    if (id >= memo_pos_stamp_.size() || memo_pos_stamp_[id] != memo_gen_) {
      // Defensive: a batch member outside this trigger's ready set (no
      // current scheduler produces one) — abandon the recording.
      memo_recording_ = false;
      return;
    }
    scratch_reserve(memo_rec_members_, memo_rec_members_.size() + 1);
    memo_rec_members_.push_back(memo_pos_[id]);
  }
  scratch_reserve(memo_rec_batches_, memo_rec_batches_.size() + 1);
  memo_rec_batches_.push_back(b);
}

void Engine::memo_install() {
  if (!memo_recording_) return;
  memo_recording_ = false;
  const std::size_t cap =
      cfg_.sched_memo_capacity > 0 ? static_cast<std::size_t>(cfg_.sched_memo_capacity) : 1;
  MemoEntry* slot;
  if (memo_cache_.size() < cap) {
    scratch_reserve(memo_cache_, memo_cache_.size() + 1);
    memo_cache_.emplace_back();
    slot = &memo_cache_.back();
  } else {
    // LRU-ish: overwrite the least-recently-replayed entry IN PLACE — its
    // vectors keep their capacity, so steady-state churn past capacity
    // allocates nothing.
    slot = &memo_cache_[0];
    for (MemoEntry& e : memo_cache_)
      if (e.last_used < slot->last_used) slot = &e;
    ++stats_.sched_cache_evictions;
  }
  slot->hash = memo_hash_;
  slot->last_used = ++memo_tick_;
  scratch_reserve(slot->sig, memo_sig_n_);
  slot->sig.assign(memo_sig_.begin(), memo_sig_.begin() + static_cast<std::ptrdiff_t>(memo_sig_n_));
  scratch_reserve(slot->batches, memo_rec_batches_.size());
  slot->batches.assign(memo_rec_batches_.begin(), memo_rec_batches_.end());
  scratch_reserve(slot->members, memo_rec_members_.size());
  slot->members.assign(memo_rec_members_.begin(), memo_rec_members_.end());
}

void Engine::trigger_execution() {
  if (in_trigger_) return;
  if (admission_hook_ && !in_admission_) {
    // Last-call admission: requests that arrived while instances were
    // recording get their ops into this trigger's pending set, so old and
    // new requests share the same batches.
    in_admission_ = true;
    try {
      admission_hook_();
    } catch (...) {
      in_admission_ = false;
      throw;
    }
    in_admission_ = false;
  }
  if (pending_.empty()) return;
  in_trigger_ = true;
  std::int64_t trace_t0 = 0;
  ACROBAT_TRACE(tracer_, trace_t0 = tracer_->now());
  // Double-buffer the pending list: the swapped-out buffer is reused next
  // trigger, so the swap itself never allocates in steady state.
  trigger_scratch_.clear();
  trigger_scratch_.swap(pending_);
  const auto trace_ops = static_cast<std::int32_t>(trigger_scratch_.size());
  const bool memo = cfg_.sched_memo && cfg_.lazy;
  try {
    // Memoized path first: a hit replays the cached plan and skips the
    // scheduler entirely; a miss arms plan recording and falls through.
    std::int64_t sched_t0 = 0;
    ACROBAT_TRACE(tracer_, sched_t0 = tracer_->now());
    bool replayed = false;
    if (memo) replayed = memo_try_replay(trigger_scratch_);
    if (!replayed) {
      if (cfg_.scheduler == SchedulerKind::kAgenda) {
        schedule_agenda(trigger_scratch_);
      } else {
        schedule_depth(trigger_scratch_);
      }
      if (memo) {
        const std::int64_t t0 = now_ns();
        memo_install();
        if (cfg_.time_activities) stats_.scheduling.add(now_ns() - t0);
      }
    }
    ACROBAT_TRACE(tracer_, tracer_->span(trace::EventKind::kSchedule, sched_t0,
                                         trace_ops, -1, 0, replayed ? 1 : 0));
    // This trigger consumed the captured key; ops recorded from here on
    // belong to the next window (fresh stamp generation, empty key).
    if (memo) memo_capture_reset();
  } catch (...) {
    memo_abort();         // drop any half-recorded plan
    if (memo) memo_capture_reset();
    in_trigger_ = false;  // keep the engine usable after a caught OOM
    reset_sched_scratch();
    throw;
  }
  in_trigger_ = false;
  if (cfg_.recycle) {
    // One batching iteration = one epoch: requests admitted from here on
    // can never reference pages last written in this trigger or earlier
    // (their inputs are their own nodes plus the persistent region).
    ++epoch_;
    arena_.set_epoch(epoch_);
  }
  ACROBAT_TRACE(tracer_, {
    tracer_->span(trace::EventKind::kTrigger, trace_t0, trace_ops);
    const long long probes = stats_.sched_cache_hits + stats_.sched_cache_misses;
    tracer_->counter(
        static_cast<std::int32_t>(live_nodes()),
        probes > 0
            ? static_cast<std::int32_t>(1000 * stats_.sched_cache_hits / probes)
            : 0,
        static_cast<std::int64_t>(memory().arena_active_bytes));
  });
}

float* Engine::stage_gather(const std::vector<std::uint32_t>& ids, int operand,
                            std::int64_t step) {
  const std::size_t n = ids.size();
  ScopedTimer timer(stats_.gather_copy, cfg_.time_activities);
  float* staged = arena_.alloc_raw(static_cast<std::int64_t>(n) * step);
  for (std::size_t i = 0; i < n; ++i)
    std::memcpy(staged + static_cast<std::int64_t>(i) * step,
                node(nodes_[ids[i]].ins[static_cast<std::size_t>(operand)]).data,
                sizeof(float) * static_cast<std::size_t>(step));
  stats_.gather_bytes += static_cast<long long>(n) * step *
                         static_cast<long long>(sizeof(float));
  ACROBAT_TRACE(tracer_,
                tracer_->instant(trace::EventKind::kGather,
                                 static_cast<std::int32_t>(n), operand,
                                 static_cast<std::int64_t>(n) * step *
                                     static_cast<std::int64_t>(sizeof(float))));
  charge_bytes(static_cast<std::size_t>(n) * static_cast<std::size_t>(step) *
               sizeof(float));
  return staged;
}

// A batch of row-vector matmul-family ops sharing their parameter operand
// (first-argument keying, paper §4) runs as ONE stacked (n×k)·W call when
// the rows sit back-to-back in the arena — or after one explicit staging
// gather when they do not and gather fusion is off (DyNet-style). Rows are
// independent in every matmul variant, so the stacked call is bitwise-
// identical to n per-op calls.
bool Engine::try_execute_stacked(const Kernel& k, const std::vector<std::uint32_t>& ids,
                                 float* out_base) {
  const std::size_t n = ids.size();
  const Node& head = nodes_[ids[0]];
  if (head.ins.size() < 2) return false;
  const TRef w = head.ins[1];
  const std::int64_t kdim = node(head.ins[0]).shape.numel();
  for (const std::uint32_t id : ids) {
    const Node& nd = nodes_[id];
    if (nd.ins[1].id != w.id || node(nd.ins[0]).shape.ndim != 1 ||
        node(nd.ins[0]).shape.numel() != kdim)
      return false;
  }
  const float* first = node(head.ins[0]).data;
  bool contiguous = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (node(nodes_[ids[i]].ins[0]).data != first + static_cast<std::int64_t>(i) * kdim) {
      contiguous = false;
      break;
    }
  }
  const float* x_stacked = nullptr;
  if (contiguous) {
    x_stacked = first;
  } else if (!cfg_.gather_fusion) {
    x_stacked = stage_gather(ids, /*operand=*/0, kdim);
  }
  if (x_stacked == nullptr) return false;
  ScopedTimer timer(stats_.kernel_exec, cfg_.time_activities);
  const Shape xs(static_cast<int>(n), static_cast<int>(kdim));
  const Shape os(static_cast<int>(n), static_cast<int>(head.shape.numel()));
  const float* ins[2] = {x_stacked, node(w).data};
  const Shape shapes[2] = {xs, node(w).shape};
  run_op(k.op, k.variant, ins, shapes, out_base, os, k.attr);
  return true;
}

// Collapses a batch of n same-kernel elementwise/pointwise ops into ONE
// run_op over the concatenation of their operands. Legal when per-operand
// storage is contiguous across the batch — outputs always are (allocated
// back-to-back below), and so are inputs produced by a single earlier
// batch, the iterative-model common case. Broadcast/bias operands must
// instead be the SAME tensor for every member. Every covered kind applies
// a pure per-element or per-row function, so the flat call is bitwise-
// identical to n per-op calls at any variant. Scattered inputs fall back
// per-op — or are staged by an explicit gather first when gather fusion is
// off, mirroring the stacked-matmul discipline.
bool Engine::try_execute_flat(const Kernel& k, const std::vector<std::uint32_t>& ids,
                              float* out_base) {
  const std::size_t n = ids.size();
  const Node& head = nodes_[ids[0]];
  const int arity = static_cast<int>(head.ins.size());
  if (arity > 4) return false;
  const Shape& os = head.shape;
  if (os.ndim > 2) return false;

  Shape ishape[4];
  const float* base[4];
  std::int64_t step[4];
  bool contig[4], shared[4];
  for (int j = 0; j < arity; ++j) {
    const Node& src = node(head.ins[j]);
    if (src.shape.ndim > 2) return false;
    ishape[j] = src.shape;
    base[j] = src.data;
    step[j] = src.shape.numel();
    contig[j] = shared[j] = true;
  }
  // Uniform shapes + operand storage classes, one pass over the batch.
  for (std::size_t i = 1; i < n; ++i) {
    const Node& nd = nodes_[ids[i]];
    if (static_cast<int>(nd.ins.size()) != arity || nd.shape != os) return false;
    for (int j = 0; j < arity; ++j) {
      const Node& src = node(nd.ins[j]);
      if (src.shape != ishape[j]) return false;
      if (src.data != base[j] + static_cast<std::int64_t>(i) * step[j]) contig[j] = false;
      if (src.data != base[j]) shared[j] = false;
    }
  }

  // Required storage discipline per operand position. kShared positions
  // carry broadcast semantics (bias rows, shared cell state layouts) and
  // cannot be staged; kContig positions can.
  enum Need : unsigned char { kContig, kShared };
  Need need[4] = {kContig, kContig, kContig, kContig};
  switch (k.op) {
    case OpKind::kTanh:
    case OpKind::kSigmoid:
    case OpKind::kRelu:
    case OpKind::kScale:
    case OpKind::kSoftmax:
    case OpKind::kFma2:
    case OpKind::kMulTanh:
    case OpKind::kLstmNewC:
    case OpKind::kLstmNewH:
    case OpKind::kGruPoint:
      break;  // every operand concatenates
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
      // Same-shape second operand concatenates like the first; a shared
      // one-row operand flattens as a row broadcast instead. A source-level
      // broadcast (bias) must be the same row for the whole batch.
      if (ishape[1] == ishape[0]) {
        if (!contig[1] && shared[1] && ishape[0].rows() == 1) need[1] = kShared;
      } else {
        need[1] = kShared;
      }
      break;
    case OpKind::kAddBiasTanh:
    case OpKind::kAddBiasSigmoid:
      need[2] = kShared;  // the bias row
      break;
    case OpKind::kZeros:
      break;  // no operands: one flat zero fill
    default:
      return false;  // matmul family, concat, whole-batch reductions
  }

  bool stage[4] = {false, false, false, false};
  for (int j = 0; j < arity; ++j) {
    if (need[j] == kShared) {
      if (!shared[j]) return false;
    } else if (!contig[j]) {
      if (cfg_.gather_fusion) return false;  // per-op path reads scattered inputs in place
      stage[j] = true;
    }
  }

  // Concatenating n (r, c) operands yields one (n*r, c) operand; run_op's
  // row-structured kinds then see the same rows in the same order.
  const auto flat = [&](const Shape& s) {
    return Shape(static_cast<int>(n) * s.rows(), s.cols());
  };
  const float* fins[4];
  Shape fshapes[4];
  for (int j = 0; j < arity; ++j) {
    fshapes[j] = need[j] == kShared ? ishape[j] : flat(ishape[j]);
    fins[j] = stage[j] ? stage_gather(ids, j, step[j]) : base[j];
  }

  ScopedTimer timer(stats_.kernel_exec, cfg_.time_activities);
  run_op(k.op, k.variant, fins, fshapes, out_base, flat(os), k.attr);
  return true;
}

void Engine::execute_batch(int kernel_id, const std::vector<std::uint32_t>& ids,
                           bool merge_launch) {
  // A miss with memoization on records the live scheduler's plan exactly as
  // dispatched (grouping, order, merged-launch flags); memo_install caches
  // it once the whole trigger has succeeded.
  if (memo_recording_) memo_note_batch(kernel_id, ids, merge_launch);
  std::int64_t trace_t0 = 0;
  ACROBAT_TRACE(tracer_, trace_t0 = tracer_->now());
  const Kernel& k = registry_.kernel(kernel_id);
  const std::size_t n = ids.size();
  stats_.kernel_invocations[static_cast<std::size_t>(kernel_id)] +=
      static_cast<long long>(n);
  if (!merge_launch) charge_launch();

  // Allocate every output of the batch back-to-back: downstream batches
  // over these results see contiguous inputs (the iterative-model fast path
  // in ablation_gather.cpp), which is also what arms the flat/stacked
  // single-call paths below. Persistent nodes (cached constants under
  // recycling) land in the persistent arena instead — a batch is uniform
  // here because persistence is decided per kernel (zero-arity + cache).
  std::int64_t total = 0;
  for (const std::uint32_t id : ids) total += nodes_[id].shape.numel();
  const bool persist_batch = nodes_[ids[0]].persist;
#ifndef NDEBUG
  for (const std::uint32_t id : ids)
    assert(nodes_[id].persist == persist_batch && "mixed persistence in one batch");
#endif
  float* out_base = persist_batch ? persist_arena_.alloc_raw(total) : arena_.alloc_raw(total);
  charge_bytes(static_cast<std::size_t>(total) * sizeof(float));

  std::int64_t off = 0;
  outs_scratch_.clear();
  scratch_reserve(outs_scratch_, n);
  for (std::size_t i = 0; i < n; ++i) {
    outs_scratch_.push_back(out_base + off);
    off += nodes_[ids[i]].shape.numel();
  }
  const std::vector<float*>& outs = outs_scratch_;

#ifndef NDEBUG
  // Scheduler correctness invariant (DESIGN.md §5).
  for (const std::uint32_t id : ids)
    for (const TRef in : nodes_[id].ins) assert(node(in).data != nullptr && "batch ordering bug");
#endif

  // Single-call fast paths: one stacked matmul over shared-parameter rows,
  // or one flat elementwise call over the whole batch. Cortex's forced-
  // staging mode keeps paying its per-op matmul copies (only the original
  // dense stacking applies there), so the baseline's cost model is intact.
  bool fused = false;
  if (n > 1) {
    if (matmul_family(k.op)) {
      if (cfg_.stage_all_amp == 0 || k.op == OpKind::kDense) {
        fused = try_execute_stacked(k, ids, out_base);
        stats_.stacked_batches += fused ? 1 : 0;
      }
    } else if (cfg_.fuse_elementwise) {
      fused = try_execute_flat(k, ids, out_base);
      stats_.flat_batches += fused ? 1 : 0;
    }
  }

  if (!fused) {
    ScopedTimer timer(stats_.kernel_exec, cfg_.time_activities);
    for (std::size_t i = 0; i < n; ++i) {
      Node& nd = nodes_[ids[i]];
      if (k.op == OpKind::kConcat) {
        // Engine-executed (variable arity): copy inputs end to end; axis 0
        // row-stacking and flat vector concat have identical layout.
        float* dst = outs[i];
        for (const TRef in : nd.ins) {
          const Node& src = node(in);
          std::memcpy(dst, src.data, sizeof(float) * static_cast<std::size_t>(src.shape.numel()));
          dst += src.shape.numel();
        }
        continue;
      }
      const float* ins[8];
      Shape shapes[8];
      const int arity = static_cast<int>(nd.ins.size());
      for (int j = 0; j < arity; ++j) {
        const Node& src = node(nd.ins[j]);
        ins[j] = src.data;
        shapes[j] = src.shape;
      }
      if (cfg_.stage_all_amp > 0 && matmul_family(k.op)) {
        // Cortex's restrictive interface on MV-RNN: inputs must be copied
        // into the accelerator's layout (repeatedly) before every call.
        ScopedTimer copy_timer(stats_.gather_copy, cfg_.time_activities);
        for (int rep = 0; rep < cfg_.stage_all_amp; ++rep) {
          for (int j = 0; j < arity; ++j) {
            const std::int64_t numel = shapes[j].numel();
            float* staged = arena_.alloc_raw(numel);
            std::memcpy(staged, ins[j], sizeof(float) * static_cast<std::size_t>(numel));
            stats_.gather_bytes += numel * static_cast<long long>(sizeof(float));
            if (rep == cfg_.stage_all_amp - 1) ins[j] = staged;
          }
        }
      }
      run_op(k.op, k.variant, ins, shapes, outs[i], nd.shape, k.attr);
    }
  }

  for (std::size_t i = 0; i < n; ++i) nodes_[ids[i]].data = outs[i];
  ACROBAT_TRACE(tracer_, {
    const std::uint8_t path =
        fused ? (matmul_family(k.op) ? 2 : 1) : 0;
    tracer_->span(trace::EventKind::kBatch, trace_t0, kernel_id,
                  static_cast<std::int32_t>(n), k.variant,
                  static_cast<std::uint8_t>(path | (merge_launch ? 4 : 0)));
  });
  // The replay log is only meaningful while node ids are append-only;
  // recycling reuses them, and serving has no backward pass to feed.
  if (!cfg_.recycle) exec_log_.push_back(ExecBatch{kernel_id, ids});
}

}  // namespace acrobat
