// Cold half of acrobat/trace (DESIGN.md §9): ring snapshotting, slow-request
// exemplar capture, and the Chrome trace-event JSON writer. Nothing here is
// on the trigger hot path — the hot path is the inline push in trace.h.
#include "trace/trace.h"

#include <algorithm>
#include <cstdio>

namespace acrobat::trace {

const char* event_name(EventKind k) {
  switch (k) {
    case EventKind::kTrigger: return "trigger";
    case EventKind::kSchedule: return "schedule";
    case EventKind::kBatch: return "batch";
    case EventKind::kGather: return "gather";
    case EventKind::kMemoHit: return "memo_hit";
    case EventKind::kMemoMiss: return "memo_miss";
    case EventKind::kFiberSpawn: return "fiber_spawn";
    case EventKind::kFiberBlock: return "fiber_block";
    case EventKind::kFiberWake: return "fiber_wake";
    case EventKind::kFiberReap: return "fiber_reap";
    case EventKind::kAdmit: return "admit";
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kTriage: return "triage_defer";
    case EventKind::kShed: return "shed";
    case EventKind::kCounter: return "counter";
    case EventKind::kNetAccept: return "net_accept";
    case EventKind::kNetReject: return "net_reject";
    case EventKind::kNetConnDrop: return "net_conn_drop";
    case EventKind::kNetDegrade: return "net_degrade";
  }
  return "?";
}

Tracer::Tracer(int shard, const TraceConfig& cfg)
    : shard_(static_cast<std::uint16_t>(shard)) {
  std::size_t cap = 8;
  while (cap < cfg.ring_capacity) cap <<= 1;
  ring_.resize(cap);
  mask_ = cap - 1;
  exemplar_events_ = cfg.exemplar_events;
  exemplars_.resize(static_cast<std::size_t>(std::max(cfg.max_exemplars, 0)));
  for (Exemplar& e : exemplars_) e.events.reserve(exemplar_events_);
}

void Tracer::snapshot(std::vector<Event>& out) const {
  out.clear();
  const std::uint64_t start = n_ > ring_.size() ? n_ - ring_.size() : 0;
  out.reserve(static_cast<std::size_t>(n_ - start));
  for (std::uint64_t i = start; i < n_; ++i)
    out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
}

void Tracer::capture_exemplar(std::int32_t request_id, std::int64_t t0,
                              std::int64_t t1, std::int64_t latency_ns) {
  if (exemplars_.empty()) return;
  // Keep-N-worst: replace an empty slot, else the smallest retained latency
  // (only if this request is slower than it).
  Exemplar* slot = nullptr;
  for (Exemplar& e : exemplars_) {
    if (e.request_id < 0) {
      slot = &e;
      break;
    }
    if (slot == nullptr || e.latency_ns < slot->latency_ns) slot = &e;
  }
  if (slot->request_id >= 0 && slot->latency_ns >= latency_ns) return;
  slot->request_id = request_id;
  slot->t0_ns = t0;
  slot->t1_ns = t1;
  slot->latency_ns = latency_ns;
  slot->truncated = 0;
  slot->events.clear();  // capacity reserved at construction — no allocation
  const std::uint64_t start = n_ > ring_.size() ? n_ - ring_.size() : 0;
  for (std::uint64_t i = start; i < n_; ++i) {
    const Event& e = ring_[static_cast<std::size_t>(i) & mask_];
    if (e.kind == EventKind::kCounter) continue;
    if (e.t_ns + e.dur_ns < t0 || e.t_ns > t1) continue;
    if (slot->events.size() < exemplar_events_)
      slot->events.push_back(e);
    else
      ++slot->truncated;
  }
}

int MetricsRegistry::add(const char* name) {
  if (names_.size() >= static_cast<std::size_t>(kMaxMetrics)) return -1;
  names_.emplace_back(name);
  vals_.push_back(0.0);
  return static_cast<int>(names_.size()) - 1;
}

MetricsTick MetricsRegistry::tick(std::int64_t t_ns, int shard) const {
  MetricsTick t;
  t.t_ns = t_ns;
  t.shard = static_cast<std::uint16_t>(shard);
  t.n = static_cast<std::uint16_t>(vals_.size());
  for (std::size_t i = 0; i < vals_.size(); ++i) t.v[i] = vals_[i];
  return t;
}

TrackDump dump_track(const Tracer& t, int tid, std::string name) {
  TrackDump d;
  d.tid = tid;
  d.name = std::move(name);
  t.snapshot(d.events);
  d.emitted = t.emitted();
  d.dropped = t.dropped();
  for (const Exemplar& e : t.exemplars())
    if (e.request_id >= 0) d.exemplars.push_back(e);
  return d;
}

std::uint64_t TraceDump::total_events() const {
  std::uint64_t n = 0;
  for (const TrackDump& t : tracks) n += t.events.size();
  return n;
}

std::uint64_t TraceDump::count(EventKind k) const {
  std::uint64_t n = 0;
  for (const TrackDump& t : tracks)
    for (const Event& e : t.events)
      if (e.kind == k) ++n;
  return n;
}

namespace {

bool is_span(EventKind k) {
  return k == EventKind::kTrigger || k == EventKind::kSchedule ||
         k == EventKind::kBatch;
}

const char* batch_path(std::uint8_t flags) {
  switch (flags & 3) {
    case 1: return "flat";
    case 2: return "stacked";
    default: return "per-op";
  }
}

void write_args(std::FILE* f, const Event& e) {
  switch (e.kind) {
    case EventKind::kTrigger:
    case EventKind::kMemoHit:
    case EventKind::kMemoMiss:
      std::fprintf(f, "{\"ops\":%d}", e.a);
      break;
    case EventKind::kSchedule:
      std::fprintf(f, "{\"ops\":%d,\"replayed\":%s}", e.a,
                   (e.flags & 1) ? "true" : "false");
      break;
    case EventKind::kBatch:
      std::fprintf(f,
                   "{\"kernel\":%d,\"width\":%d,\"variant\":%lld,"
                   "\"path\":\"%s\",\"merged_launch\":%s}",
                   e.a, e.b, static_cast<long long>(e.c),
                   batch_path(e.flags), (e.flags & 4) ? "true" : "false");
      break;
    case EventKind::kGather:
      std::fprintf(f, "{\"width\":%d,\"operand\":%d,\"bytes\":%lld}", e.a,
                   e.b, static_cast<long long>(e.c));
      break;
    case EventKind::kFiberSpawn:
    case EventKind::kFiberBlock:
    case EventKind::kFiberReap:
      std::fprintf(f, "{\"tag\":%d}", e.a);
      break;
    case EventKind::kFiberWake:
      std::fprintf(f, "{\"woken\":%d}", e.a);
      break;
    case EventKind::kAdmit:
      std::fprintf(f, "{\"request\":%d,\"model\":%d,\"queue_delay_us\":%.3f}",
                   e.a, e.b, static_cast<double>(e.c) * 1e-3);
      break;
    case EventKind::kDispatch:
      std::fprintf(f, "{\"request\":%d,\"shard\":%d}", e.a, e.b);
      break;
    case EventKind::kTriage:
      std::fprintf(f, "{\"request\":%d,\"class\":%d}", e.a, e.b);
      break;
    case EventKind::kShed:
      std::fprintf(f, "{\"request\":%d,\"class\":%d,\"late_us\":%.3f}", e.a,
                   e.b, static_cast<double>(e.c) * 1e-3);
      break;
    case EventKind::kCounter:
      std::fprintf(f, "{}");
      break;
    case EventKind::kNetAccept:
      std::fprintf(f, "{\"conn\":%d,\"open\":%d}", e.a, e.b);
      break;
    case EventKind::kNetReject:
      std::fprintf(f, "{\"conn\":%d,\"request\":%d}", e.a, e.b);
      break;
    case EventKind::kNetConnDrop:
      std::fprintf(f, "{\"conn\":%d,\"slow_reader\":%s}", e.a,
                   e.b != 0 ? "true" : "false");
      break;
    case EventKind::kNetDegrade:
      std::fprintf(f, "{\"enter\":%s,\"occupancy\":%d}",
                   e.a != 0 ? "true" : "false", e.b);
      break;
  }
}

struct Comma {
  bool first = true;
  void next(std::FILE* f) {
    if (!first) std::fputs(",\n", f);
    first = false;
  }
};

}  // namespace

bool TraceDump::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  Comma c;
  for (const TrackDump& t : tracks) {
    c.next(f);
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"%s\"}}",
                 t.tid, t.name.c_str());
    for (const Event& e : t.events) {
      c.next(f);
      if (e.kind == EventKind::kCounter) {
        // One counter track per gauge, namespaced by shard track name.
        std::fprintf(f,
                     "{\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                     "\"name\":\"%s/live_nodes\",\"args\":{\"value\":%d}},\n",
                     t.tid, static_cast<double>(e.t_ns) * 1e-3,
                     t.name.c_str(), e.a);
        std::fprintf(f,
                     "{\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                     "\"name\":\"%s/memo_hit_permille\","
                     "\"args\":{\"value\":%d}},\n",
                     t.tid, static_cast<double>(e.t_ns) * 1e-3,
                     t.name.c_str(), e.b);
        std::fprintf(f,
                     "{\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                     "\"name\":\"%s/arena_bytes\",\"args\":{\"value\":%lld}}",
                     t.tid, static_cast<double>(e.t_ns) * 1e-3,
                     t.name.c_str(), static_cast<long long>(e.c));
        continue;
      }
      if (is_span(e.kind)) {
        std::fprintf(f,
                     "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                     "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"acrobat\","
                     "\"args\":",
                     t.tid, static_cast<double>(e.t_ns) * 1e-3,
                     static_cast<double>(e.dur_ns) * 1e-3,
                     event_name(e.kind));
      } else {
        std::fprintf(f,
                     "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                     "\"s\":\"t\",\"name\":\"%s\",\"cat\":\"acrobat\","
                     "\"args\":",
                     t.tid, static_cast<double>(e.t_ns) * 1e-3,
                     event_name(e.kind));
      }
      write_args(f, e);
      std::fputs("}", f);
    }
    // Slow-request exemplars go on a sibling track (tid offset) so their
    // [admit, completion] spans never interleave with the trigger nesting.
    for (std::size_t i = 0; i < t.exemplars.size(); ++i) {
      const Exemplar& e = t.exemplars[i];
      if (i == 0) {
        c.next(f);
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":"
                     "\"thread_name\",\"args\":{\"name\":\"%s slow\"}}",
                     1000 + t.tid, t.name.c_str());
      }
      c.next(f);
      std::fprintf(f,
                   "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                   "\"dur\":%.3f,\"name\":\"slow_request\","
                   "\"cat\":\"acrobat\",\"args\":{\"request\":%d,"
                   "\"latency_ms\":%.3f,\"events\":%zu,\"truncated\":%llu}}",
                   1000 + t.tid, static_cast<double>(e.t0_ns) * 1e-3,
                   static_cast<double>(e.t1_ns - e.t0_ns) * 1e-3,
                   e.request_id, static_cast<double>(e.latency_ns) * 1e-6,
                   e.events.size(),
                   static_cast<unsigned long long>(e.truncated));
    }
  }
  // Streamed per-shard gauge ticks become counter tracks.
  for (const MetricsTick& t : ticks) {
    for (int i = 0; i < t.n && i < kMaxMetrics; ++i) {
      const char* name = static_cast<std::size_t>(i) < metric_names.size()
                             ? metric_names[static_cast<std::size_t>(i)].c_str()
                             : "metric";
      c.next(f);
      std::fprintf(f,
                   "{\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                   "\"name\":\"shard%d/%s\",\"args\":{\"value\":%.6g}}",
                   t.shard + 1, static_cast<double>(t.t_ns) * 1e-3, t.shard,
                   name, t.v[i]);
    }
  }
  std::fputs("\n]}\n", f);
  return std::fclose(f) == 0;
}

}  // namespace acrobat::trace
