#include <cassert>

#include "baselines/cortex.h"
#include "baselines/dynet.h"
#include "baselines/eager.h"

namespace acrobat::baselines {

harness::RunResult run_eager(const harness::Prepared& p, const models::Dataset& ds,
                             const harness::RunOptions& opts) {
  assert(!p.cfg.lazy && "prepare with eager_pipeline_config()");
  EngineConfig ec;
  ec.launch_overhead_ns = opts.launch_overhead_ns;
  ec.time_activities = opts.time_activities;
  ec.lazy = false;
  ec.phases = false;
  ec.gather_fusion = false;
  ec.const_reuse = false;
  return harness::run_with_engine(p, ds, opts, ec, /*use_fibers=*/false, /*use_vm=*/false);
}

harness::RunResult run_dynet(const harness::Prepared& p, const models::Dataset& ds,
                             const DynetOptions& dopts) {
  harness::RunOptions opts;
  opts.launch_overhead_ns = dopts.launch_overhead_ns;
  opts.time_activities = dopts.time_activities;

  EngineConfig ec;
  ec.launch_overhead_ns = dopts.launch_overhead_ns;
  ec.time_activities = dopts.time_activities;
  ec.lazy = true;
  ec.inline_depth = false;  // depths recovered per trigger
  ec.phases = false;
  ec.gather_fusion = false;  // explicit staging gathers
  ec.const_reuse = dopts.improved_heuristics;
  ec.scheduler = dopts.agenda_scheduler ? SchedulerKind::kAgenda : SchedulerKind::kDepth;
  ec.shape_keyed_batching = dopts.improved_heuristics;
  ec.boxed_dfg = true;
  ec.memory_cap_bytes = dopts.memory_cap_bytes;

  const bool fibers = dopts.manual_instance_parallelism && p.compiled.program.main->may_sync;
  return harness::run_with_engine(p, ds, opts, ec, fibers, /*use_vm=*/false);
}

harness::RunResult run_cortex(const std::string& model, const harness::Prepared& p,
                              const models::Dataset& ds, const harness::RunOptions& opts) {
  assert((model == "TreeLSTM" || model == "MV-RNN" || model == "BiRNN") &&
         "Cortex supports only the recursive models (Table 8)");
  EngineConfig ec;
  ec.launch_overhead_ns = opts.launch_overhead_ns;
  ec.time_activities = opts.time_activities;
  ec.lazy = true;
  ec.inline_depth = true;
  ec.phases = true;
  ec.gather_fusion = false;   // accelerator-style explicit staging
  ec.fuse_waves = true;       // persistent kernel per readiness wave
  // MV-RNN's per-node matrices do not fit Cortex's interface: every call
  // re-copies its operands (the paper's "extra embedding/matrix copies").
  ec.stage_all_amp = model == "MV-RNN" ? 3 : 0;
  return harness::run_with_engine(p, ds, opts, ec, /*use_fibers=*/false, /*use_vm=*/false);
}

}  // namespace acrobat::baselines
