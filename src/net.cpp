#include "net/net.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sched.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <climits>
#include <cstdio>
#include <cstring>
#include <set>
#include <span>
#include <thread>
#include <unordered_map>

#include "exec/aot.h"
#include "fault/fault.h"
#include "net/frame.h"
#include "net_shard_core.h"
#include "runtime/fiber.h"
#include "serve/load.h"
#include "serve/spsc.h"
#include "support/timer.h"

namespace acrobat::net {
namespace {

using serve::SpscQueue;

// Same rationale as serve.cpp: waits are for other threads' progress.
void relax() { sched_yield(); }

// Misconfiguration aborts (serve.cpp idiom): fprintf + abort rather than an
// exception, so the fork-based death tests observe the same behavior in
// Release and Debug. Used for knobs whose silent misuse would *look* like a
// fault-tolerance bug (a liveness timeout below the ping interval reads as
// workers "dying" while healthy) — plain bad-but-safe options still fail
// start() with an error string.
[[noreturn]] void config_die(const char* what) {
  std::fprintf(stderr, "acrobat net: invalid configuration: %s\n", what);
  std::abort();
}

// Acceptor → dispatcher. Everything the dispatcher needs to fill a slot.
struct AdmissionMsg {
  int conn = -1;
  std::uint64_t conn_gen = 0;
  std::uint32_t req_id = 0;
  std::uint32_t input_index = 0;
  std::uint8_t latency_class = 0;
  bool stream = false;
  std::int64_t arrival_ns = 0;
};

// Shard/proxy/dispatcher → event loop.
struct CompMsg {
  enum Kind : std::uint8_t { kToken, kDone, kError };
  Kind kind = kDone;
  int slot = -1;
  std::uint32_t aux = 0;  // token ordinal / ErrorCode
};

bool set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  return fl >= 0 && ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) == 0;
}

}  // namespace

// ------------------------------------------------------- shared shard core

namespace detail {

void run_shard_core(const CoreConfig& cfg, CoreIo& io, serve::ShardReport& report) {
  const harness::Prepared& p = *cfg.prep;
  // Exclusive ownership, exactly as serve.cpp: this engine, its arena, and
  // the fiber pool live and die on the calling thread (or process).
  EngineConfig ec = harness::engine_config_for(p.cfg, cfg.launch_overhead_ns,
                                               /*time_activities=*/false);
  ec.recycle = cfg.recycle;
  ec.sched_memo = cfg.sched_memo;
  Engine eng(p.compiled.module.registry, ec);

  std::vector<TRef> wrefs, drefs;
  wrefs.reserve(p.weights.tensors.size());
  for (const Tensor& t : p.weights.tensors) wrefs.push_back(eng.add_concrete(t.view()));
  drefs.reserve(cfg.ds->tensors.size());
  for (const Tensor& t : cfg.ds->tensors) drefs.push_back(eng.add_concrete(t.view()));
  aot::AotExecutor exec(p.compiled.program, eng, wrefs);

  FiberScheduler fs;
  eng.set_fiber_scheduler(&fs);
  fs.set_reap_hook([&eng](int sid) { eng.retire_request(sid); });
  trace::Tracer* const tr = cfg.tracer;
  eng.set_tracer(tr);
  fs.set_tracer(tr);
  const std::unique_ptr<serve::BatchPolicy> policy = serve::make_policy(cfg.policy);

  // Sessions get fresh ids (fiber tag == engine instance id) decoupled from
  // slot ids: a slot can be recycled to a new request the moment its done
  // message finishes the round trip, which may be before this thread has
  // reaped the finished fiber — reusing the slot id as the tag would alias
  // two fibers. The map is bounded by live sessions (erased on prune);
  // references into it are stable (node-based) across inserts.
  struct Sess {
    int slot = -1;
    std::int64_t arrival_ns = 0;
    std::int64_t completion_ns = -1;
    std::int64_t first_token_ns = -1;
    std::int64_t last_token_ns = -1;
    std::uint32_t tokens = 0;
    bool cancelled = false;
    bool awaiting = false;
  };
  std::unordered_map<int, Sess> sess;
  int next_sid = 1;

  std::deque<int> arrivals;    // slot ids, arrival order
  std::deque<int> in_flight;   // session ids, admission order
  std::deque<int> step_queue;  // parked sessions wanting their next token
  std::size_t live_decode = 0;
  // Decode chunking (policy.h AdmitDecision::max_step_admit): reset once per
  // trigger window, in the admission hook — resetting per admit() call would
  // let the main loop drain every parked step between triggers and turn
  // chunked admission into a no-op.
  std::size_t step_budget = static_cast<std::size_t>(-1);

  const auto now = [&] { return now_ns() - cfg.epoch_ns; };
  const auto prune = [&] {
    while (!in_flight.empty()) {
      const auto it = sess.find(in_flight.front());
      assert(it != sess.end());
      if (it->second.completion_ns < 0) break;
      if (it->second.tokens > 0) --live_decode;
      sess.erase(it);
      in_flight.pop_front();
    }
  };
  const auto make_ctx = [&] {
    serve::PolicyCtx c;
    c.now_ns = now();
    c.queued = arrivals.size();
    c.live = in_flight.size();
    c.live_decode = live_decode;
    c.queued_steps = step_queue.size();
    if (!arrivals.empty()) c.oldest_queued_arrival_ns = io.slot(arrivals.front()).arrival_ns;
    if (!in_flight.empty()) c.oldest_live_arrival_ns = sess[in_flight.front()].arrival_ns;
    c.inbox_open = io.input_open();
    return c;
  };

  const auto admit = [&](std::size_t max_admit) {
    while (!step_queue.empty() && step_budget > 0) {
      if (step_budget != static_cast<std::size_t>(-1)) --step_budget;
      const int sid = step_queue.front();
      step_queue.pop_front();
      Sess& s = sess[sid];
      // A cancel that landed while the session was parked: mark it now so
      // the step hook's post-unpark consult stops it (it still exits through
      // the model tail — the emitted prefix stays a valid output).
      if (!s.cancelled && slot_cancelled(io.slot(s.slot))) {
        s.cancelled = true;
        ++report.cancelled;
      }
      const bool ok = fs.unpark(sid);
      assert(ok && "queued step must correspond to a parked fiber");
      (void)ok;
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kAdmit, sid, 0,
                                    static_cast<std::int64_t>(s.tokens)));
    }
    while (max_admit > 0 && !arrivals.empty()) {
      --max_admit;
      const int slot_id = arrivals.front();
      arrivals.pop_front();
      Slot& sl = io.slot(slot_id);
      const int sid = next_sid++;
      Sess& s = sess[sid];
      s.slot = slot_id;
      s.arrival_ns = sl.arrival_ns;
      sl.admit_ns = now();
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kAdmit, sid, 0,
                                    sl.admit_ns - sl.arrival_ns));
      in_flight.push_back(sid);
      eng.begin_request(sid);
      fs.spawn([&, sid, slot_id] {
        Sess& r = sess[sid];
        Slot& out_slot = io.slot(slot_id);
        InstCtx ctx;
        ctx.instance = sid;
        const Value in =
            models::remap_trefs(cfg.ds->inputs[out_slot.input_index], drefs);
        const Value out = exec.run(std::span<const Value>(&in, 1), ctx);
        std::vector<TRef> outs;
        harness::collect_output_trefs(out, outs);
        std::vector<float> flat;
        for (const TRef ref : outs) {
          const Tensor t = eng.force(ref);
          flat.insert(flat.end(), t.data, t.data + t.numel());
        }
        r.completion_ns = now();
        out_slot.output = std::move(flat);
        out_slot.tokens = r.tokens;
        out_slot.cancelled = r.cancelled;
        out_slot.first_token_ns = r.first_token_ns;
        out_slot.last_token_ns = r.last_token_ns;
        out_slot.completion_ns = r.completion_ns;
        ++report.requests;
        io.emit_done(slot_id);
      }, /*tag=*/sid);
    }
    report.max_live = std::max(report.max_live, in_flight.size());
  };

  eng.set_admission_hook([&] {
    io.poll_input(arrivals);
    const serve::AdmitDecision d = policy->decide(make_ctx());
    step_budget = d.max_step_admit;  // new trigger window
    // Degraded mode (ISSUE 10): overload upstream — tighten decode_admit so
    // this window favors prefill of already-admitted requests over token
    // streaming. Floor 1 keeps the anti-stall guarantee below intact.
    if (io.degraded && io.degraded()) {
      constexpr std::size_t npos = static_cast<std::size_t>(-1);
      step_budget = step_budget == npos ? 1 : std::max<std::size_t>(1, step_budget / 2);
    }
    admit(d.max_admit);
    fs.step_ready();
  });

  eng.set_step_hook([&](int sid) -> Engine::StepVerdict {
    Sess& r = sess[sid];
    if (r.awaiting) {
      r.awaiting = false;
      return r.cancelled ? Engine::StepVerdict::kStop : Engine::StepVerdict::kRun;
    }
    Slot& sl = io.slot(r.slot);
    const std::int64_t t = now();
    if (!r.cancelled && slot_cancelled(sl)) {
      r.cancelled = true;
      ++report.cancelled;
    }
    ++r.tokens;
    ++report.tokens;
    if (r.first_token_ns < 0) {
      r.first_token_ns = t;
      ++live_decode;
      report.ttft_ms.add(static_cast<double>(t - r.arrival_ns) * 1e-6);
    } else {
      report.inter_token_ms.add(static_cast<double>(t - r.last_token_ns) * 1e-6);
    }
    r.last_token_ns = t;
    if (sl.stream && !r.cancelled) io.emit_token(r.slot, r.tokens);
    if (r.cancelled) return Engine::StepVerdict::kStop;
    r.awaiting = true;
    step_queue.push_back(sid);
    return Engine::StepVerdict::kPark;
  });

  for (;;) {
    io.poll_input(arrivals);
    fs.reap_done();
    prune();
    if (in_flight.empty() && arrivals.empty()) {
      if (!io.input_open()) break;
      io.idle_wait();
      continue;
    }
    const serve::AdmitDecision d = policy->decide(make_ctx());
    admit(d.max_admit);
    if (fs.step_ready() > 0) continue;
    if (fs.any_blocked()) {
      if (d.hold_until_ns > now() && io.input_open()) {
        io.idle_wait();  // batch-forming pause; re-decide next iteration
        continue;
      }
      eng.trigger_execution();
      fs.wake_blocked();
    } else if (!step_queue.empty()) {
      // Every live session is parked and the window's step budget is spent:
      // no trigger is coming to reset it, so open a minimal window by hand.
      // Guarantees progress for any decode_admit >= 1.
      step_budget = std::max<std::size_t>(step_budget, 1);
    }
  }

  eng.set_step_hook(nullptr);
  eng.set_admission_hook(nullptr);
  eng.set_fiber_scheduler(nullptr);
  report.triggers = fs.idle_triggers();
  report.stacks_allocated = fs.stacks_allocated();
  report.stats = eng.stats();
  report.mem = eng.memory();
}

}  // namespace detail

// ------------------------------------------------------------- NetServer

struct NetServer::Impl {
  NetOptions opts;
  const harness::Prepared* prep = nullptr;
  const models::Dataset* ds = nullptr;
  std::string err;

  std::int64_t epoch = 0;
  int tcp_listen = -1;
  int uds_listen = -1;
  int bound_port = -1;
  std::string uds_path;
  std::size_t n_inputs = 0;

  std::unique_ptr<detail::Slot[]> slots;
  std::size_t n_slots = 0;

  // Per-shard channel: the dispatcher feeds the inbox (slot ids); the shard
  // thread (or the worker's proxy thread) feeds `out` back to the event
  // loop. The out ring is sized so that even a full slot table streaming
  // tokens rarely fills it; shard-side pushes spin briefly if it does —
  // server-internal flow control against the event loop, never against a
  // client (slow clients are absorbed per-connection, see write buffers).
  struct ShardCh {
    ShardCh(std::size_t sessions, int idx)
        : index(idx), inbox(sessions), out(sessions * 8 + 1024) {}
    int index;
    SpscQueue<int> inbox;
    SpscQueue<CompMsg> out;
    std::atomic<int> outstanding{0};
    std::atomic<bool> alive{true};
    serve::ShardReport report;
    std::unique_ptr<trace::Tracer> tracer;
    pid_t pid = -1;  // multiproc
    int fd = -1;     // multiproc: router end of the socketpair
  };
  std::vector<std::unique_ptr<ShardCh>> shards;
  std::unique_ptr<SpscQueue<AdmissionMsg>> admission;
  std::unique_ptr<SpscQueue<int>> free_ring;
  std::unique_ptr<SpscQueue<CompMsg>> disp_out;

  std::atomic<bool> draining{false};
  std::atomic<bool> admission_closed{false};
  std::atomic<bool> dispatcher_done{false};
  std::atomic<int> shards_done{0};
  std::atomic<std::uint64_t> worker_deaths{0};
  std::atomic<std::size_t> slots_peak{0};

  // Fault tolerance (ISSUE 10). `degraded` is written by the event loop and
  // read by in-proc shard cores (CoreIo::degraded) and the worker proxies
  // (which forward it as kWorkerMode frames). The respawn counters are
  // written by proxy threads, aggregated into stats at shutdown.
  std::atomic<bool> degraded{false};
  std::atomic<std::uint64_t> respawns{0};
  std::atomic<std::uint64_t> respawns_exhausted{0};
  std::size_t degrade_high = 0, degrade_low = 0;  // resolved in start()
  fault::Injector inject;
  std::string fault_spec;  // resolved spec, forwarded to workers via argv

  std::thread ev_thread, disp_thread;
  std::vector<std::thread> shard_threads;

  std::unique_ptr<trace::Tracer> net_tracer;
  NetStats stats;
  bool started = false;
  bool finished = false;

  bool fail(const std::string& what) {
    err = what;
    return false;
  }

  bool setup_listeners();
  bool spawn_worker(ShardCh& ch);
  void shard_main_inproc(ShardCh& ch);
  void proxy_main(ShardCh& ch);
  void dispatcher_loop();
  void event_loop();
};

bool NetServer::Impl::setup_listeners() {
  if (opts.port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
          ::listen(fd, 128) == 0 && set_nonblocking(fd)) {
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
        bound_port = ntohs(bound.sin_port);
        tcp_listen = fd;
      } else {
        ::close(fd);
      }
    }
  }
  if (!opts.uds_path.empty() && opts.uds_path.size() < sizeof(sockaddr_un{}.sun_path)) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0) {
      ::unlink(opts.uds_path.c_str());
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, opts.uds_path.c_str(), sizeof addr.sun_path - 1);
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
          ::listen(fd, 128) == 0 && set_nonblocking(fd)) {
        uds_listen = fd;
        uds_path = opts.uds_path;
      } else {
        ::close(fd);
      }
    }
  }
  return tcp_listen >= 0 || uds_listen >= 0;
}

bool NetServer::Impl::spawn_worker(ShardCh& ch) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);  // router end must not leak into execs

  const std::string cmd = opts.worker_cmd.empty() ? "/proc/self/exe" : opts.worker_cmd;
  std::vector<std::string> args = {
      cmd, "--shard-worker",
      "--fd", std::to_string(sv[1]),
      "--shard", std::to_string(ch.index),
      "--model", opts.model,
      "--large", opts.large ? "1" : "0",
      "--ds-batch", std::to_string(opts.ds_batch),
      "--ds-seed", std::to_string(opts.ds_seed),
      "--launch-ns", std::to_string(opts.launch_overhead_ns),
      "--recycle", opts.recycle ? "1" : "0",
      "--memo", opts.sched_memo ? "1" : "0",
      "--pol-kind", std::to_string(static_cast<int>(opts.policy.kind)),
      "--pol-max-batch", std::to_string(opts.policy.max_batch),
      "--pol-min-batch", std::to_string(opts.policy.min_batch),
      "--pol-max-admit", std::to_string(opts.policy.max_admit),
      "--pol-decode-admit", std::to_string(opts.policy.decode_admit),
      "--pol-slo-ns", std::to_string(opts.policy.slo_ns),
      "--pol-hold-ns", std::to_string(opts.policy.max_hold_ns),
  };
  if (!fault_spec.empty()) {
    args.push_back("--fault");
    args.push_back(fault_spec);
  }
  // The argv array is fully materialized *before* fork: respawns fork from a
  // proxy thread of a multithreaded process, where the child may only run
  // async-signal-safe code until execv.
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    ::execv(cmd.c_str(), argv.data());
    ::_exit(127);
  }
  ::close(sv[1]);
  ch.pid = pid;
  ch.fd = sv[0];
  return true;
}

void NetServer::Impl::shard_main_inproc(ShardCh& ch) {
  detail::CoreConfig cc;
  cc.prep = prep;
  cc.ds = ds;
  cc.policy = opts.policy;
  cc.launch_overhead_ns = opts.launch_overhead_ns;
  cc.recycle = opts.recycle;
  cc.sched_memo = opts.sched_memo;
  cc.shard_index = ch.index;
  cc.epoch_ns = epoch;
  cc.tracer = ch.tracer.get();

  detail::CoreIo io;
  io.slot = [this](int i) -> detail::Slot& { return slots[static_cast<std::size_t>(i)]; };
  io.poll_input = [&ch](std::deque<int>& q) {
    int id;
    while (ch.inbox.pop(id)) q.push_back(id);
  };
  io.input_open = [&ch] { return !(ch.inbox.closed() && ch.inbox.empty_hint()); };
  io.emit_token = [&ch](int slot_id, std::uint32_t ord) {
    const CompMsg m{CompMsg::kToken, slot_id, ord};
    while (!ch.out.push(m)) relax();
  };
  io.emit_done = [&ch](int slot_id) {
    ch.outstanding.fetch_sub(1, std::memory_order_relaxed);
    const CompMsg m{CompMsg::kDone, slot_id, 0};
    while (!ch.out.push(m)) relax();
  };
  io.idle_wait = [] { relax(); };
  io.degraded = [this] { return degraded.load(std::memory_order_relaxed); };

  detail::run_shard_core(cc, io, ch.report);
  shards_done.fetch_add(1, std::memory_order_release);
}

// Router-side thread for one worker process: forwards requests and cancels
// to the worker as frames, translates its reply frames into CompMsgs, runs
// liveness (ping/pong + EOF), and drains it on shutdown. A dead worker
// turns every in-flight and still-arriving slot into a kError completion —
// clients always get a terminal frame.
//
// Supervision (ISSUE 10): with opts.supervise, a dead worker is re-forked
// under the same recipe after a capped-exponential backoff, within a
// bounded per-shard respawn budget. The shard stays routed-around
// (alive = false) while the respawn is pending, so nothing here changes the
// failure semantics clients observe — recovery only restores capacity. One
// completed request resets the backoff exponent; a crash-looping recipe
// walks the backoff up until the budget is gone, then the shard stays dead.
void NetServer::Impl::proxy_main(ShardCh& ch) {
  FrameReader rd;
  std::vector<std::uint8_t> wire;
  std::set<int> inflight, cancel_sent;
  bool drain_sent = false, bye = false;
  std::int64_t last_ping = now_ns(), last_heard = now_ns();

  int respawns_left = opts.supervise ? opts.respawn_budget : 0;
  int consecutive_failures = 0;   // deaths since the last completed request
  std::int64_t respawn_at = -1;   // -1 = no respawn pending
  bool exhausted_counted = false;
  bool mode_sent = false;  // degraded bit last forwarded (fresh worker = normal)

  const auto push_out = [&](const CompMsg& m) {
    while (!ch.out.push(m)) relax();
  };
  const auto schedule_respawn = [&] {
    if (!opts.supervise) return;
    if (respawns_left > 0) {
      ++consecutive_failures;
      respawn_at = now_ns() + respawn_delay_ns(consecutive_failures - 1,
                                               opts.respawn_backoff_ns,
                                               opts.respawn_backoff_cap_ns);
    } else if (!exhausted_counted) {
      respawns_exhausted.fetch_add(1, std::memory_order_relaxed);
      exhausted_counted = true;
    }
  };
  const auto mark_dead = [&](bool unexpected) {
    if (!ch.alive.load(std::memory_order_relaxed)) return;
    ch.alive.store(false, std::memory_order_release);
    if (unexpected) worker_deaths.fetch_add(1, std::memory_order_relaxed);
    for (const int si : inflight) {
      ch.outstanding.fetch_sub(1, std::memory_order_relaxed);
      push_out(CompMsg{CompMsg::kError, si,
                       static_cast<std::uint32_t>(ErrorCode::kWorkerDied)});
    }
    inflight.clear();
    cancel_sent.clear();
    if (ch.fd >= 0) {
      ::close(ch.fd);
      ch.fd = -1;
    }
    // Reap immediately (SIGKILL is belt-and-braces for the wedged case —
    // EOF deaths are already zombies) so a respawn never stacks zombies.
    if (ch.pid > 0) {
      ::kill(ch.pid, SIGKILL);
      int status = 0;
      ::waitpid(ch.pid, &status, 0);
      ch.pid = -1;
    }
    if (unexpected) schedule_respawn();
  };
  const auto wsend = [&](const std::vector<std::uint8_t>& b) {
    if (ch.fd < 0) return false;
    std::size_t off = 0;
    while (off < b.size()) {
      std::size_t chunk = b.size() - off;
      ACROBAT_FAULT(chunk = inject.clamp_write(chunk));
      const ssize_t n = ::send(ch.fd, b.data() + off, chunk, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        mark_dead(true);
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  };
  const auto handle_frame = [&](const Frame& f) {
    switch (f.type) {
      case FrameType::kWorkerToken: {
        if (f.payload.size() < 8) break;
        const int si = static_cast<int>(wire::get_u32(f.payload.data()));
        push_out(CompMsg{CompMsg::kToken, si, wire::get_u32(f.payload.data() + 4)});
        break;
      }
      case FrameType::kWorkerDone: {
        DoneFields df;
        if (!parse_done(f, df)) break;
        const int si = static_cast<int>(df.id);
        detail::Slot& s = slots[static_cast<std::size_t>(si)];
        s.output.assign(df.data, df.data + df.n_floats);
        s.tokens = df.tokens;
        s.cancelled = df.cancelled;
        inflight.erase(si);
        cancel_sent.erase(si);
        ch.outstanding.fetch_sub(1, std::memory_order_relaxed);
        consecutive_failures = 0;  // served work: not a crash loop
        push_out(CompMsg{CompMsg::kDone, si, 0});
        break;
      }
      case FrameType::kWorkerBye: {
        if (f.payload.size() >= 12) {
          ch.report.requests = static_cast<int>(wire::get_u32(f.payload.data()));
          ch.report.tokens = static_cast<long long>(wire::get_u64(f.payload.data() + 4));
        }
        bye = true;
        break;
      }
      case FrameType::kWorkerPong:
      default:
        break;  // last_heard already updated on receipt
    }
  };

  for (;;) {
    bool progressed = false;
    // A pending respawn fires once its backoff elapses — unless the server
    // is already draining this shard (inbox closed and empty), in which
    // case restoring capacity is pointless and the drain wins.
    if (respawn_at >= 0) {
      if (ch.inbox.closed() && ch.inbox.empty_hint()) {
        respawn_at = -1;
      } else if (now_ns() >= respawn_at) {
        respawn_at = -1;
        --respawns_left;
        if (spawn_worker(ch)) {
          rd.reset();
          drain_sent = false;
          bye = false;
          mode_sent = false;
          last_ping = last_heard = now_ns();
          respawns.fetch_add(1, std::memory_order_relaxed);
          ch.alive.store(true, std::memory_order_release);
          progressed = true;
        } else {
          schedule_respawn();  // fork/socketpair failed: counts as a failure
        }
      }
    }
    int si;
    while (ch.inbox.pop(si)) {
      progressed = true;
      if (!ch.alive.load(std::memory_order_relaxed)) {
        ch.outstanding.fetch_sub(1, std::memory_order_relaxed);
        push_out(CompMsg{CompMsg::kError, si,
                         static_cast<std::uint32_t>(ErrorCode::kWorkerDied)});
        continue;
      }
      const detail::Slot& s = slots[static_cast<std::size_t>(si)];
      wire.clear();
      std::vector<std::uint8_t> p;
      wire::put_u32(p, static_cast<std::uint32_t>(si));
      wire::put_u32(p, s.input_index);
      wire::put_u16(p, 0);
      p.push_back(s.latency_class);
      p.push_back(0);
      encode_frame(wire, FrameType::kWorkerReq, p.data(), p.size(),
                   s.stream ? kFlagStream : 0);
      if (wsend(wire)) {
        inflight.insert(si);
        // kill_worker fault: SIGKILL our own worker right after forwarding
        // the planned request — the EOF path then runs the exact production
        // death/respawn machinery, nothing test-only.
        ACROBAT_FAULT(if (inject.fire_kill(ch.index) && ch.pid > 0)
                          ::kill(ch.pid, SIGKILL));
      } else {
        ch.outstanding.fetch_sub(1, std::memory_order_relaxed);
        push_out(CompMsg{CompMsg::kError, si,
                         static_cast<std::uint32_t>(ErrorCode::kWorkerDied)});
      }
    }

    // Degraded-mode propagation: workers cannot see the router's admission
    // queue, so the event loop's transitions travel as kWorkerMode frames
    // (idempotent; resent from scratch to a respawned worker).
    if (ch.alive.load(std::memory_order_relaxed) && !drain_sent) {
      const bool degr = degraded.load(std::memory_order_relaxed);
      if (degr != mode_sent) {
        wire.clear();
        encode_frame(wire, FrameType::kWorkerMode, nullptr, 0, 0, degr ? 1 : 0);
        if (wsend(wire)) mode_sent = degr;
      }
    }

    if (ch.alive.load(std::memory_order_relaxed)) {
      for (const int s2 : inflight) {
        if (cancel_sent.count(s2) != 0) continue;
        const detail::Slot& s = slots[static_cast<std::size_t>(s2)];
        if (!detail::slot_cancelled(s)) continue;
        wire.clear();
        encode_id_only(wire, FrameType::kWorkerCancel, static_cast<std::uint32_t>(s2));
        if (!wsend(wire)) break;
        cancel_sent.insert(s2);
      }
    }

    if (ch.alive.load(std::memory_order_relaxed) && !drain_sent && inflight.empty() &&
        ch.inbox.closed() && ch.inbox.empty_hint()) {
      wire.clear();
      encode_empty(wire, FrameType::kWorkerDrain);
      wsend(wire);
      drain_sent = true;
    }

    const std::int64_t tnow = now_ns();
    if (ch.alive.load(std::memory_order_relaxed) && !drain_sent &&
        tnow - last_ping > opts.ping_interval_ns) {
      wire.clear();
      encode_empty(wire, FrameType::kWorkerPing);
      wsend(wire);
      last_ping = tnow;
    }
    if (ch.alive.load(std::memory_order_relaxed) && !inflight.empty() &&
        tnow - last_heard > opts.liveness_timeout_ns) {
      // Unresponsive with work owed (the wedge failure mode): declare dead.
      // mark_dead delivers the SIGKILL and reaps.
      mark_dead(true);
    }

    if (ch.alive.load(std::memory_order_relaxed)) {
      pollfd pfd{ch.fd, POLLIN, 0};
      ::poll(&pfd, 1, 1);
      std::uint8_t buf[16384];
      for (;;) {
        const ssize_t n = ::recv(ch.fd, buf, sizeof buf, MSG_DONTWAIT);
        if (n > 0) {
          last_heard = now_ns();
          rd.feed(buf, static_cast<std::size_t>(n));
          Frame f;
          while (rd.next(f) == FrameReader::Status::kFrame) handle_frame(f);
          continue;
        }
        if (n == 0) {
          if (drain_sent && bye) {  // clean exit after drain handshake
            ::close(ch.fd);
            ch.fd = -1;
          } else {
            mark_dead(true);
          }
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        mark_dead(true);
        break;
      }
    } else if (!progressed) {
      relax();
    }

    const bool worker_finished =
        (drain_sent && (bye || !ch.alive.load(std::memory_order_relaxed))) ||
        (!ch.alive.load(std::memory_order_relaxed) && ch.inbox.closed() &&
         ch.inbox.empty_hint());
    if (worker_finished) {
      if (ch.fd >= 0) {
        ::close(ch.fd);
        ch.fd = -1;
      }
      // Reap the child: grace for a clean exit, then force.
      if (ch.pid > 0) {
        int status = 0;
        const std::int64_t deadline = now_ns() + 2'000'000'000;
        for (;;) {
          const pid_t r = ::waitpid(ch.pid, &status, WNOHANG);
          if (r == ch.pid || r < 0) break;
          if (now_ns() > deadline) {
            ::kill(ch.pid, SIGKILL);
            ::waitpid(ch.pid, &status, 0);
            break;
          }
          relax();
        }
        ch.pid = -1;
      }
      break;
    }
  }
  shards_done.fetch_add(1, std::memory_order_release);
}

void NetServer::Impl::dispatcher_loop() {
  std::vector<int> free_list;
  free_list.reserve(n_slots);
  for (std::size_t i = n_slots; i > 0; --i) free_list.push_back(static_cast<int>(i - 1));

  for (;;) {
    bool progressed = false;
    int sid;
    while (free_ring->pop(sid)) {
      progressed = true;
      detail::Slot& s = slots[static_cast<std::size_t>(sid)];
      s.owner.store(0, std::memory_order_relaxed);
      s.output.clear();
      s.tokens = 0;
      s.cancelled = false;
      free_list.push_back(sid);
    }
    // Backpressure cascade: no free slot → don't pop admission → the
    // admission queue fills → the event loop 429s. Nothing ever grows.
    while (!free_list.empty()) {
      AdmissionMsg m;
      if (!admission->pop(m)) break;
      progressed = true;
      const int si = free_list.back();
      free_list.pop_back();
      detail::Slot& s = slots[static_cast<std::size_t>(si)];
      s.conn = m.conn;
      s.conn_gen = m.conn_gen;
      s.req_id = m.req_id;
      s.input_index = m.input_index;
      s.latency_class = m.latency_class;
      s.stream = m.stream;
      s.arrival_ns = m.arrival_ns;
      s.admit_ns = s.completion_ns = s.first_token_ns = s.last_token_ns = -1;
      s.owner.store(detail::pack_owner(m.conn, m.conn_gen), std::memory_order_release);
      const std::size_t used = n_slots - free_list.size();
      if (used > slots_peak.load(std::memory_order_relaxed))
        slots_peak.store(used, std::memory_order_relaxed);

      int target = -1, best = INT_MAX;
      for (const auto& ch : shards) {
        if (!ch->alive.load(std::memory_order_acquire)) continue;
        const int load = ch->outstanding.load(std::memory_order_relaxed);
        if (load < best) {
          best = load;
          target = ch->index;
        }
      }
      if (target < 0) {
        const CompMsg em{CompMsg::kError, si,
                         static_cast<std::uint32_t>(ErrorCode::kUnavailable)};
        while (!disp_out->push(em)) relax();
        continue;
      }
      ShardCh& ch = *shards[static_cast<std::size_t>(target)];
      ch.outstanding.fetch_add(1, std::memory_order_relaxed);
      const bool pushed = ch.inbox.push(si);
      assert(pushed && "inbox sized for the whole slot table");
      (void)pushed;
    }
    if (admission_closed.load(std::memory_order_acquire) && admission->empty_hint() &&
        free_list.size() == n_slots && free_ring->empty_hint()) {
      for (const auto& ch : shards) ch->inbox.close();
      dispatcher_done.store(true, std::memory_order_release);
      return;
    }
    if (!progressed) relax();
  }
}

void NetServer::Impl::event_loop() {
  struct Conn {
    int fd = -1;
    std::uint64_t gen = 1;
    bool open = false;
    FrameReader rd;
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;
    int live = 0;  // requests admitted for this conn, terminal frame pending
  };
  std::vector<Conn> conns(static_cast<std::size_t>(opts.max_connections));
  int open_count = 0;
  trace::Tracer* const tr = net_tracer.get();
  bool listeners_open = true;
  std::int64_t flush_deadline = -1;
  std::vector<std::uint8_t> scratch;
  const int nshards = static_cast<int>(shards.size());

  const auto now_rel = [&] { return now_ns() - epoch; };

  const auto drop_conn = [&](int ci, bool slow) {
    Conn& c = conns[static_cast<std::size_t>(ci)];
    if (!c.open) return;
    const bool pending = c.live > 0 || c.woff < c.wbuf.size();
    ::close(c.fd);
    c.fd = -1;
    c.open = false;
    c.wbuf.clear();
    c.woff = 0;
    c.rd = FrameReader();
    if (pending) {
      ++stats.conn_drops;
      if (slow) ++stats.slow_reader_drops;
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kNetConnDrop, ci, slow ? 1 : 0));
      // Cancel every live session owned by this (conn, gen). Owner-tagged:
      // a slot recycled to a newer generation can never match.
      const std::uint64_t target = detail::pack_owner(ci, c.gen);
      for (std::size_t i = 0; i < n_slots; ++i)
        if (slots[i].owner.load(std::memory_order_acquire) == target)
          slots[i].cancel_owner.store(target, std::memory_order_release);
    }
    ++c.gen;
    c.live = 0;
    --open_count;
  };

  const auto try_flush = [&](int ci) {
    Conn& c = conns[static_cast<std::size_t>(ci)];
    while (c.woff < c.wbuf.size()) {
      const ssize_t n = ::send(c.fd, c.wbuf.data() + c.woff, c.wbuf.size() - c.woff,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        c.woff += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      drop_conn(ci, false);
      return;
    }
    if (c.woff == c.wbuf.size()) {
      c.wbuf.clear();
      c.woff = 0;
    } else if (c.woff > (1u << 16)) {
      c.wbuf.erase(c.wbuf.begin(), c.wbuf.begin() + static_cast<std::ptrdiff_t>(c.woff));
      c.woff = 0;
    }
  };

  const auto send_to = [&](int ci, const std::vector<std::uint8_t>& bytes) {
    Conn& c = conns[static_cast<std::size_t>(ci)];
    if (!c.open) return;
    c.wbuf.insert(c.wbuf.end(), bytes.begin(), bytes.end());
    const std::size_t backlog = c.wbuf.size() - c.woff;
    stats.write_buf_peak = std::max(stats.write_buf_peak, backlog);
    if (backlog > opts.write_buffer_limit) {
      // Slow reader: its socket stopped draining and the bounded buffer is
      // full. Shed the connection — the shard hot path never waits on it.
      drop_conn(ci, true);
      return;
    }
    try_flush(ci);
  };

  const auto handle_comp = [&](const CompMsg& m) {
    detail::Slot& s = slots[static_cast<std::size_t>(m.slot)];
    const int ci = s.conn;
    const bool ok = ci >= 0 && conns[static_cast<std::size_t>(ci)].open &&
                    conns[static_cast<std::size_t>(ci)].gen == s.conn_gen;
    scratch.clear();
    switch (m.kind) {
      case CompMsg::kToken:
        if (ok) {
          encode_id_pair(scratch, FrameType::kToken, s.req_id, m.aux);
          send_to(ci, scratch);
          ++stats.tokens_streamed;
        }
        return;  // non-terminal: slot stays busy
      case CompMsg::kDone:
        ++stats.completed;
        if (s.cancelled) ++stats.cancelled;
        if (ok) {
          encode_done(scratch, FrameType::kDone, s.req_id, s.tokens, s.cancelled,
                      s.output.data(), s.output.size());
          send_to(ci, scratch);
        }
        break;
      case CompMsg::kError:
        ++stats.errors;
        if (ok) {
          encode_id_pair(scratch, FrameType::kError, s.req_id, m.aux);
          send_to(ci, scratch);
        }
        break;
    }
    if (ok && conns[static_cast<std::size_t>(ci)].open)
      --conns[static_cast<std::size_t>(ci)].live;  // send_to may have dropped it
    const bool pushed = free_ring->push(m.slot);
    assert(pushed && "free ring sized for the whole slot table");
    (void)pushed;
  };

  const auto pump = [&] {
    CompMsg m;
    for (const auto& ch : shards)
      while (ch->out.pop(m)) handle_comp(m);
    while (disp_out->pop(m)) handle_comp(m);
  };

  // Degraded-mode hysteresis (ISSUE 10): enter at the high watermark, exit
  // at the low one. Evaluated by the event loop only — single writer to the
  // Impl::degraded atomic that shards and worker proxies read.
  bool degraded_mode = false;
  const std::uint16_t want_auth =
      opts.auth_token.empty() ? 0 : auth_token16(opts.auth_token);
  const auto update_degraded = [&] {
    const std::size_t occ = admission->size_hint();
    if (!degraded_mode && occ >= degrade_high) {
      degraded_mode = true;
      degraded.store(true, std::memory_order_relaxed);
      ++stats.degraded_entries;
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kNetDegrade, 1,
                                    static_cast<int>(occ)));
    } else if (degraded_mode && occ <= degrade_low) {
      degraded_mode = false;
      degraded.store(false, std::memory_order_relaxed);
      ++stats.degraded_exits;
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kNetDegrade, 0,
                                    static_cast<int>(occ)));
    }
  };

  const auto handle_request = [&](int ci, const Frame& f) {
    RequestFields rf;
    if (!parse_request(f, rf)) {
      drop_conn(ci, false);
      return;
    }
    ++stats.requests;
    scratch.clear();
    // Authn precedes everything that costs admission space: a client
    // without the shared token cannot even occupy a queue slot.
    if (want_auth != 0 && rf.auth != want_auth) {
      ++stats.auth_rejects;
      ++stats.errors;
      encode_id_pair(scratch, FrameType::kError, rf.id,
                     static_cast<std::uint32_t>(ErrorCode::kUnauthorized));
      send_to(ci, scratch);
      return;
    }
    if (rf.model_id != 0 || rf.input_index >= n_inputs) {
      ++stats.errors;
      encode_id_pair(scratch, FrameType::kError, rf.id,
                     static_cast<std::uint32_t>(ErrorCode::kBadRequest));
      send_to(ci, scratch);
      return;
    }
    // Per-connection fairness cap: one connection's admitted-but-unfinished
    // requests cannot fill the shared queue. kRetry, like any other shed —
    // the client backs off; others get the capacity.
    if (opts.max_inflight_per_conn > 0 &&
        conns[static_cast<std::size_t>(ci)].live >= opts.max_inflight_per_conn) {
      ++stats.fairness_rejects;
      encode_id_only(scratch, FrameType::kRetry, rf.id);
      send_to(ci, scratch);
      return;
    }
    // Degraded mode sheds best-effort-class work at the door: the capacity
    // that remains under overload goes to interactive/batch classes.
    if (degraded_mode &&
        rf.latency_class == static_cast<std::uint8_t>(serve::LatencyClass::kBestEffort)) {
      ++stats.degraded_sheds;
      encode_id_only(scratch, FrameType::kRetry, rf.id);
      send_to(ci, scratch);
      return;
    }
    // The backpressure contract: a full admission queue (or a draining
    // server) answers 429 immediately. size_hint from the producer side is
    // exact-or-overestimate, so the configured capacity is a hard bound.
    if (draining.load(std::memory_order_relaxed) ||
        admission->size_hint() >= opts.admission_capacity) {
      ++stats.rejected_429;
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kNetReject, ci,
                                    static_cast<int>(rf.id)));
      encode_id_only(scratch, FrameType::kRetry, rf.id);
      send_to(ci, scratch);
      return;
    }
    Conn& c = conns[static_cast<std::size_t>(ci)];
    AdmissionMsg m;
    m.conn = ci;
    m.conn_gen = c.gen;
    m.req_id = rf.id;
    m.input_index = rf.input_index;
    m.latency_class = rf.latency_class;
    m.stream = rf.stream;
    m.arrival_ns = now_rel();
    const bool pushed = admission->push(m);
    assert(pushed && "size_hint bound guarantees ring space");
    (void)pushed;
    stats.admission_peak = std::max(stats.admission_peak, admission->size_hint());
    ++c.live;
    update_degraded();  // entering on the admit edge catches the high watermark
  };

  const auto read_conn = [&](int ci) {
    Conn& c = conns[static_cast<std::size_t>(ci)];
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, MSG_DONTWAIT);
      if (n > 0) {
        c.rd.feed(buf, static_cast<std::size_t>(n));
        Frame f;
        for (;;) {
          const FrameReader::Status st = c.rd.next(f);
          if (st == FrameReader::Status::kNeedMore) break;
          if (st == FrameReader::Status::kError) {
            drop_conn(ci, false);
            return;
          }
          ++stats.frames_in;
          if (f.type == FrameType::kRequest) handle_request(ci, f);
          if (!c.open) return;  // handler may have dropped the conn
        }
        continue;
      }
      if (n == 0) {
        drop_conn(ci, false);  // graceful iff no work owed (no counters then)
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      drop_conn(ci, false);
      return;
    }
  };

  const auto do_accept = [&](int lfd, bool tcp) {
    for (;;) {
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd < 0) return;
      if (open_count >= opts.max_connections) {
        ::close(fd);  // admission for *connections*: beyond the cap, refuse
        continue;
      }
      if (!set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      if (tcp) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      }
      if (opts.sndbuf_bytes > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts.sndbuf_bytes,
                     sizeof opts.sndbuf_bytes);
      int ci = -1;
      for (std::size_t i = 0; i < conns.size(); ++i)
        if (!conns[i].open) {
          ci = static_cast<int>(i);
          break;
        }
      assert(ci >= 0);
      Conn& c = conns[static_cast<std::size_t>(ci)];
      c.fd = fd;
      c.open = true;
      c.rd = FrameReader();
      c.wbuf.clear();
      c.woff = 0;
      c.live = 0;
      ++open_count;
      ++stats.connections;
      ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kNetAccept, ci, open_count));
    }
  };

  std::vector<pollfd> pfds;
  std::vector<int> pidx;
  for (;;) {
    if (draining.load(std::memory_order_relaxed)) {
      if (listeners_open) {
        if (tcp_listen >= 0) ::close(tcp_listen);
        if (uds_listen >= 0) ::close(uds_listen);
        tcp_listen = uds_listen = -1;
        listeners_open = false;
      }
      admission_closed.store(true, std::memory_order_release);
    }
    pump();
    update_degraded();  // exit path: occupancy falls as the dispatcher drains

    if (draining.load(std::memory_order_relaxed) &&
        dispatcher_done.load(std::memory_order_acquire) &&
        shards_done.load(std::memory_order_acquire) == nshards) {
      pump();  // shards are gone: whatever is queued now is the last of it
      bool outs_empty = disp_out->empty_hint();
      for (const auto& ch : shards) outs_empty = outs_empty && ch->out.empty_hint();
      if (outs_empty) {
        bool wpending = false;
        for (const Conn& c : conns)
          if (c.open && c.woff < c.wbuf.size()) wpending = true;
        if (!wpending) break;
        if (flush_deadline < 0) flush_deadline = now_ns() + 2'000'000'000;
        if (now_ns() > flush_deadline) break;
      }
    }

    pfds.clear();
    pidx.clear();
    if (listeners_open) {
      if (tcp_listen >= 0) {
        pfds.push_back(pollfd{tcp_listen, POLLIN, 0});
        pidx.push_back(-1);
      }
      if (uds_listen >= 0) {
        pfds.push_back(pollfd{uds_listen, POLLIN, 0});
        pidx.push_back(-2);
      }
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (!conns[i].open) continue;
      short ev = POLLIN;
      if (conns[i].woff < conns[i].wbuf.size()) ev |= POLLOUT;
      pfds.push_back(pollfd{conns[i].fd, ev, 0});
      pidx.push_back(static_cast<int>(i));
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 1);
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents == 0) continue;
      const int ix = pidx[k];
      if (ix == -1) {
        do_accept(tcp_listen, true);
      } else if (ix == -2) {
        do_accept(uds_listen, false);
      } else {
        if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) read_conn(ix);
        if (conns[static_cast<std::size_t>(ix)].open &&
            (pfds[k].revents & POLLOUT) != 0)
          try_flush(ix);
      }
    }
  }

  for (std::size_t i = 0; i < conns.size(); ++i)
    if (conns[i].open) drop_conn(static_cast<int>(i), false);
  if (tcp_listen >= 0) ::close(tcp_listen);
  if (uds_listen >= 0) ::close(uds_listen);
  tcp_listen = uds_listen = -1;
}

NetServer::NetServer(const harness::Prepared* p, const models::Dataset* ds,
                     NetOptions opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = std::move(opts);
  impl_->prep = p;
  impl_->ds = ds;
}

NetServer::~NetServer() {
  if (impl_ && impl_->started) shutdown();
  if (impl_ && !impl_->uds_path.empty()) ::unlink(impl_->uds_path.c_str());
}

const std::string& NetServer::error() const { return impl_->err; }
int NetServer::port() const { return impl_->bound_port; }
const std::string& NetServer::uds_path() const { return impl_->uds_path; }

std::vector<pid_t> NetServer::worker_pids() const {
  std::vector<pid_t> pids;
  for (const auto& ch : impl_->shards)
    if (ch->pid > 0) pids.push_back(ch->pid);
  return pids;
}

bool NetServer::start() {
  Impl& im = *impl_;
  if (im.started) return im.fail("start() called twice");
  const NetOptions& o = im.opts;
  if (o.shards <= 0) return im.fail("shards must be > 0");
  if (o.admission_capacity == 0) return im.fail("admission_capacity must be > 0");
  if (o.max_sessions == 0) return im.fail("max_sessions must be > 0");
  if (o.max_connections <= 0) return im.fail("max_connections must be > 0");
  if (!o.multiprocess && (im.prep == nullptr || im.ds == nullptr))
    return im.fail("in-proc shards need a prepared model and dataset");
  // Liveness / supervision knobs are programmer configuration, not runtime
  // inputs: a nonsensical schedule aborts loudly (config_die) rather than
  // degrading into a server that flaps workers or never declares death.
  if (o.ping_interval_ns <= 0) config_die("ping_interval_ns must be > 0");
  if (o.liveness_timeout_ns <= o.ping_interval_ns)
    config_die("liveness_timeout_ns must exceed ping_interval_ns");
  if (o.respawn_budget < 0) config_die("respawn_budget must be >= 0");
  if (o.respawn_backoff_ns <= 0) config_die("respawn_backoff_ns must be > 0");
  if (o.respawn_backoff_cap_ns < o.respawn_backoff_ns)
    config_die("respawn_backoff_cap_ns must be >= respawn_backoff_ns");
  // Degradation watermarks: 0 = derive from capacity; explicit values must
  // form a proper hysteresis band inside the queue bound.
  im.degrade_high = o.degrade_high_watermark != 0
                        ? o.degrade_high_watermark
                        : std::max<std::size_t>(1, o.admission_capacity -
                                                       o.admission_capacity / 8);
  im.degrade_low = o.degrade_low_watermark != 0 ? o.degrade_low_watermark
                                                : o.admission_capacity / 4;
  if (im.degrade_high > o.admission_capacity)
    config_die("degrade_high_watermark must be <= admission_capacity");
  if (im.degrade_low >= im.degrade_high)
    config_die("degrade_low_watermark must be < degrade_high_watermark");
  // Fault plan: explicit option wins, else the environment; a spec that
  // does not parse is a hard start() failure, never a silently-inert run.
  {
    std::string spec = o.fault_spec.empty() ? fault::Injector::spec_from_env()
                                            : o.fault_spec;
    if (fault::kCompiledOut) spec.clear();
    if (!spec.empty()) {
      fault::FaultPlan plan;
      std::string perr;
      if (!fault::parse_fault_spec(spec, plan, &perr))
        return im.fail("bad fault spec: " + perr);
      im.inject.reset(plan);
      im.fault_spec = spec;
    }
  }
  if (!im.setup_listeners())
    return im.fail("no listener available (TCP bind and UDS bind both failed)");

  im.epoch = now_ns();
  im.n_inputs = im.ds != nullptr ? im.ds->inputs.size()
                                 : static_cast<std::size_t>(o.ds_batch);
  im.n_slots = o.max_sessions;
  im.slots = std::make_unique<detail::Slot[]>(im.n_slots);
  im.admission = std::make_unique<SpscQueue<AdmissionMsg>>(o.admission_capacity);
  im.free_ring = std::make_unique<SpscQueue<int>>(im.n_slots);
  im.disp_out = std::make_unique<SpscQueue<CompMsg>>(im.n_slots);
  if (o.trace.enabled) {
    im.net_tracer = std::make_unique<trace::Tracer>(0, o.trace.config);
    im.net_tracer->set_epoch(im.epoch);
  }
  for (int s = 0; s < o.shards; ++s) {
    auto ch = std::make_unique<Impl::ShardCh>(im.n_slots, s);
    if (!o.multiprocess && o.trace.enabled) {
      ch->tracer = std::make_unique<trace::Tracer>(s, o.trace.config);
      ch->tracer->set_epoch(im.epoch);
    }
    im.shards.push_back(std::move(ch));
  }

  // Workers fork before any thread exists (fork+exec from a single-threaded
  // process; nothing to corrupt). A failed spawn marks its shard dead — the
  // dispatcher routes around it, or errors if none survived.
  if (o.multiprocess) {
    for (const auto& ch : im.shards)
      if (!im.spawn_worker(*ch)) ch->alive.store(false, std::memory_order_release);
  }

  im.started = true;
  im.ev_thread = std::thread([&im] { im.event_loop(); });
  im.disp_thread = std::thread([&im] { im.dispatcher_loop(); });
  for (const auto& ch : im.shards) {
    Impl::ShardCh& c = *ch;
    if (o.multiprocess)
      im.shard_threads.emplace_back([&im, &c] { im.proxy_main(c); });
    else
      im.shard_threads.emplace_back([&im, &c] { im.shard_main_inproc(c); });
  }
  return true;
}

void NetServer::shutdown() {
  Impl& im = *impl_;
  if (!im.started || im.finished) return;
  im.draining.store(true, std::memory_order_release);
  for (std::thread& t : im.shard_threads)
    if (t.joinable()) t.join();
  if (im.disp_thread.joinable()) im.disp_thread.join();
  if (im.ev_thread.joinable()) im.ev_thread.join();
  if (!im.uds_path.empty()) ::unlink(im.uds_path.c_str());

  im.stats.worker_deaths = im.worker_deaths.load(std::memory_order_relaxed);
  im.stats.worker_respawns = im.respawns.load(std::memory_order_relaxed);
  im.stats.respawns_exhausted = im.respawns_exhausted.load(std::memory_order_relaxed);
  im.stats.fault_kills = im.inject.kills();
  im.stats.fault_short_writes = im.inject.short_writes();
  im.stats.slots_peak = im.slots_peak.load(std::memory_order_relaxed);
  for (const auto& ch : im.shards) im.stats.shards.push_back(std::move(ch->report));
  if (im.opts.trace.enabled && im.net_tracer) {
    im.stats.trace.tracks.push_back(trace::dump_track(*im.net_tracer, 0, "net"));
    for (const auto& ch : im.shards)
      if (ch->tracer)
        im.stats.trace.tracks.push_back(trace::dump_track(
            *ch->tracer, ch->index + 1, "shard" + std::to_string(ch->index)));
  }
  im.finished = true;
}

const NetStats& NetServer::stats() const { return impl_->stats; }

}  // namespace acrobat::net
