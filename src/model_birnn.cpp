// BiRNN: bidirectional GRU tagger. Iterative (no instance parallelism —
// the Fig. 5 model with the smallest speedups); the per-token classifier
// consumes forward and backward states that become available at opposite
// ends of the sequence, so it is phase-tagged (phases are what let the
// classifier launches batch, the paper's BiRNN phase example).
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

Dataset dataset(bool large, int batch, std::uint64_t seed) {
  return make_token_dataset(large, batch, seed, 12, 18);
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const GruCell fwd = make_gru(ctx, "birnn.fwd", h, h);
  const GruCell bwd = make_gru(ctx, "birnn.bwd", h, h);
  const int k_zero = make_zeros(ctx, "birnn.zero", h);
  const int k_zero_cls = make_zeros(ctx, "birnn.zero_cls", kNumClasses);
  const int k_concat = ctx.kernel("birnn.concat_fb", OpKind::kConcat, 1, {Shape(h), Shape(h)});
  const int k_acc = ctx.kernel("birnn.acc", OpKind::kAdd, 0, {Shape(kNumClasses), Shape(kNumClasses)});
  const ClassifierHead cls = make_classifier(ctx, "birnn", 2 * h);

  ir::FuncBuilder b(ctx.program, "main", 1);
  const int seq = b.arg(0);
  const int t_len = b.tuple_len(seq);
  const int h0 = b.kernel(k_zero, {});
  const int nil = b.adt(0, {});
  const int zero_i = b.cint(0);

  // Forward pass, consing states (list ends ordered last-token-first).
  const int hf = b.var(h0);
  const int lf = b.var(nil);
  const int i = b.var(zero_i);
  const int fwd_head = b.here();
  const int fwd_cond = b.lt(i, t_len);
  const int fwd_body = b.br_if(fwd_cond);
  const int fwd_exit = b.jmp();
  b.patch(fwd_body, b.here());
  {
    const int x = b.tuple_get_dyn(seq, i);
    const int nh = emit_gru(b, fwd, x, hf);
    b.assign(hf, nh);
    b.assign(lf, b.adt(1, {nh, lf}));
    b.assign(i, b.add_int_imm(i, 1));
    b.jmp_to(fwd_head);
  }
  b.patch(fwd_exit, b.here());

  // Backward pass over reversed tokens.
  const int hb = b.var(h0);
  const int lb = b.var(nil);
  const int j = b.var(b.add_int_imm(t_len, -1));
  const int bwd_head = b.here();
  const int bwd_done = b.lt(j, zero_i);
  const int bwd_exit = b.br_if(bwd_done);
  {
    const int x = b.tuple_get_dyn(seq, j);
    const int nh = emit_gru(b, bwd, x, hb);
    b.assign(hb, nh);
    b.assign(lb, b.adt(1, {nh, lb}));
    b.assign(j, b.add_int_imm(j, -1));
    b.jmp_to(bwd_head);
  }
  b.patch(bwd_exit, b.here());

  // lf holds forward states last-token-first; lb holds backward states
  // first-token-first (cons order follows each pass's direction). Reverse
  // lb so the zip below pairs both states of the *same* token.
  const int lbr = b.var(nil);
  const int pr = b.var(lb);
  const int rev_head = b.here();
  const int rev_tag = b.adt_tag(pr);
  const int rev_body = b.br_if(rev_tag);
  const int rev_exit = b.jmp();
  b.patch(rev_body, b.here());
  {
    b.assign(lbr, b.adt(1, {b.adt_field(pr, 0), lbr}));
    b.assign(pr, b.adt_field(pr, 1));
    b.jmp_to(rev_head);
  }
  b.patch(rev_exit, b.here());

  // Per-token heads: zip the two state lists; everything here is phase 1
  // (including the accumulation, which chains and therefore schedules as
  // readiness waves).
  b.set_phase(1);
  const int out = b.var(b.kernel(k_zero_cls, {}));
  const int pf = b.var(lf);
  const int pb = b.var(lbr);
  const int zip_head = b.here();
  const int zip_tag = b.adt_tag(pf);
  const int zip_body = b.br_if(zip_tag);
  const int zip_exit = b.jmp();
  b.patch(zip_body, b.here());
  {
    const int cc = b.kernel(k_concat, {b.adt_field(pf, 0), b.adt_field(pb, 0)});
    const int logits = emit_classifier(b, cls, cc);
    b.assign(out, b.kernel(k_acc, {out, logits}));
    b.assign(pf, b.adt_field(pf, 1));
    b.assign(pb, b.adt_field(pb, 1));
    b.jmp_to(zip_head);
  }
  b.patch(zip_exit, b.here());
  b.ret(out);
  b.finish();
  return b.index();
}

}  // namespace

ModelSpec make_birnn_spec() { return ModelSpec{"BiRNN", dataset, build}; }

}  // namespace acrobat::models
