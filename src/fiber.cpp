#include "runtime/fiber.h"

#include <cassert>

#include "trace/trace.h"

namespace acrobat {
namespace {

// ucontext trampolines cannot portably carry pointer arguments; each
// scheduler is single-threaded on its own thread (serve/ shards run one
// scheduler per worker thread), so the active scheduler lives in TLS.
thread_local FiberScheduler* g_active = nullptr;

}  // namespace

void FiberScheduler::trampoline() {
  // g_active and current_ are set by step_ready right before swapcontext.
  FiberScheduler* s = g_active;
  s->fibers_[static_cast<std::size_t>(s->current_)]->task();
  // Re-read both: the fiber may have suspended inside task() and resumed at
  // a different index after reap_done compacted the list. current_ always
  // names this fiber while it runs; stale locals from before a suspension
  // may not.
  s = g_active;
  s->fibers_[static_cast<std::size_t>(s->current_)]->state = Fiber::kDone;
  // Returning falls through to uc_link (the scheduler's context).
}

void FiberScheduler::spawn(FiberTask task, int tag) {
  assert(current_ < 0 && "spawn must run on the scheduler side, not inside a fiber");
  std::unique_ptr<Fiber> f;
  if (!pool_.empty()) {
    f = std::move(pool_.back());
    pool_.pop_back();
  } else {
    f = std::make_unique<Fiber>();
    f->stack.reset(new char[kStackBytes]);
    ++stacks_allocated_;
  }
  f->task = std::move(task);
  f->tag = tag;
  f->state = Fiber::kReady;
  getcontext(&f->ctx);
  f->ctx.uc_stack.ss_sp = f->stack.get();
  f->ctx.uc_stack.ss_size = kStackBytes;
  f->ctx.uc_link = &main_ctx_;
  makecontext(&f->ctx, reinterpret_cast<void (*)()>(&FiberScheduler::trampoline), 0);
  fibers_.push_back(std::move(f));
  ACROBAT_TRACE(tracer_, tracer_->instant(trace::EventKind::kFiberSpawn, tag));
}

std::size_t FiberScheduler::step_ready() {
  assert(current_ < 0 && "step_ready from inside a fiber");
  assert((g_active == nullptr || g_active == this) &&
         "nested fiber schedulers on one thread are not supported");
  FiberScheduler* const prev = g_active;
  g_active = this;
  std::size_t ran = 0;
  // fibers_ may grow during the walk only via spawn, which is barred inside
  // fibers; index-based iteration keeps the walk valid regardless.
  for (std::size_t i = 0; i < fibers_.size(); ++i) {
    if (fibers_[i]->state != Fiber::kReady) continue;
    ++ran;
    current_ = static_cast<int>(i);
    swapcontext(&main_ctx_, &fibers_[i]->ctx);
    current_ = -1;
  }
  g_active = prev;
  return ran;
}

std::size_t FiberScheduler::live() const {
  std::size_t n = 0;
  for (const auto& f : fibers_)
    if (f->state != Fiber::kDone) ++n;
  return n;
}

bool FiberScheduler::any_blocked() const {
  for (const auto& f : fibers_)
    if (f->state == Fiber::kBlocked) return true;
  return false;
}

void FiberScheduler::wake_blocked() {
  assert(current_ < 0 && "wake_blocked from inside a fiber");
  int woke = 0;
  for (auto& f : fibers_)
    if (f->state == Fiber::kBlocked) {
      f->state = Fiber::kReady;
      ++woke;
    }
  if (woke > 0) {
    ++idle_triggers_;
    ACROBAT_TRACE(tracer_, tracer_->instant(trace::EventKind::kFiberWake, woke));
  }
}

std::size_t FiberScheduler::reap_done() {
  assert(current_ < 0 && "reap_done from inside a fiber");
  std::size_t reaped = 0;
  for (std::size_t i = 0; i < fibers_.size();) {
    if (fibers_[i]->state != Fiber::kDone) {
      ++i;
      continue;
    }
    std::unique_ptr<Fiber> f = std::move(fibers_[i]);
    fibers_[i] = std::move(fibers_.back());
    fibers_.pop_back();
    f->task = nullptr;  // release captured state now, not at next reuse
    const int tag = f->tag;
    f->tag = -1;
    pool_.push_back(std::move(f));
    ++reaped;
    ACROBAT_TRACE(tracer_, tracer_->instant(trace::EventKind::kFiberReap, tag));
    // The request's stack and captures are gone; its engine-side state
    // (node span, arena epoch) is retired here, on the scheduler side.
    if (reap_hook_ && tag >= 0) reap_hook_(tag);
  }
  return reaped;
}

void FiberScheduler::run(std::vector<FiberTask> tasks,
                         const std::function<void()>& on_all_blocked) {
  assert(fibers_.empty() && "run() on a scheduler with live fibers");
  for (FiberTask& t : tasks) spawn(std::move(t));
  try {
    for (;;) {
      step_ready();
      reap_done();
      if (fibers_.empty()) break;  // all done
      if (any_blocked()) {
        // Every live instance is suspended at a sync point: wake the engine,
        // then resume them all (their futures are now materialized).
        on_all_blocked();
        wake_blocked();
      } else {
        break;  // defensive: nothing runnable, nothing blocked, not all done
      }
    }
  } catch (...) {
    // e.g. OomError out of on_all_blocked: abandon the suspended fibers
    // (their stacks are freed, not recycled — live frames were never
    // unwound) but leave the scheduler reusable.
    current_ = -1;
    fibers_.clear();
    throw;
  }
}

void FiberScheduler::block_current() {
  assert(current_ >= 0 && "block_current outside a fiber");
  const std::size_t idx = static_cast<std::size_t>(current_);
  fibers_[idx]->state = Fiber::kBlocked;
  ACROBAT_TRACE(tracer_,
                tracer_->instant(trace::EventKind::kFiberBlock, fibers_[idx]->tag));
  swapcontext(&fibers_[idx]->ctx, &main_ctx_);
}

void FiberScheduler::park_current() {
  assert(current_ >= 0 && "park_current outside a fiber");
  const std::size_t idx = static_cast<std::size_t>(current_);
  fibers_[idx]->state = Fiber::kParked;
  ACROBAT_TRACE(tracer_,
                tracer_->instant(trace::EventKind::kFiberBlock, fibers_[idx]->tag));
  swapcontext(&fibers_[idx]->ctx, &main_ctx_);
}

bool FiberScheduler::unpark(int tag) {
  assert(current_ < 0 && "unpark must run on the scheduler side, not inside a fiber");
  for (auto& f : fibers_)
    if (f->state == Fiber::kParked && f->tag == tag) {
      f->state = Fiber::kReady;
      ACROBAT_TRACE(tracer_, tracer_->instant(trace::EventKind::kFiberWake, tag));
      return true;
    }
  return false;
}

std::size_t FiberScheduler::parked() const {
  std::size_t n = 0;
  for (const auto& f : fibers_)
    if (f->state == Fiber::kParked) ++n;
  return n;
}

}  // namespace acrobat
