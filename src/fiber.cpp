#include "runtime/fiber.h"

#include <cassert>

namespace acrobat {
namespace {

// ucontext trampolines cannot portably carry pointer arguments; the
// scheduler is single-threaded, so the active instance lives here.
FiberScheduler* g_active = nullptr;

}  // namespace

void FiberScheduler::trampoline() {
  // g_active and current_ are set by run() right before swapcontext.
  FiberScheduler* s = g_active;
  Fiber& f = s->fibers_[static_cast<std::size_t>(s->current_)];
  f.task();
  f.state = Fiber::kDone;
  // Returning falls through to uc_link (the scheduler's context).
}

void FiberScheduler::run(std::vector<FiberTask> tasks,
                         const std::function<void()>& on_all_blocked) {
  assert(g_active == nullptr && "nested fiber schedulers are not supported");
  fibers_.clear();
  fibers_.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Fiber& f = fibers_[i];
    f.task = std::move(tasks[i]);
    f.stack.reset(new char[kStackBytes]);
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = kStackBytes;
    f.ctx.uc_link = &main_ctx_;
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&FiberScheduler::trampoline), 0);
  }

  g_active = this;
  try {
    for (;;) {
      bool ran_any = false;
      for (std::size_t i = 0; i < fibers_.size(); ++i) {
        if (fibers_[i].state != Fiber::kReady) continue;
        ran_any = true;
        current_ = static_cast<int>(i);
        swapcontext(&main_ctx_, &fibers_[i].ctx);
        current_ = -1;
      }
      std::size_t done = 0;
      bool any_blocked = false;
      for (const Fiber& f : fibers_) {
        if (f.state == Fiber::kBlocked) any_blocked = true;
        if (f.state == Fiber::kDone) ++done;
      }
      if (done == fibers_.size()) break;
      if (any_blocked) {
        // Every live instance is suspended at a sync point: wake the engine,
        // then resume them all (their futures are now materialized).
        ++idle_triggers_;
        on_all_blocked();
        for (Fiber& f : fibers_)
          if (f.state == Fiber::kBlocked) f.state = Fiber::kReady;
      } else if (!ran_any) {
        break;  // defensive: nothing runnable, nothing blocked, not all done
      }
    }
  } catch (...) {
    // e.g. OomError out of on_all_blocked: abandon the suspended fibers but
    // leave the scheduler reusable.
    g_active = nullptr;
    current_ = -1;
    fibers_.clear();
    throw;
  }
  g_active = nullptr;
  fibers_.clear();
}

void FiberScheduler::block_current() {
  assert(current_ >= 0 && "block_current outside a fiber");
  const int idx = current_;
  fibers_[static_cast<std::size_t>(idx)].state = Fiber::kBlocked;
  swapcontext(&fibers_[static_cast<std::size_t>(idx)].ctx, &main_ctx_);
}

}  // namespace acrobat
