#include "autosched/tuner.h"

#include <algorithm>
#include <numeric>

#include "support/rng.h"
#include "support/timer.h"
#include "tensor/tensor.h"

namespace acrobat::autosched {
namespace {

// Measures one variant on the kernel's representative shapes: min wall time
// over a few repetitions of run_op on synthetic data.
std::int64_t measure_variant(const Kernel& k, int variant) {
  TensorPool pool;
  Rng rng(0x5eedu + static_cast<unsigned>(variant));
  const float* ins[4] = {nullptr, nullptr, nullptr, nullptr};
  Shape shapes[4];
  for (int i = 0; i < k.arity; ++i) {
    shapes[i] = k.rep[i];
    ins[i] = pool.alloc_random(k.rep[i], rng, 0.5f).data;
  }
  const Shape out_shape = infer_shape(k.op, k.attr, shapes, k.arity);
  Tensor out = pool.alloc(out_shape);

  std::int64_t best = INT64_MAX;
  for (int rep = 0; rep < 5; ++rep) {
    const std::int64_t t0 = now_ns();
    for (int it = 0; it < 8; ++it)
      run_op(k.op, variant, ins, shapes, out.data, out_shape, k.attr);
    best = std::min(best, now_ns() - t0);
  }
  return best;
}

}  // namespace

void reset_schedules(KernelRegistry& registry, int variant) {
  for (std::size_t i = 0; i < registry.num_kernels(); ++i) {
    Kernel& k = registry.kernel(static_cast<int>(i));
    k.variant = std::min(variant, k.num_variants - 1);
  }
}

void tune(KernelRegistry& registry, const std::vector<double>& freq, int budget) {
  std::vector<int> order(registry.num_kernels());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double fa = static_cast<std::size_t>(a) < freq.size() ? freq[a] : 0.0;
    const double fb = static_cast<std::size_t>(b) < freq.size() ? freq[b] : 0.0;
    return fa > fb;  // stable: ties stay in registration order
  });

  int spent = 0;
  for (const int id : order) {
    Kernel& k = registry.kernel(id);
    if (k.num_variants <= 1) continue;
    if (spent >= budget) break;
    int best_variant = k.variant;
    std::int64_t best_ns = INT64_MAX;
    for (int v = 0; v < k.num_variants && spent < budget; ++v, ++spent) {
      const std::int64_t ns = measure_variant(k, v);
      if (ns < best_ns) {
        best_ns = ns;
        best_variant = v;
      }
    }
    k.variant = best_variant;
  }
}

}  // namespace acrobat::autosched
