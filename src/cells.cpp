#include "models/cells.h"

#include <cmath>

namespace acrobat::models {
namespace {

float wscale(int fan_in) { return 0.6f / std::sqrt(static_cast<float>(fan_in)); }

}  // namespace

int make_zeros(BuildCtx& ctx, const std::string& name, int n) {
  return ctx.kernel(name, OpKind::kZeros, n, {});
}

// --- tanh RNN ---------------------------------------------------------------

RnnCell make_rnn(BuildCtx& ctx, const std::string& p, int in_dim, int h) {
  RnnCell c;
  c.grain = grain_of(ctx.cfg);
  c.in_dim = in_dim;
  c.h = h;
  const Shape x(in_dim), hh(h);
  if (c.grain == Grain::kCoarse) {
    const Shape xh(in_dim + h), w(h, in_dim + h);
    c.w = ctx.add_weight(w, wscale(in_dim + h));
    c.b = ctx.add_weight(Shape(h), 0.05f);
    c.k_concat = ctx.kernel(p + ".concat", OpKind::kConcat, 1, {x, hh});
    c.k_dense = ctx.kernel(p + ".dense", OpKind::kDense, 0, {xh, w});
    c.k_bias = ctx.kernel(p + ".bias", OpKind::kAdd, 0, {hh, hh});
    c.k_tanh = ctx.kernel(p + ".tanh", OpKind::kTanh, 0, {hh});
    return c;
  }
  const Shape wx(h, in_dim), wh(h, h);
  c.wx = ctx.add_weight(wx, wscale(in_dim + h));
  c.wh = ctx.add_weight(wh, wscale(in_dim + h));
  c.b = ctx.add_weight(Shape(h), 0.05f);
  c.k_dx = ctx.kernel(p + ".dense_x", OpKind::kDense, 0, {x, wx});
  c.k_dh = ctx.kernel(p + ".dense_h", OpKind::kDense, 0, {hh, wh});
  if (c.grain == Grain::kFused) {
    c.k_abt = ctx.kernel(p + ".add_bias_tanh", OpKind::kAddBiasTanh, 0, {hh, hh, hh});
  } else {
    c.k_add = ctx.kernel(p + ".add", OpKind::kAdd, 0, {hh, hh});
    c.k_bias = ctx.kernel(p + ".bias", OpKind::kAdd, 0, {hh, hh});
    c.k_tanh = ctx.kernel(p + ".tanh", OpKind::kTanh, 0, {hh});
  }
  return c;
}

int emit_rnn(ir::FuncBuilder& b, const RnnCell& c, int x, int h) {
  if (c.grain == Grain::kCoarse) {
    const int xh = b.kernel(c.k_concat, {x, h});
    const int d = b.kernel(c.k_dense, {xh, b.weight(c.w)});
    const int db = b.kernel(c.k_bias, {d, b.weight(c.b)});
    return b.kernel(c.k_tanh, {db});
  }
  const int dx = b.kernel(c.k_dx, {x, b.weight(c.wx)});
  const int dh = b.kernel(c.k_dh, {h, b.weight(c.wh)});
  if (c.grain == Grain::kFused) return b.kernel(c.k_abt, {dx, dh, b.weight(c.b)});
  const int s = b.kernel(c.k_add, {dx, dh});
  const int sb = b.kernel(c.k_bias, {s, b.weight(c.b)});
  return b.kernel(c.k_tanh, {sb});
}

// --- GRU --------------------------------------------------------------------

GruCell make_gru(BuildCtx& ctx, const std::string& p, int in_dim, int h) {
  GruCell c;
  c.grain = grain_of(ctx.cfg);
  c.in_dim = in_dim;
  c.h = h;
  const Shape x(in_dim), hh(h);
  if (c.grain == Grain::kCoarse) {
    const Shape xh(in_dim + h), w(3 * h, in_dim + h), g3(3 * h);
    c.w3 = ctx.add_weight(w, wscale(in_dim + h));
    c.b3 = ctx.add_weight(Shape(3 * h), 0.05f);
    c.k_concat = ctx.kernel(p + ".concat", OpKind::kConcat, 1, {x, hh});
    c.k_dense3 = ctx.kernel(p + ".dense3", OpKind::kDense, 0, {xh, w});
    c.k_bias3 = ctx.kernel(p + ".bias3", OpKind::kAdd, 0, {g3, g3});
    c.k_point = ctx.kernel(p + ".gru_point", OpKind::kGruPoint, 0, {g3, hh});
    return c;
  }
  const Shape wx(h, in_dim), wh(h, h);
  c.wzx = ctx.add_weight(wx, wscale(in_dim + h));
  c.wzh = ctx.add_weight(wh, wscale(in_dim + h));
  c.bz = ctx.add_weight(Shape(h), 0.05f);
  c.wnx = ctx.add_weight(wx, wscale(in_dim + h));
  c.wnh = ctx.add_weight(wh, wscale(in_dim + h));
  c.bn = ctx.add_weight(Shape(h), 0.05f);
  c.k_zx = ctx.kernel(p + ".z_x", OpKind::kDense, 0, {x, wx});
  c.k_zh = ctx.kernel(p + ".z_h", OpKind::kDense, 0, {hh, wh});
  c.k_nx = ctx.kernel(p + ".n_x", OpKind::kDense, 0, {x, wx});
  c.k_nh = ctx.kernel(p + ".n_h", OpKind::kDense, 0, {hh, wh});
  if (c.grain == Grain::kFused) {
    c.k_abs = ctx.kernel(p + ".add_bias_sig", OpKind::kAddBiasSigmoid, 0, {hh, hh, hh});
    c.k_abt = ctx.kernel(p + ".add_bias_tanh", OpKind::kAddBiasTanh, 0, {hh, hh, hh});
  } else {
    c.k_add = ctx.kernel(p + ".add", OpKind::kAdd, 0, {hh, hh});
    c.k_sig = ctx.kernel(p + ".sigmoid", OpKind::kSigmoid, 0, {hh});
    c.k_tanh = ctx.kernel(p + ".tanh", OpKind::kTanh, 0, {hh});
  }
  c.k_sub = ctx.kernel(p + ".sub", OpKind::kSub, 0, {hh, hh});
  c.k_mul = ctx.kernel(p + ".mul", OpKind::kMul, 0, {hh, hh});
  if (c.k_add < 0) c.k_add = ctx.kernel(p + ".add", OpKind::kAdd, 0, {hh, hh});
  return c;
}

int emit_gru(ir::FuncBuilder& b, const GruCell& c, int x, int h) {
  if (c.grain == Grain::kCoarse) {
    const int xh = b.kernel(c.k_concat, {x, h});
    const int g = b.kernel(c.k_dense3, {xh, b.weight(c.w3)});
    const int gb = b.kernel(c.k_bias3, {g, b.weight(c.b3)});
    return b.kernel(c.k_point, {gb, h});
  }
  const int zx = b.kernel(c.k_zx, {x, b.weight(c.wzx)});
  const int zh = b.kernel(c.k_zh, {h, b.weight(c.wzh)});
  const int nx = b.kernel(c.k_nx, {x, b.weight(c.wnx)});
  const int nh = b.kernel(c.k_nh, {h, b.weight(c.wnh)});
  int z, n;
  if (c.grain == Grain::kFused) {
    z = b.kernel(c.k_abs, {zx, zh, b.weight(c.bz)});
    n = b.kernel(c.k_abt, {nx, nh, b.weight(c.bn)});
  } else {
    const int za = b.kernel(c.k_add, {zx, zh});
    const int zb = b.kernel(c.k_add, {za, b.weight(c.bz)});
    z = b.kernel(c.k_sig, {zb});
    const int na = b.kernel(c.k_add, {nx, nh});
    const int nb = b.kernel(c.k_add, {na, b.weight(c.bn)});
    n = b.kernel(c.k_tanh, {nb});
  }
  // h' = h + z*(n - h)
  const int d = b.kernel(c.k_sub, {n, h});
  const int zd = b.kernel(c.k_mul, {z, d});
  return b.kernel(c.k_add, {h, zd});
}

// --- LSTM -------------------------------------------------------------------

LstmCell make_lstm(BuildCtx& ctx, const std::string& p, int in_dim, int h) {
  LstmCell c;
  c.grain = grain_of(ctx.cfg);
  c.in_dim = in_dim;
  c.h = h;
  const Shape x(in_dim), hh(h);
  if (c.grain == Grain::kCoarse) {
    const Shape xh(in_dim + h), w(4 * h, in_dim + h), g4(4 * h);
    c.w4 = ctx.add_weight(w, wscale(in_dim + h));
    c.b4 = ctx.add_weight(Shape(4 * h), 0.05f);
    c.k_concat = ctx.kernel(p + ".concat", OpKind::kConcat, 1, {x, hh});
    c.k_dense4 = ctx.kernel(p + ".dense4", OpKind::kDense, 0, {xh, w});
    c.k_bias4 = ctx.kernel(p + ".bias4", OpKind::kAdd, 0, {g4, g4});
    c.k_newc = ctx.kernel(p + ".new_c", OpKind::kLstmNewC, 0, {g4, hh});
    c.k_newh = ctx.kernel(p + ".new_h", OpKind::kLstmNewH, 0, {g4, hh});
    return c;
  }
  static const char* gate[4] = {"i", "f", "g", "o"};
  const Shape wx(h, in_dim), wh(h, h);
  for (int gi = 0; gi < 4; ++gi) {
    c.wgx[gi] = ctx.add_weight(wx, wscale(in_dim + h));
    c.wgh[gi] = ctx.add_weight(wh, wscale(in_dim + h));
    c.bg[gi] = ctx.add_weight(Shape(h), gi == 1 ? 1.0f : 0.05f);  // forget bias up
    c.k_gx[gi] = ctx.kernel(p + "." + gate[gi] + "_x", OpKind::kDense, 0, {x, wx});
    c.k_gh[gi] = ctx.kernel(p + "." + gate[gi] + "_h", OpKind::kDense, 0, {hh, wh});
  }
  if (c.grain == Grain::kFused) {
    for (int gi = 0; gi < 4; ++gi) {
      const OpKind act = gi == 2 ? OpKind::kAddBiasTanh : OpKind::kAddBiasSigmoid;
      c.k_fuse[gi] = ctx.kernel(p + "." + gate[gi] + "_act", act, 0, {hh, hh, hh});
    }
    c.k_fma2 = ctx.kernel(p + ".fma2", OpKind::kFma2, 0, {hh, hh, hh, hh});
    c.k_multanh = ctx.kernel(p + ".mul_tanh", OpKind::kMulTanh, 0, {hh, hh});
    return c;
  }
  c.k_add = ctx.kernel(p + ".add", OpKind::kAdd, 0, {hh, hh});
  c.k_sig = ctx.kernel(p + ".sigmoid", OpKind::kSigmoid, 0, {hh});
  c.k_tanh = ctx.kernel(p + ".tanh", OpKind::kTanh, 0, {hh});
  c.k_mul = ctx.kernel(p + ".mul", OpKind::kMul, 0, {hh, hh});
  return c;
}

int emit_lstm(ir::FuncBuilder& b, const LstmCell& c, int x, int h, int cc, int* c_out) {
  if (c.grain == Grain::kCoarse) {
    const int xh = b.kernel(c.k_concat, {x, h});
    const int g = b.kernel(c.k_dense4, {xh, b.weight(c.w4)});
    const int gb = b.kernel(c.k_bias4, {g, b.weight(c.b4)});
    const int nc = b.kernel(c.k_newc, {gb, cc});
    *c_out = nc;
    return b.kernel(c.k_newh, {gb, nc});
  }
  int act[4];
  for (int gi = 0; gi < 4; ++gi) {
    const int gx = b.kernel(c.k_gx[gi], {x, b.weight(c.wgx[gi])});
    const int gh = b.kernel(c.k_gh[gi], {h, b.weight(c.wgh[gi])});
    if (c.grain == Grain::kFused) {
      act[gi] = b.kernel(c.k_fuse[gi], {gx, gh, b.weight(c.bg[gi])});
    } else {
      const int s = b.kernel(c.k_add, {gx, gh});
      const int sb = b.kernel(c.k_add, {s, b.weight(c.bg[gi])});
      act[gi] = b.kernel(gi == 2 ? c.k_tanh : c.k_sig, {sb});
    }
  }
  int nc, nh;
  if (c.grain == Grain::kFused) {
    nc = b.kernel(c.k_fma2, {act[1], cc, act[0], act[2]});
    nh = b.kernel(c.k_multanh, {act[3], nc});
  } else {
    const int fc = b.kernel(c.k_mul, {act[1], cc});
    const int ig = b.kernel(c.k_mul, {act[0], act[2]});
    nc = b.kernel(c.k_add, {fc, ig});
    const int tc = b.kernel(c.k_tanh, {nc});
    nh = b.kernel(c.k_mul, {act[3], tc});
  }
  *c_out = nc;
  return nh;
}

// --- classifier -------------------------------------------------------------

ClassifierHead make_classifier(BuildCtx& ctx, const std::string& p, int in_dim) {
  ClassifierHead c;
  const Shape x(in_dim), w(kNumClasses, in_dim), l(kNumClasses);
  c.w = ctx.add_weight(w, wscale(in_dim));
  c.b = ctx.add_weight(Shape(kNumClasses), 0.05f);
  c.k_dense = ctx.kernel(p + ".cls_dense", OpKind::kDense, 0, {x, w});
  c.k_bias = ctx.kernel(p + ".cls_bias", OpKind::kAdd, 0, {l, l});
  c.k_softmax = ctx.kernel(p + ".cls_softmax", OpKind::kSoftmax, 0, {l});
  return c;
}

int emit_classifier(ir::FuncBuilder& b, const ClassifierHead& c, int x) {
  const int d = b.kernel(c.k_dense, {x, b.weight(c.w)});
  const int db = b.kernel(c.k_bias, {d, b.weight(c.b)});
  return b.kernel(c.k_softmax, {db});
}

}  // namespace acrobat::models
