// `--shard-worker` process loop (multi-process fleet, DESIGN.md §10). One
// worker = one shard = one engine, shared-nothing: the process rebuilds the
// prepared model and dataset from the recipe on its command line (both are
// deterministic functions of the recipe, which is what makes wire parity
// hold across the process boundary), then runs the same run_shard_core loop
// as an in-process shard thread, with the router socketpair as its IO.
#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>

#include "fault/fault.h"
#include "models/models.h"
#include "net/frame.h"
#include "net/net.h"
#include "net_shard_core.h"
#include "support/timer.h"

namespace acrobat::net {
namespace {

// Worker-side fault injector (DESIGN.md §11): one per process, installed
// from --fault before the loop starts. Inert (empty plan) by default.
fault::Injector g_inject;

void stall_ns(std::int64_t ns) {
  timespec ts{static_cast<time_t>(ns / 1'000'000'000),
              static_cast<long>(ns % 1'000'000'000)};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

struct WorkerArgs {
  int fd = -1;
  int shard = 0;
  std::string model = "Decoder";
  bool large = false;
  int ds_batch = 24;
  std::uint64_t ds_seed = 0;
  std::int64_t launch_ns = 0;
  bool recycle = true;
  bool sched_memo = true;
  std::string fault;
  serve::PolicyConfig policy;
};

bool parse_args(int argc, char** argv, WorkerArgs& a) {
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string k = argv[i];
    const char* v = argv[i + 1];
    if (k == "--fd") a.fd = std::atoi(v);
    else if (k == "--shard") a.shard = std::atoi(v);
    else if (k == "--model") a.model = v;
    else if (k == "--large") a.large = std::atoi(v) != 0;
    else if (k == "--ds-batch") a.ds_batch = std::atoi(v);
    else if (k == "--ds-seed") a.ds_seed = std::strtoull(v, nullptr, 10);
    else if (k == "--launch-ns") a.launch_ns = std::atoll(v);
    else if (k == "--recycle") a.recycle = std::atoi(v) != 0;
    else if (k == "--memo") a.sched_memo = std::atoi(v) != 0;
    else if (k == "--fault") a.fault = v;
    else if (k == "--pol-kind") a.policy.kind = static_cast<serve::PolicyKind>(std::atoi(v));
    else if (k == "--pol-max-batch") a.policy.max_batch = static_cast<std::size_t>(std::atoll(v));
    else if (k == "--pol-min-batch") a.policy.min_batch = static_cast<std::size_t>(std::atoll(v));
    else if (k == "--pol-max-admit") a.policy.max_admit = static_cast<std::size_t>(std::atoll(v));
    else if (k == "--pol-decode-admit") a.policy.decode_admit = static_cast<std::size_t>(std::atoll(v));
    else if (k == "--pol-slo-ns") a.policy.slo_ns = std::atoll(v);
    else if (k == "--pol-hold-ns") a.policy.max_hold_ns = std::atoll(v);
    else return false;
  }
  return a.fd >= 0;
}

bool write_all(int fd, const std::vector<std::uint8_t>& b) {
  std::size_t off = 0;
  while (off < b.size()) {
    std::size_t chunk = b.size() - off;
    // Injected short writes fragment frames without losing bytes: the loop
    // resumes at off + n, so FrameReader reassembly is what gets exercised.
    ACROBAT_FAULT(chunk = g_inject.clamp_write(chunk));
    const ssize_t n = ::send(fd, b.data() + off, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int shard_worker_main(int argc, char** argv) {
  WorkerArgs a;
  if (!parse_args(argc, argv, a)) {
    std::fprintf(stderr, "acrobat net worker: bad arguments\n");
    return 2;
  }

  if (!a.fault.empty()) {
    fault::FaultPlan plan;
    std::string perr;
    if (!fault::parse_fault_spec(a.fault, plan, &perr)) {
      std::fprintf(stderr, "acrobat net worker: bad fault spec: %s\n", perr.c_str());
      return 2;
    }
    g_inject.reset(plan);
  }

  const models::ModelSpec& spec = models::model_by_name(a.model);
  const harness::Prepared prep =
      harness::prepare(spec, a.large, passes::PipelineConfig{});
  const models::Dataset ds = spec.build_dataset(a.large, a.ds_batch, a.ds_seed);

  // Slot table, keyed by the router's slot ids. A deque never relocates
  // elements on growth, which the atomics in Slot require; the router's
  // table is bounded (max_sessions), so this is too.
  std::deque<detail::Slot> slots;
  bool drain = false, eof = false, degraded = false;
  FrameReader rd;
  std::vector<std::uint8_t> wire;
  int requests_served = 0;
  long long tokens_served = 0;
  const std::int64_t epoch = now_ns();
  const int fd = a.fd;

  detail::CoreConfig cc;
  cc.prep = &prep;
  cc.ds = &ds;
  cc.policy = a.policy;
  cc.launch_overhead_ns = a.launch_ns;
  cc.recycle = a.recycle;
  cc.sched_memo = a.sched_memo;
  cc.shard_index = a.shard;
  cc.epoch_ns = epoch;

  detail::CoreIo io;
  io.slot = [&slots](int i) -> detail::Slot& {
    return slots[static_cast<std::size_t>(i)];
  };
  io.poll_input = [&](std::deque<int>& q) {
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
      if (n > 0) {
        rd.feed(buf, static_cast<std::size_t>(n));
        Frame f;
        while (rd.next(f) == FrameReader::Status::kFrame) {
          switch (f.type) {
            case FrameType::kWorkerReq: {
              RequestFields rf;
              if (!parse_request(f, rf)) break;
              // crash_worker: die before replying — the router sees EOF and
              // fails this request's slot with kError(kWorkerDied).
              ACROBAT_FAULT(if (g_inject.fire_crash()) ::raise(SIGKILL));
              // wedge_shard: stop reading the socket mid-stream; pings go
              // unanswered, which is the liveness timeout's failure mode.
              ACROBAT_FAULT({
                const std::int64_t wns = g_inject.fire_wedge_ns();
                if (wns > 0) stall_ns(wns);
              });
              const std::size_t si = rf.id;
              while (slots.size() <= si) slots.emplace_back();
              detail::Slot& s = slots[si];
              // Router guarantees exclusive reuse: this slot id has no live
              // session here once a new kWorkerReq names it.
              s.cancel_owner.store(0, std::memory_order_relaxed);
              s.conn = 0;
              s.conn_gen = 1;
              s.req_id = rf.id;
              s.input_index = rf.input_index;
              s.latency_class = rf.latency_class;
              s.stream = rf.stream;
              s.arrival_ns = now_ns() - epoch;
              s.output.clear();
              s.tokens = 0;
              s.cancelled = false;
              s.admit_ns = s.completion_ns = s.first_token_ns = s.last_token_ns = -1;
              q.push_back(static_cast<int>(si));
              break;
            }
            case FrameType::kWorkerCancel: {
              if (f.payload.size() < 4) break;
              const std::size_t si = wire::get_u32(f.payload.data());
              if (si < slots.size())
                slots[si].cancel_owner.store(detail::pack_owner(0, 1),
                                             std::memory_order_release);
              break;
            }
            case FrameType::kWorkerPing:
              wire.clear();
              encode_empty(wire, FrameType::kWorkerPong);
              if (!write_all(fd, wire)) eof = true;
              break;
            case FrameType::kWorkerDrain:
              drain = true;
              break;
            case FrameType::kWorkerMode:
              degraded = f.aux != 0;
              break;
            default:
              break;
          }
        }
        continue;
      }
      if (n == 0) {
        eof = true;  // router gone: finish in-flight work and exit
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      eof = true;
      return;
    }
  };
  io.input_open = [&] { return !drain && !eof; };
  io.degraded = [&] { return degraded; };
  io.emit_token = [&](int slot_id, std::uint32_t ord) {
    ++tokens_served;
    wire.clear();
    encode_id_pair(wire, FrameType::kWorkerToken,
                   static_cast<std::uint32_t>(slot_id), ord);
    if (!write_all(fd, wire)) eof = true;
  };
  io.emit_done = [&](int slot_id) {
    ++requests_served;
    const detail::Slot& s = slots[static_cast<std::size_t>(slot_id)];
    wire.clear();
    encode_done(wire, FrameType::kWorkerDone, static_cast<std::uint32_t>(slot_id),
                s.tokens, s.cancelled, s.output.data(), s.output.size());
    if (!write_all(fd, wire)) eof = true;
  };
  io.idle_wait = [&] {
    pollfd pfd{fd, POLLIN, 0};
    ::poll(&pfd, 1, 1);
  };

  serve::ShardReport report;
  detail::run_shard_core(cc, io, report);

  if (!eof) {
    std::vector<std::uint8_t> bye_payload;
    wire::put_u32(bye_payload, static_cast<std::uint32_t>(requests_served));
    wire::put_u64(bye_payload, static_cast<std::uint64_t>(report.tokens));
    wire.clear();
    encode_frame(wire, FrameType::kWorkerBye, bye_payload.data(), bye_payload.size());
    write_all(fd, wire);
  }
  ::close(fd);
  return 0;
}

}  // namespace acrobat::net
