// TreeLSTM (child-sum) over random binary parse trees; the paper's flagship
// recursive model. Leaf cells consume the token embedding with hoistable
// zero states (the Table 7 constant-reuse story); the root classifier is
// phase-tagged so roots at different tree depths batch into one launch.
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

Value build_tree(Dataset& ds, Rng& rng, int leaves, int h) {
  if (leaves == 1)
    return Value::make_adt(0, {dataset_tensor(ds, ds.pool->alloc_random(RowVec(h), rng, 1.0f))});
  const int left = rng.range(1, leaves - 1);
  Value l = build_tree(ds, rng, left, h);
  Value r = build_tree(ds, rng, leaves - left, h);
  return Value::make_adt(1, {std::move(l), std::move(r)});
}

Dataset dataset(bool large, int batch, std::uint64_t seed) {
  Dataset ds;
  ds.pool = std::make_shared<TensorPool>();
  Rng rng(seed);
  const int h = hidden_dim(large);
  for (int i = 0; i < batch; ++i) ds.inputs.push_back(build_tree(ds, rng, rng.range(10, 16), h));
  return ds;
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const LstmCell cell = make_lstm(ctx, "treelstm", h, h);
  const int k_zero = make_zeros(ctx, "treelstm.zero", h);
  const int k_merge = ctx.kernel("treelstm.child_sum", OpKind::kAdd, 0, {Shape(h), Shape(h)});
  const ClassifierHead cls = make_classifier(ctx, "treelstm", h);

  // tree(node) -> (h, c)
  ir::FuncBuilder tree(ctx.program, "tree", 1);
  {
    const int tag = tree.adt_tag(tree.arg(0));
    const int to_internal = tree.br_if(tag);
    // Leaf(x): cell over the embedding with zero state.
    const int x = tree.adt_field(tree.arg(0), 0);
    const int z = tree.kernel(k_zero, {});
    int c_out = -1;
    const int hh = emit_lstm(tree, cell, x, z, z, &c_out);
    tree.ret(tree.tuple({hh, c_out}));
    // Node(l, r): child-sum combine, zero input embedding.
    tree.patch(to_internal, tree.here());
    const int l = tree.call(tree.index(), {tree.adt_field(tree.arg(0), 0)});
    const int r = tree.call(tree.index(), {tree.adt_field(tree.arg(0), 1)});
    const int hs = tree.kernel(k_merge, {tree.tuple_get(l, 0), tree.tuple_get(r, 0)});
    const int cs = tree.kernel(k_merge, {tree.tuple_get(l, 1), tree.tuple_get(r, 1)});
    const int z2 = tree.kernel(k_zero, {});
    int c2 = -1;
    const int h2 = emit_lstm(tree, cell, z2, hs, cs, &c2);
    tree.ret(tree.tuple({h2, c2}));
    tree.finish();
  }

  ir::FuncBuilder main(ctx.program, "main", 1);
  {
    const int r = main.call(tree.index(), {main.arg(0)});
    main.set_phase(1);
    const int logits = emit_classifier(main, cls, main.tuple_get(r, 0));
    main.ret(logits);
    main.finish();
  }
  return main.index();
}

}  // namespace

ModelSpec make_treelstm_spec() { return ModelSpec{"TreeLSTM", dataset, build}; }

}  // namespace acrobat::models
