// NestedRNN: outer GRU over tokens; each outer step runs a 15-iteration
// inner RNN. The inner kernels execute ~15x more often than the outer ones,
// which is the invocation-frequency skew the PGO auto-scheduler exploits
// (Table 9). Outer-cell kernels are deliberately registered first so the
// no-PGO tuner (id order) spends its first trials on the cold kernels.
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

constexpr int kInnerSteps = 15;

Dataset dataset(bool large, int batch, std::uint64_t seed) {
  return make_token_dataset(large, batch, seed, 5, 8);
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const int hi_dim = 3 * h;  // wide inner state: schedule quality matters here
  const GruCell outer = make_gru(ctx, "nested.outer", hi_dim, h);
  const int k_zero = make_zeros(ctx, "nested.zero", h);
  const int k_zero_in = make_zeros(ctx, "nested.zero_in", hi_dim);
  const RnnCell inner = make_rnn(ctx, "nested.inner", h, hi_dim);
  const ClassifierHead cls = make_classifier(ctx, "nested", h);

  ir::FuncBuilder b(ctx.program, "main", 1);
  const int seq = b.arg(0);
  const int t_len = b.tuple_len(seq);
  const int ho = b.var(b.kernel(k_zero, {}));
  const int t = b.var(b.cint(0));
  const int steps = b.cint(kInnerSteps);

  const int outer_head = b.here();
  const int outer_cond = b.lt(t, t_len);
  const int outer_body = b.br_if(outer_cond);
  const int outer_exit = b.jmp();
  b.patch(outer_body, b.here());
  {
    const int x = b.tuple_get_dyn(seq, t);
    const int hi = b.var(b.kernel(k_zero_in, {}));
    const int j = b.var(b.cint(0));
    const int inner_head = b.here();
    const int inner_cond = b.lt(j, steps);
    const int inner_body = b.br_if(inner_cond);
    const int inner_exit = b.jmp();
    b.patch(inner_body, b.here());
    {
      b.assign(hi, emit_rnn(b, inner, x, hi));
      b.assign(j, b.add_int_imm(j, 1));
      b.jmp_to(inner_head);
    }
    b.patch(inner_exit, b.here());
    b.assign(ho, emit_gru(b, outer, hi, ho));
    b.assign(t, b.add_int_imm(t, 1));
    b.jmp_to(outer_head);
  }
  b.patch(outer_exit, b.here());
  b.set_phase(1);
  b.ret(emit_classifier(b, cls, ho));
  b.finish();
  return b.index();
}

}  // namespace

ModelSpec make_nestedrnn_spec() { return ModelSpec{"NestedRNN", dataset, build}; }

}  // namespace acrobat::models
