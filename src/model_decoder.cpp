// Decoder: an autoregressive generative decoder — the serving workload the
// iteration-level scheduler exists for. A fiber loops one decode step at a
// time: advance the carried state through an RNN cell, ask a stop head
// whether to keep emitting (kSyncSign — the data-dependent stop), then cross
// the token boundary through kStepKeep, which checkpoints the state into the
// engine's per-session buffer and parks the fiber until the serve loop
// re-admits the session. The loop is bounded by a max-token cap; the tail
// (phase 1) classifies the final state, so a mid-stream cancel (cont == 0)
// still exits through a well-formed output.
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

Dataset dataset(bool large, int batch, std::uint64_t seed) {
  Dataset ds;
  ds.pool = std::make_shared<TensorPool>();
  Rng rng(seed);
  const int h = hidden_dim(large);
  for (int i = 0; i < batch; ++i)
    ds.inputs.push_back(dataset_tensor(ds, ds.pool->alloc_random(RowVec(h), rng, 1.0f)));
  return ds;
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const Shape v(h), ws(1, h);
  // Stop-head scale is deliberately large (4/h vs the usual <1/h): the
  // emitted scalar then swings enough that the stop test fails with real
  // probability per step, giving genuinely varied, input-dependent session
  // lengths instead of every session riding to the cap.
  const int w_stop = ctx.add_weight(ws, 4.0f / static_cast<float>(h));
  const int k_stop = ctx.kernel("decoder.stop", OpKind::kDense, 0, {v, ws});
  const RnnCell cell = make_rnn(ctx, "decoder.cell", h, h);
  const ClassifierHead cls = make_classifier(ctx, "decoder", h);

  ir::FuncBuilder main(ctx.program, "decoder.main", 1);
  {
    const int cap = main.cint(decoder_max_tokens(ctx.large));
    const int state = main.var(main.arg(0));  // carried state, seeded by context
    const int t = main.var(main.cint(0));
    const int top = main.here();
    // One decode step: the session's original context conditions every step
    // (a purely self-conditioned cell would contract every session onto the
    // same attractor, collapsing the stop score's variance), and the
    // carried state recurs.
    const int next = emit_rnn(main, cell, main.arg(0), state);
    const int s = main.kernel(k_stop, {next, main.weight(w_stop)});
    // Threshold in the lower tail of the stop score's distribution: a
    // modest per-step stop probability gives varied, input-dependent
    // session lengths (mean ~13 of the 24-token cap) with most sessions
    // running long enough for steady-state decode batching to matter.
    const int more = main.sync_sign(s, -0.08);
    // Token boundary: checkpoint + (under serving) park for re-admission.
    const int kept = main.step_keep(next);
    main.assign(state, main.tuple_get(kept, 0));
    const int cont = main.tuple_get(kept, 1);
    main.assign(t, main.add_int_imm(t, 1));
    // Continue iff under the cap AND the stop head says emit AND the serve
    // loop has not cancelled the session.
    const int under_cap = main.lt(t, cap);
    const int chk_more = main.br_if(under_cap);
    const int done_cap = main.jmp();
    main.patch(chk_more, main.here());
    const int chk_cont = main.br_if(more);
    const int done_stop = main.jmp();
    main.patch(chk_cont, main.here());
    main.br_if_to(cont, top);
    // Fallthrough (cancelled) and both early exits land on the tail.
    const int done = main.here();
    main.patch(done_cap, done);
    main.patch(done_stop, done);
    main.set_phase(1);
    main.ret(emit_classifier(main, cls, state));
    main.finish();
  }
  return main.index();
}

}  // namespace

int decoder_max_tokens(bool large) { return large ? 48 : 24; }

ModelSpec make_decoder_spec() { return ModelSpec{"Decoder", dataset, build}; }

}  // namespace acrobat::models
