// DRNN: a generative recursive model whose expansion decision is computed
// from tensor values — data-dependent control flow. Each expansion asks a
// stop network for a scalar and branches on its sign (kSyncSign), which is
// where instances suspend on fibers; without fibers every decision forces
// an instance-local trigger (the L2-vs-L3 crossover in ablation_overhead).
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

Dataset dataset(bool large, int batch, std::uint64_t seed) {
  Dataset ds;
  ds.pool = std::make_shared<TensorPool>();
  Rng rng(seed);
  const int h = hidden_dim(large);
  for (int i = 0; i < batch; ++i)
    ds.inputs.push_back(dataset_tensor(ds, ds.pool->alloc_random(RowVec(h), rng, 1.0f)));
  return ds;
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const Shape v(h), ws(1, h);
  const int w_stop = ctx.add_weight(ws, 0.8f / static_cast<float>(h));
  const int k_stop = ctx.kernel("drnn.stop", OpKind::kDense, 0, {v, ws});
  const RnnCell left = make_rnn(ctx, "drnn.left", h, h);
  const RnnCell right = make_rnn(ctx, "drnn.right", h, h);
  const int k_merge = ctx.kernel("drnn.merge", OpKind::kAdd, 0, {v, v});
  const ClassifierHead cls = make_classifier(ctx, "drnn", h);

  // gen(h, budget) -> summed subtree state
  ir::FuncBuilder gen(ctx.program, "gen", 2);
  {
    const int s = gen.kernel(k_stop, {gen.arg(0), gen.weight(w_stop)});
    const int expand = gen.sync_sign(s, 0.0);
    const int zero = gen.cint(0);
    const int has_budget = gen.lt(zero, gen.arg(1));
    const int to_check = gen.br_if(expand);
    gen.ret(gen.arg(0));  // stop: leaf
    gen.patch(to_check, gen.here());
    const int to_expand = gen.br_if(has_budget);
    gen.ret(gen.arg(0));  // out of budget: leaf
    gen.patch(to_expand, gen.here());
    const int next_budget = gen.add_int_imm(gen.arg(1), -1);
    const int hl = emit_rnn(gen, left, gen.arg(0), gen.arg(0));
    const int hr = emit_rnn(gen, right, gen.arg(0), gen.arg(0));
    const int rl = gen.call(gen.index(), {hl, next_budget});
    const int rr = gen.call(gen.index(), {hr, next_budget});
    gen.ret(gen.kernel(k_merge, {rl, rr}));
    gen.finish();
  }

  ir::FuncBuilder main(ctx.program, "main", 1);
  {
    const int budget = main.cint(4);
    const int r = main.call(gen.index(), {main.arg(0), budget});
    main.set_phase(1);
    main.ret(emit_classifier(main, cls, r));
    main.finish();
  }
  return main.index();
}

}  // namespace

ModelSpec make_drnn_spec() { return ModelSpec{"DRNN", dataset, build}; }

}  // namespace acrobat::models
