#include "exec/aot.h"

#include <cassert>

namespace acrobat::aot {

Value AotExecutor::run(std::span<const Value> args, InstCtx ctx) {
  return run_entry(*prog_.main, args, ctx);
}

Value AotExecutor::run_entry(const ir::Func& entry, std::span<const Value> args, InstCtx ctx) {
  RunState st;
  st.ctx = ctx;
  return exec(entry, args.data(), args.size(), st);
}

Value AotExecutor::exec(const ir::Func& f, const Value* args, std::size_t n_args,
                        RunState& st) {
  assert(static_cast<int>(n_args) == f.num_args);
  std::vector<Value> regs(static_cast<std::size_t>(f.num_regs));
  for (std::size_t i = 0; i < n_args; ++i) regs[i] = args[i];

  std::size_t pc = 0;
  while (pc < f.code.size()) {
    const ir::Instr& ins = f.code[pc];
    switch (ins.op) {
      case ir::Op::kLoadInput:
        regs[ins.dst] = args[ins.attr];
        break;
      case ir::Op::kLoadWeight:
        regs[ins.dst] = Value::tensor(weights_[static_cast<std::size_t>(ins.attr)]);
        break;
      case ir::Op::kKernel: {
        TRef srcs[8];
        const int n = static_cast<int>(ins.srcs.size());
        assert(n <= 8);
        for (int i = 0; i < n; ++i) {
          const Value& v = regs[ins.srcs[i]];
          assert(v.kind == Value::kTensor);
          srcs[i] = v.tref;
        }
        regs[ins.dst] =
            Value::tensor(engine_.add_op(static_cast<int>(ins.attr), srcs, n, st.ctx, st.phase));
        break;
      }
      case ir::Op::kTupleMake: {
        std::vector<Value> elems;
        elems.reserve(ins.srcs.size());
        for (const int s : ins.srcs) elems.push_back(regs[s]);
        regs[ins.dst] = Value::make_tuple(std::move(elems));
        break;
      }
      case ir::Op::kTupleGet:
        regs[ins.dst] = regs[ins.srcs[0]].tuple->elems[static_cast<std::size_t>(ins.attr)];
        break;
      case ir::Op::kTupleLen:
        regs[ins.dst] =
            Value::integer(static_cast<std::int64_t>(regs[ins.srcs[0]].tuple->elems.size()));
        break;
      case ir::Op::kTupleGetDyn:
        regs[ins.dst] =
            regs[ins.srcs[0]].tuple->elems[static_cast<std::size_t>(regs[ins.srcs[1]].i)];
        break;
      case ir::Op::kAdtMake: {
        std::vector<Value> fields;
        fields.reserve(ins.srcs.size());
        for (const int s : ins.srcs) fields.push_back(regs[s]);
        regs[ins.dst] = Value::make_adt(static_cast<int>(ins.attr), std::move(fields));
        break;
      }
      case ir::Op::kAdtTag:
        regs[ins.dst] = Value::integer(regs[ins.srcs[0]].adt->tag);
        break;
      case ir::Op::kAdtField:
        regs[ins.dst] = regs[ins.srcs[0]].adt->fields[static_cast<std::size_t>(ins.attr)];
        break;
      case ir::Op::kConstInt:
        regs[ins.dst] = Value::integer(ins.attr);
        break;
      case ir::Op::kAddInt:
        regs[ins.dst] = Value::integer(regs[ins.srcs[0]].i +
                                       (ins.srcs.size() > 1 ? regs[ins.srcs[1]].i : ins.attr));
        break;
      case ir::Op::kLtInt:
        regs[ins.dst] = Value::integer(regs[ins.srcs[0]].i < regs[ins.srcs[1]].i ? 1 : 0);
        break;
      case ir::Op::kMove:
        regs[ins.dst] = regs[ins.srcs[0]];
        break;
      case ir::Op::kJmp:
        pc = static_cast<std::size_t>(ins.target);
        continue;
      case ir::Op::kBrIf:
        if (regs[ins.srcs[0]].i != 0) {
          pc = static_cast<std::size_t>(ins.target);
          continue;
        }
        break;
      case ir::Op::kCall: {
        std::vector<Value> call_args;
        call_args.reserve(ins.srcs.size());
        for (const int s : ins.srcs) call_args.push_back(regs[s]);
        regs[ins.dst] = exec(*prog_.funcs[static_cast<std::size_t>(ins.attr)], call_args.data(),
                             call_args.size(), st);
        break;
      }
      case ir::Op::kRet:
        return regs[ins.srcs[0]];
      case ir::Op::kPhase:
        st.phase = static_cast<int>(ins.attr);
        break;
      case ir::Op::kSyncSign: {
        // Inline depth computation means nothing else needs recovering at
        // this point: force just this scalar (suspending the fiber if the
        // runtime is in TDCF mode) and branch on it natively.
        const float v = engine_.scalar(regs[ins.srcs[0]].tref);
        regs[ins.dst] = Value::integer(v > static_cast<double>(ins.attr) * 1e-6 ? 1 : 0);
        break;
      }
      case ir::Op::kStepKeep: {
        // Token boundary: checkpoint the carried state into the session's
        // persistent buffer and let the serve loop's step hook park this
        // fiber until the session is re-admitted (engine/engine.h).
        const Engine::StepResult r =
            engine_.session_step(regs[ins.srcs[0]].tref, st.ctx);
        regs[ins.dst] =
            Value::make_tuple({Value::tensor(r.state), Value::integer(r.cont)});
        break;
      }
    }
    ++pc;
  }
  return Value{};
}

}  // namespace acrobat::aot
