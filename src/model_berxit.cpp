// Berxit: a small transformer-style encoder with per-layer early exit
// decided from activations (kSyncSign) — tensor-dependent control flow over
// a wide, intermediate-heavy graph. Under DyNet's per-op pipeline every
// unfused intermediate stays live, which is what trips the scaled device
// memory cap at batch 64 (Table 5's OOM entries).
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

constexpr int kLayers = 6;

int seq_len(bool large) { return large ? 12 : 8; }

Dataset dataset(bool large, int batch, std::uint64_t seed) {
  Dataset ds;
  ds.pool = std::make_shared<TensorPool>();
  Rng rng(seed);
  const int h = hidden_dim(large);
  const int s = seq_len(large);
  for (int i = 0; i < batch; ++i)
    ds.inputs.push_back(dataset_tensor(ds, ds.pool->alloc_random(Shape(s, h), rng, 1.0f)));
  return ds;
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const int s = seq_len(ctx.large);
  const bool per_op = grain_of(ctx.cfg) == Grain::kPerOp;
  const Shape sh(s, h), ss(s, s), w(h, h), brow(h);
  const float scale = 0.5f / static_cast<float>(h);

  struct Layer {
    int wq, wk, wv, wo, w1, w2;
    int bq, bk, bv, bo, b1, b2;  // per-op only
  };
  std::vector<Layer> layers;
  // Shared kernel ids (same shapes across layers → one signature class each,
  // distinct per projection so batching stays per-role).
  const int k_q = ctx.kernel("berxit.q", OpKind::kDense, 0, {sh, w});
  const int k_k = ctx.kernel("berxit.k", OpKind::kDense, 0, {sh, w});
  const int k_v = ctx.kernel("berxit.v", OpKind::kDense, 0, {sh, w});
  const int k_score = ctx.kernel("berxit.score", OpKind::kMatMulBT, 0, {sh, sh});
  const int k_soft = ctx.kernel("berxit.softmax", OpKind::kSoftmax, 0, {ss});
  const int k_mix = ctx.kernel("berxit.mix", OpKind::kMatMul, 0, {ss, sh});
  const int k_o = ctx.kernel("berxit.o", OpKind::kDense, 0, {sh, w});
  const int k_res = ctx.kernel("berxit.residual", OpKind::kAdd, 0, {sh, sh});
  const int k_f1 = ctx.kernel("berxit.ffn1", OpKind::kDense, 0, {sh, w});
  const int k_act = ctx.kernel("berxit.ffn_tanh", OpKind::kTanh, 0, {sh});
  const int k_f2 = ctx.kernel("berxit.ffn2", OpKind::kDense, 0, {sh, w});
  const int k_bias = per_op ? ctx.kernel("berxit.bias", OpKind::kAdd, 0, {sh, brow}) : -1;
  const int k_exit = ctx.kernel("berxit.exit_sum", OpKind::kSumAll, 0, {sh});
  const ClassifierHead cls = make_classifier(ctx, "berxit", h);
  // Row pooling: a learned (1×s) row times the (s×h) activations.
  const int k_pool = ctx.kernel("berxit.pool", OpKind::kMatMul, 0, {Shape(1, s), sh});
  const int w_pool = ctx.add_weight(Shape(1, s), 0.3f);

  for (int l = 0; l < kLayers; ++l) {
    Layer lay{};
    lay.wq = ctx.add_weight(w, scale);
    lay.wk = ctx.add_weight(w, scale);
    lay.wv = ctx.add_weight(w, scale);
    lay.wo = ctx.add_weight(w, scale);
    lay.w1 = ctx.add_weight(w, scale);
    lay.w2 = ctx.add_weight(w, scale);
    if (per_op) {
      lay.bq = ctx.add_weight(brow, 0.05f);
      lay.bk = ctx.add_weight(brow, 0.05f);
      lay.bv = ctx.add_weight(brow, 0.05f);
      lay.bo = ctx.add_weight(brow, 0.05f);
      lay.b1 = ctx.add_weight(brow, 0.05f);
      lay.b2 = ctx.add_weight(brow, 0.05f);
    }
    layers.push_back(lay);
  }

  ir::FuncBuilder b(ctx.program, "main", 1);
  const int hv = b.var(b.arg(0));
  std::vector<int> exit_jumps;
  auto proj = [&](int kid, int x, int wi, int bi) {
    int d = b.kernel(kid, {x, b.weight(wi)});
    if (per_op) d = b.kernel(k_bias, {d, b.weight(bi)});
    return d;
  };
  for (int l = 0; l < kLayers; ++l) {
    const Layer& lay = layers[static_cast<std::size_t>(l)];
    const int q = proj(k_q, hv, lay.wq, lay.bq);
    const int kk = proj(k_k, hv, lay.wk, lay.bk);
    const int vv = proj(k_v, hv, lay.wv, lay.bv);
    const int att = b.kernel(k_score, {q, kk});
    const int sm = b.kernel(k_soft, {att});
    const int mix = b.kernel(k_mix, {sm, vv});
    const int o = proj(k_o, mix, lay.wo, lay.bo);
    const int r1 = b.kernel(k_res, {hv, o});
    const int f1 = proj(k_f1, r1, lay.w1, lay.b1);
    const int f1t = b.kernel(k_act, {f1});
    const int f2 = proj(k_f2, f1t, lay.w2, lay.b2);
    b.assign(hv, b.kernel(k_res, {r1, f2}));
    if (l >= 1 && l < kLayers - 1) {
      // Early exit: confident enough once the activation mass goes positive.
      const int score = b.kernel(k_exit, {hv});
      const int done = b.sync_sign(score, 0.0);
      exit_jumps.push_back(b.br_if(done));
    }
  }
  const int tail = b.here();
  for (const int jump : exit_jumps) b.patch(jump, tail);
  b.set_phase(1);
  const int pooled = b.kernel(k_pool, {b.weight(w_pool), hv});
  b.ret(emit_classifier(b, cls, pooled));
  b.finish();
  return b.index();
}

}  // namespace

ModelSpec make_berxit_spec() { return ModelSpec{"Berxit", dataset, build}; }

}  // namespace acrobat::models
