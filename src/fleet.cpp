// acrobat/fleet implementation (DESIGN.md §8): merged multi-model modules,
// class-aware dispatch, SLO admission control with shedding, and the
// open-loop / closed-loop client drivers. The shard worker is the serve
// layer's continuous-batching loop generalized to a table of per-model
// engine states — same admission-at-trigger-boundary mechanism, same
// no-locks-on-the-hot-path ownership (the only cross-thread traffic is
// the SPSC inbox/outbox pair and the load counter).
#include "fleet/fleet.h"

#include <sched.h>

#include <algorithm>
#include <cassert>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "exec/aot.h"
#include "runtime/fiber.h"
#include "serve/spsc.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace acrobat::fleet {
namespace {

using serve::AdmitDecision;
using serve::DispatchKind;
using serve::LatencyClass;
using serve::PolicyCtx;
using serve::Request;
using serve::RequestRecord;
using serve::RequestView;
using serve::ShardReport;
using serve::SpscQueue;
using serve::Triage;
using serve::Verdict;

[[noreturn]] void config_die(const char* what) {
  std::fprintf(stderr, "acrobat fleet: invalid configuration: %s\n", what);
  std::abort();
}

// See serve.cpp: waits are for other threads' progress, so yield, never spin.
void relax() { sched_yield(); }

int class_idx(LatencyClass c) { return static_cast<int>(c); }

// ------------------------------------------------------------- fleet policy

class FleetPolicy final : public serve::BatchPolicy {
 public:
  explicit FleetPolicy(const FleetPolicyConfig& cfg)
      : cfg_(cfg), base_(serve::make_policy(cfg.base)) {}

  AdmitDecision decide(const PolicyCtx& ctx) override { return base_->decide(ctx); }

  Triage triage(const RequestView& v) override {
    Triage t;
    // A decode step's clock is its inter-token gap, not the session's
    // arrival: the deadline restarts at every token, so EDF keeps working
    // mid-stream and a stalled session is cancelled, not ignored.
    if (v.is_step) {
      const std::int64_t td = cfg_.token_deadline_ns;
      if (td <= 0 || v.last_token_ns < 0) return t;
      t.deadline_ns = v.last_token_ns + td;
      const std::int64_t blown_at = t.deadline_ns - cfg_.est_service_ns;
      if (v.now_ns <= blown_at) return t;
      const auto grace =
          static_cast<std::int64_t>(cfg_.shed_grace * static_cast<double>(td));
      t.verdict =
          cfg_.shed && v.now_ns - blown_at >= grace ? Verdict::kShed : Verdict::kDefer;
      return t;
    }
    const std::int64_t d = class_deadline_ns(cfg_, v.latency_class);
    if (d <= 0) return t;  // no SLO: admit, sorted after every deadline class
    t.deadline_ns = v.arrival_ns + d;
    // A request is blown once it can no longer *finish* inside the SLO:
    // the latest useful admission point is deadline - est_service.
    const std::int64_t blown_at = t.deadline_ns - cfg_.est_service_ns;
    if (v.now_ns <= blown_at) return t;  // still viable: EDF admission
    // Blown: deprioritize within the grace window, shed beyond it —
    // running it anyway only pushes *other* requests past their SLO.
    const auto grace = static_cast<std::int64_t>(cfg_.shed_grace * static_cast<double>(d));
    t.verdict = cfg_.shed && v.now_ns - blown_at >= grace ? Verdict::kShed : Verdict::kDefer;
    return t;
  }

  const char* name() const override { return "fleet"; }

 private:
  FleetPolicyConfig cfg_;
  std::unique_ptr<serve::BatchPolicy> base_;
};

// -------------------------------------------------------------- shard worker

// One engine plus its executor-facing state. Multiplex mode runs a single
// slot hosting every model; the fallback runs one slot per model.
struct EngineSlot {
  std::unique_ptr<Engine> eng;
  std::unique_ptr<aot::AotExecutor> exec;
  std::vector<std::vector<TRef>> drefs;  // per model id (empty if not hosted)
};

struct FleetShard {
  explicit FleetShard(std::size_t capacity) : inbox(capacity), outbox(capacity) {}

  int index = 0;
  const ModelRegistry* reg = nullptr;
  const std::vector<Request>* trace = nullptr;
  const FleetOptions* opts = nullptr;
  std::vector<RequestRecord>* records = nullptr;
  std::int64_t epoch_ns = 0;

  SpscQueue<int> inbox;   // dispatcher → shard (request ids)
  SpscQueue<int> outbox;  // shard → dispatcher (completed/shed ids; the
                          // closed-loop client's completion signal)
  std::atomic<int> outstanding{0};
  ShardReport report;

  // Observability (DESIGN.md §9), as in serve.cpp's Shard: worker-owned
  // ring + SPSC tick stream, both preallocated before the thread starts.
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<SpscQueue<trace::MetricsTick>> ticks;
  std::uint64_t dropped_ticks = 0;
  std::vector<std::string> metric_names;

  void run_worker();
};

void merge_stats(ActivityStats& into, const ActivityStats& from) {
  into.dfg_construction.add(from.dfg_construction.ns);
  into.scheduling.add(from.scheduling.ns);
  into.gather_copy.add(from.gather_copy.ns);
  into.kernel_exec.add(from.kernel_exec.ns);
  into.launch_overhead.add(from.launch_overhead.ns);
  into.kernel_launches += from.kernel_launches;
  into.gather_bytes += from.gather_bytes;
  into.flat_batches += from.flat_batches;
  into.stacked_batches += from.stacked_batches;
  into.scheduling_allocs += from.scheduling_allocs;
  into.sched_cache_hits += from.sched_cache_hits;
  into.sched_cache_misses += from.sched_cache_misses;
  into.sched_cache_evictions += from.sched_cache_evictions;
}

void merge_mem(Engine::MemoryStats& into, const Engine::MemoryStats& from) {
  into.node_table_size += from.node_table_size;
  into.live_nodes += from.live_nodes;
  into.live_nodes_peak += from.live_nodes_peak;
  into.nodes_recycled += from.nodes_recycled;
  into.arena_active_bytes += from.arena_active_bytes;
  into.arena_high_water_bytes += from.arena_high_water_bytes;
  into.arena_pages_recycled += from.arena_pages_recycled;
  into.leaked_slots += from.leaked_slots;
  into.persist_arena_high_water_bytes += from.persist_arena_high_water_bytes;
  into.session_buffers_live += from.session_buffers_live;
  into.session_buffers_peak += from.session_buffers_peak;
  into.session_bytes_allocated += from.session_bytes_allocated;
}

void FleetShard::run_worker() {
  const std::vector<FleetModel>& models = reg->models();
  const int n_models = reg->num_models();

  // Per-model engine states (DESIGN.md §8). Multiplexed, all models share
  // one engine: one trigger cadence, one node table, one recycling arena,
  // every model's weights/datasets/constants in one persistent region.
  // Kernel names are model-prefixed, so merged-registry kernel ids never
  // alias across models unless the kernels are genuinely identical.
  std::vector<EngineSlot> slots;
  const int n_slots = opts->multiplex ? 1 : n_models;
  for (int s = 0; s < n_slots; ++s) {
    EngineSlot slot;
    EngineConfig ec = harness::engine_config_for(
        reg->cfg(), opts->launch_overhead_ns, opts->time_activities);
    ec.recycle = opts->recycle;
    ec.sched_memo = opts->sched_memo;
    slot.eng = std::make_unique<Engine>(reg->compiled().module.registry, ec);
    // The merged weight table is global (kLoadWeight indices span models),
    // so every engine wraps all of it; concrete nodes are cheap views.
    std::vector<TRef> wrefs;
    wrefs.reserve(reg->weights().tensors.size());
    for (const Tensor& t : reg->weights().tensors)
      wrefs.push_back(slot.eng->add_concrete(t.view()));
    slot.drefs.resize(static_cast<std::size_t>(n_models));
    for (int m = 0; m < n_models; ++m) {
      if (!opts->multiplex && m != s) continue;  // fallback: host one model
      const models::Dataset& ds = models[static_cast<std::size_t>(m)].dataset;
      auto& dr = slot.drefs[static_cast<std::size_t>(m)];
      dr.reserve(ds.tensors.size());
      for (const Tensor& t : ds.tensors) dr.push_back(slot.eng->add_concrete(t.view()));
    }
    slot.exec = std::make_unique<aot::AotExecutor>(reg->compiled().program, *slot.eng,
                                                   std::move(wrefs));
    slots.push_back(std::move(slot));
  }
  const auto slot_of = [&](int model_id) -> EngineSlot& {
    return slots[static_cast<std::size_t>(opts->multiplex ? 0 : model_id)];
  };

  FiberScheduler fs;
  for (EngineSlot& s : slots) s.eng->set_fiber_scheduler(&fs);
  fs.set_reap_hook([&](int request_id) {
    slot_of((*trace)[static_cast<std::size_t>(request_id)].model_id)
        .eng->retire_request(request_id);
  });
  const std::unique_ptr<serve::BatchPolicy> policy = make_fleet_policy(opts->policy);

  // Observability (DESIGN.md §9): one ring per shard, shared by every
  // engine slot (the shard is single-threaded, so the single-writer
  // contract holds across slots).
  trace::Tracer* const tr = tracer.get();
  for (EngineSlot& s : slots) s.eng->set_tracer(tr);
  fs.set_tracer(tr);
  trace::MetricsRegistry mreg;
  int m_live = -1, m_queued = -1, m_done = -1, m_shed = -1, m_launches = -1,
      m_hits = -1, m_live_nodes = -1, m_arena_kb = -1;
  if (tr != nullptr) {
    m_live = mreg.add("live_requests");
    m_queued = mreg.add("queued_requests");
    m_done = mreg.add("completed_requests");
    m_shed = mreg.add("shed_requests");
    m_launches = mreg.add("kernel_launches");
    m_hits = mreg.add("memo_hit_permille");
    m_live_nodes = mreg.add("live_nodes");
    m_arena_kb = mreg.add("arena_kb");
    metric_names = mreg.names();
  }

  std::deque<int> queue;      // arrived, not yet admitted (EDF order after triage)
  std::deque<int> in_flight;  // admitted, not yet completed (admission order)
  // Iteration-level scheduling, as in serve.cpp: parked generative sessions
  // waiting for their next decode step. Steps are triaged alongside fresh
  // arrivals (FleetPolicy derives a step's deadline from its park time), so
  // EDF ordering and shedding extend mid-stream.
  std::deque<int> step_queue;
  std::vector<char> awaiting(trace->size(), 0);
  // Decode-aware split, as in serve.cpp: sessions past their first token,
  // and how many parked steps this trigger window may still unpark. The
  // budget resets from the policy once per window (admission hook).
  std::size_t live_decode = 0;
  std::size_t step_budget = static_cast<std::size_t>(-1);

  long long last_tick_trigger = 0;
  const auto maybe_tick = [&](std::int64_t t_now) {
    if (fs.idle_triggers() - last_tick_trigger <
        static_cast<long long>(opts->trace.tick_every_triggers))
      return;
    last_tick_trigger = fs.idle_triggers();
    long long launches = 0, hits = 0, misses = 0;
    std::size_t live_nodes = 0, arena = 0;
    for (const EngineSlot& s : slots) {
      launches += s.eng->stats().kernel_launches;
      hits += s.eng->stats().sched_cache_hits;
      misses += s.eng->stats().sched_cache_misses;
      live_nodes += s.eng->live_nodes();
      arena += s.eng->memory().arena_active_bytes;
    }
    mreg.set(m_live, static_cast<double>(in_flight.size()));
    mreg.set(m_queued, static_cast<double>(queue.size()));
    mreg.set(m_done, static_cast<double>(report.requests));
    mreg.set(m_shed, static_cast<double>(report.shed));
    mreg.set(m_launches, static_cast<double>(launches));
    mreg.set(m_hits, hits + misses > 0
                         ? 1000.0 * static_cast<double>(hits) /
                               static_cast<double>(hits + misses)
                         : 0.0);
    mreg.set(m_live_nodes, static_cast<double>(live_nodes));
    mreg.set(m_arena_kb, static_cast<double>(arena) / 1024.0);
    if (!ticks->push(mreg.tick(t_now, index))) ++dropped_ticks;
  };

  const auto now = [&] { return now_ns() - epoch_ns; };
  const auto arrival_of = [&](int id) {
    // records, not the trace: closed-loop arrivals are stamped at issue.
    return (*records)[static_cast<std::size_t>(id)].arrival_ns;
  };
  const auto drain_inbox = [&] {
    int id;
    while (inbox.pop(id)) queue.push_back(id);
  };
  const auto prune_in_flight = [&] {
    while (!in_flight.empty() &&
           (*records)[static_cast<std::size_t>(in_flight.front())].completion_ns >= 0) {
      if ((*records)[static_cast<std::size_t>(in_flight.front())].tokens > 0)
        --live_decode;
      in_flight.pop_front();
    }
  };
  const auto make_ctx = [&] {
    PolicyCtx c;
    c.now_ns = now();
    c.live_decode = live_decode;
    c.queued_steps = step_queue.size();
    // Parked sessions stay `live` (see serve.cpp): they hold session state,
    // so the width budget bounds concurrent sessions — the memory-plateau
    // contract. Steps are re-admitted outside the budget in admit().
    c.queued = queue.size();
    c.live = in_flight.size();
    // Unlike serve.cpp, neither deque is in arrival order here — the queue
    // is EDF-sorted and in_flight is in admission order — so "oldest" is a
    // min over arrivals, not front(). A base DeadlinePolicy's hold bound
    // ("never past the oldest request's SLO") depends on this.
    for (const int id : queue) {
      const std::int64_t a = arrival_of(id);
      if (c.oldest_queued_arrival_ns < 0 || a < c.oldest_queued_arrival_ns)
        c.oldest_queued_arrival_ns = a;
    }
    for (const int id : in_flight) {
      const std::int64_t a = arrival_of(id);
      if (c.oldest_live_arrival_ns < 0 || a < c.oldest_live_arrival_ns)
        c.oldest_live_arrival_ns = a;
    }
    c.inbox_open = !inbox.closed() || !inbox.empty_hint();
    return c;
  };

  const auto spawn_request = [&](int id) {
    RequestRecord& rec = (*records)[static_cast<std::size_t>(id)];
    rec.shard = index;
    rec.admit_ns = now();
    in_flight.push_back(id);
    const int model_id = (*trace)[static_cast<std::size_t>(id)].model_id;
    ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kAdmit, id, model_id,
                                  rec.admit_ns - rec.arrival_ns));
    slot_of(model_id).eng->begin_request(id);
    fs.spawn([&, id, model_id] {
      RequestRecord& r = (*records)[static_cast<std::size_t>(id)];
      EngineSlot& slot = slot_of(model_id);
      const FleetModel& fm = reg->model(model_id);
      InstCtx ctx;
      ctx.instance = id;
      const Value in = models::remap_trefs(
          fm.dataset.inputs[(*trace)[static_cast<std::size_t>(id)].input_index],
          slot.drefs[static_cast<std::size_t>(model_id)]);
      const Value out = slot.exec->run_entry(*fm.entry, std::span<const Value>(&in, 1), ctx);
      std::vector<TRef> outs;
      harness::collect_output_trefs(out, outs);
      std::vector<float> flat;
      for (const TRef ref : outs) {
        const Tensor t = slot.eng->force(ref);  // suspends until a trigger lands
        if (opts->collect_outputs) flat.insert(flat.end(), t.data, t.data + t.numel());
      }
      r.completion_ns = now();
      ACROBAT_TRACE(tr, {
        // Slow-request exemplar: the default threshold is the request's own
        // class deadline — "what did the worst SLO-missing request do".
        std::int64_t slow_ns = opts->trace.slow_threshold_ns;
        if (slow_ns <= 0)
          slow_ns = class_deadline_ns(
              opts->policy, (*trace)[static_cast<std::size_t>(id)].latency_class);
        const std::int64_t lat = r.completion_ns - r.arrival_ns;
        if (slow_ns > 0 && lat >= slow_ns)
          tr->capture_exemplar(id, r.admit_ns, r.completion_ns, lat);
      });
      if (opts->collect_outputs) r.output = std::move(flat);
      ++report.requests;
      outstanding.fetch_sub(1, std::memory_order_relaxed);
      const bool pushed = outbox.push(id);
      assert(pushed && "outbox sized for the whole trace");
      (void)pushed;
    }, /*tag=*/id);
  };

  const auto shed_request = [&](int id) {
    RequestRecord& rec = (*records)[static_cast<std::size_t>(id)];
    rec.shard = index;
    rec.admit_ns = now();
    rec.completion_ns = rec.admit_ns;
    rec.shed = true;
    ++report.shed;
    ACROBAT_TRACE(tr, tr->instant(
                          trace::EventKind::kShed, id,
                          class_idx((*trace)[static_cast<std::size_t>(id)].latency_class),
                          rec.completion_ns - rec.arrival_ns));
    outstanding.fetch_sub(1, std::memory_order_relaxed);
    const bool pushed = outbox.push(id);
    assert(pushed && "outbox sized for the whole trace");
    (void)pushed;
  };

  // Mid-stream cancel: a decode step whose token deadline is blown past
  // grace is not shed (its session already ran and holds valid output) —
  // the fiber is unparked with `cancelled` set, so its next step-hook
  // consult returns kStop and the session exits through the model's tail.
  const auto cancel_session = [&](int id) {
    RequestRecord& rec = (*records)[static_cast<std::size_t>(id)];
    rec.cancelled = true;
    ++report.cancelled;
    ACROBAT_TRACE(tr, tr->instant(
                          trace::EventKind::kShed, id,
                          class_idx((*trace)[static_cast<std::size_t>(id)].latency_class),
                          rec.tokens));
    const bool ok = fs.unpark(id);
    assert(ok && "cancelled step must correspond to a parked fiber");
    (void)ok;
  };

  // Class-aware admission: triage every queued request (shedding the ones
  // the policy has given up on) *and* every parked decode step (cancelling
  // sessions whose token deadline is hopeless), order survivors earliest-
  // deadline-first with deferred (blown-but-in-grace) entries after
  // everything that can still make its SLO, then admit up to the base
  // policy's budget. Steps and arrivals compete in one EDF order — that is
  // what makes triage work mid-stream.
  struct Cand {
    int id;
    std::int64_t key;
    bool defer;
    bool step;
  };
  const auto admit = [&](std::size_t max_admit) {
    if (queue.empty() && step_queue.empty()) return;
    const std::int64_t t = now();
    std::vector<Cand> cands;
    cands.reserve(queue.size() + step_queue.size());
    for (const int id : step_queue) {
      const RequestRecord& rec = (*records)[static_cast<std::size_t>(id)];
      RequestView v;
      v.now_ns = t;
      v.arrival_ns = arrival_of(id);
      v.latency_class = (*trace)[static_cast<std::size_t>(id)].latency_class;
      v.is_step = true;
      v.last_token_ns = rec.last_token_ns;
      v.tokens = rec.tokens;
      const Triage tg = policy->triage(v);
      if (tg.verdict == Verdict::kShed) {
        cancel_session(id);
        continue;
      }
      if (tg.verdict == Verdict::kDefer)
        ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kTriage, id,
                                      class_idx(v.latency_class)));
      cands.push_back(Cand{id, tg.deadline_ns, tg.verdict == Verdict::kDefer, true});
    }
    step_queue.clear();
    for (const int id : queue) {
      RequestView v;
      v.now_ns = t;
      v.arrival_ns = arrival_of(id);
      v.latency_class = (*trace)[static_cast<std::size_t>(id)].latency_class;
      const Triage tg = policy->triage(v);
      if (tg.verdict == Verdict::kShed) {
        shed_request(id);
        continue;
      }
      if (tg.verdict == Verdict::kDefer)
        ACROBAT_TRACE(tr, tr->instant(trace::EventKind::kTriage, id,
                                      class_idx(v.latency_class)));
      cands.push_back(Cand{id, tg.deadline_ns, tg.verdict == Verdict::kDefer, false});
    }
    // stable: FIFO within equal (defer, deadline) — arrival order survives.
    std::stable_sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.defer != b.defer) return !a.defer;
      return a.key < b.key;
    });
    // One EDF pass over steps and arrivals together: the *order* is shared
    // (a step with a tight token deadline resumes before a later-deadline
    // arrival spawns, so its ops record first), but only arrivals consume
    // the width budget — a step's session is already in the live pool, and
    // budget-gating steps would livelock a width-capped pool of parked
    // sessions (see serve.cpp).
    queue.clear();
    std::size_t admitted = 0;
    for (const Cand& c : cands) {
      if (c.step) {
        // With a decode-aware policy the per-window step budget meters
        // unparks; excess steps return to step_queue in EDF order and get
        // re-triaged next window (their deadlines only tighten).
        if (step_budget == 0) {
          step_queue.push_back(c.id);
          continue;
        }
        if (step_budget != static_cast<std::size_t>(-1)) --step_budget;
        const bool ok = fs.unpark(c.id);
        assert(ok && "queued step must correspond to a parked fiber");
        (void)ok;
        ACROBAT_TRACE(tr,
                      tr->instant(trace::EventKind::kAdmit, c.id,
                                  (*trace)[static_cast<std::size_t>(c.id)].model_id,
                                  (*records)[static_cast<std::size_t>(c.id)].tokens));
      } else if (admitted < max_admit) {
        spawn_request(c.id);
        ++admitted;
      } else {
        queue.push_back(c.id);  // keep EDF order
      }
    }
    report.max_live = std::max(report.max_live, in_flight.size());
  };

  // Trigger-boundary admission (DESIGN.md §7/§8): whatever arrived while
  // the live pool was recording joins this trigger's pending set, so one
  // trigger batches old and new requests — now across models too.
  const auto admission_hook = [&] {
    drain_inbox();
    const AdmitDecision d = policy->decide(make_ctx());
    step_budget = d.max_step_admit;  // new trigger window
    admit(d.max_admit);
    fs.step_ready();  // new fibers record until they suspend
  };
  for (EngineSlot& s : slots) s.eng->set_admission_hook(admission_hook);

  // Token-boundary hook, as in serve.cpp: stamp the token, queue the
  // session for triaged re-admission, park. The mid-stream exemplar
  // threshold defaults to the token deadline — "what did the session that
  // blew its inter-token SLO look like", captured while it is still live.
  std::int64_t step_slow_ns = opts->trace.slow_threshold_ns;
  if (step_slow_ns <= 0) step_slow_ns = opts->policy.token_deadline_ns;
  const auto step_hook = [&](int id) -> Engine::StepVerdict {
    RequestRecord& r = (*records)[static_cast<std::size_t>(id)];
    if (awaiting[static_cast<std::size_t>(id)] != 0) {
      awaiting[static_cast<std::size_t>(id)] = 0;
      return r.cancelled ? Engine::StepVerdict::kStop : Engine::StepVerdict::kRun;
    }
    const std::int64_t t = now();
    ++r.tokens;
    ++report.tokens;
    if (r.first_token_ns < 0) {
      r.first_token_ns = t;
      ++live_decode;
      report.ttft_ms.add(static_cast<double>(t - r.arrival_ns) * 1e-6);
    } else {
      const std::int64_t gap = t - r.last_token_ns;
      report.inter_token_ms.add(static_cast<double>(gap) * 1e-6);
      ACROBAT_TRACE(tr, {
        if (step_slow_ns > 0 && gap >= step_slow_ns)
          tr->capture_exemplar(id, r.last_token_ns, t, gap);
      });
    }
    r.last_token_ns = t;
    if (r.cancelled) return Engine::StepVerdict::kStop;
    awaiting[static_cast<std::size_t>(id)] = 1;
    step_queue.push_back(id);
    return Engine::StepVerdict::kPark;
  };
  for (EngineSlot& s : slots) s.eng->set_step_hook(step_hook);

  for (;;) {
    drain_inbox();
    fs.reap_done();
    prune_in_flight();
    ACROBAT_TRACE(tr, maybe_tick(now()));
    if (in_flight.empty() && queue.empty()) {
      if (inbox.closed() && inbox.empty_hint()) break;
      relax();  // idle: poll for the next arrival
      continue;
    }
    const AdmitDecision d = policy->decide(make_ctx());
    admit(d.max_admit);
    if (fs.step_ready() > 0) continue;
    if (fs.any_blocked()) {
      if (d.hold_until_ns > now() && (!inbox.closed() || !inbox.empty_hint())) {
        while (now() < d.hold_until_ns && inbox.empty_hint() && !inbox.closed()) relax();
        continue;
      }
      // One cadence, every model: fire each engine with pending work. A
      // fiber blocked on a not-yet-triggered engine just re-suspends.
      for (EngineSlot& s : slots) s.eng->trigger_execution();
      fs.wake_blocked();
    } else if (!step_queue.empty()) {
      // All live sessions parked with the window's step budget spent: no
      // trigger will reset it, so open a minimal window (see serve.cpp).
      step_budget = std::max<std::size_t>(step_budget, 1);
    }
  }

  for (EngineSlot& s : slots) {
    s.eng->set_step_hook(nullptr);
    s.eng->set_admission_hook(nullptr);
    s.eng->set_fiber_scheduler(nullptr);
  }
  report.triggers = fs.idle_triggers();
  report.stacks_allocated = fs.stacks_allocated();
  for (const EngineSlot& s : slots) {
    merge_stats(report.stats, s.eng->stats());
    merge_mem(report.mem, s.eng->memory());
  }
}

// --------------------------------------------------------------- dispatching

std::vector<std::unique_ptr<FleetShard>> make_shards(
    const ModelRegistry& reg, const std::vector<Request>& trace, const FleetOptions& opts,
    std::vector<RequestRecord>& records, std::int64_t epoch) {
  std::vector<std::unique_ptr<FleetShard>> shards;
  shards.reserve(static_cast<std::size_t>(opts.shards));
  for (int s = 0; s < opts.shards; ++s) {
    auto sh = std::make_unique<FleetShard>(trace.size());
    sh->index = s;
    sh->reg = &reg;
    sh->trace = &trace;
    sh->opts = &opts;
    sh->records = &records;
    sh->epoch_ns = epoch;
    if (opts.trace.enabled) {
      sh->tracer = std::make_unique<trace::Tracer>(s, opts.trace.config);
      sh->tracer->set_epoch(epoch);
      sh->ticks = std::make_unique<SpscQueue<trace::MetricsTick>>(4096);
    }
    shards.push_back(std::move(sh));
  }
  return shards;
}

// Run-end trace assembly, shared by both drivers: drain the last metric
// ticks, unroll every ring (dispatcher = tid 0, shard s = tid s + 1).
trace::TraceDump finish_trace(const FleetOptions& opts, trace::TraceDump dump,
                              const std::vector<std::unique_ptr<FleetShard>>& shards,
                              const trace::Tracer* disp_tracer) {
  if (!opts.trace.enabled) return dump;
  trace::MetricsTick t;
  for (auto& sh : shards)
    while (sh->ticks->pop(t)) dump.ticks.push_back(t);
  dump.tracks.push_back(trace::dump_track(*disp_tracer, 0, "dispatcher"));
  for (std::size_t s = 0; s < shards.size(); ++s)
    dump.tracks.push_back(trace::dump_track(*shards[s]->tracer, static_cast<int>(s) + 1,
                                            "shard" + std::to_string(s)));
  dump.metric_names = shards.front()->metric_names;
  for (auto& sh : shards) dump.dropped_ticks += sh->dropped_ticks;
  return dump;
}

// Routes one request: restrict to the class's affinity set (empty = all
// shards), then round-robin or least-loaded within it (ties → lowest index).
int route(const Request& req, const FleetOptions& opts,
          const std::vector<std::unique_ptr<FleetShard>>& shards) {
  const std::vector<int>& aff = opts.class_affinity[static_cast<std::size_t>(
      class_idx(req.latency_class))];
  const auto nth_eligible = [&](std::size_t i) {
    return aff.empty() ? static_cast<int>(i) : aff[i];
  };
  const std::size_t n = aff.empty() ? shards.size() : aff.size();
  if (opts.dispatch == DispatchKind::kRoundRobin)
    return nth_eligible(static_cast<std::size_t>(req.id) % n);
  int target = nth_eligible(0);
  int best_load = INT_MAX;
  for (std::size_t i = 0; i < n; ++i) {
    const int s = nth_eligible(i);
    const int load =
        shards[static_cast<std::size_t>(s)]->outstanding.load(std::memory_order_relaxed);
    if (load < best_load) {  // strict: ties keep the lowest eligible index
      best_load = load;
      target = s;
    }
  }
  return target;
}

void dispatch_to(FleetShard& sh, int id) {
  sh.outstanding.fetch_add(1, std::memory_order_relaxed);
  const bool pushed = sh.inbox.push(id);
  assert(pushed && "inbox sized for the whole trace");
  (void)pushed;
}

FleetResult finalize_result(const std::vector<Request>& trace, const FleetPolicyConfig& pc,
                            std::vector<RequestRecord> records,
                            std::vector<std::unique_ptr<FleetShard>> shards) {
  FleetResult res;
  res.records = std::move(records);

  serve::LatencyHisto lat;
  std::array<serve::LatencyHisto, serve::kNumLatencyClasses> class_lat;
  std::array<int, serve::kNumLatencyClasses> met{};
  int met_total = 0, completed = 0;
  std::int64_t first_arrival = res.records.empty() ? 0 : res.records.front().arrival_ns;
  std::int64_t last_completion = 0;
  for (const RequestRecord& r : res.records) {
    assert(r.completion_ns >= 0 && "every request must complete or shed");
    const Request& rq = trace[static_cast<std::size_t>(r.id)];
    const int ci = class_idx(rq.latency_class);
    ClassReport& cr = res.by_class[static_cast<std::size_t>(ci)];
    ++cr.requests;
    first_arrival = std::min(first_arrival, r.arrival_ns);
    last_completion = std::max(last_completion, r.completion_ns);
    if (r.shed) {
      ++cr.shed;
      ++res.shed;
      continue;
    }
    ++completed;
    const double ms = r.latency_ms();
    lat.add(ms);
    class_lat[static_cast<std::size_t>(ci)].add(ms);
    const std::int64_t d = class_deadline_ns(pc, rq.latency_class);
    if (d <= 0 || r.completion_ns - r.arrival_ns <= d) {
      ++met[static_cast<std::size_t>(ci)];
      ++met_total;
    }
  }
  res.latency_ms = serve::Percentiles::from(lat);
  for (int c = 0; c < serve::kNumLatencyClasses; ++c) {
    ClassReport& cr = res.by_class[static_cast<std::size_t>(c)];
    cr.latency_ms = serve::Percentiles::from(class_lat[static_cast<std::size_t>(c)]);
    cr.goodput = cr.requests > 0
                     ? static_cast<double>(met[static_cast<std::size_t>(c)]) / cr.requests
                     : 1.0;
  }
  res.goodput = res.records.empty()
                    ? 1.0
                    : static_cast<double>(met_total) / static_cast<double>(res.records.size());
  res.makespan_ms = static_cast<double>(last_completion - first_arrival) * 1e-6;
  if (res.makespan_ms > 0)
    res.throughput_rps = static_cast<double>(completed) / (res.makespan_ms * 1e-3);
  res.shards.reserve(shards.size());
  for (auto& sh : shards) res.shards.push_back(std::move(sh->report));
  serve::LatencyHisto ttft, gap;
  for (const ShardReport& s : res.shards) {
    ttft.merge(s.ttft_ms);
    gap.merge(s.inter_token_ms);
    res.tokens += s.tokens;
    res.cancelled += s.cancelled;
  }
  res.ttft_ms = serve::Percentiles::from(ttft);
  res.inter_token_ms = serve::Percentiles::from(gap);
  if (res.makespan_ms > 0)
    res.tokens_per_sec = static_cast<double>(res.tokens) / (res.makespan_ms * 1e-3);
  return res;
}

// Documented trace contract, validated loudly (config_die, not assert): a
// hand-built trace that bypasses generate_load must fail identically in
// Release, where an assert would let bad ids index records out of bounds.
void check_trace(const ModelRegistry& reg, const std::vector<Request>& trace,
                 bool sorted_arrivals) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].id != static_cast<int>(i))
      config_die("trace ids must be 0..N-1 in order (generate_load's contract)");
    if (sorted_arrivals && i > 0 && trace[i].arrival_ns < trace[i - 1].arrival_ns)
      config_die("trace must be sorted by arrival_ns");
    if (trace[i].model_id < 0 || trace[i].model_id >= reg.num_models())
      config_die("trace names a model_id outside the registry");
    if (trace[i].input_index >=
        reg.model(trace[i].model_id).dataset.inputs.size())
      config_die("trace input_index outside the model's dataset");
  }
}

}  // namespace

// ----------------------------------------------------------------- registry

int ModelRegistry::add(const models::ModelSpec& spec, bool large, models::Dataset ds) {
  if (prepared_) config_die("ModelRegistry::add after prepare()");
  if (ds.inputs.empty()) config_die("ModelRegistry::add with an empty dataset");
  const std::size_t w0 = decls_.size();
  models::BuildCtx bctx{compiled_.program, compiled_.module.registry, cfg_, large, decls_};
  const int entry_idx = spec.build(bctx);

  FleetModel fm;
  fm.name = spec.name;
  fm.large = large;
  fm.dataset = std::move(ds);
  fm.entry = compiled_.program.funcs[static_cast<std::size_t>(entry_idx)];
  fm.entry_index = entry_idx;
  fm.weight_begin = w0;
  fm.weight_end = decls_.size();
  // This model's weights, under its own solo seed: bitwise-identical to a
  // solo harness::prepare, which is what the parity tests cross-check.
  const std::vector<models::WeightDecl> slice(decls_.begin() + static_cast<std::ptrdiff_t>(w0),
                                              decls_.end());
  harness::materialize_weights(spec.name, large, slice, weights_);
  models_.push_back(std::move(fm));
  return static_cast<int>(models_.size()) - 1;
}

void ModelRegistry::prepare() {
  if (prepared_) config_die("ModelRegistry::prepare called twice");
  if (models_.empty()) config_die("ModelRegistry::prepare with no models");
  // finalize propagates may_sync over the whole merged program; the nominal
  // main it designates is unused — shards enter through per-model entries.
  ir::finalize(compiled_.program, models_.front().entry_index);
  harness::apply_default_schedules(compiled_.module.registry);
  prepared_ = true;
}

std::vector<serve::ModelMix> ModelRegistry::uniform_mix() const {
  std::vector<serve::ModelMix> mix;
  mix.reserve(models_.size());
  for (std::size_t m = 0; m < models_.size(); ++m)
    mix.push_back(serve::ModelMix{static_cast<int>(m), 1.0, models_[m].dataset.inputs.size(),
                                  1.0, 0.0});
  return mix;
}

// ------------------------------------------------------------------ policy

std::int64_t class_deadline_ns(const FleetPolicyConfig& cfg, LatencyClass c) {
  return cfg.deadline_ns[static_cast<std::size_t>(class_idx(c))];
}

std::unique_ptr<serve::BatchPolicy> make_fleet_policy(const FleetPolicyConfig& cfg) {
  return std::make_unique<FleetPolicy>(cfg);
}

// ---------------------------------------------------------------- validation

void validate(const FleetOptions& opts) {
  if (opts.shards <= 0) config_die("FleetOptions.shards must be > 0");
  if (opts.launch_overhead_ns < 0)
    config_die("FleetOptions.launch_overhead_ns must be >= 0");
  if (opts.policy.shed_grace < 0) config_die("FleetPolicyConfig.shed_grace must be >= 0");
  if (opts.policy.est_service_ns < 0)
    config_die("FleetPolicyConfig.est_service_ns must be >= 0");
  for (const auto& aff : opts.class_affinity)
    for (const int s : aff)
      if (s < 0 || s >= opts.shards)
        config_die("FleetOptions.class_affinity names a shard out of range");
}

void validate(const ClosedLoopSpec& spec) {
  if (spec.clients <= 0) config_die("ClosedLoopSpec.clients must be > 0");
  if (spec.per_client <= 0) config_die("ClosedLoopSpec.per_client must be > 0");
  if (spec.think_mean_ms < 0) config_die("ClosedLoopSpec.think_mean_ms must be >= 0");
}

// ----------------------------------------------------------------- open loop

FleetResult serve_fleet(const ModelRegistry& reg, const std::vector<Request>& trace,
                        const FleetOptions& opts) {
  if (!reg.prepared()) config_die("serve_fleet before ModelRegistry::prepare()");
  validate(opts);
  check_trace(reg, trace, /*sorted_arrivals=*/true);

  std::vector<RequestRecord> records(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    records[i].id = trace[i].id;
    records[i].arrival_ns = trace[i].arrival_ns;
  }

  const std::int64_t epoch = now_ns();
  std::vector<std::unique_ptr<FleetShard>> shards =
      make_shards(reg, trace, opts, records, epoch);
  // The dispatcher thread owns its own ring (single-writer discipline).
  std::unique_ptr<trace::Tracer> disp_tracer;
  if (opts.trace.enabled) {
    disp_tracer = std::make_unique<trace::Tracer>(0, opts.trace.config);
    disp_tracer->set_epoch(epoch);
  }
  trace::Tracer* const dtr = disp_tracer.get();
  trace::TraceDump dump;
  const auto drain_ticks = [&] {
    if (!opts.trace.enabled) return;
    trace::MetricsTick t;
    for (auto& sh : shards)
      while (sh->ticks->pop(t)) dump.ticks.push_back(t);
  };
  std::vector<std::thread> workers;
  workers.reserve(shards.size());
  for (auto& sh : shards) workers.emplace_back([&shard = *sh] { shard.run_worker(); });

  // Open-loop replay: arrivals never wait for the server (DESIGN.md §7).
  for (const Request& req : trace) {
    while (now_ns() - epoch < req.arrival_ns) {
      drain_ticks();
      relax();
    }
    const int target = route(req, opts, shards);
    dispatch_to(*shards[static_cast<std::size_t>(target)], req.id);
    ACROBAT_TRACE(dtr, dtr->instant(trace::EventKind::kDispatch, req.id, target));
  }
  for (auto& sh : shards) sh->inbox.close();
  for (std::thread& w : workers) w.join();

  dump = finish_trace(opts, std::move(dump), shards, dtr);
  FleetResult res = finalize_result(trace, opts.policy, std::move(records), std::move(shards));
  res.trace = std::move(dump);
  return res;
}

// --------------------------------------------------------------- closed loop

std::vector<Request> generate_closed_load(const ClosedLoopSpec& spec,
                                          const std::vector<serve::ModelMix>& mix) {
  validate(spec);
  if (mix.empty()) config_die("generate_closed_load: empty model mix");
  // Reuse the open-loop generator for the per-request content draws (model,
  // input, class come from the same seeded stream contract), then strip the
  // arrival process: issue times exist only once the serve loop runs.
  serve::LoadSpec ls;
  ls.kind = serve::ArrivalKind::kPoisson;
  ls.rate_rps = 1.0;  // arrival times discarded below
  ls.num_requests = spec.clients * spec.per_client;
  ls.seed = spec.seed ^ 0xc105edull;
  std::vector<Request> trace = serve::generate_load(ls, mix);
  for (Request& r : trace) r.arrival_ns = 0;
  return trace;
}

FleetResult serve_fleet_closed(const ModelRegistry& reg, const ClosedLoopSpec& spec,
                               const std::vector<serve::ModelMix>& mix,
                               const FleetOptions& opts) {
  if (!reg.prepared()) config_die("serve_fleet_closed before ModelRegistry::prepare()");
  validate(opts);
  validate(spec);
  std::vector<Request> trace = generate_closed_load(spec, mix);
  check_trace(reg, trace, /*sorted_arrivals=*/false);

  std::vector<RequestRecord> records(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) records[i].id = trace[i].id;

  const std::int64_t epoch = now_ns();
  std::vector<std::unique_ptr<FleetShard>> shards =
      make_shards(reg, trace, opts, records, epoch);
  std::unique_ptr<trace::Tracer> disp_tracer;
  if (opts.trace.enabled) {
    disp_tracer = std::make_unique<trace::Tracer>(0, opts.trace.config);
    disp_tracer->set_epoch(epoch);
  }
  trace::Tracer* const dtr = disp_tracer.get();
  trace::TraceDump dump;
  const auto drain_ticks = [&] {
    if (!opts.trace.enabled) return;
    trace::MetricsTick t;
    for (auto& sh : shards)
      while (sh->ticks->pop(t)) dump.ticks.push_back(t);
  };
  std::vector<std::thread> workers;
  workers.reserve(shards.size());
  for (auto& sh : shards) workers.emplace_back([&shard = *sh] { shard.run_worker(); });

  // K logical clients: issue → wait for completion (via the shard outbox)
  // → think → issue the next. Offered load adapts to service rate, so the
  // queue can never build beyond K outstanding requests — the structural
  // contrast with the open-loop frontier.
  const int total = spec.clients * spec.per_client;
  std::vector<int> next_k(static_cast<std::size_t>(spec.clients), 0);
  std::vector<int> outstanding_id(static_cast<std::size_t>(spec.clients), -1);
  std::vector<std::int64_t> ready_at(static_cast<std::size_t>(spec.clients), 0);
  std::vector<Rng> think_rng;
  think_rng.reserve(static_cast<std::size_t>(spec.clients));
  for (int c = 0; c < spec.clients; ++c)
    think_rng.emplace_back(spec.seed ^ (0x7417c9ull + 0x9e3779b97f4a7c15ull *
                                                          static_cast<std::uint64_t>(c + 1)));
  const auto now_rel = [&] { return now_ns() - epoch; };

  int completed = 0;
  while (completed < total) {
    for (auto& sh : shards) {
      int id;
      while (sh->outbox.pop(id)) {
        ++completed;
        const std::size_t c = static_cast<std::size_t>(id / spec.per_client);
        outstanding_id[c] = -1;
        std::int64_t think = 0;
        if (spec.think_mean_ms > 0)
          think = serve::detail::exp_gap_ns(think_rng[c], 1000.0 / spec.think_mean_ms);
        ready_at[c] = now_rel() + think;
      }
    }
    for (int c = 0; c < spec.clients; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (outstanding_id[ci] >= 0 || next_k[ci] >= spec.per_client) continue;
      if (now_rel() < ready_at[ci]) continue;
      const int id = c * spec.per_client + next_k[ci]++;
      Request& rq = trace[static_cast<std::size_t>(id)];
      rq.arrival_ns = now_rel();  // issue time IS the arrival in a closed loop
      records[static_cast<std::size_t>(id)].arrival_ns = rq.arrival_ns;
      outstanding_id[ci] = id;
      const int target = route(rq, opts, shards);
      dispatch_to(*shards[static_cast<std::size_t>(target)], id);
      ACROBAT_TRACE(dtr, dtr->instant(trace::EventKind::kDispatch, id, target));
    }
    drain_ticks();
    relax();
  }
  for (auto& sh : shards) sh->inbox.close();
  for (std::thread& w : workers) w.join();

  dump = finish_trace(opts, std::move(dump), shards, dtr);
  FleetResult res = finalize_result(trace, opts.policy, std::move(records), std::move(shards));
  res.trace = std::move(dump);
  return res;
}

}  // namespace acrobat::fleet
