#include "exec/vm.h"

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace acrobat::exec {
namespace {

// String register names and shared_ptr boxing are the point, not an
// accident: this models an interpreter whose environment is a dynamic map
// of boxed objects (the "naive boxed/string-environment interpreter" the
// Table 4 bench header describes).
std::string reg_name(int r) {
  std::string s = "%r";
  s += std::to_string(r);
  return s;
}

using Env = std::unordered_map<std::string, std::shared_ptr<Value>>;

const Value& read(const Env& env, int r) {
  auto it = env.find(reg_name(r));
  if (it == env.end()) {
    std::ostringstream os;
    os << "vm: undefined register " << reg_name(r);
    throw std::runtime_error(os.str());
  }
  return *it->second;
}

void write(Env& env, int r, Value v) {
  env[reg_name(r)] = std::make_shared<Value>(std::move(v));
}

void check_kind(const Value& v, Value::Kind want, const char* what) {
  if (v.kind != want) {
    std::ostringstream os;
    os << "vm: expected " << what << ", got kind " << static_cast<int>(v.kind);
    throw std::runtime_error(os.str());
  }
}

}  // namespace

Value Vm::run(std::span<const Value> args, InstCtx ctx) {
  RunState st;
  st.ctx = ctx;
  return exec(*prog_.main, std::vector<Value>(args.begin(), args.end()), st);
}

Value Vm::exec(const ir::Func& f, const std::vector<Value>& args, RunState& st) {
  Env env;
  env.reserve(static_cast<std::size_t>(f.num_regs));
  for (std::size_t i = 0; i < args.size(); ++i) write(env, static_cast<int>(i), args[i]);

  std::size_t pc = 0;
  while (pc < f.code.size()) {
    const ir::Instr& ins = f.code[pc];
    switch (ins.op) {
      case ir::Op::kLoadInput:
        write(env, ins.dst, args[static_cast<std::size_t>(ins.attr)]);
        break;
      case ir::Op::kLoadWeight:
        write(env, ins.dst, Value::tensor(weights_[static_cast<std::size_t>(ins.attr)]));
        break;
      case ir::Op::kKernel: {
        std::vector<TRef> srcs;
        srcs.reserve(ins.srcs.size());
        for (const int s : ins.srcs) {
          const Value& v = read(env, s);
          check_kind(v, Value::kTensor, "tensor operand");
          srcs.push_back(v.tref);
        }
        write(env, ins.dst,
              Value::tensor(engine_.add_op(static_cast<int>(ins.attr), srcs.data(),
                                           static_cast<int>(srcs.size()), st.ctx, st.phase)));
        break;
      }
      case ir::Op::kTupleMake: {
        std::vector<Value> elems;
        for (const int s : ins.srcs) elems.push_back(read(env, s));
        write(env, ins.dst, Value::make_tuple(std::move(elems)));
        break;
      }
      case ir::Op::kTupleGet: {
        const Value& t = read(env, ins.srcs[0]);
        check_kind(t, Value::kTuple, "tuple");
        write(env, ins.dst, t.tuple->elems.at(static_cast<std::size_t>(ins.attr)));
        break;
      }
      case ir::Op::kTupleLen: {
        const Value& t = read(env, ins.srcs[0]);
        check_kind(t, Value::kTuple, "tuple");
        write(env, ins.dst, Value::integer(static_cast<std::int64_t>(t.tuple->elems.size())));
        break;
      }
      case ir::Op::kTupleGetDyn: {
        const Value& t = read(env, ins.srcs[0]);
        const Value& i = read(env, ins.srcs[1]);
        check_kind(t, Value::kTuple, "tuple");
        check_kind(i, Value::kInt, "int index");
        write(env, ins.dst, t.tuple->elems.at(static_cast<std::size_t>(i.i)));
        break;
      }
      case ir::Op::kAdtMake: {
        std::vector<Value> fields;
        for (const int s : ins.srcs) fields.push_back(read(env, s));
        write(env, ins.dst, Value::make_adt(static_cast<int>(ins.attr), std::move(fields)));
        break;
      }
      case ir::Op::kAdtTag: {
        const Value& a = read(env, ins.srcs[0]);
        check_kind(a, Value::kAdt, "adt");
        write(env, ins.dst, Value::integer(a.adt->tag));
        break;
      }
      case ir::Op::kAdtField: {
        const Value& a = read(env, ins.srcs[0]);
        check_kind(a, Value::kAdt, "adt");
        write(env, ins.dst, a.adt->fields.at(static_cast<std::size_t>(ins.attr)));
        break;
      }
      case ir::Op::kConstInt:
        write(env, ins.dst, Value::integer(ins.attr));
        break;
      case ir::Op::kAddInt: {
        const std::int64_t b = ins.srcs.size() > 1 ? read(env, ins.srcs[1]).i : ins.attr;
        write(env, ins.dst, Value::integer(read(env, ins.srcs[0]).i + b));
        break;
      }
      case ir::Op::kLtInt:
        write(env, ins.dst,
              Value::integer(read(env, ins.srcs[0]).i < read(env, ins.srcs[1]).i ? 1 : 0));
        break;
      case ir::Op::kMove:
        write(env, ins.dst, read(env, ins.srcs[0]));
        break;
      case ir::Op::kJmp:
        pc = static_cast<std::size_t>(ins.target);
        continue;
      case ir::Op::kBrIf:
        if (read(env, ins.srcs[0]).i != 0) {
          pc = static_cast<std::size_t>(ins.target);
          continue;
        }
        break;
      case ir::Op::kCall: {
        std::vector<Value> call_args;
        for (const int s : ins.srcs) call_args.push_back(read(env, s));
        write(env, ins.dst,
              exec(*prog_.funcs[static_cast<std::size_t>(ins.attr)], call_args, st));
        break;
      }
      case ir::Op::kRet:
        return read(env, ins.srcs[0]);
      case ir::Op::kPhase:
        st.phase = static_cast<int>(ins.attr);
        break;
      case ir::Op::kSyncSign: {
        const Value& v = read(env, ins.srcs[0]);
        check_kind(v, Value::kTensor, "tensor");
        const float x = engine_.scalar(v.tref);
        write(env, ins.dst,
              Value::integer(x > static_cast<double>(ins.attr) * 1e-6 ? 1 : 0));
        break;
      }
      case ir::Op::kStepKeep: {
        const Value& v = read(env, ins.srcs[0]);
        check_kind(v, Value::kTensor, "tensor");
        const Engine::StepResult r = engine_.session_step(v.tref, st.ctx);
        write(env, ins.dst,
              Value::make_tuple({Value::tensor(r.state), Value::integer(r.cont)}));
        break;
      }
    }
    ++pc;
  }
  return Value{};
}

}  // namespace acrobat::exec
