// StackRNN: an RNN driven by a push/pop action program, with the stack kept
// as an ADT cons list in the IR — structured (non-tensor) dynamic control
// flow that the AOT path executes natively and the boxed VM pays for.
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

// Actions: Push(tag 0){x, rest}, Pop(tag 1){rest}, End(tag 2){}.
Dataset dataset(bool large, int batch, std::uint64_t seed) {
  Dataset ds;
  ds.pool = std::make_shared<TensorPool>();
  Rng rng(seed);
  const int h = hidden_dim(large);
  for (int i = 0; i < batch; ++i) {
    const int len = rng.range(12, 18);
    int depth = 0;
    std::vector<int> kinds;
    for (int t = 0; t < len; ++t) {
      const bool push = depth == 0 || rng.uniform_int(5) < 3;
      kinds.push_back(push ? 0 : 1);
      depth += push ? 1 : -1;
    }
    Value prog = Value::make_adt(2, {});
    for (int t = len - 1; t >= 0; --t) {
      if (kinds[static_cast<std::size_t>(t)] == 0) {
        Value x = dataset_tensor(ds, ds.pool->alloc_random(RowVec(h), rng, 1.0f));
        prog = Value::make_adt(0, {std::move(x), std::move(prog)});
      } else {
        prog = Value::make_adt(1, {std::move(prog)});
      }
    }
    ds.inputs.push_back(std::move(prog));
  }
  return ds;
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const RnnCell push_cell = make_rnn(ctx, "stackrnn.push", h, h);
  const RnnCell pop_cell = make_rnn(ctx, "stackrnn.pop", h, h);
  const int k_zero = make_zeros(ctx, "stackrnn.zero", h);
  const ClassifierHead cls = make_classifier(ctx, "stackrnn", h);

  // proc(actions, stack, h) -> h
  ir::FuncBuilder proc(ctx.program, "proc", 3);
  {
    const int tag = proc.adt_tag(proc.arg(0));
    const int one = proc.cint(1);
    const int is_end = proc.lt(one, tag);  // tag == 2
    const int to_rest = proc.br_if(is_end);
    const int to_pop = proc.br_if(tag);  // tag == 1
    // Push(x, rest): h' = cell(x, h), stack' = Cons(h', stack)
    const int x = proc.adt_field(proc.arg(0), 0);
    const int nh = emit_rnn(proc, push_cell, x, proc.arg(2));
    const int pushed = proc.adt(1, {nh, proc.arg(1)});
    proc.ret(proc.call(proc.index(), {proc.adt_field(proc.arg(0), 1), pushed, nh}));
    // Pop(rest): consume the stack top.
    proc.patch(to_pop, proc.here());
    const int top = proc.adt_field(proc.arg(1), 0);
    const int rest_stack = proc.adt_field(proc.arg(1), 1);
    const int ph = emit_rnn(proc, pop_cell, top, proc.arg(2));
    proc.ret(proc.call(proc.index(), {proc.adt_field(proc.arg(0), 0), rest_stack, ph}));
    // End
    proc.patch(to_rest, proc.here());
    proc.ret(proc.arg(2));
    proc.finish();
  }

  ir::FuncBuilder main(ctx.program, "main", 1);
  {
    const int z = main.kernel(k_zero, {});
    const int nil = main.adt(0, {});
    const int r = main.call(proc.index(), {main.arg(0), nil, z});
    main.set_phase(1);
    main.ret(emit_classifier(main, cls, r));
    main.finish();
  }
  return main.index();
}

}  // namespace

ModelSpec make_stackrnn_spec() { return ModelSpec{"StackRNN", dataset, build}; }

}  // namespace acrobat::models
