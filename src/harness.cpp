#include "harness/harness.h"

#include <functional>

#include "exec/aot.h"
#include "exec/vm.h"
#include "runtime/fiber.h"

namespace acrobat::harness {

void collect_output_trefs(const Value& v, std::vector<TRef>& out) {
  switch (v.kind) {
    case Value::kTensor:
      out.push_back(v.tref);
      return;
    case Value::kAdt:
      for (const Value& f : v.adt->fields) collect_output_trefs(f, out);
      return;
    case Value::kTuple:
      for (const Value& e : v.tuple->elems) collect_output_trefs(e, out);
      return;
    default:
      return;
  }
}

EngineConfig engine_config_for(const passes::PipelineConfig& cfg,
                               std::int64_t launch_overhead_ns, bool time_activities) {
  EngineConfig ec;
  ec.launch_overhead_ns = launch_overhead_ns;
  ec.time_activities = time_activities;
  ec.lazy = cfg.lazy;
  ec.inline_depth = cfg.inline_depth;
  ec.phases = cfg.phases;
  ec.gather_fusion = cfg.gather_fusion;
  return ec;
}

void apply_default_schedules(KernelRegistry& registry) {
  for (std::size_t i = 0; i < registry.num_kernels(); ++i) {
    Kernel& k = registry.kernel(static_cast<int>(i));
    k.variant = k.num_variants - 1;
  }
}

Prepared prepare(const models::ModelSpec& spec, bool large, const passes::PipelineConfig& cfg) {
  Prepared p;
  p.cfg = cfg;
  p.large = large;

  std::vector<models::WeightDecl> decls;
  models::BuildCtx bctx{p.compiled.program, p.compiled.module.registry, cfg, large, decls};
  const int main_idx = spec.build(bctx);
  ir::finalize(p.compiled.program, main_idx);
  apply_default_schedules(p.compiled.module.registry);

  materialize_weights(spec.name, large, decls, p.weights);
  return p;
}

void materialize_weights(const std::string& model_name, bool large,
                         const std::vector<models::WeightDecl>& decls, Weights& out) {
  // Weights are deterministic per (model, size) so every pipeline config
  // with the same weight layout sees the same parameters.
  std::uint64_t seed = 0x243f6a8885a308d3ull ^ (large ? 0x5851f42d4c957f2dull : 0);
  for (const char c : model_name) seed = seed * 131 + static_cast<unsigned char>(c);
  Rng rng(seed);
  if (!out.pool) out.pool = std::make_shared<TensorPool>();
  for (const models::WeightDecl& d : decls)
    out.tensors.push_back(d.scale == 0.0f ? out.pool->alloc_zero(d.shape)
                                          : out.pool->alloc_random(d.shape, rng, d.scale));
}

RunResult run_with_engine(const Prepared& p, const models::Dataset& ds, const RunOptions& opts,
                          EngineConfig ec, bool use_fibers, bool use_vm) {
  RunResult r;
  const std::int64_t t0 = now_ns();
  Engine engine(p.compiled.module.registry, ec);
  engine.set_tracer(opts.tracer);

  std::vector<TRef> wrefs, drefs;
  wrefs.reserve(p.weights.tensors.size());
  for (const Tensor& t : p.weights.tensors) wrefs.push_back(engine.add_concrete(t.view()));
  drefs.reserve(ds.tensors.size());
  for (const Tensor& t : ds.tensors) drefs.push_back(engine.add_concrete(t.view()));

  aot::AotExecutor aot_exec(p.compiled.program, engine, wrefs);
  exec::Vm vm_exec(p.compiled.program, engine, wrefs);

  const std::size_t n = ds.inputs.size();
  std::vector<Value> results(n);
  // Multi-repetition mode: re-run the whole instance batch in this same
  // engine and report only the final repetition (earlier ones are warmup —
  // they populate the schedule-memo cache and any constant caches). Wall
  // and stats snapshots below make repeats == 1 bit-identical to the old
  // single-pass accounting.
  const int reps = opts.repeats > 0 ? opts.repeats : 1;
  EngineStats warm;
  std::int64_t t_last = t0;
  try {
    auto run_one = [&](std::size_t i) {
      InstCtx ctx;
      ctx.instance = static_cast<int>(i);
      const Value in = models::remap_trefs(ds.inputs[i], drefs);
      results[i] = use_vm ? vm_exec.run(std::span<const Value>(&in, 1), ctx)
                          : aot_exec.run(std::span<const Value>(&in, 1), ctx);
    };
    for (int rep = 0; rep < reps; ++rep) {
      if (reps > 1 && rep == reps - 1) {
        warm = engine.stats();
        t_last = now_ns();
      }
      if (use_fibers) {
        FiberScheduler fs;
        fs.set_tracer(opts.tracer);
        engine.set_fiber_scheduler(&fs);
        std::vector<FiberTask> tasks;
        tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i) tasks.push_back([&, i] { run_one(i); });
        fs.run(std::move(tasks), [&] { engine.trigger_execution(); });
        engine.set_fiber_scheduler(nullptr);
      } else {
        for (std::size_t i = 0; i < n; ++i) run_one(i);
      }
      engine.trigger_execution();
    }

    for (std::size_t i = 0; i < n; ++i) {
      std::vector<TRef> outs;
      collect_output_trefs(results[i], outs);
      std::vector<float> flat;
      for (const TRef ref : outs) {
        const Tensor t = engine.force(ref);
        if (opts.collect_outputs)
          flat.insert(flat.end(), t.data, t.data + t.numel());
      }
      if (opts.collect_outputs) r.outputs.push_back(std::move(flat));
    }
  } catch (const OomError&) {
    r.oom = true;
  }

  r.wall_ms = static_cast<double>(now_ns() - t_last) * 1e-6;
  r.stats = engine.stats();
  r.kernel_invocations = engine.stats().kernel_invocations;
  if (reps > 1) {
    // Report the final repetition: cumulative stats minus the warm snapshot.
    r.stats.dfg_construction.ns -= warm.dfg_construction.ns;
    r.stats.scheduling.ns -= warm.scheduling.ns;
    r.stats.gather_copy.ns -= warm.gather_copy.ns;
    r.stats.kernel_exec.ns -= warm.kernel_exec.ns;
    r.stats.launch_overhead.ns -= warm.launch_overhead.ns;
    r.stats.kernel_launches -= warm.kernel_launches;
    r.stats.gather_bytes -= warm.gather_bytes;
    r.stats.flat_batches -= warm.flat_batches;
    r.stats.stacked_batches -= warm.stacked_batches;
    r.stats.scheduling_allocs -= warm.scheduling_allocs;
    r.stats.sched_cache_hits -= warm.sched_cache_hits;
    r.stats.sched_cache_misses -= warm.sched_cache_misses;
    r.stats.sched_cache_evictions -= warm.sched_cache_evictions;
    for (std::size_t i = 0; i < r.kernel_invocations.size(); ++i)
      r.kernel_invocations[i] -= warm.kernel_invocations[i];
  }
  return r;
}

RunResult run_acrobat(const Prepared& p, const models::Dataset& ds, const RunOptions& opts) {
  EngineConfig ec =
      engine_config_for(p.cfg, opts.launch_overhead_ns, opts.time_activities);
  ec.sched_memo = opts.sched_memo;
  // Fibers need the compiled-in depth counters; without inline depth the
  // runtime falls back to instance-at-a-time triggering at sync points.
  const bool fibers =
      p.compiled.program.main->may_sync && p.cfg.inline_depth && p.cfg.lazy;
  return run_with_engine(p, ds, opts, ec, fibers, /*use_vm=*/false);
}

RunResult run_vm(const Prepared& p, const models::Dataset& ds, const RunOptions& opts) {
  EngineConfig ec =
      engine_config_for(p.cfg, opts.launch_overhead_ns, opts.time_activities);
  // The naive interpreter recovers depths dynamically (Table 4's VM).
  ec.inline_depth = false;
  return run_with_engine(p, ds, opts, ec, /*use_fibers=*/false, /*use_vm=*/true);
}

}  // namespace acrobat::harness
