// GraphRNN: node states propagate along a chain-with-skip DAG (each node
// reads its two predecessors), a fixed-topology stand-in for graph
// propagation used by the training bench.
#include "models/cells.h"
#include "models/specs.h"

namespace acrobat::models {
namespace {

Dataset dataset(bool large, int batch, std::uint64_t seed) {
  return make_token_dataset(large, batch, seed, 10, 14);
}

int build(BuildCtx& ctx) {
  const int h = hidden_dim(ctx.large);
  const GruCell cell = make_gru(ctx, "graphrnn", h, h);
  const int k_zero = make_zeros(ctx, "graphrnn.zero", h);
  const int k_pred = ctx.kernel("graphrnn.pred_sum", OpKind::kAdd, 0, {Shape(h), Shape(h)});
  const ClassifierHead cls = make_classifier(ctx, "graphrnn", h);

  ir::FuncBuilder b(ctx.program, "main", 1);
  const int seq = b.arg(0);
  const int n = b.tuple_len(seq);
  const int z = b.kernel(k_zero, {});
  const int h1 = b.var(z);  // predecessor
  const int h2 = b.var(z);  // pre-predecessor (skip edge)
  const int i = b.var(b.cint(0));
  const int head = b.here();
  const int cond = b.lt(i, n);
  const int body = b.br_if(cond);
  const int exit = b.jmp();
  b.patch(body, b.here());
  {
    const int x = b.tuple_get_dyn(seq, i);
    const int preds = b.kernel(k_pred, {h1, h2});
    const int nh = emit_gru(b, cell, x, preds);
    b.assign(h2, h1);
    b.assign(h1, nh);
    b.assign(i, b.add_int_imm(i, 1));
    b.jmp_to(head);
  }
  b.patch(exit, b.here());
  b.set_phase(1);
  b.ret(emit_classifier(b, cls, h1));
  b.finish();
  return b.index();
}

}  // namespace

ModelSpec make_graphrnn_spec() { return ModelSpec{"GraphRNN", dataset, build}; }

}  // namespace acrobat::models
