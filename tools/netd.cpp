// netd: the standalone acrobat ingress server (DESIGN.md §10).
//
//   netd [--port N] [--uds PATH] [--shards N] [--multiproc] [--model NAME]
//        [--large] [--launch-ns N] [--admission-cap N] [--max-sessions N]
//        [--policy greedy|max-batch|deadline] [--trace PATH]
//        [--auth TOKEN] [--max-inflight-per-conn N] [--no-supervise]
//        [--respawn-budget N] [--ping-ms N] [--liveness-ms N] [--fault SPEC]
//
// Binds loopback TCP (and/or a UDS path), prints the bound endpoint, serves
// until SIGINT/SIGTERM, then drains: stops accepting, 429s new requests,
// finishes in-flight sessions, and prints the ingress counters. With
// --multiproc each shard is a forked --shard-worker child of this binary.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "models/models.h"
#include "net/net.h"

namespace {

volatile sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--shard-worker") == 0)
    return acrobat::net::shard_worker_main(argc, argv);

  using namespace acrobat;
  net::NetOptions o;
  o.port = 7471;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string k = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "netd: %s needs a value\n", k.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (k == "--port") o.port = std::atoi(next());
    else if (k == "--uds") o.uds_path = next();
    else if (k == "--shards") o.shards = std::atoi(next());
    else if (k == "--multiproc") o.multiprocess = true;
    else if (k == "--model") o.model = next();
    else if (k == "--large") o.large = true;
    else if (k == "--launch-ns") o.launch_overhead_ns = std::atoll(next());
    else if (k == "--admission-cap") o.admission_capacity = static_cast<std::size_t>(std::atoll(next()));
    else if (k == "--max-sessions") o.max_sessions = static_cast<std::size_t>(std::atoll(next()));
    else if (k == "--trace") { o.trace.enabled = true; trace_path = next(); }
    else if (k == "--auth") o.auth_token = next();
    else if (k == "--max-inflight-per-conn") o.max_inflight_per_conn = std::atoi(next());
    else if (k == "--no-supervise") o.supervise = false;
    else if (k == "--respawn-budget") o.respawn_budget = std::atoi(next());
    else if (k == "--ping-ms") o.ping_interval_ns = std::atoll(next()) * 1'000'000;
    else if (k == "--liveness-ms") o.liveness_timeout_ns = std::atoll(next()) * 1'000'000;
    else if (k == "--fault") o.fault_spec = next();
    else if (k == "--policy") {
      const std::string p = next();
      if (p == "greedy") o.policy.kind = serve::PolicyKind::kGreedy;
      else if (p == "max-batch") o.policy.kind = serve::PolicyKind::kMaxBatch;
      else if (p == "deadline") o.policy.kind = serve::PolicyKind::kDeadline;
      else { std::fprintf(stderr, "netd: unknown policy %s\n", p.c_str()); return 2; }
    } else {
      std::fprintf(stderr, "netd: unknown flag %s\n", k.c_str());
      return 2;
    }
  }

  // In-proc shards need the model prepared up front; multiproc workers
  // rebuild it from the recipe themselves.
  harness::Prepared prep;
  models::Dataset ds;
  const harness::Prepared* pp = nullptr;
  const models::Dataset* pds = nullptr;
  if (!o.multiprocess) {
    const models::ModelSpec& spec = models::model_by_name(o.model);
    prep = harness::prepare(spec, o.large, passes::PipelineConfig{});
    ds = spec.build_dataset(o.large, o.ds_batch, o.ds_seed);
    pp = &prep;
    pds = &ds;
  }

  net::NetServer srv(pp, pds, o);
  if (!srv.start()) {
    std::fprintf(stderr, "netd: %s\n", srv.error().c_str());
    return 1;
  }
  if (srv.port() >= 0) std::printf("netd: listening on 127.0.0.1:%d\n", srv.port());
  if (!srv.uds_path().empty()) std::printf("netd: listening on %s\n", srv.uds_path().c_str());
  std::printf("netd: model=%s shards=%d %s — Ctrl-C to drain\n", o.model.c_str(),
              o.shards, o.multiprocess ? "multiprocess" : "in-proc");
  std::fflush(stdout);

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  while (g_stop == 0) ::usleep(50'000);

  std::printf("netd: draining...\n");
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  std::printf("netd: conns=%llu requests=%llu completed=%llu 429=%llu errors=%llu "
              "cancelled=%llu drops=%llu tokens=%llu worker_deaths=%llu\n",
              static_cast<unsigned long long>(st.connections),
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.rejected_429),
              static_cast<unsigned long long>(st.errors),
              static_cast<unsigned long long>(st.cancelled),
              static_cast<unsigned long long>(st.conn_drops),
              static_cast<unsigned long long>(st.tokens_streamed),
              static_cast<unsigned long long>(st.worker_deaths));
  std::printf("netd: respawns=%llu respawns_exhausted=%llu degraded=%llu/%llu "
              "sheds=%llu fairness=%llu auth_rejects=%llu fault_kills=%llu\n",
              static_cast<unsigned long long>(st.worker_respawns),
              static_cast<unsigned long long>(st.respawns_exhausted),
              static_cast<unsigned long long>(st.degraded_entries),
              static_cast<unsigned long long>(st.degraded_exits),
              static_cast<unsigned long long>(st.degraded_sheds),
              static_cast<unsigned long long>(st.fairness_rejects),
              static_cast<unsigned long long>(st.auth_rejects),
              static_cast<unsigned long long>(st.fault_kills));
  if (o.trace.enabled && !trace_path.empty()) {
    if (st.trace.write_chrome_json(trace_path))
      std::printf("netd: trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
