// Figure 5: ACROBAT's speedup over the PyTorch-like eager baseline as a
// function of batch size, for TreeLSTM / MV-RNN / BiRNN, small and large.
//
// Paper result: speedups grow with batch size (eager exploits neither batch
// nor instance parallelism); speedups are larger at the small model size
// where per-operator overhead dominates, and smallest for BiRNN (no
// instance parallelism).
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

int main() {
  header("Figure 5: speedup over PyTorch-like eager vs batch size",
         "paper Fig. 5");
  const int batches[] = {1, 2, 4, 8, 16, 32, 64, 128};
  for (const bool large : {false, true}) {
    std::printf("\n%s model size — speedup over eager\n", size_name(large));
    std::printf("%-8s", "batch");
    for (const int b : batches) std::printf(" %7d", b);
    std::printf("\n");
    for (const char* name : {"TreeLSTM", "MV-RNN", "BiRNN"}) {
      const models::ModelSpec& spec = models::model_by_name(name);
      std::printf("%-8s", name);
      for (const int batch : batches) {
        const models::Dataset ds = dataset_for(spec, large, batch);
        harness::Prepared pa =
            harness::prepare(spec, large, passes::PipelineConfig{});
        const double ab = time_min_ms(
            [&] { return harness::run_acrobat(pa, ds, default_opts()); });
        harness::Prepared pe =
            harness::prepare(spec, large, baselines::eager_pipeline_config());
        const double eg = time_min_ms(
            [&] { return baselines::run_eager(pe, ds, default_opts()); });
        std::printf(" %6.1fx", eg / ab);
      }
      std::printf("\n");
    }
  }
  return 0;
}
