// Training ablation: does auto-batching extend to the backward pass?
//
// The paper evaluates inference only but claims its techniques apply to
// training (§9); Qiao & Taura (2019) study dynamic batching for backprop
// explicitly. Our backward pass replays the forward batch plans in reverse,
// so it inherits the forward batching. This bench compares a full training
// step (forward + backward over sum-of-outputs loss) executed as one
// batched mini-batch vs instance-at-a-time, reporting backward launches and
// wall time — the same comparison Fig. 5 makes for inference.
#include "bench_util.h"

#include "exec/aot.h"
#include "grad/backward.h"
#include "runtime/fiber.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

struct StepStats {
  double wall_ms = 0;
  long long fwd_launches = 0;
  long long bwd_launches = 0;
};

void collect_trefs(const Value& v, std::vector<TRef>& out) {
  switch (v.kind) {
    case Value::kTensor: out.push_back(v.tref); return;
    case Value::kAdt:
      for (const Value& f : v.adt->fields) collect_trefs(f, out);
      return;
    case Value::kTuple:
      for (const Value& e : v.tuple->elems) collect_trefs(e, out);
      return;
    default: return;
  }
}

// One training step over `instances` (a subset of ds indices).
StepStats train_step(const harness::Prepared& p, const models::Dataset& ds,
                     const std::vector<int>& instances, bool tdcf) {
  StepStats st;
  const std::int64_t t0 = now_ns();
  Engine engine(p.compiled.module.registry, [] {
    EngineConfig c;
    c.launch_overhead_ns = kLaunchNs;
    return c;
  }());
  std::vector<TRef> wrefs;
  for (const auto& t : p.weights.tensors)
    wrefs.push_back(engine.add_concrete(t.view()));
  std::vector<TRef> drefs;
  for (const auto& t : ds.tensors) drefs.push_back(engine.add_concrete(t.view()));
  aot::AotExecutor exec(p.compiled.program, engine, wrefs);

  std::vector<Value> results(instances.size());
  if (tdcf) {
    FiberScheduler fs;
    engine.set_fiber_scheduler(&fs);
    std::vector<FiberTask> mains;
    for (std::size_t i = 0; i < instances.size(); ++i)
      mains.push_back([&, i] {
        InstCtx ctx;
        ctx.instance = static_cast<int>(i);
        const Value in = models::remap_trefs(ds.inputs[instances[i]], drefs);
        results[i] = exec.run(std::span<const Value>(&in, 1), ctx);
      });
    fs.run(std::move(mains), [&] { engine.trigger_execution(); });
    engine.set_fiber_scheduler(nullptr);
  } else {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      InstCtx ctx;
      ctx.instance = static_cast<int>(i);
      const Value in = models::remap_trefs(ds.inputs[instances[i]], drefs);
      results[i] = exec.run(std::span<const Value>(&in, 1), ctx);
    }
  }
  engine.trigger_execution();

  std::vector<TRef> outs;
  for (const Value& v : results) collect_trefs(v, outs);
  std::vector<grad::Seed> seeds;
  for (const TRef& r : outs) {
    const Tensor t = engine.force(r);
    seeds.push_back({r, std::vector<float>(t.numel(), 1.f)});
  }
  grad::BackwardOptions bopts;
  bopts.launch_overhead_ns = kLaunchNs;
  const grad::BackwardResult bw =
      grad::backward(engine, p.compiled.module.registry, seeds, bopts);

  st.wall_ms = static_cast<double>(now_ns() - t0) * 1e-6;
  st.fwd_launches = engine.stats().kernel_launches;
  st.bwd_launches = bw.backward_launches;
  return st;
}

}  // namespace

int main() {
  header("Training step: batched vs instance-at-a-time (per-op pipeline, "
         "batch 32)",
         "paper §9's training claim; Qiao & Taura 2019");
  std::printf("%-10s | %26s | %26s | %7s\n", "", "batched step",
              "instance-at-a-time", "step");
  std::printf("%-10s | %8s %8s %8s | %8s %8s %8s | %7s\n", "model", "ms",
              "fwd-lch", "bwd-lch", "ms", "fwd-lch", "bwd-lch", "speedup");
  for (const char* name : {"TreeLSTM", "MV-RNN", "BiRNN", "GraphRNN"}) {
    const models::ModelSpec& spec = models::model_by_name(name);
    harness::Prepared p =
        harness::prepare(spec, false, grad::training_pipeline_config());
    const models::Dataset ds = dataset_for(spec, false, 32);
    std::vector<int> all(32);
    for (int i = 0; i < 32; ++i) all[i] = i;

    const bool tdcf = p.compiled.program.main->may_sync;
    // Warm + best-of-kIters.
    train_step(p, ds, all, tdcf);
    StepStats batched;
    batched.wall_ms = 1e300;
    for (int it = 0; it < kIters; ++it) {
      const StepStats s = train_step(p, ds, all, tdcf);
      if (s.wall_ms < batched.wall_ms) batched = s;
    }
    StepStats solo;
    solo.wall_ms = 1e300;
    for (int it = 0; it < kIters; ++it) {
      StepStats acc;
      for (int i = 0; i < 32; ++i) {
        const StepStats s = train_step(p, ds, {i}, tdcf);
        acc.wall_ms += s.wall_ms;
        acc.fwd_launches += s.fwd_launches;
        acc.bwd_launches += s.bwd_launches;
      }
      if (acc.wall_ms < solo.wall_ms) solo = acc;
    }
    std::printf("%-10s | %8.2f %8lld %8lld | %8.2f %8lld %8lld | %6.2fx\n",
                name, batched.wall_ms, batched.fwd_launches,
                batched.bwd_launches, solo.wall_ms, solo.fwd_launches,
                solo.bwd_launches, solo.wall_ms / batched.wall_ms);
  }
  std::printf(
      "\nthe backward pass inherits the forward batching (reverse-plan\n"
      "replay): launch counts collapse together, extending the paper's\n"
      "inference result to training.\n");
  return 0;
}
