// Table 8: Cortex vs ACROBAT — inference latencies (ms) for the three
// recursive models Cortex supports.
//
// Paper result: Cortex's hand-specialized persistent kernels beat ACROBAT
// modestly (up to 1.87x) on TreeLSTM and BiRNN, but its restrictive
// interface forces extra embedding/matrix copies on MV-RNN and it loses
// badly there; ACROBAT matches the specialized compiler while supporting
// general control flow.
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

int main() {
  header("Table 8: Cortex vs ACROBAT (latency ms)", "paper Table 8");
  std::printf("%-10s %-6s %-5s %9s %9s\n", "model", "size", "batch", "Cortex",
              "ACROBAT");
  for (const char* name : {"TreeLSTM", "MV-RNN", "BiRNN"}) {
    const models::ModelSpec& spec = models::model_by_name(name);
    for (const bool large : {false, true}) {
      for (const int batch : {8, 64}) {
        const models::Dataset ds = dataset_for(spec, large, batch);
        harness::Prepared p =
            harness::prepare(spec, large, passes::PipelineConfig{});
        const double ab = time_min_ms(
            [&] { return harness::run_acrobat(p, ds, default_opts()); });
        const double cx = time_min_ms([&] {
          return baselines::run_cortex(name, p, ds, default_opts());
        });
        std::printf("%-10s %-6s %-5d %9.2f %9.2f\n", name, size_name(large),
                    batch, cx, ab);
      }
    }
  }
  return 0;
}
