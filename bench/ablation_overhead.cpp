// Launch-overhead sweep: where the substrate's regime sits (DESIGN.md
// substitution table).
//
// The evaluation's qualitative results depend on the ratio of per-launch
// overhead to per-kernel compute. The paper's GPU pays ~microseconds per
// launch against very fast kernels; our CPU kernels are slow relative to
// the same launch cost, which compresses every overhead-driven speedup.
// This bench sweeps the simulated launch latency and reports the
// ACROBAT-vs-DyNet speedup at each point, plus ACROBAT's fiber-enabled vs
// fiber-free DRNN latency — demonstrating that the two residual deviations
// recorded in EXPERIMENTS.md (DRNN inline-depth regression, modest Table 5
// ratios) are regime artifacts: both flip in the GPU-like high-overhead
// regime.
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

double best_acrobat(const models::ModelSpec& spec, const models::Dataset& ds,
                    const passes::PipelineConfig& cfg, std::int64_t launch_ns) {
  harness::Prepared p = harness::prepare(spec, false, cfg);
  harness::RunOptions opts;
  opts.launch_overhead_ns = launch_ns;
  harness::run_acrobat(p, ds, opts);
  double best = 1e300;
  for (int i = 0; i < kIters; ++i)
    best = std::min(best, harness::run_acrobat(p, ds, opts).wall_ms);
  return best;
}

double best_dynet(const models::ModelSpec& spec, const models::Dataset& ds,
                  std::int64_t launch_ns) {
  harness::Prepared p =
      harness::prepare(spec, false, baselines::dynet_pipeline_config());
  double best = 1e300;
  for (const bool agenda : {true, false}) {
    baselines::DynetOptions opts;
    opts.agenda_scheduler = agenda;
    opts.launch_overhead_ns = launch_ns;
    baselines::run_dynet(p, ds, opts);
    for (int i = 0; i < kIters; ++i)
      best = std::min(best, baselines::run_dynet(p, ds, opts).wall_ms);
  }
  return best;
}

}  // namespace

int main() {
  const std::int64_t sweeps[] = {0, 1000, 3000, 10000, 30000};

  header("Launch-overhead sweep (batch 64, small)",
         "DESIGN.md substitution table; EXPERIMENTS.md deviations 1 and (a)");

  std::printf("ACROBAT speedup over DyNet (best of two schedulers):\n");
  std::printf("%-10s", "model");
  for (const std::int64_t ns : sweeps) std::printf(" %7lldus", static_cast<long long>(ns / 1000));
  std::printf("\n");
  for (const char* name : {"TreeLSTM", "MV-RNN", "StackRNN"}) {
    const models::ModelSpec& spec = models::model_by_name(name);
    const models::Dataset ds = dataset_for(spec, false, 64);
    std::printf("%-10s", name);
    for (const std::int64_t ns : sweeps) {
      const double a = best_acrobat(spec, ds, passes::PipelineConfig{}, ns);
      const double d = best_dynet(spec, ds, ns);
      std::printf(" %8.2fx", d / a);
    }
    std::printf("\n");
  }

  std::printf(
      "\nDRNN: +inline depth/fibers (L3) vs coarsening only (L2) — the\n"
      "fiber cost is fixed while the launches it eliminates scale with the\n"
      "launch latency, so L3 crosses over in the GPU-like regime:\n");
  const std::int64_t drnn_sweeps[] = {0, 3000, 10000, 30000, 100000};
  constexpr int kN = 5;
  std::printf("%-22s", "configuration");
  for (const std::int64_t ns : drnn_sweeps) std::printf(" %7lldus", static_cast<long long>(ns / 1000));
  std::printf("\n");
  {
    const models::ModelSpec& spec = models::model_by_name("DRNN");
    const models::Dataset ds = dataset_for(spec, false, 64);
    double l2[kN], l3[kN];
    int i = 0;
    for (const std::int64_t ns : drnn_sweeps) {
      l2[i] = best_acrobat(spec, ds, passes::PipelineConfig::ablation_level(2),
                           ns);
      l3[i] = best_acrobat(spec, ds, passes::PipelineConfig::ablation_level(3),
                           ns);
      ++i;
    }
    std::printf("%-22s", "L2 (no fibers) ms");
    for (i = 0; i < kN; ++i) std::printf(" %8.2f", l2[i]);
    std::printf("\n%-22s", "L3 (fibers) ms");
    for (i = 0; i < kN; ++i) std::printf(" %8.2f", l3[i]);
    std::printf("\n%-22s", "L3 speedup");
    for (i = 0; i < kN; ++i) std::printf(" %8.2fx", l2[i] / l3[i]);
    std::printf("\n");
  }
  return 0;
}
