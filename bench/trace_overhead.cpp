// trace_overhead: the cost of always-on tracing (ISSUE 7 / DESIGN.md §9).
//
// Three configurations over the same prepared model and dataset:
//   off      — no tracer attached: every ACROBAT_TRACE site is one
//              predicted-not-taken branch (the steady-state serving cost)
//   on       — a Tracer attached to the engine + fiber scheduler: each site
//              pays one ring write (~a 40-byte store and an increment)
//   on+dump  — tracing plus run-end snapshot and Chrome-JSON export (the
//              cold path: allocation and I/O, never on the hot path)
//
// Launch overhead is forced to 0 so the runtime cost isn't hidden under
// simulated GPU latency; wall times are min-over-kIters as everywhere else.
// The off-vs-on delta divided by events emitted is the per-event cost; the
// bench also cross-checks that counters are identical in all
// configurations — tracing must be observation-free (tests/test_trace.cpp
// proves the bitwise half on the serve path).
#include "bench_util.h"
#include "trace/trace.h"

#include <cstdio>

using namespace acrobat;
using namespace acrobat::bench;

namespace {

struct Point {
  double wall_ms = 1e300;
  ActivityStats stats;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
};

Point measure(const harness::Prepared& p, const models::Dataset& ds, bool traced) {
  Point pt;
  for (int i = 0; i < kIters + 1; ++i) {  // first pass is warmup
    trace::TraceConfig tc;
    tc.ring_capacity = 1u << 16;
    trace::Tracer tracer(0, tc);
    harness::RunOptions o;
    o.launch_overhead_ns = 0;
    o.tracer = traced ? &tracer : nullptr;
    const harness::RunResult rr = harness::run_acrobat(p, ds, o);
    if (i == 0) continue;
    if (rr.wall_ms < pt.wall_ms) {
      pt.wall_ms = rr.wall_ms;
      pt.stats = rr.stats;
      pt.events = tracer.emitted();
      pt.dropped = tracer.dropped();
    }
  }
  return pt;
}

}  // namespace

int main() {
  header("trace_overhead: always-on tracing cost (TreeLSTM small, batch 64, "
         "launch 0)",
         "DESIGN.md §9 (observability overhead contract)");

  const models::ModelSpec& spec = models::model_by_name("TreeLSTM");
  const models::Dataset ds = dataset_for(spec, false, 64);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const Point off = measure(p, ds, false);
  const Point on = measure(p, ds, true);

  // Cold path: snapshot the ring and export Chrome JSON, timed separately.
  trace::TraceConfig tc;
  tc.ring_capacity = 1u << 16;
  trace::Tracer tracer(0, tc);
  harness::RunOptions o;
  o.launch_overhead_ns = 0;
  o.tracer = &tracer;
  harness::run_acrobat(p, ds, o);
  const std::int64_t t0 = now_ns();
  trace::TraceDump dump;
  dump.tracks.push_back(trace::dump_track(tracer, 1, "bench"));
  const char* path = "trace_overhead_out.json";
  const bool wrote = dump.write_chrome_json(path);
  const double export_ms = static_cast<double>(now_ns() - t0) * 1e-6;
  long long bytes = 0;
  if (wrote) {
    if (std::FILE* f = std::fopen(path, "rb")) {
      std::fseek(f, 0, SEEK_END);
      bytes = std::ftell(f);
      std::fclose(f);
    }
    std::remove(path);
  }

  std::printf("%-8s | %9s %9s | %10s %8s\n", "config", "wall ms", "sched ms",
              "events", "dropped");
  std::printf("%-8s | %9.3f %9.3f | %10s %8s\n", "off", off.wall_ms,
              off.stats.scheduling.ms(), "-", "-");
  std::printf("%-8s | %9.3f %9.3f | %10llu %8llu\n", "on", on.wall_ms,
              on.stats.scheduling.ms(), static_cast<unsigned long long>(on.events),
              static_cast<unsigned long long>(on.dropped));
  std::printf("%-8s | %9.3f %9s | %10s %8s  (%lld bytes)\n", "dump", export_ms, "-",
              "-", "-", bytes);

  const double delta_ms = on.wall_ms - off.wall_ms;
  if (on.events > 0)
    std::printf("\noverhead: %+.3f ms (%+.1f%%), %.1f ns/event over %llu events\n",
                delta_ms, 100.0 * delta_ms / off.wall_ms,
                delta_ms * 1e6 / static_cast<double>(on.events),
                static_cast<unsigned long long>(on.events));
  else
    std::printf("\noverhead: %+.3f ms (instrumentation compiled out: 0 events)\n",
                delta_ms);

  // Observation-free check: tracing must not change what the engine did.
  const bool parity = off.stats.kernel_launches == on.stats.kernel_launches &&
                      off.stats.flat_batches == on.stats.flat_batches &&
                      off.stats.stacked_batches == on.stats.stacked_batches &&
                      off.stats.gather_bytes == on.stats.gather_bytes &&
                      off.stats.scheduling_allocs == on.stats.scheduling_allocs;
  std::printf("counter parity off vs on: %s\n", parity ? "OK" : "MISMATCH");
  return parity ? 0 : 1;
}
