// Figure 6: benefit of each ACROBAT optimization — cumulative latencies at
// batch size 64 for every model, small and large:
//   L0 no kernel fusion            L3 +inline depth computation
//   L1 +standard kernel fusion     L4 +program phases / ghost ops
//   L2 +grain-size coarsening      L5 +gather operator fusion
//
// Paper result: fusion always helps; coarsening + inline depth matter most
// for control-flow-heavy models (TreeLSTM, MV-RNN); inline depth also
// unlocks DRNN's instance parallelism; phases help BiRNN (and TreeLSTM's
// root classifiers); ghost ops help StackRNN; gather fusion helps the
// recursive models and can slightly hurt iterative ones whose inputs are
// usually already contiguous.
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

int main() {
  header("Figure 6: optimization ablation, batch 64 (latency ms)",
         "paper Fig. 6");
  for (const bool large : {false, true}) {
    std::printf("\n%s model size\n%-10s", size_name(large), "model");
    for (int level = 0; level < 6; ++level) std::printf(" %9s", [&] {
      static char buf[12];
      std::snprintf(buf, sizeof buf, "L%d", level);
      return buf;
    }());
    std::printf("\n");
    for (const auto& spec : models::all_models()) {
      const models::Dataset ds = dataset_for(spec, large, 64);
      std::printf("%-10s", spec.name.c_str());
      for (int level = 0; level < 6; ++level) {
        harness::Prepared p = harness::prepare(
            spec, large, passes::PipelineConfig::ablation_level(level));
        const double ms = time_min_ms(
            [&] { return harness::run_acrobat(p, ds, default_opts()); });
        std::printf(" %9.2f", ms);
      }
      std::printf("\n");
    }
  }
  std::printf("\nlevels: ");
  for (int level = 0; level < 6; ++level)
    std::printf("L%d=%s%s", level, passes::PipelineConfig::ablation_name(level),
                level == 5 ? "\n" : ", ");
  return 0;
}
