// fleet_frontier: multi-model serving with SLO admission control
// (DESIGN.md §8).
//
// A 2-model registry (TreeLSTM + BiRNN, merged into one module) serves a
// seeded mixed-model, mixed-class trace. The open-loop sweep crosses
// arrival rate x shard mode (multiplexed merged engine vs per-model
// engines): below capacity nothing is shed and goodput is ~100%; past
// capacity the fleet policy sheds blown requests, so goodput degrades far
// more gracefully than the no-shed latency tail would. The closed-loop
// block then sweeps the client population K: throughput rises to the
// service ceiling and saturates while latency grows ~linearly in K past
// it, and no queue (or shed) can ever build beyond K outstanding — the
// classic closed-vs-open contrast with the rows above.
#include "bench_util.h"
#include "fleet/fleet.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

// Machine-readable frontier rows (DESIGN.md §9): merged shard counters as
// exact integers, latency/goodput as double context — BENCH_fleet.json (or
// $ACROBAT_BENCH_JSON). Real-time arrival process → context, not golden.
void record_point(CounterJson& json, const std::string& config,
                  const fleet::FleetResult& res) {
  ActivityStats m;
  long long triggers = 0, requests = 0;
  for (const serve::ShardReport& s : res.shards) {
    m.kernel_launches += s.stats.kernel_launches;
    m.gather_bytes += s.stats.gather_bytes;
    m.flat_batches += s.stats.flat_batches;
    m.stacked_batches += s.stats.stacked_batches;
    m.scheduling_allocs += s.stats.scheduling_allocs;
    m.sched_cache_hits += s.stats.sched_cache_hits;
    m.sched_cache_misses += s.stats.sched_cache_misses;
    m.sched_cache_evictions += s.stats.sched_cache_evictions;
    triggers += s.triggers;
    requests += s.requests;
  }
  json.add(config, m,
           {{"requests", requests}, {"triggers", triggers}, {"shed", res.shed}},
           {{"p50_ms", res.latency_ms.p50},
            {"p99_ms", res.latency_ms.p99},
            {"thpt_rps", res.throughput_rps},
            {"goodput", res.goodput}});
}

void print_point(const char* kind, double x, const char* mode, int shards,
                 const fleet::FleetResult& res) {
  std::printf(
      "%-6s %8.0f %-4s %6d | %8.3f %8.3f %8.3f | %8.0f %6lld %6.1f | %8.0f %7zu %9.0f\n",
      kind, x, mode, shards, res.latency_ms.p50, res.latency_ms.p95, res.latency_ms.p99,
      res.throughput_rps, res.shed, 100.0 * res.goodput,
      static_cast<double>(res.peak_arena_bytes()) / 1024.0, res.peak_node_table(),
      static_cast<double>(res.peak_persist_bytes()) / 1024.0);
}

double solo_ms_of(const char* name, bool large, int n_inputs) {
  const models::ModelSpec& spec = models::model_by_name(name);
  models::Dataset ds = dataset_for(spec, large, n_inputs);
  harness::Prepared p = harness::prepare(spec, large, passes::PipelineConfig{});
  models::Dataset one;
  one.pool = ds.pool;
  one.tensors = ds.tensors;
  one.inputs.push_back(ds.inputs[0]);
  return time_min_ms([&] { return harness::run_acrobat(p, one, default_opts()); });
}

}  // namespace

int main() {
  const bool large = false;
  const int n_inputs = 24;
  const int n_requests =
      static_cast<int>(std::max<std::int64_t>(2, env_int("ACROBAT_SERVE_REQUESTS", 96)));

  // Calibrate against the mixed solo service time so the sweep straddles
  // capacity on any machine (same discipline as serve_latency).
  const double solo_tree = solo_ms_of("TreeLSTM", large, n_inputs);
  const double solo_birnn = solo_ms_of("BiRNN", large, n_inputs);
  const double solo_ms = 0.5 * (solo_tree + solo_birnn);
  const double base_rps = 1000.0 / std::max(solo_ms, 1e-3);
  const double deadline_ms = deadline_ms_or(solo_ms * 8.0);

  fleet::ModelRegistry reg;
  reg.add(models::model_by_name("TreeLSTM"), large,
          dataset_for(models::model_by_name("TreeLSTM"), large, n_inputs));
  reg.add(models::model_by_name("BiRNN"), large,
          dataset_for(models::model_by_name("BiRNN"), large, n_inputs));
  reg.prepare();

  // 60/40 traffic split; TreeLSTM skews interactive, BiRNN skews batch,
  // with a best-effort remainder on both.
  std::vector<serve::ModelMix> mix = reg.uniform_mix();
  mix[0].weight = 0.6;
  mix[0].p_interactive = 0.6;
  mix[0].p_batch = 0.2;
  mix[1].weight = 0.4;
  mix[1].p_interactive = 0.3;
  mix[1].p_batch = 0.5;

  header("fleet_frontier: multi-model serving, SLO shedding, closed vs open loop",
         "DESIGN.md §8 (fleet serving model)");
  std::printf("models=TreeLSTM+BiRNN/%s  solo=%.3f/%.3fms  requests=%d  "
              "deadlines=%.3f/%.3fms (interactive/batch; best-effort none)\n",
              size_name(large), solo_tree, solo_birnn, n_requests, deadline_ms,
              deadline_ms * 4.0);
  std::printf("%-6s %8s %-4s %6s | %8s %8s %8s | %8s %6s %6s | %8s %7s %9s\n", "loop",
              "rate|K", "mode", "shards", "p50ms", "p95ms", "p99ms", "thpt", "shed",
              "good%", "arenaKB", "nodes", "persistKB");

  fleet::FleetOptions fo;
  fo.launch_overhead_ns = kLaunchNs;
  fo.policy.base.kind = serve::PolicyKind::kMaxBatch;
  fo.policy.base.max_batch = 8;
  fo.policy.deadline_ns[0] = static_cast<std::int64_t>(deadline_ms * 1e6);
  fo.policy.deadline_ns[1] = static_cast<std::int64_t>(deadline_ms * 4e6);
  fo.policy.deadline_ns[2] = 0;
  // Slack-aware shedding: drop what cannot finish inside its SLO anymore
  // (~2 batched service times), not just what has already blown it.
  fo.policy.est_service_ns = static_cast<std::int64_t>(solo_ms * 2e6);

  CounterJson json;
  fleet::FleetResult overload;  // 1-shard mux at 6x: the per-class exhibit
  double overload_rate = 0;
  for (const int shards : {1, 2}) {
    for (const double mult : {0.5, 2.0, 6.0}) {
      const double rate = base_rps * mult * shards;
      serve::LoadSpec ls;
      ls.rate_rps = rate;
      ls.num_requests = n_requests;
      ls.seed = 42;
      const std::vector<serve::Request> trace = serve::generate_load(ls, mix);
      for (const bool multiplex : {true, false}) {
        fleet::FleetOptions o = fo;
        o.shards = shards;
        o.multiplex = multiplex;
        fleet::FleetResult res = fleet::serve_fleet(reg, trace, o);
        print_point("open", rate, multiplex ? "mux" : "iso", shards, res);
        char cfg[96];
        std::snprintf(cfg, sizeof cfg, "open/%.1fx/%s/s%d", mult,
                      multiplex ? "mux" : "iso", shards);
        record_point(json, cfg, res);
        if (shards == 1 && mult == 6.0 && multiplex) {
          overload = std::move(res);
          overload_rate = rate;
        }
      }
    }
    std::printf("\n");
  }

  // Class-level view of the overload point: tight-deadline interactive
  // traffic sheds first and keeps its survivors' tail in budget, batch
  // rides its looser SLO, best-effort absorbs the queueing (never shed).
  std::printf("per-class at %.0f rps (open, 1 shard, mux):\n", overload_rate);
  for (int c = 0; c < serve::kNumLatencyClasses; ++c) {
    const fleet::ClassReport& cr = overload.by_class[static_cast<std::size_t>(c)];
    if (cr.requests == 0) continue;
    std::printf("  %-12s n=%4d shed=%4d good%%=%5.1f | p50=%8.3f p95=%8.3f p99.9=%8.3f\n",
                serve::latency_class_name(static_cast<serve::LatencyClass>(c)), cr.requests,
                cr.shed, 100.0 * cr.goodput, cr.latency_ms.p50, cr.latency_ms.p95,
                cr.latency_ms.p999);
  }
  std::printf("\n");

  // Closed loop: K concurrent clients, think time ~ a fraction of the
  // service time, same total request count as one open-loop row.
  for (const int clients : {1, 2, 4, 8, 16}) {
    fleet::ClosedLoopSpec cs;
    cs.clients = clients;
    cs.per_client = std::max(1, n_requests / clients);
    cs.think_mean_ms = solo_ms * 0.25;
    cs.seed = 42;
    fleet::FleetOptions o = fo;
    o.shards = 1;
    const fleet::FleetResult res = fleet::serve_fleet_closed(reg, cs, mix, o);
    print_point("closed", clients, "mux", 1, res);
    char cfg[96];
    std::snprintf(cfg, sizeof cfg, "closed/k%d/mux", clients);
    record_point(json, cfg, res);
  }
  json.write("fleet_frontier", "BENCH_fleet.json");

  // Smoke-trace exhibit (ISSUE 7 / DESIGN.md §9): with ACROBAT_TRACE_JSON
  // set, replay a small forced-shed cohort with the tracer on and export
  // Chrome trace-event JSON — open it in Perfetto (README) or validate it
  // with scripts/check_trace.py, which CI runs on exactly this file. The
  // 1ns interactive deadline guarantees shed events; the cohort hold
  // guarantees trigger/batch spans and a memo probe on any machine.
  if (const char* tpath = std::getenv("ACROBAT_TRACE_JSON");
      tpath != nullptr && *tpath != '\0') {
    const int n = 24;
    std::vector<serve::Request> trace;
    for (int i = 0; i < n; ++i) {
      serve::Request r;
      r.id = i;
      r.model_id = i % reg.num_models();
      r.input_index = static_cast<std::size_t>(i / reg.num_models()) % n_inputs;
      r.arrival_ns = 0;
      r.latency_class = i % 3 == 0 ? serve::LatencyClass::kInteractive
                                   : serve::LatencyClass::kBatch;
      trace.push_back(r);
    }
    fleet::FleetOptions o = fo;
    o.policy.deadline_ns = {1, 0, 0};  // interactive blown at arrival → shed
    o.policy.est_service_ns = 0;
    o.policy.shed_grace = 0.0;
    o.policy.base.kind = serve::PolicyKind::kDeadline;
    o.policy.base.min_batch = n;
    o.policy.base.max_admit = n;
    o.policy.base.slo_ns = 10'000'000'000;
    o.policy.base.max_hold_ns = 10'000'000'000;
    o.trace.enabled = true;
    o.trace.slow_threshold_ns = 1;   // capture exemplars too
    o.trace.tick_every_triggers = 1; // and counter tracks
    const fleet::FleetResult res = fleet::serve_fleet(reg, trace, o);
    if (res.trace.write_chrome_json(tpath))
      std::printf("wrote %s (%llu events, %lld shed, %zu ticks)\n", tpath,
                  static_cast<unsigned long long>(res.trace.total_events()), res.shed,
                  res.trace.ticks.size());
    else
      std::fprintf(stderr, "failed to write %s\n", tpath);
  }
  return 0;
}
