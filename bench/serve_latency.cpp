// serve_latency: the latency-throughput frontier of cross-request
// continuous batching (DESIGN.md §7).
//
// An open-loop Poisson load generator replays a seeded request trace
// against the serving layer while we sweep arrival rate x batching policy
// x shard count. Expected shape: below capacity all policies sit near the
// solo latency; past capacity the greedy p99 blows up with queueing while
// max-batch bounds trigger width (throughput cap, flatter tail) and the
// SLO-deadline policy trades a little p50 for batch width. Two shards move
// the knee to ~2x the rate. A burst block shows tail inflation at equal
// mean rate. Rates are chosen relative to the measured single-request
// service time, so the sweep straddles capacity on any machine.
#include "bench_util.h"
#include "serve/server.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

// Machine-readable frontier rows (DESIGN.md §9): every printed point also
// lands in BENCH_serve.json (or $ACROBAT_BENCH_JSON) with the merged shard
// counters as exact integers and the latency columns as double extras.
// Unlike BENCH_engine.json these rows ride a real-time arrival process, so
// they are context, not golden-diffed.
ActivityStats merged_stats(const serve::ServeResult& res) {
  ActivityStats m;
  for (const serve::ShardReport& s : res.shards) {
    m.kernel_launches += s.stats.kernel_launches;
    m.gather_bytes += s.stats.gather_bytes;
    m.flat_batches += s.stats.flat_batches;
    m.stacked_batches += s.stats.stacked_batches;
    m.scheduling_allocs += s.stats.scheduling_allocs;
    m.sched_cache_hits += s.stats.sched_cache_hits;
    m.sched_cache_misses += s.stats.sched_cache_misses;
    m.sched_cache_evictions += s.stats.sched_cache_evictions;
  }
  return m;
}

void record_point(CounterJson& json, const std::string& config,
                  const serve::ServeResult& res, double deadline_ms) {
  long long triggers = 0, requests = 0;
  for (const serve::ShardReport& s : res.shards) {
    triggers += s.triggers;
    requests += s.requests;
  }
  json.add(config, merged_stats(res), {{"requests", requests}, {"triggers", triggers}},
           {{"p50_ms", res.latency_ms.p50},
            {"p99_ms", res.latency_ms.p99},
            {"thpt_rps", res.throughput_rps},
            {"good_pct", 100.0 * res.latency_ms.attainment(deadline_ms)}});
}

void print_point(double rate, const char* policy, int shards,
                 const serve::ServeResult& res, double deadline_ms) {
  // arenaKB/nodes: worst shard's arena high-water mark and node-table size —
  // with epoch recycling both plateau at peak concurrency, so the frontier
  // shows memory alongside the tail (DESIGN.md §7 "Recycling"). good% is
  // the fraction of requests under the SLO deadline (ACROBAT_SERVE_DEADLINE_MS
  // or 8x the solo service time): past the capacity knee it collapses much
  // faster than the median grows — the tail is what blows the SLO. hit% is
  // the schedule-memo replay rate, hits / (hits + misses) summed over
  // shards: low near the knee, where queue depth varies trigger to trigger
  // and cohort shapes rarely recur, and high under steady overload, where
  // saturated triggers converge on a few recurring shapes.
  long long hits = 0, misses = 0;
  for (const serve::ShardReport& s : res.shards) {
    hits += s.stats.sched_cache_hits;
    misses += s.stats.sched_cache_misses;
  }
  const double hit_pct =
      hits + misses > 0 ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0;
  std::printf("%8.0f %-10s %6d | %8.3f %8.3f %8.3f %8.3f | %8.0f %6.1f %9lld "
              "| %8.0f %7zu %5.1f\n",
              rate, policy, shards, res.latency_ms.p50, res.latency_ms.p95,
              res.latency_ms.p99, res.latency_ms.mean, res.throughput_rps,
              100.0 * res.latency_ms.attainment(deadline_ms), res.total_launches(),
              static_cast<double>(res.peak_arena_bytes()) / 1024.0,
              res.peak_node_table(), hit_pct);
}

}  // namespace

int main() {
  const models::ModelSpec& spec = models::model_by_name("TreeLSTM");
  const bool large = false;
  const int n_inputs = 24;
  const models::Dataset ds = dataset_for(spec, large, n_inputs);
  harness::Prepared p = harness::prepare(spec, large, passes::PipelineConfig{});

  const int n_requests =
      static_cast<int>(std::max<std::int64_t>(1, env_int("ACROBAT_SERVE_REQUESTS", 96)));

  // Calibrate the sweep: solo service time sets the capacity scale.
  models::Dataset one;
  one.pool = ds.pool;
  one.tensors = ds.tensors;
  one.inputs.push_back(ds.inputs[0]);
  const double solo_ms =
      time_min_ms([&] { return harness::run_acrobat(p, one, default_opts()); });
  const double base_rps = 1000.0 / std::max(solo_ms, 1e-3);

  const double deadline_ms = deadline_ms_or(solo_ms * 8.0);

  header("serve_latency: continuous-batching latency-throughput frontier",
         "DESIGN.md §7 (serving model)");
  std::printf("model=%s/%s  solo=%.3fms (~%.0f rps/shard solo)  requests=%d  "
              "deadline=%.3fms\n",
              spec.name.c_str(), size_name(large), solo_ms, base_rps, n_requests,
              deadline_ms);
  std::printf("%8s %-10s %6s | %8s %8s %8s %8s | %8s %6s %9s | %8s %7s %5s\n",
              "rate", "policy", "shards", "p50ms", "p95ms", "p99ms", "mean",
              "thpt", "good%", "launches", "arenaKB", "nodes", "hit%");

  CounterJson json;
  std::vector<serve::PolicyConfig> policies(3);
  policies[0].kind = serve::PolicyKind::kGreedy;
  policies[1].kind = serve::PolicyKind::kMaxBatch;
  policies[1].max_batch = 8;
  policies[2].kind = serve::PolicyKind::kDeadline;
  policies[2].min_batch = 4;
  policies[2].slo_ns = static_cast<std::int64_t>(solo_ms * 8e6);
  policies[2].max_hold_ns = static_cast<std::int64_t>(solo_ms * 0.5e6);

  for (const int shards : {1, 2}) {
    for (const double mult : {0.5, 2.0, 6.0}) {
      const double rate = base_rps * mult * shards;
      for (const serve::PolicyConfig& pc : policies) {
        serve::LoadSpec ls;
        ls.kind = serve::ArrivalKind::kPoisson;
        ls.rate_rps = rate;
        ls.num_requests = n_requests;
        ls.seed = 42;
        const std::vector<serve::Request> trace =
            serve::generate_load(ls, ds.inputs.size());
        serve::ServeOptions so;
        so.shards = shards;
        so.policy = pc;
        so.launch_overhead_ns = kLaunchNs;
        const serve::ServeResult res = serve::serve(p, ds, trace, so);
        print_point(rate, serve::policy_name(pc.kind), shards, res, deadline_ms);
        char cfg[96];
        std::snprintf(cfg, sizeof cfg, "poisson/%.1fx/%s/s%d", mult,
                      serve::policy_name(pc.kind), shards);
        record_point(json, cfg, res, deadline_ms);
      }
    }
    std::printf("\n");
  }

  std::printf("burst arrivals (mean rate 2x capacity, bursts of 8):\n");
  for (const serve::PolicyConfig& pc : policies) {
    serve::LoadSpec ls;
    ls.kind = serve::ArrivalKind::kBurst;
    ls.burst_size = 8;
    ls.rate_rps = base_rps * 2.0;
    ls.num_requests = n_requests;
    ls.seed = 42;
    const std::vector<serve::Request> trace =
        serve::generate_load(ls, ds.inputs.size());
    serve::ServeOptions so;
    so.policy = pc;
    so.launch_overhead_ns = kLaunchNs;
    const serve::ServeResult res = serve::serve(p, ds, trace, so);
    print_point(ls.rate_rps, serve::policy_name(pc.kind), 1, res, deadline_ms);
    record_point(json, std::string("burst/2.0x/") + serve::policy_name(pc.kind), res,
                 deadline_ms);
  }
  json.write("serve_latency", "BENCH_serve.json");
  return 0;
}
