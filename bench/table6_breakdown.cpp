// Table 6: time spent in runtime activities for DyNet and ACROBAT at batch
// size 64 — DFG construction, scheduling, memory copies, kernel time,
// number of kernel launches, and simulated-device API time.
//
// Paper result: ACROBAT's static optimizations cut DFG-construction and
// scheduling time by close to an order of magnitude and launch ~9x fewer
// kernels on TreeLSTM-small; on BiRNN-large it still wins every overhead
// column while spending *more* time in kernels (the paper notes the same).
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

void row(const char* activity, double dynet, double acrobat,
         const char* unit = "ms") {
  std::printf("  %-22s %10.2f %10.2f  %s\n", activity, dynet, acrobat, unit);
}

void breakdown(const char* model, bool large) {
  const models::ModelSpec& spec = models::model_by_name(model);
  const models::Dataset ds = dataset_for(spec, large, 64);

  harness::RunOptions opts = default_opts();
  opts.time_activities = true;

  harness::Prepared pa = harness::prepare(spec, large, passes::PipelineConfig{});
  harness::run_acrobat(pa, ds, opts);  // warmup
  const harness::RunResult a = harness::run_acrobat(pa, ds, opts);

  harness::Prepared pd =
      harness::prepare(spec, large, baselines::dynet_pipeline_config());
  baselines::DynetOptions dop;
  dop.launch_overhead_ns = kLaunchNs;
  dop.time_activities = true;
  baselines::run_dynet(pd, ds, dop);  // warmup
  const harness::RunResult d = baselines::run_dynet(pd, ds, dop);

  std::printf("\n%s, %s, batch 64 %28s %10s\n", model, size_name(large),
              "DyNet", "ACROBAT");
  row("DFG construction", d.stats.dfg_construction.ms(),
      a.stats.dfg_construction.ms());
  row("Scheduling", d.stats.scheduling.ms(), a.stats.scheduling.ms());
  row("Memory copy (gather)", d.stats.gather_copy.ms(),
      a.stats.gather_copy.ms());
  row("GPU kernel time", d.stats.kernel_exec.ms(), a.stats.kernel_exec.ms());
  row("#Kernel calls", static_cast<double>(d.stats.kernel_launches),
      static_cast<double>(a.stats.kernel_launches), "calls");
  row("Device API time", d.stats.launch_overhead.ms() + d.stats.gather_copy.ms(),
      a.stats.launch_overhead.ms() + a.stats.gather_copy.ms());
  // Hot-path shape (ISSUE 5): batches collapsed to one flat/stacked call,
  // and scheduler scratch growth (0 in steady state — fresh engines here
  // show the warmup count).
  row("Flat+stacked batches",
      static_cast<double>(d.stats.flat_batches + d.stats.stacked_batches),
      static_cast<double>(a.stats.flat_batches + a.stats.stacked_batches), "calls");
  row("Scheduling allocs", static_cast<double>(d.stats.scheduling_allocs),
      static_cast<double>(a.stats.scheduling_allocs), "allocs");
  row("Total (wall)", d.wall_ms, a.wall_ms);
}

}  // namespace

int main() {
  header("Table 6: runtime activity breakdown, batch 64", "paper Table 6");
  breakdown("TreeLSTM", /*large=*/false);
  breakdown("BiRNN", /*large=*/true);
  return 0;
}
