// Shared benchmark harness utilities.
//
// All table/figure benches use the same measurement discipline: a fixed
// simulated kernel-launch overhead (DESIGN.md substitution for GPU launch
// latency), one warmup run, and the minimum wall time over `kIters`
// measured runs (minimum, not mean: the quantity of interest is the
// achievable latency, and the arena/allocator warm state matches steady-
// state serving).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/cortex.h"
#include "baselines/dynet.h"
#include "baselines/eager.h"
#include "harness/harness.h"
#include "serve/stats.h"

namespace acrobat::bench {

// Environment override for bench knobs (CI runs benches fast with
// ACROBAT_BENCH_ITERS=1; regime sweeps set ACROBAT_LAUNCH_NS without
// recompiling). Empty/unset falls back to the default.
inline std::int64_t env_int(const char* name, std::int64_t dflt) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atoll(v) : dflt;
}

inline double env_double(const char* name, double dflt) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atof(v) : dflt;
}

inline const std::int64_t kLaunchNs =
    std::max<std::int64_t>(0, env_int("ACROBAT_LAUNCH_NS", 3000));  // ~CUDA launch latency
inline const int kIters = static_cast<int>(
    std::max<std::int64_t>(1, env_int("ACROBAT_BENCH_ITERS", 3)));

// Latency-distribution aggregation (serve_latency and any bench reporting
// tails instead of a min): nearest-rank p50/p95/p99/p99.9 + mean, plus
// `attainment(deadline_ms)` — the goodput column's SLO-met fraction.
using serve::Percentiles;

// Serving benches report goodput against this deadline (ms). 0 (the
// default) lets the bench derive one from the measured solo service time;
// ACROBAT_SERVE_DEADLINE_MS pins it without recompiling (EXPERIMENTS.md).
inline double deadline_ms_or(double derived_ms) {
  const double env = env_double("ACROBAT_SERVE_DEADLINE_MS", 0.0);
  return env > 0 ? env : derived_ms;
}

inline Percentiles percentiles(std::vector<double> samples) {
  return Percentiles::of(std::move(samples));
}

inline harness::RunOptions default_opts() {
  harness::RunOptions o;
  o.launch_overhead_ns = kLaunchNs;
  return o;
}

// Minimum wall-ms over kIters runs (plus one warmup).
inline double time_min_ms(const std::function<harness::RunResult()>& run) {
  run();  // warmup
  double best = 1e300;
  for (int i = 0; i < kIters; ++i) best = std::min(best, run().wall_ms);
  return best;
}

inline const char* size_name(bool large) { return large ? "large" : "small"; }

// Standard datasets: seed fixed per (model, size, batch) so every bench and
// baseline sees identical inputs.
inline models::Dataset dataset_for(const models::ModelSpec& spec, bool large,
                                   int batch) {
  return spec.build_dataset(large, batch,
                            0xbe9c5 + batch * 31 + (large ? 7 : 0));
}

// Machine-readable engine-counter emission (the repo's perf trajectory):
// per-config rows of the engine's activity breakdown. The counter fields —
// kernel_launches, gather_bytes, flat/stacked batch counts, scheduling
// allocs — are exact and deterministic for a fixed trace, so CI diffs them
// against a checked-in golden (scripts/check_bench_counters.py); the *_ns
// timing fields are machine-dependent context and are never diffed.
class CounterJson {
 public:
  void add(const std::string& config, const ActivityStats& s) {
    rows_.push_back(Row{config, s, {}, {}});
  }
  // Serving rows ride extra columns alongside the engine counters: integer
  // extras (requests, triggers, shed, …) are exact and golden-diffed like
  // the counters; double extras (p50_ms, goodput, …) are machine-dependent
  // context, emitted but never diffed — the same split as the *_ns fields.
  void add(const std::string& config, const ActivityStats& s,
           std::vector<std::pair<std::string, long long>> int_extras,
           std::vector<std::pair<std::string, double>> dbl_extras = {}) {
    rows_.push_back(Row{config, s, std::move(int_extras), std::move(dbl_extras)});
  }

  // Writes to $ACROBAT_BENCH_JSON, or `fallback_path` when the env var is
  // unset/empty; returns false (and writes nothing) if neither names a
  // path. The emitting bench stays silent about it unless asked.
  bool write(const char* bench_name, const char* fallback_path = nullptr) const {
    const char* env = std::getenv("ACROBAT_BENCH_JSON");
    const char* path = (env != nullptr && *env != '\0') ? env : fallback_path;
    if (path == nullptr || *path == '\0') return false;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"launch_overhead_ns\": %lld,\n",
                 bench_name, static_cast<long long>(kLaunchNs));
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const ActivityStats& s = rows_[i].stats;
      std::fprintf(
          f,
          "    {\"config\": \"%s\", \"dfg_ns\": %lld, \"scheduling_ns\": %lld, "
          "\"gather_ns\": %lld, \"exec_ns\": %lld, \"launch_ns\": %lld, "
          "\"kernel_launches\": %lld, \"gather_bytes\": %lld, "
          "\"flat_batches\": %lld, \"stacked_batches\": %lld, "
          "\"scheduling_allocs\": %lld, \"sched_cache_hits\": %lld, "
          "\"sched_cache_misses\": %lld, \"sched_cache_evictions\": %lld",
          rows_[i].config.c_str(), static_cast<long long>(s.dfg_construction.ns),
          static_cast<long long>(s.scheduling.ns),
          static_cast<long long>(s.gather_copy.ns),
          static_cast<long long>(s.kernel_exec.ns),
          static_cast<long long>(s.launch_overhead.ns), s.kernel_launches,
          s.gather_bytes, s.flat_batches, s.stacked_batches, s.scheduling_allocs,
          s.sched_cache_hits, s.sched_cache_misses, s.sched_cache_evictions);
      for (const auto& [k, v] : rows_[i].int_extras)
        std::fprintf(f, ", \"%s\": %lld", k.c_str(), v);
      for (const auto& [k, v] : rows_[i].dbl_extras)
        std::fprintf(f, ", \"%s\": %.6g", k.c_str(), v);
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path, rows_.size());
    return true;
  }

 private:
  struct Row {
    std::string config;
    ActivityStats stats;
    std::vector<std::pair<std::string, long long>> int_extras;
    std::vector<std::pair<std::string, double>> dbl_extras;
  };
  std::vector<Row> rows_;
};

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  (reproduces %s; CPU substrate, launch overhead %lldns —\n"
              "   compare shapes and ratios, not absolute times; see EXPERIMENTS.md)\n",
              title, paper_ref, static_cast<long long>(kLaunchNs));
  std::printf("================================================================\n");
}

}  // namespace acrobat::bench
