// Microbenchmarks of the primitive-kernel schedule variants (the
// auto-scheduler's search space) using google-benchmark — verifies the
// variant ordering assumption (higher variants faster) that
// harness::apply_default_schedules and the tuner rely on.
#include <benchmark/benchmark.h>

#include "support/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace {

using namespace acrobat;

void BM_DenseVariant(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  TensorPool pool;
  Rng rng(7);
  Tensor x = pool.alloc_random(RowVec(n), rng, 0.5f);
  Tensor w = pool.alloc_random(Shape(n, n), rng, 0.1f);
  Tensor out = pool.alloc(RowVec(n));
  const float* ins[2] = {x.data, w.data};
  const Shape shapes[2] = {x.shape, w.shape};
  for (auto _ : state) {
    run_op(OpKind::kDense, variant, ins, shapes, out.data, out.shape, 0);
    benchmark::DoNotOptimize(out.data[0]);
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n);
}
BENCHMARK(BM_DenseVariant)
    ->ArgsProduct({{0, 1, 2}, {64, 128, 256}})
    ->ArgNames({"variant", "n"});

void BM_EltwiseVariant(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  TensorPool pool;
  Rng rng(7);
  Tensor x = pool.alloc_random(RowVec(n), rng, 0.5f);
  Tensor y = pool.alloc_random(RowVec(n), rng, 0.5f);
  Tensor out = pool.alloc(RowVec(n));
  const float* ins[2] = {x.data, y.data};
  const Shape shapes[2] = {x.shape, y.shape};
  for (auto _ : state) {
    run_op(OpKind::kAdd, variant, ins, shapes, out.data, out.shape, 0);
    benchmark::DoNotOptimize(out.data[0]);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EltwiseVariant)
    ->ArgsProduct({{0, 1}, {256, 4096}})
    ->ArgNames({"variant", "n"});

// The flat-batch collapse the engine's trigger hot path performs (ISSUE 5):
// n elementwise ops of `numel` each, executed as n run_op calls vs ONE call
// over n×numel. Same floats either way; the delta is pure per-call overhead
// — what execute_batch saves per trigger.
void BM_EltwiseBatchPerOp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int numel = static_cast<int>(state.range(1));
  TensorPool pool;
  Rng rng(7);
  Tensor x = pool.alloc_random(RowVec(n * numel), rng, 0.5f);
  Tensor out = pool.alloc(RowVec(n * numel));
  const Shape s = RowVec(numel);
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      const float* ins[1] = {x.data + static_cast<std::int64_t>(i) * numel};
      run_op(OpKind::kTanh, 1, ins, &s, out.data + static_cast<std::int64_t>(i) * numel,
             s, 0);
    }
    benchmark::DoNotOptimize(out.data[0]);
  }
  state.SetItemsProcessed(state.iterations() * n * numel);
}
BENCHMARK(BM_EltwiseBatchPerOp)
    ->ArgsProduct({{16, 64, 256}, {16}})
    ->ArgNames({"batch", "numel"});

void BM_EltwiseBatchFlat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int numel = static_cast<int>(state.range(1));
  TensorPool pool;
  Rng rng(7);
  Tensor x = pool.alloc_random(RowVec(n * numel), rng, 0.5f);
  Tensor out = pool.alloc(RowVec(n * numel));
  const Shape flat = RowVec(n * numel);
  const float* ins[1] = {x.data};
  for (auto _ : state) {
    run_op(OpKind::kTanh, 1, ins, &flat, out.data, flat, 0);
    benchmark::DoNotOptimize(out.data[0]);
  }
  state.SetItemsProcessed(state.iterations() * n * numel);
}
BENCHMARK(BM_EltwiseBatchFlat)
    ->ArgsProduct({{16, 64, 256}, {16}})
    ->ArgNames({"batch", "numel"});

// Stacked shared-weight dense: n row-vector denses as n calls vs one
// (n×k)·Wᵀ call — the matmul-family half of the same collapse.
void BM_DenseBatchPerOp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kDim = 16;
  TensorPool pool;
  Rng rng(7);
  Tensor x = pool.alloc_random(Shape(n, kDim), rng, 0.5f);
  Tensor w = pool.alloc_random(Shape(kDim, kDim), rng, 0.1f);
  Tensor out = pool.alloc(Shape(n, kDim));
  const Shape xs = RowVec(kDim);
  const Shape shapes[2] = {xs, w.shape};
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      const float* ins[2] = {x.data + static_cast<std::int64_t>(i) * kDim, w.data};
      run_op(OpKind::kDense, 2, ins, shapes, out.data + static_cast<std::int64_t>(i) * kDim,
             xs, 0);
    }
    benchmark::DoNotOptimize(out.data[0]);
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * kDim * kDim);
}
BENCHMARK(BM_DenseBatchPerOp)->Arg(16)->Arg(64)->ArgNames({"batch"});

void BM_DenseBatchStacked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kDim = 16;
  TensorPool pool;
  Rng rng(7);
  Tensor x = pool.alloc_random(Shape(n, kDim), rng, 0.5f);
  Tensor w = pool.alloc_random(Shape(kDim, kDim), rng, 0.1f);
  Tensor out = pool.alloc(Shape(n, kDim));
  const Shape shapes[2] = {x.shape, w.shape};
  const float* ins[2] = {x.data, w.data};
  for (auto _ : state) {
    run_op(OpKind::kDense, 2, ins, shapes, out.data, out.shape, 0);
    benchmark::DoNotOptimize(out.data[0]);
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * kDim * kDim);
}
BENCHMARK(BM_DenseBatchStacked)->Arg(16)->Arg(64)->ArgNames({"batch"});

void BM_MatMulBT(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  TensorPool pool;
  Rng rng(7);
  Tensor a = pool.alloc_random(Shape(s, 64), rng, 0.5f);
  Tensor b = pool.alloc_random(Shape(s, 64), rng, 0.5f);
  Tensor out = pool.alloc(Shape(s, s));
  const float* ins[2] = {a.data, b.data};
  const Shape shapes[2] = {a.shape, b.shape};
  for (auto _ : state) {
    run_op(OpKind::kMatMulBT, 0, ins, shapes, out.data, out.shape, 0);
    benchmark::DoNotOptimize(out.data[0]);
  }
}
BENCHMARK(BM_MatMulBT)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
