// decode_frontier: the token-level continuous-batching frontier (DESIGN.md
// §7, iteration-level scheduling).
//
// The Decoder model emits one token per engine trigger, re-joining the
// admission cycle at every token boundary, so a single serve run mixes
// decode steps from old sessions with prefills from new arrivals in the
// same batch. The axes that matter for a generative workload differ from
// one-shot serving: throughput is tokens/sec, not requests/sec, and the
// latency split is TTFT (queueing + first step — what admission policy
// controls) vs inter-token gap (steady-state batching cadence — what
// trigger width controls). Expected shape: below capacity TTFT p50 sits
// near the solo first-token time and the inter-token p99 near the solo
// step time; past capacity greedy TTFT blows up with queue depth while
// max-batch caps concurrent sessions (TTFT grows, inter-token stays flat —
// a parked session's steps are always re-admitted ahead of arrivals).
#include "bench_util.h"
#include "models/specs.h"
#include "serve/server.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

ActivityStats merged_stats(const serve::ServeResult& res) {
  ActivityStats m;
  for (const serve::ShardReport& s : res.shards) {
    m.kernel_launches += s.stats.kernel_launches;
    m.gather_bytes += s.stats.gather_bytes;
    m.flat_batches += s.stats.flat_batches;
    m.stacked_batches += s.stats.stacked_batches;
    m.scheduling_allocs += s.stats.scheduling_allocs;
    m.sched_cache_hits += s.stats.sched_cache_hits;
    m.sched_cache_misses += s.stats.sched_cache_misses;
    m.sched_cache_evictions += s.stats.sched_cache_evictions;
  }
  return m;
}

// Rows land in BENCH_decode.json (or $ACROBAT_BENCH_JSON). Like
// serve_latency these ride a real-time arrival process: the token counters
// are exact for a fixed trace but the latency columns are context, so the
// file is not golden-diffed (the deterministic decode row lives in
// ablation_scheduler's BENCH_engine.json instead).
void record_point(CounterJson& json, const std::string& config,
                  const serve::ServeResult& res) {
  long long triggers = 0, requests = 0;
  for (const serve::ShardReport& s : res.shards) {
    triggers += s.triggers;
    requests += s.requests;
  }
  json.add(config, merged_stats(res),
           {{"requests", requests},
            {"triggers", triggers},
            {"tokens", res.tokens},
            {"cancelled", res.cancelled}},
           {{"tokens_per_sec", res.tokens_per_sec},
            {"ttft_p50_ms", res.ttft_ms.p50},
            {"ttft_p99_ms", res.ttft_ms.p99},
            {"itl_p50_ms", res.inter_token_ms.p50},
            {"itl_p99_ms", res.inter_token_ms.p99},
            {"e2e_p99_ms", res.latency_ms.p99}});
}

void print_point(double rate, const char* policy, const serve::ServeResult& res) {
  // sess_peak: the worst shard's session-buffer high-water mark — with
  // retire-on-reap it tracks peak concurrent sessions, not token count, so
  // the frontier shows the memory plateau next to the tail. hit% is the
  // schedule-memo replay rate: decode steps at a stable width recur as a
  // depth-0 cohort shape, so steady-state decoding replays cached
  // schedules at a much higher rate than one-shot serving.
  long long hits = 0, misses = 0;
  std::size_t sess_peak = 0;
  for (const serve::ShardReport& s : res.shards) {
    hits += s.stats.sched_cache_hits;
    misses += s.stats.sched_cache_misses;
    sess_peak = std::max(sess_peak, s.mem.session_buffers_peak);
  }
  const double hit_pct =
      hits + misses > 0 ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0;
  std::printf("%8.0f %-10s | %9.0f %8.3f %8.3f %8.3f %8.3f | %8.3f %7lld %4d "
              "| %9zu %5.1f\n",
              rate, policy, res.tokens_per_sec, res.ttft_ms.p50, res.ttft_ms.p99,
              res.inter_token_ms.p50, res.inter_token_ms.p99, res.latency_ms.p99,
              res.tokens, res.cancelled, sess_peak, hit_pct);
}

}  // namespace

int main() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const bool large = false;
  const int n_inputs = 24;
  const models::Dataset ds = dataset_for(spec, large, n_inputs);
  harness::Prepared p = harness::prepare(spec, large, passes::PipelineConfig{});

  const int n_requests =
      static_cast<int>(std::max<std::int64_t>(1, env_int("ACROBAT_SERVE_REQUESTS", 64)));

  // Calibrate: a solo session's full decode sets the per-request service
  // time (the capacity scale for session arrival rates).
  models::Dataset one;
  one.pool = ds.pool;
  one.tensors = ds.tensors;
  one.inputs.push_back(ds.inputs[0]);
  const double solo_ms =
      time_min_ms([&] { return harness::run_acrobat(p, one, default_opts()); });
  const double base_rps = 1000.0 / std::max(solo_ms, 1e-3);

  header("decode_frontier: token-level continuous batching (tokens/sec vs "
         "TTFT / inter-token latency)",
         "DESIGN.md §7 (iteration-level scheduling)");
  std::printf("model=%s/%s  solo decode=%.3fms/session (~%.0f sessions/sec "
              "solo)  requests=%d  cap=%d tokens\n",
              spec.name.c_str(), size_name(large), solo_ms, base_rps, n_requests,
              models::decoder_max_tokens(large));
  std::printf("%8s %-10s | %9s %8s %8s %8s %8s | %8s %7s %4s | %9s %5s\n",
              "rate", "policy", "tok/s", "ttft p50", "ttft p99", "itl p50",
              "itl p99", "e2e p99", "tokens", "canc", "sess_peak", "hit%");

  CounterJson json;
  // The deadline policy rides three ways: uncapped, width-capped
  // (max_admit bounds concurrent sessions — TTFT spikes at overload as
  // arrivals queue behind a full pool), and decode-split (same cap but it
  // gates only prefills, with decode steps metered at decode_admit per
  // trigger window — the before/after column for flat TTFT at overload).
  struct Entry {
    const char* label;
    serve::PolicyConfig pc;
  };
  std::vector<Entry> policies(5);
  policies[0].label = "greedy";
  policies[0].pc.kind = serve::PolicyKind::kGreedy;
  policies[1].label = "max-batch";
  policies[1].pc.kind = serve::PolicyKind::kMaxBatch;
  policies[1].pc.max_batch = 8;
  policies[2].label = "deadline";
  policies[2].pc.kind = serve::PolicyKind::kDeadline;
  policies[2].pc.min_batch = 4;
  policies[2].pc.slo_ns = static_cast<std::int64_t>(solo_ms * 8e6);
  policies[2].pc.max_hold_ns = static_cast<std::int64_t>(solo_ms * 0.5e6);
  policies[3].label = "deadline-cap";
  policies[3].pc = policies[2].pc;
  policies[3].pc.max_admit = 8;
  policies[4].label = "deadline-split";
  policies[4].pc = policies[3].pc;
  policies[4].pc.decode_admit = 4;

  for (const double mult : {0.5, 2.0, 6.0}) {
    const double rate = base_rps * mult;
    for (const Entry& entry : policies) {
      const serve::PolicyConfig& pc = entry.pc;
      serve::LoadSpec ls;
      ls.kind = serve::ArrivalKind::kPoisson;
      ls.rate_rps = rate;
      ls.num_requests = n_requests;
      ls.seed = 42;
      const std::vector<serve::Request> trace =
          serve::generate_load(ls, ds.inputs.size());
      serve::ServeOptions so;
      so.policy = pc;
      so.recycle = true;  // session checkpoints require the epoch protocol
      so.launch_overhead_ns = kLaunchNs;
      const serve::ServeResult res = serve::serve(p, ds, trace, so);
      print_point(rate, entry.label, res);
      char cfg[96];
      std::snprintf(cfg, sizeof cfg, "poisson/%.1fx/%s", mult, entry.label);
      record_point(json, cfg, res);
    }
    std::printf("\n");
  }
  json.write("decode_frontier", "BENCH_decode.json");
  return 0;
}
