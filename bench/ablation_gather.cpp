// Gather-mode ablation (paper §5.2, §7.4): gather-operator fusion (pointer
// indirection, zero copies) vs explicit gathers (DyNet-style staging copies
// into contiguous buffers, then the vendor fast path).
//
// Expected shape (paper §7.4): fusion helps the recursive models most —
// their batched inputs are scattered across the arena, so explicit mode
// pays real copies; for iterative models the inputs are usually already
// contiguous (producers allocate batch outputs contiguously), the explicit
// copy is skipped, and fusion's indirect addressing can even lose slightly.
// The `copied` column shows exactly this asymmetry.
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

struct Row {
  double wall_ms = 1e300, copy_ms = 0, kern_ms = 0;
  long long bytes = 0;
};

Row run_mode(const models::ModelSpec& spec, const models::Dataset& ds,
             bool gather_fusion) {
  passes::PipelineConfig cfg;
  cfg.gather_fusion = gather_fusion;
  harness::Prepared p = harness::prepare(spec, false, cfg);
  harness::RunOptions opts = default_opts();
  opts.time_activities = true;
  harness::run_acrobat(p, ds, opts);
  Row r;
  for (int i = 0; i < kIters; ++i) {
    const harness::RunResult rr = harness::run_acrobat(p, ds, opts);
    if (rr.wall_ms < r.wall_ms) {
      r.wall_ms = rr.wall_ms;
      r.copy_ms = rr.stats.gather_copy.ms();
      r.kern_ms = rr.stats.kernel_exec.ms();
      r.bytes = rr.stats.gather_bytes;
    }
  }
  return r;
}

}  // namespace

int main() {
  header("Gather-mode ablation: fused vs explicit gathers (batch 64, small)",
         "paper §5.2 / §7.4 / Fig. 6 last level");
  std::printf("%-10s | %25s | %32s | %7s\n", "", "gather fusion",
              "explicit gather", "fused/");
  std::printf("%-10s | %8s %8s %7s | %8s %8s %7s %8s | %7s\n", "model", "wall",
              "kern", "copy", "wall", "kern", "copy", "copied", "explicit");
  for (const auto& spec : models::all_models()) {
    const models::Dataset ds = dataset_for(spec, false, 64);
    const Row fused = run_mode(spec, ds, true);
    const Row expl = run_mode(spec, ds, false);
    std::printf(
        "%-10s | %8.2f %8.2f %7.3f | %8.2f %8.2f %7.3f %7.1fK | %7.2fx\n",
        spec.name.c_str(), fused.wall_ms, fused.kern_ms, fused.copy_ms,
        expl.wall_ms, expl.kern_ms, expl.copy_ms,
        static_cast<double>(expl.bytes) / 1024.0,
        expl.wall_ms / fused.wall_ms);
  }
  std::printf(
      "\nexpected: the recursive/treebank models move megabytes in explicit\n"
      "mode while iterative models' inputs are mostly contiguous already\n"
      "(copy-ms column) — the paper's structural asymmetry. On this CPU\n"
      "substrate memcpy is cheap relative to kernel time, so the wall-time\n"
      "effect is muted compared to the paper's GPU (EXPERIMENTS.md dev. 1).\n");
  return 0;
}
