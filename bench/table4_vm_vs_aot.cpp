// Table 4: Relay VM vs ACROBAT's AOT compilation — inference latencies (ms).
//
// Paper result: interpreter overheads slow execution by up to 13.45x versus
// AOT-compiled native code; the gap is largest where control flow (not
// tensor time) dominates. The VM here is the naive boxed/string-environment
// interpreter with dynamic depth recovery; AOT is the resolved low-overhead
// executor with inline depth computation (exec/vm.h, exec/aot.h).
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

int main() {
  header("Table 4: Relay VM vs AOT compilation (latency ms)",
         "paper Table 4");
  std::printf("%-6s %-5s | %22s | %22s | %22s\n", "size", "batch", "TreeLSTM",
              "MV-RNN", "BiRNN");
  std::printf("%-6s %-5s | %10s %11s | %10s %11s | %10s %11s\n", "", "", "VM",
              "AOT", "VM", "AOT", "VM", "AOT");
  for (const bool large : {false, true}) {
    for (const int batch : {8, 64}) {
      std::printf("%-6s %-5d |", size_name(large), batch);
      for (const char* name : {"TreeLSTM", "MV-RNN", "BiRNN"}) {
        const models::ModelSpec& spec = models::model_by_name(name);
        const models::Dataset ds = dataset_for(spec, large, batch);
        // Both paths run the fully optimized module (coarsening, fusion,
        // gather fusion, phases on), as in the paper's Table 4 setup.
        harness::Prepared p =
            harness::prepare(spec, large, passes::PipelineConfig{});
        const double vm_ms =
            time_min_ms([&] { return harness::run_vm(p, ds, default_opts()); });
        const double aot_ms = time_min_ms(
            [&] { return harness::run_acrobat(p, ds, default_opts()); });
        std::printf(" %9.2f %9.2f  |", vm_ms, aot_ms);
      }
      std::printf("\n");
    }
  }
  return 0;
}
