// Table 9: benefit of profile-guided invocation frequencies in the
// auto-scheduler, on NestedRNN (small, batch 8).
//
// NestedRNN's inner RNN cell runs ~15x per outer GRU step, so the
// auto-scheduler should spend its measurement budget there. Without PGO the
// tuner only has per-kernel cost estimates (uniform frequencies); with PGO
// it has the observed per-kernel invocation counts from a profiling run.
// Paper result: PGO matches or beats no-PGO at every budget, with the gap
// largest at small budgets and closing as the budget saturates the space.
#include "autosched/tuner.h"
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

int main() {
  header("Table 9: auto-scheduling with/without PGO — NestedRNN small, batch 8",
         "paper Table 9");
  const models::ModelSpec& spec = models::model_by_name("NestedRNN");
  const models::Dataset ds = dataset_for(spec, false, 8);

  // PGO profile: per-kernel invocation counts from one profiling run.
  harness::Prepared prof = harness::prepare(spec, false, passes::PipelineConfig{});
  const harness::RunResult profile = harness::run_acrobat(prof, ds, default_opts());

  std::printf("%-12s %12s %12s\n", "tuner budget", "no-PGO (ms)", "PGO (ms)");
  for (const int budget : {4, 10, 25, 50, 100}) {
    double ms[2] = {0, 0};
    for (const bool pgo : {false, true}) {
      harness::Prepared p =
          harness::prepare(spec, false, passes::PipelineConfig{});
      autosched::reset_schedules(p.compiled.module.registry, /*variant=*/0);
      std::vector<double> freq(p.compiled.module.registry.num_kernels(), 1.0);
      if (pgo)
        for (std::size_t k = 0; k < freq.size(); ++k)
          freq[k] = static_cast<double>(
              k < profile.kernel_invocations.size()
                  ? profile.kernel_invocations[k]
                  : 0);
      autosched::tune(p.compiled.module.registry, freq, budget);
      ms[pgo ? 1 : 0] = time_min_ms(
          [&] { return harness::run_acrobat(p, ds, default_opts()); });
    }
    std::printf("%-12d %12.2f %12.2f\n", budget, ms[0], ms[1]);
  }
  std::printf(
      "\n(budgets are measurement trials; the variant space here is far\n"
      " smaller than Ansor's schedule space, so budgets scale down from the\n"
      " paper's 100-1000 iterations accordingly)\n");
  return 0;
}
