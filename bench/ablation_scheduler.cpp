// Scheduler ablation (DESIGN.md §5 "Scheduler correctness invariant" /
// paper §4.1): quantifies what inline depth computation buys over dynamic
// depth recovery, and situates DyNet's two dynamic schedulers.
//
//   ACROBAT/inline    — depths from compiled-in counters ((phase, depth)
//                       buckets; the paper's contribution)
//   ACROBAT/dynamic   — same engine, depths recovered with the graph
//                       traversal fully dynamic schemes pay per trigger
//   DyNet/agenda      — greedy most-ready-signature-class batching
//   DyNet/depth       — dynamic depth buckets over per-op nodes
//
// Expected shape: at ACROBAT's coarsened node counts both of its schedulers
// are cheap, and inline depth shows up as *batching quality* — static
// hoist depths and fiber fork-join give fewer, wider launches (TreeLSTM,
// DRNN) — rather than scheduling time. The dynamic-recovery cost that
// inline depth eliminates is visible at scale in the DyNet columns, whose
// per-op graphs are 50-100x larger: their scheduling row is the Table 6
// "Scheduling" mechanism (9.7 ms vs 0.4 ms in the paper).
#include "bench_util.h"

#include "fleet/fleet.h"
#include "models/specs.h"
#include "serve/server.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

struct Row {
  double sched_ms = 0, wall_ms = 0;
  long long launches = 0;
  ActivityStats stats;  // full breakdown of the best run (counters are
                        // identical across runs: each builds a fresh engine)
};

Row acrobat_row(const models::ModelSpec& spec, const models::Dataset& ds,
                bool inline_depth) {
  passes::PipelineConfig cfg;
  cfg.inline_depth = inline_depth;
  harness::Prepared p = harness::prepare(spec, false, cfg);
  harness::RunOptions opts = default_opts();
  opts.time_activities = true;
  harness::run_acrobat(p, ds, opts);
  Row r;
  r.wall_ms = 1e300;
  for (int i = 0; i < kIters; ++i) {
    const harness::RunResult rr = harness::run_acrobat(p, ds, opts);
    if (rr.wall_ms < r.wall_ms) {
      r.wall_ms = rr.wall_ms;
      r.sched_ms = rr.stats.scheduling.ms();
      r.launches = rr.stats.kernel_launches;
      r.stats = rr.stats;
    }
  }
  return r;
}

// Schedule memoization row (DESIGN.md §5 "Schedule memoization"): same
// prepared module as ACROBAT/inline with the trace cache on, run with
// repeats=3 in one engine and measured on the LAST repetition — rep 1 runs
// live and also records the shared constants, rep 2 runs live against the
// post-const trigger structure, rep 3 replays it entirely from the cache.
// The sched column is therefore the steady-state replay cost: signature
// build + hash lookup instead of the live grouping pass.
Row memo_row(const models::ModelSpec& spec, const models::Dataset& ds) {
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
  harness::RunOptions opts = default_opts();
  opts.time_activities = true;
  opts.sched_memo = true;
  opts.repeats = 3;
  harness::run_acrobat(p, ds, opts);
  Row r;
  r.wall_ms = 1e300;
  for (int i = 0; i < kIters; ++i) {
    const harness::RunResult rr = harness::run_acrobat(p, ds, opts);
    if (rr.wall_ms < r.wall_ms) {
      r.wall_ms = rr.wall_ms;
      r.sched_ms = rr.stats.scheduling.ms();
      r.launches = rr.stats.kernel_launches;
      r.stats = rr.stats;
    }
  }
  return r;
}

Row dynet_row(const models::ModelSpec& spec, const models::Dataset& ds,
              bool agenda) {
  harness::Prepared p =
      harness::prepare(spec, false, baselines::dynet_pipeline_config());
  baselines::DynetOptions opts;
  opts.agenda_scheduler = agenda;
  opts.launch_overhead_ns = kLaunchNs;
  opts.time_activities = true;
  baselines::run_dynet(p, ds, opts);
  Row r;
  r.wall_ms = 1e300;
  for (int i = 0; i < kIters; ++i) {
    const harness::RunResult rr = baselines::run_dynet(p, ds, opts);
    if (rr.wall_ms < r.wall_ms) {
      r.wall_ms = rr.wall_ms;
      r.sched_ms = rr.stats.scheduling.ms();
      r.launches = rr.stats.kernel_launches;
      r.stats = rr.stats;
    }
  }
  return r;
}

// Steady-state serving counters (ROADMAP carried item): deterministic
// per-trigger rows for the golden trajectory. Both recipes pin batch
// composition to arrival order — every request arrives at t=0 and a
// deadline policy with min_batch == max_admit == cohort holds each trigger
// until a full cohort is admitted — so triggers, memo hits, flat/stacked
// batch counts, and sheds are exact, machine-independent integers.
void serve_steady_row(CounterJson& json) {
  const models::ModelSpec& spec = models::model_by_name("BiRNN");
  // Fixed length 14: the recurring-trigger regime of a bucketed production
  // model, so the memo hit share is a meaningful steady-state number.
  const models::Dataset ds = models::make_token_dataset(false, 8, 29, 14, 14);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const int n = 48, cohort = 12;
  std::vector<serve::Request> trace;
  for (int i = 0; i < n; ++i)
    trace.push_back(serve::Request{i, static_cast<std::size_t>(i) % ds.inputs.size(), 0});
  serve::ServeOptions so;
  so.launch_overhead_ns = kLaunchNs;
  so.policy.kind = serve::PolicyKind::kDeadline;
  so.policy.min_batch = cohort;
  so.policy.max_admit = cohort;
  so.policy.slo_ns = 10'000'000'000;
  so.policy.max_hold_ns = 10'000'000'000;
  const serve::ServeResult res = serve::serve(p, ds, trace, so);

  const ActivityStats& s = res.shards.at(0).stats;
  const double hit_pct =
      s.sched_cache_hits + s.sched_cache_misses > 0
          ? 100.0 * static_cast<double>(s.sched_cache_hits) /
                static_cast<double>(s.sched_cache_hits + s.sched_cache_misses)
          : 0.0;
  std::printf("serve_steady  (BiRNN len14, %d req, cohort %d): triggers %lld | "
              "memo hit %.0f%% | flat %lld stacked %lld | launches %lld\n",
              n, cohort, res.shards.at(0).triggers, hit_pct, s.flat_batches,
              s.stacked_batches, s.kernel_launches);
  json.add("serve_steady/birnn", s,
           {{"requests", n}, {"triggers", res.shards.at(0).triggers}, {"shed", 0}},
           {{"p50_ms", res.latency_ms.p50}, {"p99_ms", res.latency_ms.p99}});
}

// Token-level continuous batching counters: one t=0 Decoder cohort under
// the same deadline recipe (min_batch == max_admit == cohort pins the
// first trigger to arrival order; every later trigger is the cohort's
// decode steps, re-admitted at each token boundary). Session lengths are
// data-dependent but exact for the fixed dataset seed, so triggers,
// tokens, and memo hits are machine-independent integers — the golden's
// view of the iteration-level scheduler.
void decode_steady_row(CounterJson& json) {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 29);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const int n = 12;
  std::vector<serve::Request> trace;
  for (int i = 0; i < n; ++i)
    trace.push_back(serve::Request{i, static_cast<std::size_t>(i) % ds.inputs.size(), 0});
  serve::ServeOptions so;
  so.launch_overhead_ns = kLaunchNs;
  so.recycle = true;  // session checkpoints require the epoch protocol
  so.sched_memo = true;
  so.policy.kind = serve::PolicyKind::kDeadline;
  so.policy.min_batch = n;
  so.policy.max_admit = n;
  so.policy.slo_ns = 10'000'000'000;
  so.policy.max_hold_ns = 10'000'000'000;
  const serve::ServeResult res = serve::serve(p, ds, trace, so);

  const ActivityStats& s = res.shards.at(0).stats;
  const double hit_pct =
      s.sched_cache_hits + s.sched_cache_misses > 0
          ? 100.0 * static_cast<double>(s.sched_cache_hits) /
                static_cast<double>(s.sched_cache_hits + s.sched_cache_misses)
          : 0.0;
  std::printf("decode_steady (Decoder, %d req, cohort %d): triggers %lld | "
              "tokens %lld | memo hit %.0f%% | flat %lld stacked %lld | "
              "launches %lld\n",
              n, n, res.shards.at(0).triggers, res.tokens, hit_pct,
              s.flat_batches, s.stacked_batches, s.kernel_launches);
  json.add("decode_steady/decoder", s,
           {{"requests", n},
            {"triggers", res.shards.at(0).triggers},
            {"shed", 0},
            {"tokens", res.tokens},
            {"cancelled", res.cancelled}},
           {{"ttft_p50_ms", res.ttft_ms.p50},
            {"itl_p99_ms", res.inter_token_ms.p99},
            {"tokens_per_sec", res.tokens_per_sec}});
}

void fleet_steady_row(CounterJson& json) {
  fleet::ModelRegistry reg;
  reg.add(models::model_by_name("TreeLSTM"), false,
          models::model_by_name("TreeLSTM").build_dataset(false, 6, 11));
  reg.add(models::model_by_name("BiRNN"), false,
          models::model_by_name("BiRNN").build_dataset(false, 6, 19));
  reg.prepare();

  // Interactive deadline 1ns is blown on arrival (est_service 0, grace 0),
  // so exactly the interactive third of the cohort sheds — a deterministic
  // shed count exercising the triage path in the golden row.
  const int n = 24;
  std::vector<serve::Request> trace;
  long long interactive = 0;
  for (int i = 0; i < n; ++i) {
    serve::Request r;
    r.id = i;
    r.model_id = i % reg.num_models();
    r.input_index = static_cast<std::size_t>(i / reg.num_models()) %
                    reg.model(r.model_id).dataset.inputs.size();
    r.arrival_ns = 0;
    r.latency_class = i % 3 == 0 ? serve::LatencyClass::kInteractive
                                 : serve::LatencyClass::kBatch;
    interactive += i % 3 == 0 ? 1 : 0;
    trace.push_back(r);
  }
  fleet::FleetOptions fo;
  fo.launch_overhead_ns = kLaunchNs;
  fo.policy.deadline_ns = {1, 0, 0};
  fo.policy.est_service_ns = 0;
  fo.policy.shed_grace = 0.0;
  fo.policy.base.kind = serve::PolicyKind::kDeadline;
  fo.policy.base.min_batch = n;
  fo.policy.base.max_admit = n;
  fo.policy.base.slo_ns = 10'000'000'000;
  fo.policy.base.max_hold_ns = 10'000'000'000;
  const fleet::FleetResult res = fleet::serve_fleet(reg, trace, fo);

  const ActivityStats& s = res.shards.at(0).stats;
  std::printf("fleet_steady  (TreeLSTM+BiRNN, %d req, %lld shed): triggers %lld | "
              "flat %lld stacked %lld | launches %lld\n",
              n, res.shed, res.shards.at(0).triggers, s.flat_batches,
              s.stacked_batches, s.kernel_launches);
  json.add("fleet_steady/mixed", s,
           {{"requests", n}, {"triggers", res.shards.at(0).triggers}, {"shed", res.shed}},
           {{"goodput", res.goodput}});
}

}  // namespace

int main() {
  header("Scheduler ablation: inline depth vs dynamic recovery vs DyNet "
         "(batch 64, small)",
         "paper §4.1 / Table 6 scheduling row");
  std::printf("%-10s | %21s | %21s | %21s | %21s | %21s\n", "",
              "ACROBAT/inline", "ACROBAT/memo", "ACROBAT/dynamic",
              "DyNet/agenda", "DyNet/depth");
  std::printf("%-10s | %7s %6s %6s | %7s %6s %6s | %7s %6s %6s | %7s %6s %6s | "
              "%7s %6s %6s\n",
              "model", "sched", "wall", "launch", "sched", "wall", "launch",
              "sched", "wall", "launch", "sched", "wall", "launch", "sched",
              "wall", "launch");
  CounterJson json;
  for (const auto& spec : models::all_models()) {
    const models::Dataset ds = dataset_for(spec, false, 64);
    const Row a = acrobat_row(spec, ds, true);
    const Row m = memo_row(spec, ds);
    const Row b = acrobat_row(spec, ds, false);
    const Row c = dynet_row(spec, ds, true);
    const Row d = dynet_row(spec, ds, false);
    std::printf(
        "%-10s | %7.3f %6.2f %6lld | %7.3f %6.2f %6lld | %7.3f %6.2f %6lld | "
        "%7.3f %6.2f %6lld | %7.3f %6.2f %6lld\n",
        spec.name.c_str(), a.sched_ms, a.wall_ms, a.launches, m.sched_ms,
        m.wall_ms, m.launches, b.sched_ms, b.wall_ms, b.launches, c.sched_ms,
        c.wall_ms, c.launches, d.sched_ms, d.wall_ms, d.launches);
    json.add(spec.name + "/acrobat_inline", a.stats);
    json.add(spec.name + "/acrobat_memo", m.stats);
    json.add(spec.name + "/acrobat_dynamic", b.stats);
    json.add(spec.name + "/dynet_agenda", c.stats);
    json.add(spec.name + "/dynet_depth", d.stats);
  }
  std::printf(
      "\nexpected: inline depth wins on launch counts (hoisting + fibers:\n"
      "TreeLSTM, DRNN); scheduling time itself is small at ACROBAT's\n"
      "coarsened node counts, and the dynamic-analysis cost inline depth\n"
      "avoids shows at the DyNet columns' per-op scale. The memo column is\n"
      "the steady-state replay regime (3rd repetition of the same batch):\n"
      "identical launches to ACROBAT/inline, scheduling reduced to a hash\n"
      "lookup — its counters are last-repetition-only, so hits > 0 and\n"
      "misses == 0 there.\n");
  // Steady-state serving rows (DESIGN.md §9): per-trigger counters from
  // deterministic serve and fleet cohorts, golden-diffed alongside the
  // closed-batch rows so the serving layer's batching behavior has a
  // per-PR trajectory too.
  std::printf("\n");
  serve_steady_row(json);
  decode_steady_row(json);
  fleet_steady_row(json);
  // The perf trajectory artifact: exact counters + timing context per
  // config, diffed (counters only) against bench/golden/BENCH_engine.json
  // by CI's perf-smoke step.
  json.write("ablation_scheduler", "BENCH_engine.json");
  return 0;
}
