// net_client: the closed-loop *wire* client (DESIGN.md §10) — the latency
// frontier measured where it belongs, outside the server process boundary.
//
// Default mode self-hosts a NetServer (loopback TCP, in-proc shards) and
// drives it closed-loop: K outstanding requests pipelined on one
// connection; each completion immediately issues the next request, and a
// 429 retries after a short backoff (the retry count is part of the row).
// TTFT and inter-token gaps are stamped at frame *receipt* — wire-measured,
// including the protocol, the event loop, and the socket.
//
//   net_client [--uds] [--multiproc] [--connect HOST:PORT]
//
// --uds self-hosts over a UNIX socket; --multiproc self-hosts a forked
// 2-worker shard fleet (this binary re-execs as --shard-worker); --connect
// drives an external netd. When no listener can be bound (sandboxed CI),
// the bench falls back to the in-proc serve() path and says so in the
// config label — counters still flow to BENCH_net.json.
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "models/specs.h"
#include "net/client.h"
#include "net/net.h"
#include "serve/server.h"
#include "support/timer.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

ActivityStats merged_stats(const std::vector<serve::ShardReport>& shards) {
  ActivityStats m;
  for (const serve::ShardReport& s : shards) {
    m.kernel_launches += s.stats.kernel_launches;
    m.gather_bytes += s.stats.gather_bytes;
    m.flat_batches += s.stats.flat_batches;
    m.stacked_batches += s.stats.stacked_batches;
    m.scheduling_allocs += s.stats.scheduling_allocs;
    m.sched_cache_hits += s.stats.sched_cache_hits;
    m.sched_cache_misses += s.stats.sched_cache_misses;
    m.sched_cache_evictions += s.stats.sched_cache_evictions;
  }
  return m;
}

struct Row {
  double tok_s = 0, rps = 0;
  Percentiles ttft_ms, itl_ms, e2e_ms;
  long long retries = 0;
  long long timeouts = 0;
  long long tokens = 0;
};

// Closed-loop driver: K outstanding on one connection, n total completions.
bool drive(net::NetClient& cli, int n, int k, Row& row) {
  std::vector<double> ttft, itl, e2e;
  std::vector<std::int64_t> sent_ns(static_cast<std::size_t>(n) + 1, 0);
  const std::int64_t t_start = now_ns();
  std::uint32_t next_id = 0;
  int completed = 0, outstanding = 0;
  const auto issue = [&](std::uint32_t id, std::uint32_t input) {
    sent_ns[id] = now_ns();
    return cli.send_request(id, input);
  };
  while (completed < n) {
    while (outstanding < k && next_id < static_cast<std::uint32_t>(n)) {
      if (!issue(next_id, next_id % 8)) return false;
      ++next_id;
      ++outstanding;
    }
    // Wait on the oldest unfinished id; pipelined completions for the
    // others are stashed inside the client and claimed on their turn.
    net::ClientResponse r;
    if (!cli.wait(static_cast<std::uint32_t>(completed), r)) return false;
    if (r.kind == net::ClientResponse::Kind::kRetry) {
      ++row.retries;
      // Closed-loop retry: same id, immediately (the completion that frees
      // a slot has already happened server-side by the time we see a 429
      // again, so this converges; the retry count records the pressure).
      if (!issue(r.req_id, r.req_id % 8)) return false;
      continue;
    }
    if (r.kind == net::ClientResponse::Kind::kError) return false;
    const double e2e_ms_v =
        static_cast<double>(r.done_recv_ns - sent_ns[r.req_id]) * 1e-6;
    e2e.push_back(e2e_ms_v);
    if (!r.token_recv_ns.empty()) {
      ttft.push_back(static_cast<double>(r.token_recv_ns.front() - sent_ns[r.req_id]) * 1e-6);
      for (std::size_t i = 1; i < r.token_recv_ns.size(); ++i)
        itl.push_back(static_cast<double>(r.token_recv_ns[i] - r.token_recv_ns[i - 1]) * 1e-6);
    }
    row.tokens += r.tokens;
    ++completed;
    --outstanding;
  }
  const double secs = static_cast<double>(now_ns() - t_start) * 1e-9;
  row.timeouts = static_cast<long long>(cli.stats().timeouts);
  row.rps = static_cast<double>(n) / secs;
  row.tok_s = static_cast<double>(row.tokens) / secs;
  row.ttft_ms = percentiles(std::move(ttft));
  row.itl_ms = percentiles(std::move(itl));
  row.e2e_ms = percentiles(std::move(e2e));
  return true;
}

void record(CounterJson& json, const std::string& cfg, const net::NetStats& st,
            const Row& row) {
  json.add(cfg, merged_stats(st.shards),
           {{"requests", static_cast<long long>(st.requests)},
            {"completed", static_cast<long long>(st.completed)},
            {"rejected_429", static_cast<long long>(st.rejected_429)},
            {"errors", static_cast<long long>(st.errors)},
            {"cancelled", static_cast<long long>(st.cancelled)},
            {"conn_drops", static_cast<long long>(st.conn_drops)},
            {"tokens_streamed", static_cast<long long>(st.tokens_streamed)},
            {"worker_deaths", static_cast<long long>(st.worker_deaths)},
            {"worker_respawns", static_cast<long long>(st.worker_respawns)},
            {"degraded_entries", static_cast<long long>(st.degraded_entries)},
            {"degraded_sheds", static_cast<long long>(st.degraded_sheds)},
            {"fairness_rejects", static_cast<long long>(st.fairness_rejects)},
            {"fault_kills", static_cast<long long>(st.fault_kills)},
            {"client_retries", row.retries},
            {"client_timeouts", row.timeouts}},
           {{"rps", row.rps},
            {"tokens_per_sec", row.tok_s},
            {"ttft_p50_ms", row.ttft_ms.p50},
            {"ttft_p99_ms", row.ttft_ms.p99},
            {"itl_p50_ms", row.itl_ms.p50},
            {"itl_p99_ms", row.itl_ms.p99},
            {"e2e_p99_ms", row.e2e_ms.p99}});
}

void print_row(const char* mode, int k, const Row& row) {
  std::printf("%-14s K=%-3d | %8.0f %9.0f | %8.3f %8.3f %8.3f %8.3f %8.3f | %6lld\n",
              mode, k, row.rps, row.tok_s, row.ttft_ms.p50, row.ttft_ms.p99,
              row.itl_ms.p50, row.itl_ms.p99, row.e2e_ms.p99, row.retries);
}

// In-proc fallback when the sandbox has no sockets: the same closed-loop
// shape approximated by a t0 burst of K-session cohorts through serve().
void fallback_inproc(CounterJson& json, int n) {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = dataset_for(spec, false, 8);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
  std::vector<serve::Request> trace;
  for (int i = 0; i < n; ++i)
    trace.push_back(serve::Request{i, static_cast<std::size_t>(i % 8), 0});
  serve::ServeOptions so;
  so.launch_overhead_ns = kLaunchNs;
  const serve::ServeResult res = serve::serve(p, ds, trace, so);
  json.add("fallback-inproc", merged_stats(res.shards),
           {{"requests", static_cast<long long>(n)},
            {"completed", static_cast<long long>(n)},
            {"rejected_429", 0},
            {"tokens", res.tokens}},
           {{"tokens_per_sec", res.tokens_per_sec},
            {"ttft_p50_ms", res.ttft_ms.p50},
            {"ttft_p99_ms", res.ttft_ms.p99}});
  std::printf("fallback-inproc: %d requests, %lld tokens, %.0f tok/s\n", n,
              res.tokens, res.tokens_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--shard-worker") == 0)
    return net::shard_worker_main(argc, argv);

  bool use_uds = false, multiproc = false;
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    const std::string k = argv[i];
    if (k == "--uds") use_uds = true;
    else if (k == "--multiproc") multiproc = true;
    else if (k == "--connect" && i + 1 < argc) connect = argv[++i];
    else {
      std::fprintf(stderr, "net_client: unknown flag %s\n", k.c_str());
      return 2;
    }
  }

  const int n = static_cast<int>(
      std::max<std::int64_t>(1, env_int("ACROBAT_SERVE_REQUESTS", 64)));

  header("net_client: wire-measured ingress frontier (closed loop, K "
         "outstanding)",
         "DESIGN.md §10 (socket front door + bounded admission)");
  std::printf("%-14s %-5s | %8s %9s | %8s %8s %8s %8s %8s | %6s\n", "mode", "",
              "req/s", "tok/s", "ttft p50", "ttft p99", "itl p50", "itl p99",
              "e2e p99", "429s");

  CounterJson json;
  const char* json_path = "BENCH_net.json";

  // External server: one sweep against it, no self-hosting.
  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "net_client: --connect needs HOST:PORT\n");
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    const int port = std::atoi(connect.c_str() + colon + 1);
    for (const int k : {1, 4, 16}) {
      net::NetClient cli;
      if (!cli.connect_tcp(host, port)) {
        std::fprintf(stderr, "net_client: %s\n", cli.error().c_str());
        return 1;
      }
      Row row;
      if (!drive(cli, n, k, row)) {
        std::fprintf(stderr, "net_client: %s\n", cli.error().c_str());
        return 1;
      }
      print_row("external", k, row);
    }
    return 0;
  }

  // Self-hosted sweep: one server, K ∈ {1, 4, 16} closed-loop connections
  // in sequence (stats accumulate across the sweep; the JSON row per K
  // carries the client-side latency split, which is per-K).
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  harness::Prepared prep;
  models::Dataset ds;
  const harness::Prepared* pp = nullptr;
  const models::Dataset* pds = nullptr;
  net::NetOptions o;
  o.launch_overhead_ns = kLaunchNs;
  o.ds_batch = 8;
  o.ds_seed = 7;
  if (multiproc) {
    o.multiprocess = true;
    o.shards = 2;
  } else {
    prep = harness::prepare(spec, false, passes::PipelineConfig{});
    ds = spec.build_dataset(false, o.ds_batch, o.ds_seed);
    pp = &prep;
    pds = &ds;
  }
  char uds_buf[64];
  if (use_uds) {
    std::snprintf(uds_buf, sizeof uds_buf, "/tmp/acrobat_net_%d.sock", ::getpid());
    o.uds_path = uds_buf;
    o.port = -1;
  }
  const char* mode = multiproc ? "multiproc" : (use_uds ? "uds" : "tcp");

  net::NetServer srv(pp, pds, o);
  if (!srv.start()) {
    std::printf("net_client: no listener (%s); falling back to in-proc serve\n",
                srv.error().c_str());
    fallback_inproc(json, n);
    json.write("net_client", json_path);
    return 0;
  }

  std::vector<std::pair<int, Row>> rows;
  for (const int k : {1, 4, 16}) {
    net::NetClient cli;
    const bool ok = use_uds ? cli.connect_uds(srv.uds_path())
                            : cli.connect_tcp("127.0.0.1", srv.port());
    if (!ok) {
      std::fprintf(stderr, "net_client: %s\n", cli.error().c_str());
      return 1;
    }
    Row row;
    if (!drive(cli, n, k, row)) {
      std::fprintf(stderr, "net_client: drive failed: %s\n", cli.error().c_str());
      return 1;
    }
    print_row(mode, k, row);
    rows.emplace_back(k, row);
  }
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  for (const auto& [k, row] : rows) {
    char cfg[64];
    std::snprintf(cfg, sizeof cfg, "%s/K%d", mode, k);
    record(json, cfg, st, row);
  }
  std::printf("server: conns=%llu completed=%llu 429=%llu tokens=%llu "
              "worker_deaths=%llu\n",
              static_cast<unsigned long long>(st.connections),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.rejected_429),
              static_cast<unsigned long long>(st.tokens_streamed),
              static_cast<unsigned long long>(st.worker_deaths));
  json.write("net_client", json_path);
  return 0;
}
