// Table 7: DyNet (DN) vs DyNet with the paper's hand-improvements (DN++)
// vs ACROBAT for the three models where DyNet's heuristics hurt most:
//   TreeLSTM — constant-tensor reuse (leaf zero states),
//   MV-RNN   — shape-keyed (not first-argument) matmul batching,
//   DRNN     — manually exploited recursive instance parallelism.
//
// Paper result: DN++ recovers part of the gap but ACROBAT stays ahead —
// the improvements are exactly what its static analysis derives for free.
#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

double dynet_ms(const models::ModelSpec& spec, bool large,
                const models::Dataset& ds, bool improved) {
  double best = 1e300;
  for (const bool agenda : {true, false}) {
    harness::Prepared p =
        harness::prepare(spec, large, baselines::dynet_pipeline_config());
    baselines::DynetOptions dop;
    dop.agenda_scheduler = agenda;
    dop.improved_heuristics = improved;
    dop.manual_instance_parallelism = improved;
    dop.launch_overhead_ns = kLaunchNs;
    best = std::min(
        best, time_min_ms([&] { return baselines::run_dynet(p, ds, dop); }));
  }
  return best;
}

}  // namespace

int main() {
  header("Table 7: DyNet vs DyNet++ vs ACROBAT (latency ms)", "paper Table 7");
  std::printf("%-10s %-6s %-5s %9s %9s %9s\n", "model", "size", "batch", "DN",
              "DN++", "ACROBAT");
  for (const char* name : {"TreeLSTM", "MV-RNN", "DRNN"}) {
    const models::ModelSpec& spec = models::model_by_name(name);
    for (const bool large : {false, true}) {
      for (const int batch : {8, 64}) {
        const models::Dataset ds = dataset_for(spec, large, batch);
        harness::Prepared pa =
            harness::prepare(spec, large, passes::PipelineConfig{});
        const double ab = time_min_ms(
            [&] { return harness::run_acrobat(pa, ds, default_opts()); });
        const double dn = dynet_ms(spec, large, ds, false);
        const double dnpp = dynet_ms(spec, large, ds, true);
        std::printf("%-10s %-6s %-5d %9.2f %9.2f %9.2f\n", name,
                    size_name(large), batch, dn, dnpp, ab);
      }
    }
  }
  return 0;
}
