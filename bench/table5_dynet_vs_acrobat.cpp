// Table 5: DyNet vs ACROBAT — inference latencies (ms) and speedups across
// all seven models, small/large, batch 8/64.
//
// As in the paper, DyNet gets the best of its two scheduling schemes
// (agenda-based and depth-based) per configuration, and its Berxit run is
// subject to the scaled device-memory cap (the paper's batch-64 DyNet
// Berxit was killed by out-of-memory; with the cap ours reports "-" too).
#include <cmath>

#include "bench_util.h"

using namespace acrobat;
using namespace acrobat::bench;

namespace {

// Scaled stand-in for the paper's 8 GB GPU (tensors here are ~100x smaller
// than the paper's BERT configs, and 8 GB / ~2000 ≈ 4 MB): DyNet
// materializes every unfused intermediate, which its Berxit batch-64 runs
// exceed — matching the paper's OOM kills — while batch 8 fits.
constexpr std::size_t kDynetMemoryCap = 4ull << 20;

double dynet_best_ms(const models::ModelSpec& spec, bool large,
                     const models::Dataset& ds, bool& oom) {
  double best = 1e300;
  oom = false;
  for (const bool agenda : {true, false}) {
    harness::Prepared p =
        harness::prepare(spec, large, baselines::dynet_pipeline_config());
    baselines::DynetOptions dop;
    dop.agenda_scheduler = agenda;
    dop.launch_overhead_ns = kLaunchNs;
    dop.memory_cap_bytes = spec.name == "Berxit" ? kDynetMemoryCap : 0;
    bool this_oom = false;
    const double ms = time_min_ms([&] {
      auto r = baselines::run_dynet(p, ds, dop);
      this_oom = this_oom || r.oom;
      return r;
    });
    if (this_oom) {
      oom = true;
      continue;
    }
    best = std::min(best, ms);
  }
  oom = oom && best == 1e300;
  return best;
}

}  // namespace

int main() {
  header("Table 5: DyNet vs ACROBAT (latency ms, speedup)", "paper Table 5");
  std::printf("%-10s %-6s %-5s %10s %10s %9s\n", "model", "size", "batch",
              "DyNet", "ACROBAT", "speedup");
  double geo = 0;
  int geo_n = 0;
  for (const auto& spec : models::all_models()) {
    for (const bool large : {false, true}) {
      for (const int batch : {8, 64}) {
        const models::Dataset ds = dataset_for(spec, large, batch);
        harness::Prepared pa =
            harness::prepare(spec, large, passes::PipelineConfig{});
        const double ab_ms = time_min_ms(
            [&] { return harness::run_acrobat(pa, ds, default_opts()); });
        bool oom = false;
        const double dy_ms = dynet_best_ms(spec, large, ds, oom);
        if (oom) {
          std::printf("%-10s %-6s %-5d %10s %10.2f %9s  (DyNet OOM at %zu MB cap)\n",
                      spec.name.c_str(), size_name(large), batch, "-", ab_ms,
                      "-", kDynetMemoryCap >> 20);
        } else {
          std::printf("%-10s %-6s %-5d %10.2f %10.2f %8.2fx\n",
                      spec.name.c_str(), size_name(large), batch, dy_ms, ab_ms,
                      dy_ms / ab_ms);
          geo += std::log(dy_ms / ab_ms);
          geo_n++;
        }
      }
    }
  }
  std::printf("\ngeomean speedup over DyNet: %.2fx (paper: ~2.3x overall)\n",
              std::exp(geo / geo_n));
  return 0;
}
