// Bench harness: compiles a model under a pipeline config (`prepare`) and
// runs it under the ACROBAT runtime (`run_acrobat`) or the boxed VM
// (`run_vm`). Baselines (baselines/*.h) reuse the same Prepared module with
// different engine configurations, so every system sees identical kernels,
// weights, and datasets — only the runtime discipline differs.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/engine.h"
#include "ir/ir.h"
#include "models/models.h"
#include "passes/pipeline.h"

namespace acrobat::harness {

struct RunOptions {
  std::int64_t launch_overhead_ns = 0;
  bool time_activities = false;
  bool collect_outputs = false;  // flatten result tensors into RunResult
  // Schedule memoization passthrough (EngineConfig::sched_memo). Off by
  // default so the closed-batch baselines keep their exact counters.
  bool sched_memo = false;
  // Runs the whole instance batch `repeats` times in ONE engine and reports
  // stats and wall time for the LAST repetition only — earlier repetitions
  // are warmup. The memo ablation rows use this to measure steady-state
  // replay cost (bench/ablation_scheduler.cpp); repeats == 1 is the
  // unchanged single-pass behavior.
  int repeats = 1;
  // Observability (DESIGN.md §9): attach this tracer to the engine and
  // fiber scheduler for the run. Null (the default) keeps every
  // instrumentation site to one predicted branch — the overhead bench
  // (bench/trace_overhead.cpp) measures exactly this knob.
  trace::Tracer* tracer = nullptr;
};

struct RunResult {
  double wall_ms = 0;
  bool oom = false;
  ActivityStats stats;
  std::vector<long long> kernel_invocations;       // per kernel id (PGO)
  std::vector<std::vector<float>> outputs;         // per instance, flattened
};

struct Module {
  KernelRegistry registry;
};

struct Compiled {
  Module module;
  ir::Program program;
};

struct Weights {
  std::shared_ptr<TensorPool> pool;
  std::vector<Tensor> tensors;
};

struct Prepared {
  Compiled compiled;
  Weights weights;
  passes::PipelineConfig cfg;
  bool large = false;
};

Prepared prepare(const models::ModelSpec& spec, bool large, const passes::PipelineConfig& cfg);

// Materializes weight declarations into `out` (appending; allocates the
// pool if absent). Deterministic per (model name, size): a model gets
// bitwise-identical weights whether it is prepared solo or compiled into a
// fleet's merged module — the fleet parity tests (tests/test_fleet.cpp)
// cross-check fleet outputs against solo serve runs through this.
void materialize_weights(const std::string& model_name, bool large,
                         const std::vector<models::WeightDecl>& decls, Weights& out);

// Collects every tensor leaf of a structured result value, in traversal
// order (shared by run_with_engine and serve/server.h).
void collect_output_trefs(const Value& v, std::vector<TRef>& out);

// Maps a compiled module's pipeline config onto engine behavior flags —
// the single source of truth shared by run_acrobat, run_vm, and the
// serving layer, so a serve engine can never silently diverge from the
// closed-batch one (tests/test_serve.cpp relies on bitwise parity).
EngineConfig engine_config_for(const passes::PipelineConfig& cfg,
                               std::int64_t launch_overhead_ns, bool time_activities);

// Sets every kernel to its last (assumed fastest) schedule variant; called
// by prepare, re-applied by benches after autosched::reset_schedules.
void apply_default_schedules(KernelRegistry& registry);

RunResult run_acrobat(const Prepared& p, const models::Dataset& ds, const RunOptions& opts);
RunResult run_vm(const Prepared& p, const models::Dataset& ds, const RunOptions& opts);

// Shared runner used by run_acrobat/run_vm and the baselines: executes all
// instances against an engine built from `ec`, optionally on fibers, and
// fills a RunResult. `use_vm` selects the boxed interpreter.
RunResult run_with_engine(const Prepared& p, const models::Dataset& ds, const RunOptions& opts,
                          EngineConfig ec, bool use_fibers, bool use_vm);

}  // namespace acrobat::harness
