// Reverse-plan-replay autodiff (training_batch.cpp; paper §9's training
// claim, Qiao & Taura 2019): the backward pass walks the engine's executed
// batch log in reverse, computing input gradients batch-by-batch — so the
// backward pass inherits exactly the forward batching, and backward launch
// counts collapse the same way forward ones do.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "passes/pipeline.h"

namespace acrobat::grad {

// Training uses the per-op pipeline: every executed kernel is a primitive
// with a known gradient rule (coarse/fused cell kernels are inference-only).
inline passes::PipelineConfig training_pipeline_config() {
  passes::PipelineConfig c;
  c.kernel_fusion = false;
  c.coarsen = false;
  return c;
}

struct Seed {
  TRef ref;
  std::vector<float> grad;  // same numel as the seeded tensor
};

struct BackwardOptions {
  std::int64_t launch_overhead_ns = 0;
};

struct BackwardResult {
  long long backward_launches = 0;
  // Gradient buffers keyed by engine node id (weights included).
  std::unordered_map<std::uint32_t, std::vector<float>> grads;
};

BackwardResult backward(Engine& engine, const KernelRegistry& registry,
                        const std::vector<Seed>& seeds, const BackwardOptions& opts);

}  // namespace acrobat::grad
