// Monotonic clock helpers and the activity-time buckets every runtime
// component reports into (DESIGN.md "measurement discipline").
#pragma once

#include <cstdint>
#include <ctime>

namespace acrobat {

inline std::int64_t now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000ll + ts.tv_nsec;
}

// Busy-wait for `ns` nanoseconds. Used to charge the simulated per-launch
// device overhead as real wall time (DESIGN.md substitution table): a sleep
// would be descheduled and a pure counter would not show up in wall-clock
// measurements.
inline void spin_ns(std::int64_t ns) {
  if (ns <= 0) return;
  const std::int64_t until = now_ns() + ns;
  while (now_ns() < until) {
  }
}

struct TimeBucket {
  std::int64_t ns = 0;
  double ms() const { return static_cast<double>(ns) * 1e-6; }
  void add(std::int64_t delta) { ns += delta; }
};

// RAII span that adds its lifetime to a bucket when enabled.
class ScopedTimer {
 public:
  ScopedTimer(TimeBucket& bucket, bool enabled)
      : bucket_(bucket), enabled_(enabled), t0_(enabled ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (enabled_) bucket_.add(now_ns() - t0_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBucket& bucket_;
  bool enabled_;
  std::int64_t t0_;
};

}  // namespace acrobat
