// Deterministic xorshift RNG: every dataset and weight tensor is seeded so
// all benches and baselines see bit-identical inputs (bench_util.h).
#pragma once

#include <cstdint>

namespace acrobat {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  // Uniform in [0, n).
  int uniform_int(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }

  // Uniform in [lo, hi] inclusive.
  int range(int lo, int hi) { return lo + uniform_int(hi - lo + 1); }

  // Uniform in [-scale, scale).
  float uniform(float scale) {
    const std::uint64_t bits = next() >> 11;  // 53 random bits
    const double u = static_cast<double>(bits) * (1.0 / 9007199254740992.0);
    return static_cast<float>((2.0 * u - 1.0) * scale);
  }

 private:
  std::uint64_t state_;
};

}  // namespace acrobat
