// Recurrent-cell emitters shared by the model builders.
//
// A cell is created in two steps: make_* registers weights and kernels up
// front (so registration order — which the no-PGO tuner walks — follows the
// builder's declared order, not loop emission order), and emit_* writes the
// cell body into a FuncBuilder. The pipeline config picks the granularity:
//   coarsen        → whole-cell kernels (concat-dense + pointwise cell op)
//   kernel_fusion  → per-gate kernels with fused add+bias+activation
//   neither        → fully per-op (DyNet/eager granularity)
// All three lower to the same math: fine-grained gate denses accumulate in
// the same index order as the coarse concat-dense, so levels agree
// numerically up to float reassociation.
#pragma once

#include <string>

#include "models/models.h"

namespace acrobat::models {

enum class Grain { kCoarse, kFused, kPerOp };

inline Grain grain_of(const passes::PipelineConfig& cfg) {
  if (cfg.coarsen) return Grain::kCoarse;
  if (cfg.kernel_fusion) return Grain::kFused;
  return Grain::kPerOp;
}

// --- tanh RNN cell: h' = tanh(Wx·x + Wh·h + b) ------------------------------
struct RnnCell {
  Grain grain;
  int in_dim = 0, h = 0;
  // coarse
  int k_concat = -1, k_dense = -1, k_bias = -1, k_tanh = -1, w = -1, b = -1;
  // fused / per-op
  int k_dx = -1, k_dh = -1, k_abt = -1, k_add = -1, wx = -1, wh = -1;
};
RnnCell make_rnn(BuildCtx& ctx, const std::string& prefix, int in_dim, int h);
int emit_rnn(ir::FuncBuilder& b, const RnnCell& c, int x, int h);

// --- GRU cell ---------------------------------------------------------------
struct GruCell {
  Grain grain;
  int in_dim = 0, h = 0;
  // coarse: gates = dense3([x;h]) + b, h' = gru_point(gates, h)
  int k_concat = -1, k_dense3 = -1, k_bias3 = -1, k_point = -1, w3 = -1, b3 = -1;
  // fused / per-op: z and candidate n, then h' = h + z*(n - h)
  int k_zx = -1, k_zh = -1, k_abs = -1, k_nx = -1, k_nh = -1, k_abt = -1;
  int k_add = -1, k_sub = -1, k_mul = -1, k_sig = -1, k_tanh = -1;
  int wzx = -1, wzh = -1, bz = -1, wnx = -1, wnh = -1, bn = -1;
};
GruCell make_gru(BuildCtx& ctx, const std::string& prefix, int in_dim, int h);
int emit_gru(ir::FuncBuilder& b, const GruCell& c, int x, int h);

// --- LSTM cell (gate layout [i f g o]) --------------------------------------
struct LstmCell {
  Grain grain;
  int in_dim = 0, h = 0;
  // coarse
  int k_concat = -1, k_dense4 = -1, k_bias4 = -1, k_newc = -1, k_newh = -1;
  int w4 = -1, b4 = -1;
  // fused / per-op: 4 gates, then c' = f*c + i*g, h' = o*tanh(c')
  int k_gx[4] = {-1, -1, -1, -1}, k_gh[4] = {-1, -1, -1, -1};
  int k_fuse[4] = {-1, -1, -1, -1};  // fused add+bias+act per gate
  int k_add = -1, k_mul = -1, k_sig = -1, k_tanh = -1, k_fma2 = -1, k_multanh = -1;
  int wgx[4] = {-1, -1, -1, -1}, wgh[4] = {-1, -1, -1, -1}, bg[4] = {-1, -1, -1, -1};
};
LstmCell make_lstm(BuildCtx& ctx, const std::string& prefix, int in_dim, int h);
// Returns h'; writes c' through c_out.
int emit_lstm(ir::FuncBuilder& b, const LstmCell& c, int x, int h, int cc, int* c_out);

// --- classifier head: softmax(dense(x) + b) ---------------------------------
struct ClassifierHead {
  int k_dense = -1, k_bias = -1, k_softmax = -1, w = -1, b = -1;
};
ClassifierHead make_classifier(BuildCtx& ctx, const std::string& prefix, int in_dim);
int emit_classifier(ir::FuncBuilder& b, const ClassifierHead& c, int x);

// Zero-state kernel (hoistable constant, Table 7's leaf states).
int make_zeros(BuildCtx& ctx, const std::string& name, int n);

}  // namespace acrobat::models
