// Internal: per-model spec factories (one translation unit per model).
#pragma once

#include "models/models.h"

namespace acrobat::models {

ModelSpec make_treelstm_spec();
ModelSpec make_mvrnn_spec();
ModelSpec make_birnn_spec();
ModelSpec make_drnn_spec();
ModelSpec make_stackrnn_spec();
ModelSpec make_nestedrnn_spec();
ModelSpec make_berxit_spec();
ModelSpec make_graphrnn_spec();
ModelSpec make_decoder_spec();

// Dataset helpers shared by the model sources.
Value dataset_tensor(Dataset& ds, const Tensor& t);  // registers + placeholder
Dataset make_token_dataset(bool large, int batch, std::uint64_t seed, int min_len, int max_len);

// Decoder's max-token cap (the bound on its data-dependent emit loop);
// tests and benches size soaks and deadlines from it.
int decoder_max_tokens(bool large);

}  // namespace acrobat::models
