// Model zoo: the paper's seven evaluation models plus GraphRNN (training
// bench). Each spec provides a dataset builder (deterministic per seed — all
// benches and baselines see identical inputs) and a program builder that
// compiles the model into the register IR at the granularity the pipeline
// config asks for.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/kernels.h"
#include "engine/value.h"
#include "ir/ir.h"
#include "passes/pipeline.h"
#include "tensor/tensor.h"

namespace acrobat::models {

struct Dataset {
  std::shared_ptr<TensorPool> pool;
  std::vector<Tensor> tensors;  // raw input tensors
  // Per-instance structured input; kTensor leaves hold indices into
  // `tensors` until remap_trefs swaps in engine refs.
  std::vector<Value> inputs;
};

// Rewrites dataset tensor indices to engine TRefs (refs[i] wraps tensors[i]).
Value remap_trefs(const Value& v, const std::vector<TRef>& refs);

struct WeightDecl {
  Shape shape;
  float scale = 0.0f;  // 0 → zeros
};

// Handed to model builders at prepare time.
struct BuildCtx {
  ir::Program& program;
  KernelRegistry& registry;
  const passes::PipelineConfig& cfg;
  bool large = false;
  std::vector<WeightDecl>& weights;

  int add_weight(const Shape& s, float scale) {
    weights.push_back(WeightDecl{s, scale});
    return static_cast<int>(weights.size()) - 1;
  }
  int kernel(const std::string& name, OpKind op, std::int64_t attr,
             std::initializer_list<Shape> rep) {
    return registry.add(name, op, attr, static_cast<int>(rep.size()), rep.begin());
  }
};

struct ModelSpec {
  std::string name;
  Dataset (*build_dataset)(bool large, int batch, std::uint64_t seed) = nullptr;
  int (*build)(BuildCtx&) = nullptr;  // returns the main function's index
};

// The seven models of Tables 5-9.
const std::vector<ModelSpec>& all_models();
// Those seven plus GraphRNN (training_batch.cpp); aborts on unknown names.
const ModelSpec& model_by_name(const std::string& name);

int hidden_dim(bool large);       // 16 small / 40 large
constexpr int kNumClasses = 8;    // classifier head width

}  // namespace acrobat::models
