// Budgeted schedule auto-tuner with optional profile-guided invocation
// frequencies (Table 9). Each measurement trial costs one unit of budget;
// kernels are visited hottest-first by `freq`, so a PGO profile steers the
// budget to the kernels that actually dominate the run, while uniform
// frequencies walk registration order and waste trials on cold kernels.
#pragma once

#include <vector>

#include "engine/kernels.h"

namespace acrobat::autosched {

// Sets every kernel to `variant` (clamped to its variant count).
void reset_schedules(KernelRegistry& registry, int variant);

// Spends up to `budget` measurement trials picking the fastest variant per
// kernel, hottest first. `freq[k]` is kernel k's invocation weight.
void tune(KernelRegistry& registry, const std::vector<double>& freq, int budget);

}  // namespace acrobat::autosched
