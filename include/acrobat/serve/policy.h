// Batching policies: at every trigger boundary the shard asks its policy
// how many queued requests to admit into the live fiber pool, and whether
// to hold the trigger briefly to let more arrivals join the batch. The
// policy sees only shard-local state — policies never synchronize across
// shards (DESIGN.md §7).
//
// Policies additionally triage each queued request (DESIGN.md §8): the
// base policies admit everything in arrival order, while the fleet's SLO
// policy (fleet/policy.h) orders admission earliest-deadline-first,
// deprioritizes requests whose deadline is blown, and ultimately sheds
// them — the admission-control half of goodput-oriented serving.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "serve/load.h"

namespace acrobat::serve {

struct PolicyCtx {
  std::int64_t now_ns = 0;   // since serve start
  std::size_t queued = 0;    // arrived at this shard, not yet admitted
  std::size_t live = 0;      // admitted requests in flight
  // Decode-aware split: how many of `live` are generative sessions past
  // their first token, and how many parked sessions currently want their
  // next decode step. Policies without a decode budget ignore both.
  std::size_t live_decode = 0;
  std::size_t queued_steps = 0;
  std::int64_t oldest_queued_arrival_ns = -1;  // -1: queue empty
  std::int64_t oldest_live_arrival_ns = -1;    // -1: nothing in flight
  bool inbox_open = true;  // false once the dispatcher has sent everything
};

struct AdmitDecision {
  // Upper bound on requests to admit this round (actual = min with queued).
  std::size_t max_admit = static_cast<std::size_t>(-1);
  // Upper bound on parked decode steps to unpark per *trigger window* (the
  // interval between admission hooks). size_t(-1) = unlimited, the classic
  // behavior: steps re-admit outside the width budget. A finite value chunks
  // decode re-admission so prefill admissions are not starved of trigger
  // width at overload — the shard resets its step budget from this once per
  // window, and guarantees at least one step per window so a fully-parked
  // pool can never stall.
  std::size_t max_step_admit = static_cast<std::size_t>(-1);
  // If > now and everything live is suspended, poll for new arrivals until
  // this time before triggering — the batch-forming pause.
  std::int64_t hold_until_ns = -1;
};

// One queued request as the policy sees it at a triage point.
struct RequestView {
  std::int64_t now_ns = 0;
  std::int64_t arrival_ns = 0;
  LatencyClass latency_class = LatencyClass::kInteractive;
  // Iteration-level scheduling (DESIGN.md §7): a parked generative session
  // re-entering admission for its next token. last_token_ns is when it
  // parked — a token-aware policy derives its deadline from that, not from
  // the session's original arrival, so EDF triage and shedding keep working
  // mid-stream.
  bool is_step = false;
  std::int64_t last_token_ns = -1;
  int tokens = 0;
};

enum class Verdict : std::uint8_t {
  kAdmit,  // run; admission order is ascending deadline_ns
  kDefer,  // deadline blown but within grace: sort after every admit
  kShed,   // drop without running; completes immediately as shed
};

struct Triage {
  Verdict verdict = Verdict::kAdmit;
  // Absolute deadline used as the admission sort key; max() = no deadline
  // (best-effort requests sort after everything with an SLO).
  std::int64_t deadline_ns = std::numeric_limits<std::int64_t>::max();
};

class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;
  virtual AdmitDecision decide(const PolicyCtx& ctx) = 0;
  // Default: admit everything, no deadline — arrival-order FIFO admission,
  // which is exactly the pre-fleet serve behavior.
  virtual Triage triage(const RequestView&) { return Triage{}; }
  virtual const char* name() const = 0;
};

enum class PolicyKind {
  kGreedy,    // admit everything that has arrived; never hold a trigger
  kMaxBatch,  // cap the live pool at `max_batch` (bounds per-trigger width)
  kDeadline,  // greedy admission + hold triggers while the batch is small
              // and the oldest in-flight request still has SLO slack
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kGreedy;
  std::size_t max_batch = 8;          // kMaxBatch
  std::size_t min_batch = 4;          // kDeadline: stop holding at this width
  std::int64_t slo_ns = 2'000'000;    // kDeadline: per-request latency target
  std::int64_t max_hold_ns = 200'000; // kDeadline: cap on one hold
  // kDeadline: hard cap on the live pool width (0 = uncapped). With
  // min_batch == max_admit the policy carves the arrival stream into
  // fixed-width triggers regardless of queue depth — batch composition
  // becomes a pure function of arrival order, not of timing.
  std::size_t max_admit = 0;
  // kDeadline: split the width budget into prefill vs decode sub-budgets
  // (0 = off). When set (requires max_admit > 0), max_admit gates *prefill*
  // admissions against non-decode live sessions only, and parked decode
  // steps are re-admitted in chunks of decode_admit per trigger window.
  // Trades the hard cap on concurrent sessions for flat TTFT at overload:
  // new arrivals keep entering while decode work is metered, so the live
  // session count is bounded by decode duration rather than max_admit.
  std::size_t decode_admit = 0;
};

std::unique_ptr<BatchPolicy> make_policy(const PolicyConfig& cfg);
const char* policy_name(PolicyKind kind);

}  // namespace acrobat::serve
