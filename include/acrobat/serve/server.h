// The continuous-batching serving layer (DESIGN.md §7).
//
// serve() plays a request trace against a prepared model: a dispatcher
// walks the trace in real time (open-loop — arrivals never wait for the
// server) and routes each request to one of N shard workers over an SPSC
// inbox. Each shard is a thread that exclusively owns an engine + arena +
// fiber pool; requests admitted into the live pool record ops as fibers,
// and every trigger batches pending ops across all in-flight requests, old
// and new (Engine::set_admission_hook). Shards share no mutable state —
// scaling is by sharding, and the only cross-thread traffic is the inbox
// ring plus one per-shard load counter the least-loaded dispatcher reads.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/harness.h"
#include "serve/load.h"
#include "serve/policy.h"
#include "serve/stats.h"
#include "trace/trace.h"

namespace acrobat::serve {

enum class DispatchKind {
  kRoundRobin,   // shard = request id mod N (static, zero coordination)
  kLeastLoaded,  // fewest outstanding requests at arrival time; ties break
                 // to the lowest shard index (deterministic when idle)
};

struct ServeOptions {
  int shards = 1;
  DispatchKind dispatch = DispatchKind::kRoundRobin;
  PolicyConfig policy;
  std::int64_t launch_overhead_ns = 0;
  bool collect_outputs = false;  // flatten each request's result tensors
  bool time_activities = false;
  // Epoch recycling (DESIGN.md §7 "Recycling"): reaped requests return
  // their node slots and arena pages to per-shard pools, so shard memory
  // plateaus at peak concurrency instead of growing with the trace. On by
  // default — steady-state serving is the point of this layer; turn off
  // only to measure the unbounded-growth baseline (test_serve_soak.cpp).
  bool recycle = true;
  // Schedule memoization (DESIGN.md §5): steady-state traffic is dominated
  // by structurally recurring triggers, so serving replays cached batch
  // plans by default; ShardReport::stats carries the per-shard hit/miss
  // counters. Off reproduces the always-live-scheduler baseline.
  bool sched_memo = true;
  // Observability (DESIGN.md §9): when enabled, each shard owns a
  // fixed-capacity event ring + metrics registry and ServeResult::trace
  // carries the assembled dump (write_chrome_json → Perfetto). Off (the
  // default) costs one predicted branch per instrumentation site —
  // tests/test_trace.cpp proves bitwise parity.
  trace::TraceOptions trace;
};

// Aborts loudly on a nonsense configuration (shards <= 0, negative launch
// overhead) instead of silently clamping — a typo'd sweep should fail the
// bench, not quietly measure something else.
void validate(const ServeOptions& opts);

// Per-request ledger: enqueue → admission → completion, all relative to
// serve start. Latency (the SLO quantity) is completion - arrival, so time
// spent queued behind an overloaded shard counts.
struct RequestRecord {
  int id = -1;
  int shard = -1;
  std::int64_t arrival_ns = 0;
  std::int64_t admit_ns = -1;
  std::int64_t completion_ns = -1;
  // Fleet SLO admission control (DESIGN.md §8): the request was dropped
  // without running because its deadline was already blown. completion_ns
  // is the shed time; `output` stays empty. Plain serve() never sheds.
  bool shed = false;
  // Token accounting (iteration-level scheduling, DESIGN.md §7): one-shot
  // requests keep tokens == 0 and first/last_token_ns == -1. A generative
  // session counts one token per kStepKeep boundary; `cancelled` marks a
  // session the policy stopped mid-stream (it still completes through the
  // model's tail, so completion_ns and output are valid for the emitted
  // prefix).
  int tokens = 0;
  std::int64_t first_token_ns = -1;
  std::int64_t last_token_ns = -1;
  bool cancelled = false;
  std::vector<float> output;  // when collect_outputs

  double latency_ms() const {
    return static_cast<double>(completion_ns - arrival_ns) * 1e-6;
  }
  double ttft_ms() const {
    return static_cast<double>(first_token_ns - arrival_ns) * 1e-6;
  }
};

struct ShardReport {
  int requests = 0;
  int shed = 0;                  // fleet only: requests dropped past deadline
  long long triggers = 0;        // all-blocked wakeups (fiber scheduler)
  std::size_t max_live = 0;      // peak concurrently admitted requests
  long long stacks_allocated = 0;
  // Token accounting: tokens emitted by generative sessions on this shard,
  // sessions cancelled mid-stream, and the TTFT / inter-token-gap split the
  // per-request latency histogram cannot express (a decode request's
  // end-to-end latency hides whether it stalled on its first token or
  // between tokens).
  long long tokens = 0;
  int cancelled = 0;
  LatencyHisto ttft_ms;
  LatencyHisto inter_token_ms;
  ActivityStats stats;           // per-activity engine buckets + launches
  // Memory watermarks (DESIGN.md §7 "Recycling"): with recycling on, the
  // node table and arena high-water mark plateau at peak concurrency over
  // any trace length; without it they grow with the request count
  // (test_serve_soak.cpp asserts both shapes).
  Engine::MemoryStats mem;
};

struct ServeResult {
  std::vector<RequestRecord> records;  // indexed by request id
  Percentiles latency_ms;              // enqueue → completion
  // Decode split (zero-count when the trace held no generative sessions):
  // arrival → first token, and the gap between consecutive tokens.
  Percentiles ttft_ms;
  Percentiles inter_token_ms;
  long long tokens = 0;
  int cancelled = 0;
  double tokens_per_sec = 0;  // tokens / makespan
  double throughput_rps = 0;
  double makespan_ms = 0;  // first arrival to last completion
  std::vector<ShardReport> shards;
  // Populated when ServeOptions::trace.enabled: one track per shard plus
  // the dispatcher, streamed metric ticks, and slow-request exemplars.
  trace::TraceDump trace;

  long long total_launches() const {
    long long n = 0;
    for (const ShardReport& s : shards) n += s.stats.kernel_launches;
    return n;
  }
  // Worst shard's arena watermark / node table — the memory column of the
  // latency-throughput frontier (bench/serve_latency.cpp, soak test).
  std::size_t peak_arena_bytes() const {
    std::size_t m = 0;
    for (const ShardReport& s : shards) m = std::max(m, s.mem.arena_high_water_bytes);
    return m;
  }
  std::size_t peak_node_table() const {
    std::size_t m = 0;
    for (const ShardReport& s : shards) m = std::max(m, s.mem.node_table_size);
    return m;
  }
};

// `trace` must be sorted by arrival_ns with ids 0..N-1 (generate_load's
// contract). Blocks until every request has completed.
ServeResult serve(const harness::Prepared& p, const models::Dataset& ds,
                  const std::vector<Request>& trace, const ServeOptions& opts);

}  // namespace acrobat::serve
