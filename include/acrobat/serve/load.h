// Open-loop load generation (DESIGN.md §7): a seeded arrival process over a
// model's dataset stands in for user traffic the way §2's spin stands in
// for GPU launch latency. Open-loop means arrivals do not wait for the
// server — queueing delay under overload is part of the measured latency,
// which is what makes the latency-throughput frontier honest.
#pragma once

#include <cstdint>
#include <vector>

namespace acrobat::serve {

// One inference request: `input_index` selects an instance from the model's
// dataset; `arrival_ns` is the enqueue time relative to serve start.
struct Request {
  int id = 0;
  std::size_t input_index = 0;
  std::int64_t arrival_ns = 0;
};

enum class ArrivalKind {
  kPoisson,  // exponential inter-arrival times at `rate_rps`
  kBurst,    // Poisson bursts of `burst_size` simultaneous arrivals
};

struct LoadSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 1000.0;  // mean arrival rate, requests per second
  int num_requests = 64;
  int burst_size = 8;  // kBurst only
  std::uint64_t seed = 1;
};

// Deterministic per (spec, num_inputs): ids are 0..num_requests-1 in
// arrival order, input indices uniform over [0, num_inputs).
std::vector<Request> generate_load(const LoadSpec& spec, std::size_t num_inputs);

}  // namespace acrobat::serve
