// Open-loop load generation (DESIGN.md §7): a seeded arrival process over a
// model's dataset stands in for user traffic the way §2's spin stands in
// for GPU launch latency. Open-loop means arrivals do not wait for the
// server — queueing delay under overload is part of the measured latency,
// which is what makes the latency-throughput frontier honest.
//
// The fleet layer (DESIGN.md §8) generalizes the trace to many models: a
// request names the registry model it targets and carries a latency class,
// and `generate_load` over a ModelMix draws model, input, and class per
// request from one seeded stream — same seed, same trace, regardless of
// how many shards later serve it.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace acrobat::serve {

// Latency classes for class-aware routing and SLO admission control
// (fleet/policy.h): interactive requests carry the tightest deadline,
// batch a loose one, best-effort none (they are never shed).
enum class LatencyClass : std::uint8_t { kInteractive = 0, kBatch = 1, kBestEffort = 2 };
inline constexpr int kNumLatencyClasses = 3;
const char* latency_class_name(LatencyClass c);

// One inference request: `input_index` selects an instance from the target
// model's dataset; `arrival_ns` is the enqueue time relative to serve start
// (stamped at issue time in closed-loop mode, fleet/fleet.h).
struct Request {
  int id = 0;
  std::size_t input_index = 0;
  std::int64_t arrival_ns = 0;
  int model_id = 0;  // fleet: index into the ModelRegistry; single-model = 0
  LatencyClass latency_class = LatencyClass::kInteractive;
};

enum class ArrivalKind {
  kPoisson,  // exponential inter-arrival times at `rate_rps`
  kBurst,    // Poisson bursts of `burst_size` simultaneous arrivals
};

struct LoadSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 1000.0;  // mean arrival rate, requests per second
  int num_requests = 64;
  int burst_size = 8;  // kBurst only
  std::uint64_t seed = 1;
};

// One model's share of a mixed-model trace. Class probabilities are per
// model (an embedding model can be all-batch while a chat model is all-
// interactive); the remainder after interactive+batch is best-effort.
struct ModelMix {
  int model_id = 0;
  double weight = 1.0;  // relative traffic share
  std::size_t num_inputs = 0;
  double p_interactive = 1.0;
  double p_batch = 0.0;
};

// Aborts loudly on a nonsense spec (rate_rps <= 0, num_requests <= 0,
// burst_size <= 0) instead of silently generating a degenerate trace.
void validate(const LoadSpec& spec);

// Deterministic per (spec, num_inputs): ids are 0..num_requests-1 in
// arrival order, input indices uniform over [0, num_inputs).
std::vector<Request> generate_load(const LoadSpec& spec, std::size_t num_inputs);

// Mixed-model form: per request, the model is drawn by mix weight, the
// input uniformly over that model's inputs, and the class from that
// model's probabilities — all from the one seeded stream, so the trace is
// identical across runs and independent of the serving configuration.
// With a single all-interactive entry this degenerates bit-for-bit to the
// single-model overload above.
std::vector<Request> generate_load(const LoadSpec& spec, const std::vector<ModelMix>& mix);

namespace detail {

// Uniform in (0, 1] — safe for -log(u). Shared by the load generator and
// the closed-loop client's think-time draws (fleet/fleet.h).
inline double uniform01(Rng& rng) {
  const std::uint64_t bits = rng.next() >> 11;  // 53 random bits
  return 1.0 - static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

// llround, not truncation: casting the exponential draw toward zero shaves
// up to 1 ns off every gap, which biases the realized arrival rate above
// rate_rps (the bias compounds over a long trace — ~0.5 ns per gap).
inline std::int64_t exp_gap_ns(Rng& rng, double rate_rps) {
  return std::llround(-std::log(uniform01(rng)) / rate_rps * 1e9);
}

}  // namespace detail

}  // namespace acrobat::serve
