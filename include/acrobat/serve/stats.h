// Latency aggregation for the serving layer: log-bucketed histograms with
// nearest-rank quantiles. Reused by bench_util.h for every bench that
// reports a distribution instead of a min (DESIGN.md §6 measures achievable
// latency; serving SLOs are about the tail, so serve_latency reports
// p50/p95/p99 and the fleet layer adds p99.9 plus deadline attainment — the
// goodput column).
//
// The histogram replaces the stored-sample vectors the serve path used to
// keep: memory is a fixed 256 buckets regardless of request count, so a 5k
// (or 5M) soak aggregates latency in O(1) space (DESIGN.md §9). Bucket
// edges grow by 2^(1/8) (~9% wide), which bounds a reported quantile's
// relative error by ~4.4% (geometric midpoint of the owning bucket);
// tests/test_trace.cpp checks that bound against exact sorted-sample
// quantiles on seeded data. Exact count/mean/max ride alongside, so
// attainment at or past the observed max is exact. Per-shard memory gauges
// live on ShardReport (server.h) as the engine's own MemoryStats.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <type_traits>
#include <vector>

namespace acrobat::serve {

class LatencyHisto {
 public:
  static constexpr int kBuckets = 256;
  static constexpr double kLoMs = 1e-3;  // first bucket: [0, 1 µs]
  // Per-bucket growth factor 2^(1/8); 255 log buckets reach ~1 hour.
  static constexpr double kGrowth = 1.0905077326652577;
  // Max relative error of a bucket's geometric-midpoint representative
  // against any sample in the bucket: sqrt(kGrowth) - 1.
  static constexpr double kRelError = 0.0443;

  void add(double ms) {
    // A negative or non-finite sample is always an upstream bug — the
    // classic one being an unset completion_ns = -1 flowing through
    // latency_ms(). Bucketing it would silently corrupt every quantile
    // (bucket() maps it to bucket 0), so fault loudly in every build.
    if (!(ms >= 0.0)) {
      std::fprintf(stderr,
                   "acrobat serve: LatencyHisto::add(%f): negative or non-finite "
                   "sample — unset completion/arrival timestamp upstream?\n",
                   ms);
      std::abort();
    }
    ++n_;
    sum_ += ms;
    if (ms > max_) max_ = ms;
    ++b_[static_cast<std::size_t>(bucket(ms))];
  }

  void merge(const LatencyHisto& o) {
    n_ += o.n_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    for (int i = 0; i < kBuckets; ++i)
      b_[static_cast<std::size_t>(i)] += o.b_[static_cast<std::size_t>(i)];
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0; }
  double max() const { return max_; }

  // Nearest-rank quantile from buckets: the representative of the bucket
  // holding the ceil(q*N)-th smallest sample, clamped to the exact max.
  double quantile(double q) const {
    if (n_ == 0) return 0.0;
    double rank = std::ceil(q * static_cast<double>(n_));
    if (rank < 1.0) rank = 1.0;
    if (rank >= static_cast<double>(n_)) return max_;  // the top rank is exact
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += b_[static_cast<std::size_t>(i)];
      if (static_cast<double>(cum) >= rank)
        return std::min(representative(i), max_);
    }
    return max_;
  }

  // Fraction of samples at or under the deadline. Exact when the deadline
  // clears the observed max (the SLO-met case must read 1.0, not 0.9997);
  // otherwise full buckets count exactly and the straddling bucket is
  // log-interpolated.
  double attainment(double deadline_ms) const {
    if (n_ == 0) return 1.0;
    if (deadline_ms >= max_) return 1.0;
    if (deadline_ms < 0) return 0.0;
    double cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      const double hi = upper_edge(i);
      const double cnt = static_cast<double>(b_[static_cast<std::size_t>(i)]);
      if (deadline_ms >= hi) {
        cum += cnt;
        continue;
      }
      const double lo = i == 0 ? 0.0 : upper_edge(i - 1);
      if (deadline_ms > lo) {
        // Bucket 0 starts at 0 where the log scale degenerates — linear there.
        const double frac =
            i == 0 ? deadline_ms / hi
                   : (std::log(deadline_ms) - std::log(lo)) /
                         (std::log(hi) - std::log(lo));
        cum += cnt * frac;
      }
      break;
    }
    return cum / static_cast<double>(n_);
  }

  std::uint64_t bucket_count(int i) const {
    return b_[static_cast<std::size_t>(i)];
  }

  // Bucket i covers (upper_edge(i-1), upper_edge(i)]; bucket 0 starts at 0.
  static double upper_edge(int i) {
    return kLoMs * std::pow(2.0, static_cast<double>(i) / 8.0);
  }
  static int bucket(double ms) {
    if (!(ms > kLoMs)) return 0;
    const int i = static_cast<int>(std::ceil(std::log2(ms / kLoMs) * 8.0));
    return i < 1 ? 1 : (i > kBuckets - 1 ? kBuckets - 1 : i);
  }
  static double representative(int i) {
    if (i == 0) return kLoMs * 0.5;
    return kLoMs * std::pow(2.0, (static_cast<double>(i) - 0.5) / 8.0);
  }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> b_{};
};

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0, p999 = 0, mean = 0, max = 0;
  std::size_t count = 0;
  // Retained so deadline attainment can be queried for any deadline after
  // aggregation — serve_latency's goodput column sweeps
  // ACROBAT_SERVE_DEADLINE_MS without re-running the trace.
  LatencyHisto histo;

  static Percentiles from(const LatencyHisto& h) {
    Percentiles r;
    r.histo = h;
    r.count = h.count();
    if (r.count == 0) return r;
    r.p50 = h.quantile(0.50);
    r.p95 = h.quantile(0.95);
    r.p99 = h.quantile(0.99);
    r.p999 = h.quantile(0.999);
    r.mean = h.mean();
    r.max = h.max();
    return r;
  }

  static Percentiles of(const std::vector<double>& samples) {
    LatencyHisto h;
    for (const double s : samples) h.add(s);
    return from(h);
  }

  double attainment(double deadline_ms) const {
    return histo.attainment(deadline_ms);
  }
};

// The serve-path contract this type exists for: no per-sample storage —
// aggregation memory does not scale with request count.
static_assert(std::is_trivially_copyable_v<LatencyHisto>,
              "LatencyHisto must hold no sample vectors");
static_assert(std::is_trivially_copyable_v<Percentiles>,
              "Percentiles must hold no sample vectors");

}  // namespace acrobat::serve
