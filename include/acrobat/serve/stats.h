// Latency aggregation for the serving layer: nearest-rank percentiles over
// a sample vector. Reused by bench_util.h for every bench that reports a
// distribution instead of a min (DESIGN.md §6 measures achievable latency;
// serving SLOs are about the tail, so serve_latency reports p50/p95/p99).
// Per-shard memory gauges live on ShardReport (server.h) as the engine's
// own MemoryStats.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace acrobat::serve {

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0, mean = 0, max = 0;
  std::size_t count = 0;

  // Nearest-rank: the ceil(q*N)-th smallest sample.
  static Percentiles of(std::vector<double> samples) {
    Percentiles r;
    r.count = samples.size();
    if (samples.empty()) return r;
    std::sort(samples.begin(), samples.end());
    const auto rank = [&](double q) {
      std::size_t i = static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples.size())));
      if (i > 0) --i;
      return samples[std::min(i, samples.size() - 1)];
    };
    r.p50 = rank(0.50);
    r.p95 = rank(0.95);
    r.p99 = rank(0.99);
    double sum = 0;
    for (const double s : samples) sum += s;
    r.mean = sum / static_cast<double>(samples.size());
    r.max = samples.back();
    return r;
  }
};

}  // namespace acrobat::serve
