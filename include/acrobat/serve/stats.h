// Latency aggregation for the serving layer: nearest-rank percentiles over
// a sample vector. Reused by bench_util.h for every bench that reports a
// distribution instead of a min (DESIGN.md §6 measures achievable latency;
// serving SLOs are about the tail, so serve_latency reports p50/p95/p99 and
// the fleet layer adds p99.9 plus deadline attainment — the goodput column).
// Per-shard memory gauges live on ShardReport (server.h) as the engine's
// own MemoryStats.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace acrobat::serve {

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0, p999 = 0, mean = 0, max = 0;
  std::size_t count = 0;
  // Retained (sorted ascending) so deadline attainment can be queried for
  // any deadline after aggregation — serve_latency's goodput column sweeps
  // ACROBAT_SERVE_DEADLINE_MS without re-running the trace.
  std::vector<double> sorted;

  // Nearest-rank: the ceil(q*N)-th smallest sample.
  static Percentiles of(std::vector<double> samples) {
    Percentiles r;
    r.count = samples.size();
    if (samples.empty()) return r;
    std::sort(samples.begin(), samples.end());
    r.sorted = std::move(samples);
    const auto rank = [&](double q) {
      std::size_t i =
          static_cast<std::size_t>(std::ceil(q * static_cast<double>(r.sorted.size())));
      if (i > 0) --i;
      return r.sorted[std::min(i, r.sorted.size() - 1)];
    };
    r.p50 = rank(0.50);
    r.p95 = rank(0.95);
    r.p99 = rank(0.99);
    r.p999 = rank(0.999);
    double sum = 0;
    for (const double s : r.sorted) sum += s;
    r.mean = sum / static_cast<double>(r.sorted.size());
    r.max = r.sorted.back();
    return r;
  }

  // Fraction of samples at or under the deadline (SLO attainment). An
  // empty distribution attains vacuously: 1.0.
  double attainment(double deadline_ms) const {
    if (sorted.empty()) return 1.0;
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), deadline_ms);
    return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
  }
};

}  // namespace acrobat::serve
