// Single-producer single-consumer ring: the only cross-thread channel in
// the serving layer (dispatcher → shard inbox). Lock-free by construction —
// one atomic load/store pair per side — which keeps the no-locks-on-the-
// hot-path invariant: shards never contend, they only consume.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace acrobat::serve {

template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to a power of two and never grows; serve() sizes
  // each inbox for the whole trace so push cannot fail mid-run.
  explicit SpscQueue(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity + 1) cap <<= 1;
    buf_.resize(cap);
  }

  bool push(const T& v) {  // producer side only
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= buf_.size()) return false;
    buf_[t & (buf_.size() - 1)] = v;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  bool pop(T& out) {  // consumer side only
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = buf_[h & (buf_.size() - 1)];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  bool empty_hint() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

  // Approximate occupancy. From the producer thread this is exact or an
  // overestimate (its own tail is exact, the consumer's head may lag), which
  // is the safe direction for a producer enforcing a capacity bound: it can
  // reject early, never overfill. The net ingress uses this to hold the
  // admission queue to its *configured* capacity rather than the
  // rounded-up-power-of-two ring size.
  std::size_t size_hint() const {
    return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
  }

  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  std::vector<T> buf_;
  std::atomic<std::size_t> head_{0}, tail_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace acrobat::serve
