// DyNet baseline (Tables 5-7): lazy dynamic batching over a per-op graph —
// boxed per-node DFG construction, runtime agenda- or depth-based
// scheduling, DyNet's default batching heuristics (first-argument-keyed
// matmuls, no constant reuse), explicit gathers, and an optional device
// memory cap. `improved_heuristics` / `manual_instance_parallelism` are the
// paper's hand-improvements (Table 7's DN++).
#pragma once

#include "harness/harness.h"

namespace acrobat::baselines {

struct DynetOptions {
  bool agenda_scheduler = true;          // false: depth-based scheduler
  bool improved_heuristics = false;      // shape-keyed matmuls + constant reuse
  bool manual_instance_parallelism = false;  // hand-batched TDCF (fibers)
  std::int64_t launch_overhead_ns = 0;
  std::size_t memory_cap_bytes = 0;  // 0 = uncapped
  bool time_activities = false;
};

inline passes::PipelineConfig dynet_pipeline_config() {
  passes::PipelineConfig c;
  c.kernel_fusion = false;
  c.coarsen = false;
  c.inline_depth = false;
  c.phases = false;
  c.gather_fusion = false;
  return c;
}

harness::RunResult run_dynet(const harness::Prepared& p, const models::Dataset& ds,
                             const DynetOptions& opts);

}  // namespace acrobat::baselines
