// Cortex baseline (Table 8): hand-specialized persistent kernels for the
// three recursive models it supports. One launch covers a whole readiness
// wave (better launch behavior than ACROBAT), but its restrictive interface
// forces repeated input copies on MV-RNN's per-node matrices.
#pragma once

#include <string>

#include "harness/harness.h"

namespace acrobat::baselines {

harness::RunResult run_cortex(const std::string& model, const harness::Prepared& p,
                              const models::Dataset& ds, const harness::RunOptions& opts);

}  // namespace acrobat::baselines
