// PyTorch-like eager baseline: per-op kernels, one device launch per op,
// no laziness — exploits neither batch nor instance parallelism (Fig. 5).
#pragma once

#include "harness/harness.h"

namespace acrobat::baselines {

inline passes::PipelineConfig eager_pipeline_config() {
  passes::PipelineConfig c;
  c.kernel_fusion = false;
  c.coarsen = false;
  c.inline_depth = false;
  c.phases = false;
  c.gather_fusion = false;
  c.lazy = false;
  return c;
}

harness::RunResult run_eager(const harness::Prepared& p, const models::Dataset& ds,
                             const harness::RunOptions& opts);

}  // namespace acrobat::baselines
