// A compact register IR for model programs.
//
// Models compile (harness::prepare) into Programs over this IR; the same
// Program is executed by the low-overhead AOT executor (exec/aot.h) and the
// deliberately boxed interpreter VM (exec/vm.h) — the Table 4 comparison.
// Tensor work is always deferred through the engine; the IR's own job is
// control flow: ADT recursion, integer loops, tuple indexing, phase tags,
// and the `kSyncSign` instruction that forces a scalar for data-dependent
// branches (the fiber suspension point).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace acrobat::ir {

enum class Op : std::uint8_t {
  kLoadInput,   // dst = args[attr]
  kLoadWeight,  // dst = tensor(weights[attr])
  kKernel,      // dst = engine.add_op(kernel attr, srcs...)
  kTupleMake,   // dst = tuple(srcs...)
  kTupleGet,    // dst = src0.tuple[attr]
  kTupleLen,    // dst = int(|src0.tuple|)
  kTupleGetDyn, // dst = src0.tuple[src1.int]
  kAdtMake,     // dst = adt(tag=attr, fields=srcs...)
  kAdtTag,      // dst = int(src0.adt.tag)
  kAdtField,    // dst = src0.adt.fields[attr]
  kConstInt,    // dst = attr
  kAddInt,      // dst = src0 + (srcs.size()>1 ? src1 : attr)
  kLtInt,       // dst = src0 < src1
  kMove,        // dst = src0 (dst may be a pre-allocated loop variable)
  kJmp,         // pc = target
  kBrIf,        // if src0 != 0: pc = target
  kCall,        // dst = funcs[attr](srcs...)
  kRet,         // return src0
  kPhase,       // current phase = attr
  kSyncSign,    // dst = int(force(src0)[0] > attr*1e-6)   — may suspend
  kStepKeep,    // dst = tuple(kept-state tensor, continue int) — token
                // boundary for iteration-level scheduling; may suspend
                // (park) until the serve loop re-admits the session
};

struct Instr {
  Op op;
  int dst = -1;
  std::int64_t attr = 0;
  std::vector<int> srcs;
  int target = -1;
};

struct Func {
  std::string name;
  int num_args = 0;
  int num_regs = 0;
  bool may_sync = false;  // contains kSyncSign, directly or via calls
  std::vector<Instr> code;
};

struct Program {
  std::vector<std::shared_ptr<Func>> funcs;
  std::shared_ptr<Func> main;
};

// Propagates may_sync through calls and designates `main`.
inline void finalize(Program& p, int main_idx) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& f : p.funcs) {
      if (f->may_sync) continue;
      for (const Instr& ins : f->code) {
        if (ins.op == Op::kSyncSign || ins.op == Op::kStepKeep ||
            (ins.op == Op::kCall && p.funcs[static_cast<std::size_t>(ins.attr)]->may_sync)) {
          f->may_sync = true;
          changed = true;
          break;
        }
      }
    }
  }
  p.main = p.funcs[static_cast<std::size_t>(main_idx)];
}

// Incremental function builder; registers the function in the program at
// construction so recursive calls can reference their own index.
class FuncBuilder {
 public:
  FuncBuilder(Program& p, std::string name, int num_args) : prog_(p) {
    func_ = std::make_shared<Func>();
    func_->name = std::move(name);
    func_->num_args = num_args;
    index_ = static_cast<int>(p.funcs.size());
    p.funcs.push_back(func_);
    next_reg_ = num_args;  // registers [0, num_args) hold the arguments
  }

  int index() const { return index_; }
  int arg(int i) const { return i; }

  int emit(Op op, std::vector<int> srcs, std::int64_t attr = 0) {
    Instr ins;
    ins.op = op;
    ins.dst = next_reg_++;
    ins.attr = attr;
    ins.srcs = std::move(srcs);
    func_->code.push_back(std::move(ins));
    return func_->code.back().dst;
  }

  int weight(int w) { return emit(Op::kLoadWeight, {}, w); }
  int kernel(int kernel_id, std::vector<int> srcs) {
    return emit(Op::kKernel, std::move(srcs), kernel_id);
  }
  int tuple(std::vector<int> srcs) { return emit(Op::kTupleMake, std::move(srcs)); }
  int tuple_get(int t, int i) { return emit(Op::kTupleGet, {t}, i); }
  int tuple_len(int t) { return emit(Op::kTupleLen, {t}); }
  int tuple_get_dyn(int t, int i) { return emit(Op::kTupleGetDyn, {t, i}); }
  int adt(int tag, std::vector<int> fields) { return emit(Op::kAdtMake, std::move(fields), tag); }
  int adt_tag(int a) { return emit(Op::kAdtTag, {a}); }
  int adt_field(int a, int i) { return emit(Op::kAdtField, {a}, i); }
  int cint(std::int64_t v) { return emit(Op::kConstInt, {}, v); }
  int add_int(int a, int b) { return emit(Op::kAddInt, {a, b}); }
  int add_int_imm(int a, std::int64_t imm) { return emit(Op::kAddInt, {a}, imm); }
  int lt(int a, int b) { return emit(Op::kLtInt, {a, b}); }
  int call(int func_idx, std::vector<int> args) {
    return emit(Op::kCall, std::move(args), func_idx);
  }
  // Loop variables: registers written by kMove from back-edges. `var` makes
  // a named slot seeded with `init`; `assign` overwrites it.
  int var(int init) { return emit(Op::kMove, {init}); }
  void assign(int dst, int src) {
    Instr ins;
    ins.op = Op::kMove;
    ins.dst = dst;
    ins.srcs = {src};
    func_->code.push_back(std::move(ins));
  }
  int sync_sign(int r, double threshold) {
    func_->may_sync = true;
    return emit(Op::kSyncSign, {r}, static_cast<std::int64_t>(threshold * 1e6));
  }
  // Token boundary (Engine::session_step): checkpoints the carried state
  // into the session's persistent buffer and consults the serve loop's step
  // hook, parking until re-admission. Returns tuple(kept state, continue).
  int step_keep(int state) {
    func_->may_sync = true;
    return emit(Op::kStepKeep, {state});
  }
  void set_phase(int p) { emit_void(Op::kPhase, {}, p); }
  void ret(int r) { emit_void(Op::kRet, {r}); }

  // Control flow: emit a jump with an unknown target, patch it later.
  int here() const { return static_cast<int>(func_->code.size()); }
  int jmp() { return emit_branch(Op::kJmp, {}); }
  int br_if(int cond) { return emit_branch(Op::kBrIf, {cond}); }
  void jmp_to(int target_pc) { func_->code[static_cast<std::size_t>(jmp())].target = target_pc; }
  void br_if_to(int cond, int target_pc) {
    func_->code[static_cast<std::size_t>(br_if(cond))].target = target_pc;
  }
  void patch(int instr_idx, int target_pc) {
    func_->code[static_cast<std::size_t>(instr_idx)].target = target_pc;
  }

  void finish() { func_->num_regs = next_reg_; }

 private:
  void emit_void(Op op, std::vector<int> srcs, std::int64_t attr = 0) {
    Instr ins;
    ins.op = op;
    ins.attr = attr;
    ins.srcs = std::move(srcs);
    func_->code.push_back(std::move(ins));
  }
  int emit_branch(Op op, std::vector<int> srcs) {
    Instr ins;
    ins.op = op;
    ins.srcs = std::move(srcs);
    func_->code.push_back(std::move(ins));
    return static_cast<int>(func_->code.size()) - 1;
  }

  Program& prog_;
  std::shared_ptr<Func> func_;
  int index_ = -1;
  int next_reg_ = 0;
};

}  // namespace acrobat::ir
