// Dense row-major float tensors over arena storage.
//
// `Tensor` is a non-owning handle (pointer + shape); storage lives in a
// `TensorPool` arena. The arena matters beyond allocation speed: batch
// outputs allocated back-to-back are physically contiguous, which is what
// lets the engine's explicit-gather mode skip staging copies for iterative
// models whose batched inputs were produced by a single earlier launch
// (DESIGN.md §4, ablation_gather.cpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "support/rng.h"

namespace acrobat {

struct Shape {
  int dim[3] = {0, 0, 0};
  int ndim = 0;

  Shape() = default;
  explicit Shape(int a) : dim{a, 0, 0}, ndim(1) {}
  Shape(int a, int b) : dim{a, b, 0}, ndim(2) {}
  Shape(int a, int b, int c) : dim{a, b, c}, ndim(3) {}

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (int i = 0; i < ndim; ++i) n *= dim[i];
    return ndim == 0 ? 0 : n;
  }
  // 2-D views: a 1-D tensor is one row.
  int rows() const { return ndim >= 2 ? dim[0] : 1; }
  int cols() const { return ndim >= 2 ? dim[1] : (ndim == 1 ? dim[0] : 0); }

  bool operator==(const Shape& o) const {
    if (ndim != o.ndim) return false;
    for (int i = 0; i < ndim; ++i)
      if (dim[i] != o.dim[i]) return false;
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }
};

// A 1-D row vector shape (kernel_micro.cpp and the cell emitters).
inline Shape RowVec(int n) { return Shape(n); }

struct TensorView {
  const float* data = nullptr;
  Shape shape;
  std::int64_t numel() const { return shape.numel(); }
};

struct Tensor {
  float* data = nullptr;
  Shape shape;
  std::int64_t numel() const { return shape.numel(); }
  TensorView view() const { return TensorView{data, shape}; }
};

// Bump-pointer arena over epoch-stamped pages. Allocations never move, so
// engine nodes can hold raw pointers for the whole run (the backward pass
// replays against them). By default pages are freed only when the pool
// dies; under the serving layer's epoch protocol (DESIGN.md §7) the engine
// stamps an epoch per batching iteration and calls `reclaim_before` once
// every request live during a page's epochs has completed — the page then
// returns to a per-pool free list instead of growing the footprint, and the
// caller guarantees no live reader remains.
class TensorPool {
 public:
  explicit TensorPool(std::size_t block_floats = 1u << 20) : block_floats_(block_floats) {}

  float* alloc_raw(std::int64_t n) {
    assert(n >= 0);
    if (n == 0) return nullptr;
    if (pages_.empty() || used_ + n > static_cast<std::int64_t>(pages_.back().size))
      new_page(static_cast<std::size_t>(n));
    Page& pg = pages_.back();
    pg.last_epoch = epoch_;
    float* p = pg.data.get() + used_;
    used_ += n;
    total_floats_ += n;
    return p;
  }

  Tensor alloc(const Shape& s) {
    Tensor t;
    t.shape = s;
    t.data = alloc_raw(s.numel());
    return t;
  }

  Tensor alloc_zero(const Shape& s) {
    Tensor t = alloc(s);
    std::memset(t.data, 0, sizeof(float) * static_cast<std::size_t>(t.numel()));
    return t;
  }

  Tensor alloc_random(const Shape& s, Rng& rng, float scale) {
    Tensor t = alloc(s);
    for (std::int64_t i = 0; i < t.numel(); ++i) t.data[i] = rng.uniform(scale);
    return t;
  }

  // ---- epoch recycling (engine-driven; inert unless set_epoch is called)

  // Stamps subsequent allocations with epoch `e` (monotone non-decreasing).
  void set_epoch(std::uint64_t e) { epoch_ = e; }

  // Returns every page whose last allocation predates `min_live_epoch` to
  // the free-page pool; the current bump page is kept as the allocation
  // target (its cursor rewinds instead when it qualifies). Caller contract:
  // nothing live still reads those pages.
  std::size_t reclaim_before(std::uint64_t min_live_epoch) {
    std::size_t reclaimed = 0;
    for (std::size_t i = 0; i + 1 < pages_.size();) {
      if (pages_[i].last_epoch >= min_live_epoch) {
        ++i;
        continue;
      }
      active_floats_ -= static_cast<std::int64_t>(pages_[i].size);
      free_pages_.push_back(std::move(pages_[i]));
      // Fill the hole while keeping the bump page last.
      if (i + 2 < pages_.size()) pages_[i] = std::move(pages_[pages_.size() - 2]);
      pages_[pages_.size() - 2] = std::move(pages_.back());
      pages_.pop_back();
      ++reclaimed;
      ++pages_recycled_;
    }
    if (!pages_.empty() && pages_.back().last_epoch < min_live_epoch && used_ > 0) {
      used_ = 0;  // bump page fully dead: rewind in place
      ++pages_recycled_;
    }
    return reclaimed;
  }

  std::int64_t total_floats() const { return total_floats_; }
  // Footprint gauges: floats held by in-use pages now / at the peak. With
  // recycling the peak plateaus at peak concurrency; without it active ==
  // peak and both track the whole run.
  std::int64_t active_floats() const { return active_floats_; }
  std::int64_t high_water_floats() const { return high_water_floats_; }
  long long pages_recycled() const { return pages_recycled_; }

 private:
  struct Page {
    std::unique_ptr<float[]> data;
    std::size_t size = 0;
    std::uint64_t last_epoch = 0;  // most recent epoch that allocated here
  };

  void new_page(std::size_t n) {
    Page pg;
    // Reuse the first free page large enough; oversized requests fall
    // through to a dedicated allocation.
    for (std::size_t i = 0; i < free_pages_.size(); ++i) {
      if (free_pages_[i].size >= n) {
        pg = std::move(free_pages_[i]);
        free_pages_[i] = std::move(free_pages_.back());
        free_pages_.pop_back();
        break;
      }
    }
    if (pg.data == nullptr) {
      pg.size = n > block_floats_ ? n : block_floats_;
      pg.data.reset(new float[pg.size]);
    }
    pg.last_epoch = epoch_;
    active_floats_ += static_cast<std::int64_t>(pg.size);
    if (active_floats_ > high_water_floats_) high_water_floats_ = active_floats_;
    pages_.push_back(std::move(pg));
    used_ = 0;
  }

  std::size_t block_floats_;
  std::vector<Page> pages_;       // in-use; back() is the bump target
  std::vector<Page> free_pages_;  // reclaimed, awaiting reuse
  std::int64_t used_ = 0;         // cursor into pages_.back()
  std::uint64_t epoch_ = 0;
  std::int64_t total_floats_ = 0;
  std::int64_t active_floats_ = 0;
  std::int64_t high_water_floats_ = 0;
  long long pages_recycled_ = 0;
};

}  // namespace acrobat
