// Dense row-major float tensors over arena storage.
//
// `Tensor` is a non-owning handle (pointer + shape); storage lives in a
// `TensorPool` arena. The arena matters beyond allocation speed: batch
// outputs allocated back-to-back are physically contiguous, which is what
// lets the engine's explicit-gather mode skip staging copies for iterative
// models whose batched inputs were produced by a single earlier launch
// (DESIGN.md §4, ablation_gather.cpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "support/rng.h"

namespace acrobat {

struct Shape {
  int dim[3] = {0, 0, 0};
  int ndim = 0;

  Shape() = default;
  explicit Shape(int a) : dim{a, 0, 0}, ndim(1) {}
  Shape(int a, int b) : dim{a, b, 0}, ndim(2) {}
  Shape(int a, int b, int c) : dim{a, b, c}, ndim(3) {}

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (int i = 0; i < ndim; ++i) n *= dim[i];
    return ndim == 0 ? 0 : n;
  }
  // 2-D views: a 1-D tensor is one row.
  int rows() const { return ndim >= 2 ? dim[0] : 1; }
  int cols() const { return ndim >= 2 ? dim[1] : (ndim == 1 ? dim[0] : 0); }

  bool operator==(const Shape& o) const {
    if (ndim != o.ndim) return false;
    for (int i = 0; i < ndim; ++i)
      if (dim[i] != o.dim[i]) return false;
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }
};

// A 1-D row vector shape (kernel_micro.cpp and the cell emitters).
inline Shape RowVec(int n) { return Shape(n); }

struct TensorView {
  const float* data = nullptr;
  Shape shape;
  std::int64_t numel() const { return shape.numel(); }
};

struct Tensor {
  float* data = nullptr;
  Shape shape;
  std::int64_t numel() const { return shape.numel(); }
  TensorView view() const { return TensorView{data, shape}; }
};

// Bump-pointer arena. Allocations never move and are freed only when the
// pool dies, so engine nodes can hold raw pointers for the whole run (the
// backward pass replays against them).
class TensorPool {
 public:
  explicit TensorPool(std::size_t block_floats = 1u << 20) : block_floats_(block_floats) {}

  float* alloc_raw(std::int64_t n) {
    assert(n >= 0);
    if (n == 0) return nullptr;
    if (blocks_.empty() || used_ + n > static_cast<std::int64_t>(cur_size_)) {
      cur_size_ = static_cast<std::size_t>(n) > block_floats_ ? static_cast<std::size_t>(n)
                                                              : block_floats_;
      blocks_.emplace_back(new float[cur_size_]);
      used_ = 0;
    }
    float* p = blocks_.back().get() + used_;
    used_ += n;
    total_floats_ += n;
    return p;
  }

  Tensor alloc(const Shape& s) {
    Tensor t;
    t.shape = s;
    t.data = alloc_raw(s.numel());
    return t;
  }

  Tensor alloc_zero(const Shape& s) {
    Tensor t = alloc(s);
    std::memset(t.data, 0, sizeof(float) * static_cast<std::size_t>(t.numel()));
    return t;
  }

  Tensor alloc_random(const Shape& s, Rng& rng, float scale) {
    Tensor t = alloc(s);
    for (std::int64_t i = 0; i < t.numel(); ++i) t.data[i] = rng.uniform(scale);
    return t;
  }

  std::int64_t total_floats() const { return total_floats_; }

 private:
  std::size_t block_floats_;
  std::vector<std::unique_ptr<float[]>> blocks_;
  std::size_t cur_size_ = 0;
  std::int64_t used_ = 0;
  std::int64_t total_floats_ = 0;
};

}  // namespace acrobat
