// Primitive kernels and their schedule variants.
//
// Every tensor computation in the system bottoms out in `run_op`, a pure
// function of (kind, variant, inputs) — so a batch of N same-kernel ops
// executed op-at-a-time, gathered-then-stacked, or under any scheduler
// produces the same floats. `variant` selects a schedule (loop order /
// unrolling); variants are the auto-scheduler's search space and are
// roughly ordered slowest-to-fastest (kernel_micro.cpp verifies).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace acrobat {

enum class OpKind : std::uint8_t {
  // Dense family (3 variants).
  kDense,     // ins: x (k) or (m,k), W (n,k) row-major → x·Wᵀ, shape (n)/(m,n)
  kMatMul,    // ins: a (m,k) or (k), b (k,n) → a·b
  kMatMulBT,  // ins: a (m,k), b (n,k) → a·bᵀ

  // Elementwise binary (2 variants); b may be a row vector broadcast over
  // the rows of a (bias add).
  kAdd,
  kSub,
  kMul,

  // Elementwise unary (2 variants).
  kTanh,
  kSigmoid,
  kRelu,
  kScale,  // out = in * (attr * 1e-6)

  // Fused pointwise kernels (standard kernel fusion, PipelineConfig
  // kernel_fusion; 2 variants).
  kAddBiasTanh,     // tanh(a + b + bias)        ins: a, b, bias
  kAddBiasSigmoid,  // sigmoid(a + b + bias)     ins: a, b, bias
  kFma2,            // f*c + i*g                 ins: f, c, i, g
  kMulTanh,         // o * tanh(c)               ins: o, c

  // Coarse cell kernels (grain-size coarsening, PipelineConfig coarsen).
  // LSTM gate layout: [i f g o], each n wide; GRU layout: [z r ĥ].
  kLstmNewC,  // ins: gates (…,4n), c (…,n) → σ(f+1)*c + σ(i)*tanh(g)
  kLstmNewH,  // ins: gates (…,4n), c' (…,n) → σ(o)*tanh(c')
  kGruPoint,  // ins: gates (…,3n), h (…,n) → (1-σ(z))*h + σ(z)*tanh(ĥ)

  // Structural / reduction.
  kConcat,   // engine-executed (variable arity); attr = axis
  kZeros,    // no ins; → zeros RowVec(attr)
  kSoftmax,  // row-wise softmax
  kSumAll,   // → Shape(1), sum of all elements
  kMaxProb,  // → Shape(1), max of softmax over all elements (early exit)
};

const char* op_name(OpKind kind);

// Number of schedule variants a kind exposes (≥1).
int op_num_variants(OpKind kind);

// Fixed input arity; kConcat returns -1 (variable).
int op_arity(OpKind kind);

// Output shape from input shapes; asserts on rank/size mismatches.
Shape infer_shape(OpKind kind, std::int64_t attr, const Shape* in_shapes, int n_ins);

// Execute one op. `ins`/`in_shapes` hold `op_arity(kind)` entries (callers
// of variable-arity kinds go through the engine instead). `out` must have
// `infer_shape(...)` elements.
void run_op(OpKind kind, int variant, const float* const* ins, const Shape* in_shapes,
            float* out, const Shape& out_shape, std::int64_t attr);

}  // namespace acrobat
