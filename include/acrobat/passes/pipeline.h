// The static optimization pipeline configuration (paper §5, Fig. 6).
//
// Each flag gates one compile-time transformation; the cumulative ablation
// levels reproduce Fig. 6's L0..L5. Flags act in two places: model builders
// choose kernel granularity (kernel_fusion, coarsen), and the engine/harness
// choose runtime behavior (inline_depth → fibers + static depth buckets,
// phases, gather_fusion, lazy).
#pragma once

namespace acrobat::passes {

struct PipelineConfig {
  bool kernel_fusion = true;  // L1: fuse elementwise chains into one kernel
  bool coarsen = true;        // L2: grain-size coarsening (whole-cell kernels)
  bool inline_depth = true;   // L3: compiled-in depth counters + fiber TDCF
  bool phases = true;         // L4: program phases / ghost ops
  bool gather_fusion = true;  // L5: gather-operator fusion (no staging copies)
  bool lazy = true;           // false: eager per-op execution (baseline only)

  static PipelineConfig ablation_level(int level) {
    PipelineConfig c;
    c.kernel_fusion = level >= 1;
    c.coarsen = level >= 2;
    c.inline_depth = level >= 3;
    c.phases = level >= 4;
    c.gather_fusion = level >= 5;
    return c;
  }

  static const char* ablation_name(int level) {
    switch (level) {
      case 0: return "no fusion";
      case 1: return "+kernel fusion";
      case 2: return "+coarsening";
      case 3: return "+inline depth";
      case 4: return "+phases/ghost ops";
      case 5: return "+gather fusion";
      default: return "?";
    }
  }
};

}  // namespace acrobat::passes
