// The lazy auto-batching engine (paper §3-§5).
//
// Executors record tensor ops instead of running them; `trigger_execution`
// schedules all pending ops into batches — one simulated device launch per
// batch — so same-signature ops from many program instances collapse into a
// single launch. Per-launch overhead is charged as real wall time
// (EngineConfig::launch_overhead_ns, DESIGN.md substitution table), which is
// what makes launch counts show up in every bench's latencies.
//
// The same engine also hosts the baselines: eager mode (lazy=false, one
// launch per op), and DyNet mode (per-node boxed DFG construction cost,
// agenda/depth dynamic schedulers, first-argument-keyed matmul batching,
// device memory cap).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/kernels.h"
#include "engine/value.h"
#include "support/timer.h"
#include "tensor/tensor.h"

namespace acrobat {

class FiberScheduler;

// Per-activity time accounting (Table 6 rows).
struct ActivityStats {
  TimeBucket dfg_construction;  // recording nodes into the graph
  TimeBucket scheduling;        // grouping pending nodes into batches
  TimeBucket gather_copy;       // staging scattered inputs (explicit gathers)
  TimeBucket kernel_exec;       // time inside kernels
  TimeBucket launch_overhead;   // simulated device API time
  long long kernel_launches = 0;
  long long gather_bytes = 0;  // bytes staged by explicit gathers
};

struct EngineStats : ActivityStats {
  std::vector<long long> kernel_invocations;  // per kernel id (PGO profile)
};

// Thrown when a memory-capped run (DyNet Berxit, Table 5) exceeds its cap.
struct OomError {};

enum class SchedulerKind {
  kDepth,   // depth buckets: (phase, depth, kernel) — ACROBAT and DyNet/depth
  kAgenda,  // DyNet's greedy most-ready-signature-class scheduler
};

struct EngineConfig {
  std::int64_t launch_overhead_ns = 0;
  bool lazy = true;          // false: execute each op as recorded (eager baseline)
  bool inline_depth = true;  // false: recover depths by graph traversal per trigger
  bool phases = true;        // honor program phase tags when grouping
  bool gather_fusion = true;  // false: stage scattered batch inputs via copies
  bool const_reuse = true;    // dedupe zero-arity constant nodes
  SchedulerKind scheduler = SchedulerKind::kDepth;
  bool shape_keyed_batching = true;  // false: matmul family batches per first arg
  bool boxed_dfg = false;            // DyNet-style per-node construction work
  bool fuse_waves = false;           // Cortex: one persistent launch per ready wave
  int stage_all_amp = 0;             // Cortex MV-RNN: forced input copies, amplified
  std::size_t memory_cap_bytes = 0;  // 0 = uncapped
  bool time_activities = false;
};

// Identifies the recording program instance (used for diagnostics and for
// instance-at-a-time baselines; batching is signature-driven, not
// instance-driven).
struct InstCtx {
  int instance = 0;
};

class Engine {
 public:
  Engine(const KernelRegistry& registry, EngineConfig cfg);

  // Wraps external storage (weights, dataset tensors) as a materialized node.
  TRef add_concrete(TensorView v);

  // Records a lazy op; returns a future. `phase` is the program-phase tag
  // the executor is currently in (0 = main phase).
  TRef add_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx, int phase);

  // Materializes (triggering execution if pending) and returns a view.
  Tensor force(TRef r);

  // Ensures `r` is materialized. Inside a fiber this suspends the instance
  // and lets other instances record (runtime/fiber.h); otherwise it triggers
  // execution directly — the instance-at-a-time fallback.
  void sync(TRef r);

  // sync + read element 0 (data-dependent control flow).
  float scalar(TRef r);

  bool materialized(TRef r) const;
  const Shape& shape(TRef r) const;
  const float* data(TRef r) const;  // null until materialized

  // Executes every pending op in batched order.
  void trigger_execution();

  void set_fiber_scheduler(FiberScheduler* fs) { fibers_ = fs; }

  // Serving hook (serve/server.h): called at the top of every trigger,
  // before pending ops are scheduled. The hook may admit newly arrived
  // requests (spawn fibers and step them until they suspend), so one
  // trigger batches ops from old and new requests together — continuous
  // batching across requests, not just across a closed instance batch.
  void set_admission_hook(std::function<void()> hook) { admission_hook_ = std::move(hook); }

  const EngineStats& stats() const { return stats_; }
  const KernelRegistry& registry() const { return registry_; }

  // Execution log for reverse-replay autodiff (grad/backward.h): batches in
  // execution order, each a kernel id plus the node ids it ran.
  struct ExecBatch {
    int kernel_id = -1;
    std::vector<std::uint32_t> nodes;
  };
  const std::vector<ExecBatch>& exec_log() const { return exec_log_; }
  int kernel_of(TRef r) const;  // -1 for concrete nodes
  const std::vector<TRef>& inputs_of(TRef r) const;
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int kernel_id = -1;  // -1: concrete
    std::vector<TRef> ins;
    Shape shape;
    const float* data = nullptr;
    int depth = 0;
    int phase = 0;
    int instance = 0;
  };

  Node& node(TRef r) { return nodes_[r.id]; }
  const Node& node(TRef r) const { return nodes_[r.id]; }
  TRef record_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx, int phase);
  void execute_batch(int kernel_id, const std::vector<std::uint32_t>& ids, bool merge_launch);
  void schedule_depth(std::vector<std::uint32_t>& pending);
  void schedule_agenda(std::vector<std::uint32_t>& pending);
  void recover_depths(const std::vector<std::uint32_t>& pending);
  void charge_launch();

  const KernelRegistry& registry_;
  EngineConfig cfg_;
  EngineStats stats_;
  TensorPool arena_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pending_;
  std::vector<ExecBatch> exec_log_;
  std::unordered_map<int, TRef> const_cache_;  // const_reuse: kernel id → node
  std::vector<std::shared_ptr<std::string>> boxed_;  // boxed_dfg allocations
  FiberScheduler* fibers_ = nullptr;
  std::function<void()> admission_hook_;
  std::size_t live_bytes_ = 0;
  bool in_trigger_ = false;
  bool in_admission_ = false;
};

}  // namespace acrobat
