// The lazy auto-batching engine (paper §3-§5).
//
// Executors record tensor ops instead of running them; `trigger_execution`
// schedules all pending ops into batches — one simulated device launch per
// batch — so same-signature ops from many program instances collapse into a
// single launch. Per-launch overhead is charged as real wall time
// (EngineConfig::launch_overhead_ns, DESIGN.md substitution table), which is
// what makes launch counts show up in every bench's latencies.
//
// The same engine also hosts the baselines: eager mode (lazy=false, one
// launch per op), and DyNet mode (per-node boxed DFG construction cost,
// agenda/depth dynamic schedulers, first-argument-keyed matmul batching,
// device memory cap).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/kernels.h"
#include "engine/value.h"
#include "support/timer.h"
#include "tensor/tensor.h"

namespace acrobat {

class FiberScheduler;
namespace trace {
class Tracer;
}

// Per-activity time accounting (Table 6 rows).
struct ActivityStats {
  TimeBucket dfg_construction;  // recording nodes into the graph
  TimeBucket scheduling;        // grouping pending nodes into batches
  TimeBucket gather_copy;       // staging scattered inputs (explicit gathers)
  TimeBucket kernel_exec;       // time inside kernels
  TimeBucket launch_overhead;   // simulated device API time
  long long kernel_launches = 0;
  long long gather_bytes = 0;  // bytes staged by explicit gathers
  // Single-call batch executions: a flat elementwise collapse (n ops → one
  // run_op over n×numel) or a stacked shared-parameter matmul. Together
  // with kernel_launches these make the hot-path shape observable — tests
  // assert the fast paths actually fire, not just that outputs match.
  long long flat_batches = 0;
  long long stacked_batches = 0;
  // Scheduler/executor scratch growth events. All per-trigger bookkeeping
  // lives in engine-owned buffers reused across triggers, so after warmup
  // this stops advancing — steady-state serving does zero scheduler heap
  // allocation (tests/test_engine_batching.cpp asserts the plateau).
  long long scheduling_allocs = 0;
  // Schedule memoization (DESIGN.md §5): triggers whose ready-set signature
  // matched a cached plan and replayed it / ran the live scheduler and
  // populated the cache / overwrote the least-recently-replayed entry.
  long long sched_cache_hits = 0;
  long long sched_cache_misses = 0;
  long long sched_cache_evictions = 0;
};

struct EngineStats : ActivityStats {
  std::vector<long long> kernel_invocations;  // per kernel id (PGO profile)
};

// Thrown when a memory-capped run (DyNet Berxit, Table 5) exceeds its cap.
struct OomError {};

enum class SchedulerKind {
  kDepth,   // depth buckets: (phase, depth, kernel) — ACROBAT and DyNet/depth
  kAgenda,  // DyNet's greedy most-ready-signature-class scheduler
};

struct EngineConfig {
  std::int64_t launch_overhead_ns = 0;
  bool lazy = true;          // false: execute each op as recorded (eager baseline)
  bool inline_depth = true;  // false: recover depths by graph traversal per trigger
  bool phases = true;        // honor program phase tags when grouping
  bool gather_fusion = true;  // false: stage scattered batch inputs via copies
  bool const_reuse = true;    // dedupe zero-arity constant nodes
  // Flat batch execution for elementwise families: a batch of n same-kernel
  // elementwise ops with contiguous inputs (the common case — batch outputs
  // are allocated back-to-back) runs as ONE run_op over n×numel elements
  // instead of n calls, with bitwise-identical outputs. Scattered inputs
  // fall back per-op, or through an explicit staging gather when
  // gather_fusion is off. False isolates the op-at-a-time path (tests).
  bool fuse_elementwise = true;
  SchedulerKind scheduler = SchedulerKind::kDepth;
  bool shape_keyed_batching = true;  // false: matmul family batches per first arg
  bool boxed_dfg = false;            // DyNet-style per-node construction work
  bool fuse_waves = false;           // Cortex: one persistent launch per ready wave
  int stage_all_amp = 0;             // Cortex MV-RNN: forced input copies, amplified
  std::size_t memory_cap_bytes = 0;  // 0 = uncapped
  bool time_activities = false;
  // Steady-state serving (DESIGN.md §7 "Recycling"): per-request node slots
  // and arena pages are reclaimed when the serve loop retires a completed
  // request, so node table and arena footprint plateau at peak concurrency
  // instead of growing with request count. Requires lazy mode; mutually
  // exclusive with exec-log autodiff replay (the log is not kept — retired
  // node ids would dangle).
  bool recycle = false;
  // Schedule memoization (DESIGN.md §5 "Schedule memoization"): cache the
  // batch plan per ready-set signature and replay it on recurring triggers,
  // turning scheduling into a hash lookup. Off for the closed-batch benches
  // (keeps their counters untouched); the serving layers turn it on by
  // default. Capacity bounds the cache; past it the least-recently-replayed
  // entry is overwritten in place (fleet-scale key diversity cannot grow
  // memory unboundedly).
  bool sched_memo = false;
  int sched_memo_capacity = 64;
};

// Identifies the recording program instance (used for diagnostics and for
// instance-at-a-time baselines; batching is signature-driven, not
// instance-driven).
struct InstCtx {
  int instance = 0;
};

class Engine {
 public:
  Engine(const KernelRegistry& registry, EngineConfig cfg);

  // Wraps external storage (weights, dataset tensors) as a materialized node.
  TRef add_concrete(TensorView v);

  // Records a lazy op; returns a future. `phase` is the program-phase tag
  // the executor is currently in (0 = main phase).
  TRef add_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx, int phase);

  // Materializes (triggering execution if pending) and returns a view.
  Tensor force(TRef r);

  // Ensures `r` is materialized. Inside a fiber this suspends the instance
  // and lets other instances record (runtime/fiber.h); otherwise it triggers
  // execution directly — the instance-at-a-time fallback.
  void sync(TRef r);

  // sync + read element 0 (data-dependent control flow).
  float scalar(TRef r);

  bool materialized(TRef r) const;
  const Shape& shape(TRef r) const;
  const float* data(TRef r) const;  // null until materialized

  // Executes every pending op in batched order.
  void trigger_execution();

  void set_fiber_scheduler(FiberScheduler* fs) { fibers_ = fs; }

  // Observability (trace/trace.h, DESIGN.md §9): when set, triggers,
  // scheduling, memo probes, batches, and gathers emit events into the
  // shard-owned ring. Null (the default) costs one predicted branch per
  // site — tests/test_trace.cpp proves bitwise on/off parity.
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  // Serving hook (serve/server.h): called at the top of every trigger,
  // before pending ops are scheduled. The hook may admit newly arrived
  // requests (spawn fibers and step them until they suspend), so one
  // trigger batches ops from old and new requests together — continuous
  // batching across requests, not just across a closed instance batch.
  void set_admission_hook(std::function<void()> hook) { admission_hook_ = std::move(hook); }

  // --- iteration-level scheduling (DESIGN.md §7; ir::Op::kStepKeep) -------
  //
  // A generative session calls session_step once per emitted token, after
  // the step's sync has materialized its state. Under recycling the call
  // checkpoints the carried state into an engine-owned per-session buffer
  // (the KV-cache analogue: persistent across steps, retired with the
  // session), retires the step's transient node span under the existing
  // epoch protocol, and re-enters the kept state as a depth-0 materialized
  // node — so session memory plateaus at peak concurrent sessions, not
  // token count, and steady-state step triggers hit the schedule cache.
  // Without recycling it is a pass-through (the solo/bench path), which is
  // what makes a single-session serve decode bitwise-identical to a solo
  // run. The step hook, when set, is the serve loop's per-token admission
  // gate: kPark parks the fiber until the shard re-admits the session (the
  // hook is re-consulted after every unpark, so a shard can cancel a parked
  // session mid-stream); kStop cancels — the program sees cont == 0 and
  // exits through its tail.
  enum class StepVerdict { kRun, kPark, kStop };
  using StepHook = std::function<StepVerdict(int instance)>;
  void set_step_hook(StepHook hook) { step_hook_ = std::move(hook); }
  struct StepResult {
    TRef state;
    long long cont = 1;
  };
  StepResult session_step(TRef state, const InstCtx& ctx);

  const EngineStats& stats() const { return stats_; }
  const KernelRegistry& registry() const { return registry_; }

  // Execution log for reverse-replay autodiff (grad/backward.h): batches in
  // execution order, each a kernel id plus the node ids it ran.
  struct ExecBatch {
    int kernel_id = -1;
    std::vector<std::uint32_t> nodes;
  };
  // Empty when recycling is on (retired node ids would dangle); callers
  // that replay it must check `recycling()` — backward() refuses loudly.
  const std::vector<ExecBatch>& exec_log() const { return exec_log_; }
  bool recycling() const { return cfg_.recycle; }
  int kernel_of(TRef r) const;  // -1 for concrete nodes
  std::span<const TRef> inputs_of(TRef r) const;
  // Node-table slots ever allocated; with recycling this plateaus at peak
  // concurrency while `live_nodes` dips as requests retire.
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t live_nodes() const { return nodes_.size() - free_slots_.size(); }

  // --- epoch recycling (EngineConfig::recycle; serve/server.h drives this)

  // Registers a request at the current epoch. Every node it records is
  // tracked as its span; arena pages it allocates into cannot be reclaimed
  // until it retires.
  void begin_request(int instance);

  // Retires a completed request: its node slots go onto the free list with
  // bumped generations (stale TRefs then fault in debug), and arena pages
  // older than every still-live request's admission epoch return to the
  // page pool. Call only after the request's outputs have been consumed.
  void retire_request(int instance);

  // Memory-watermark and live-node gauges (serve/stats.h per-shard report).
  struct MemoryStats {
    std::size_t node_table_size = 0;   // slots ever allocated
    std::size_t live_nodes = 0;        // slots not on the free list
    std::size_t live_nodes_peak = 0;
    long long nodes_recycled = 0;
    std::size_t arena_active_bytes = 0;
    std::size_t arena_high_water_bytes = 0;  // peak bytes in live arena pages
    long long arena_pages_recycled = 0;
    // Slots a Release-mode retire_request could not recycle because the
    // request still had pending (unexecuted) ops — reusing such a slot
    // would alias the next request, so it is abandoned instead. Debug
    // builds assert; steady-state soaks check this stays 0.
    long long leaked_slots = 0;
    // Persistent-region footprint (cached constants materialized outside
    // the epoch protocol). With a multi-model fleet shard every model's
    // constants land here once; the gauge must go flat after each model's
    // first request and stay flat for the rest of the trace
    // (tests/test_fleet.cpp soak).
    std::size_t persist_arena_high_water_bytes = 0;
    // Per-session persistent state (session_step checkpoints). Buffers are
    // pooled across sessions, so bytes-ever-allocated plateaus at peak
    // concurrent sessions while live counts dip as sessions retire — the
    // decode soak's plateau gauges (tests/test_decode.cpp).
    std::size_t session_buffers_live = 0;
    std::size_t session_buffers_peak = 0;
    std::size_t session_bytes_allocated = 0;  // monotone; plateaus via pool reuse
  };
  MemoryStats memory() const;

 private:
  // Node inputs as an inline small-vector: every model op has arity ≤ 4
  // except concat chains, so recording a node does zero heap allocation on
  // the common path (the DFG-construction row of Table 6); wider nodes
  // spill to a heap vector that keeps its capacity across slot reuse.
  class InsList {
   public:
    void assign(const TRef* p, int count) {
      n_ = count;
      if (count > kInline)
        heap_.assign(p, p + count);
      else
        for (int i = 0; i < count; ++i) inline_[i] = p[i];
    }
    void clear() {
      n_ = 0;
      heap_.clear();
    }
    std::size_t size() const { return static_cast<std::size_t>(n_); }
    const TRef* data() const { return n_ > kInline ? heap_.data() : inline_; }
    const TRef& operator[](std::size_t i) const { return data()[i]; }
    const TRef* begin() const { return data(); }
    const TRef* end() const { return data() + n_; }

   private:
    static constexpr int kInline = 4;
    TRef inline_[kInline];
    std::vector<TRef> heap_;
    int n_ = 0;
  };

  struct Node {
    int kernel_id = -1;  // -1: concrete
    InsList ins;
    Shape shape;
    const float* data = nullptr;
    int depth = 0;
    int phase = 0;
    int instance = 0;
    std::uint32_t gen = 0;   // bumped when the slot is retired
    bool persist = false;    // persistent region: weights, cached constants
  };

  // Generation-checked accessors: a stale ref (slot retired or reissued
  // since hand-out) aborts loudly in debug instead of aliasing whatever
  // request owns the slot now. Internal scheduler loops index `nodes_` by
  // raw pending ids, which are live by construction.
  void check_ref(TRef r) const;
  Node& node(TRef r) {
    check_ref(r);
    return nodes_[r.id];
  }
  const Node& node(TRef r) const {
    check_ref(r);
    return nodes_[r.id];
  }
  TRef record_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx, int phase);
  TRef alloc_node(Node&& n, bool reusable_slot);
  // Recycling internals shared by retire_request and session_step: retire
  // the instance's node span (slots → free list, generations bumped) and
  // reclaim arena pages older than every live request's admission epoch.
  void retire_span(int instance);
  void reclaim_arena_pages();
  // session_step's recycle-mode checkpoint: copy the state out of the arena
  // into the session's buffer, retire the step's span, re-stamp the session
  // at the current epoch, and return a fresh depth-0 node over the buffer.
  TRef checkpoint_state(TRef state, int instance);
  void execute_batch(int kernel_id, const std::vector<std::uint32_t>& ids, bool merge_launch);
  // Flat/stacked fast paths (DESIGN.md §4 "Flat elementwise execution"):
  // collapse n same-kernel ops into one run_op call when inputs line up.
  // Both return false to fall back to the op-at-a-time loop.
  bool try_execute_flat(const Kernel& k, const std::vector<std::uint32_t>& ids,
                        float* out_base);
  bool try_execute_stacked(const Kernel& k, const std::vector<std::uint32_t>& ids,
                           float* out_base);
  // Explicit staging gather: copies operand `operand` of every batch member
  // (`step` floats each) into one contiguous arena buffer, charging
  // gather-copy time and bytes. charge_bytes may throw OomError.
  float* stage_gather(const std::vector<std::uint32_t>& ids, int operand,
                      std::int64_t step);
  void schedule_depth(std::vector<std::uint32_t>& pending);
  void schedule_agenda(std::vector<std::uint32_t>& pending);
  void recover_depths(const std::vector<std::uint32_t>& pending);
  void charge_bytes(std::size_t bytes);  // memory-cap accounting (OomError)
  void charge_launch();

  // --- allocation-free scheduling (DESIGN.md §5 "Scratch reuse") ---------
  // Dense-keyed bucket map reused across triggers: `index[key]` names a
  // slot in `lists`, `keys` records touched keys for ordered iteration and
  // O(touched) reset. Growth goes through scratch_reserve so the stats
  // counter sees every scheduler heap allocation.
  struct BucketScratch {
    std::vector<std::int32_t> index;                // key → slot, -1 empty
    std::vector<std::vector<std::uint32_t>> lists;  // slot → member ids
    std::vector<std::uint32_t> keys;                // touched keys
    std::size_t used = 0;                           // live slots
  };
  template <class T>
  void scratch_reserve(std::vector<T>& v, std::size_t need);
  void bucket_push(BucketScratch& b, std::uint32_t key, std::uint32_t id);
  void bucket_reset(BucketScratch& b);
  void reset_sched_scratch();  // exception path: drop partial trigger state

  // --- schedule memoization (DESIGN.md §5 "Schedule memoization") --------
  // The batch plan a trigger produces — groupings, execution order, merged-
  // launch flags — is a pure function of the ready set's structural
  // signature; recurring triggers replay the cached plan straight into
  // execute_batch. Layout-dependent dispatch (flat/stacked/gather) is NOT
  // cached: execute_batch re-derives it from live pointers, which is what
  // makes a replay bitwise-identical to the live scheduler. Storage is
  // engine-owned, reused across triggers, and every growth event goes
  // through scratch_reserve so the scheduling_allocs plateau still holds.
  struct MemoBatch {
    int kernel_id = -1;
    bool merge = false;                  // fuse_waves merged-launch flag
    std::uint32_t begin = 0, count = 0;  // span into the entry's members
  };
  struct MemoEntry {
    std::uint64_t hash = 0;
    std::uint64_t last_used = 0;         // LRU clock value at last hit/install
    std::vector<std::uint64_t> sig;      // full signature: hash collisions MISS
    std::vector<MemoBatch> batches;      // the plan, in execution order
    std::vector<std::uint32_t> members;  // batch members as ready-set positions
  };
  // Runs lookup + replay; false = miss (or unmemoizable trigger), caller
  // falls back to the live scheduler with recording armed.
  bool memo_try_replay(const std::vector<std::uint32_t>& pending);
  // Incremental signature capture: record_op appends the op's key words
  // while the Node is still cache-hot, so the trigger hot path never walks
  // the node table to build the key — it hashes a sequential buffer. This
  // is the paper's thesis applied to the cache itself: key construction
  // moves out of the per-trigger critical path into recording.
  void memo_capture_op(std::uint32_t id, const Node& nd, const Kernel& k);
  void memo_capture_reset();  // new trigger window: next gen, empty key
  void memo_note_batch(int kernel_id, const std::vector<std::uint32_t>& ids, bool merge);
  void memo_install();  // after a successful live schedule on a miss
  void memo_abort() { memo_recording_ = false; }

  std::vector<MemoEntry> memo_cache_;
  // The accumulating trigger signature: the first memo_sig_n_ words of
  // memo_sig_, appended per recorded op. The buffer keeps size() ==
  // capacity() (never shrunk) so capture writes through raw indices after
  // one reservation; memo_sig_nodes_ cross-checks that every pending node
  // was captured before a key is trusted.
  std::vector<std::uint64_t> memo_sig_;
  std::size_t memo_sig_n_ = 0;
  std::size_t memo_sig_nodes_ = 0;
  std::vector<MemoBatch> memo_rec_batches_;  // plan being recorded on a miss
  std::vector<std::uint32_t> memo_rec_members_;
  std::vector<std::uint32_t> memo_pos_stamp_, memo_pos_;  // node id → position
  std::vector<std::uint32_t> memo_order_;       // agenda id-order permutation
  std::vector<std::uint32_t> memo_replay_ids_;  // positions → live node ids
  std::uint64_t memo_hash_ = 0;
  std::uint64_t memo_tick_ = 0;  // LRU clock
  std::uint32_t memo_gen_ = 1;   // stamp generation for memo_pos_stamp_
  bool memo_recording_ = false;
  bool memo_sig_ok_ = true;  // false: current window unmemoizable

  const KernelRegistry& registry_;
  EngineConfig cfg_;
  EngineStats stats_;
  TensorPool arena_;
  // Persistent region under recycling: outputs of cached constant nodes
  // live here, outside the epoch protocol, because the const cache shares
  // them across requests of any epoch.
  TensorPool persist_arena_{1u << 12};  // small pages: a handful of constants
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pending_;
  std::vector<ExecBatch> exec_log_;
  std::unordered_map<int, TRef> const_cache_;  // const_reuse: kernel id → node
  std::vector<std::shared_ptr<std::string>> boxed_;  // boxed_dfg allocations
  FiberScheduler* fibers_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  std::function<void()> admission_hook_;
  std::size_t live_bytes_ = 0;
  bool in_trigger_ = false;
  bool in_admission_ = false;
  // --- recycling state (empty when cfg_.recycle is off)
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<int, std::vector<std::uint32_t>> request_nodes_;  // instance → span
  // Retired requests donate their span vectors here; the next admission
  // adopts one, so steady-state recording reuses warm capacity instead of
  // re-growing a fresh vector per request (pool growth counts into
  // stats_.scheduling_allocs like every other engine-owned buffer).
  std::vector<std::vector<std::uint32_t>> req_span_pool_;
  std::unordered_map<int, std::uint64_t> live_requests_;  // instance → admission epoch
  std::uint64_t epoch_ = 0;  // advances at the end of every trigger
  std::size_t live_nodes_peak_ = 0;
  long long nodes_recycled_ = 0;
  long long leaked_slots_ = 0;
  // --- per-session persistent state (session_step; empty without decode)
  struct SessionBuf {
    std::unique_ptr<float[]> data;
    std::size_t cap = 0;  // floats; always 1 << class for pooled buffers
  };
  // Buffers are pooled by power-of-two size class (min 16 floats), not in a
  // single LIFO: sessions checkpoint *growing*, variable-size state, and a
  // flat pool both strands large buffers behind small ones and leaks the
  // old buffer on every mid-session growth. With classes, a grown session
  // returns its old buffer to its class and adopts (or allocates) from the
  // next, so bytes-ever-allocated plateaus at peak concurrency × the class
  // ladder even when every session's state grows per token.
  static constexpr int kSessionBufClasses = 24;
  // Ceil-log2 class, floor 16 floats. May exceed the pool array (giant
  // states); such buffers share the top pool, which is why adoption
  // re-checks cap — every class below the top holds exactly 1 << cls.
  static int session_buf_class(std::size_t numel) {
    int cls = 4;  // 1 << 4 == 16 floats minimum
    while ((std::size_t{1} << cls) < numel) ++cls;
    return cls;
  }
  static std::size_t session_buf_pool_index(int cls) {
    return static_cast<std::size_t>(
        cls < kSessionBufClasses ? cls : kSessionBufClasses - 1);
  }
  void pool_session_buf(SessionBuf&& buf);
  std::unordered_map<int, SessionBuf> session_bufs_;  // instance → kept state
  std::array<std::vector<SessionBuf>, kSessionBufClasses> session_buf_pool_;
  std::size_t session_bufs_peak_ = 0;
  std::size_t session_floats_allocated_ = 0;
  StepHook step_hook_;

  // --- scheduler scratch, reused across triggers (zero steady-state heap
  // traffic; growth events count into stats_.scheduling_allocs)
  BucketScratch phase_buckets_;  // phase → pending ids
  BucketScratch depth_buckets_;  // depth*K + kernel → pending ids (phase 0)
  BucketScratch wave_buckets_;   // kernel → ready ids (phase > 0 waves)
  std::vector<std::uint32_t> wave_todo_, wave_rest_;
  std::vector<std::uint32_t> trigger_scratch_;  // pending_ swap buffer
  std::vector<float*> outs_scratch_;            // per-batch output cursors
  std::vector<std::uint32_t> eager_scratch_;    // eager mode's 1-op batch
  // Agenda-scheduler scratch: per-node stamp/rank (stamped, so no O(table)
  // clears) plus per-pending remaining counts and a consumers CSR.
  std::vector<std::uint32_t> agenda_stamp_, agenda_rank_, agenda_order_;
  std::uint32_t agenda_gen_ = 0;
  std::vector<int> agenda_remaining_;
  std::vector<std::uint32_t> agenda_cons_off_, agenda_cons_cur_, agenda_cons_;
  std::vector<std::uint32_t> agenda_batch_;  // the class being executed
  struct ReadyClass {
    std::uint64_t sig;
    std::uint32_t list;  // slot in ready_pool_
  };
  std::vector<ReadyClass> ready_classes_;  // sig-ascending (map iteration order)
  std::vector<std::vector<std::uint32_t>> ready_pool_;
  std::vector<std::uint32_t> ready_free_;
};

}  // namespace acrobat
