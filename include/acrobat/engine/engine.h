// The lazy auto-batching engine (paper §3-§5).
//
// Executors record tensor ops instead of running them; `trigger_execution`
// schedules all pending ops into batches — one simulated device launch per
// batch — so same-signature ops from many program instances collapse into a
// single launch. Per-launch overhead is charged as real wall time
// (EngineConfig::launch_overhead_ns, DESIGN.md substitution table), which is
// what makes launch counts show up in every bench's latencies.
//
// The same engine also hosts the baselines: eager mode (lazy=false, one
// launch per op), and DyNet mode (per-node boxed DFG construction cost,
// agenda/depth dynamic schedulers, first-argument-keyed matmul batching,
// device memory cap).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/kernels.h"
#include "engine/value.h"
#include "support/timer.h"
#include "tensor/tensor.h"

namespace acrobat {

class FiberScheduler;

// Per-activity time accounting (Table 6 rows).
struct ActivityStats {
  TimeBucket dfg_construction;  // recording nodes into the graph
  TimeBucket scheduling;        // grouping pending nodes into batches
  TimeBucket gather_copy;       // staging scattered inputs (explicit gathers)
  TimeBucket kernel_exec;       // time inside kernels
  TimeBucket launch_overhead;   // simulated device API time
  long long kernel_launches = 0;
  long long gather_bytes = 0;  // bytes staged by explicit gathers
  // Single-call batch executions: a flat elementwise collapse (n ops → one
  // run_op over n×numel) or a stacked shared-parameter matmul. Together
  // with kernel_launches these make the hot-path shape observable — tests
  // assert the fast paths actually fire, not just that outputs match.
  long long flat_batches = 0;
  long long stacked_batches = 0;
  // Scheduler/executor scratch growth events. All per-trigger bookkeeping
  // lives in engine-owned buffers reused across triggers, so after warmup
  // this stops advancing — steady-state serving does zero scheduler heap
  // allocation (tests/test_engine_batching.cpp asserts the plateau).
  long long scheduling_allocs = 0;
};

struct EngineStats : ActivityStats {
  std::vector<long long> kernel_invocations;  // per kernel id (PGO profile)
};

// Thrown when a memory-capped run (DyNet Berxit, Table 5) exceeds its cap.
struct OomError {};

enum class SchedulerKind {
  kDepth,   // depth buckets: (phase, depth, kernel) — ACROBAT and DyNet/depth
  kAgenda,  // DyNet's greedy most-ready-signature-class scheduler
};

struct EngineConfig {
  std::int64_t launch_overhead_ns = 0;
  bool lazy = true;          // false: execute each op as recorded (eager baseline)
  bool inline_depth = true;  // false: recover depths by graph traversal per trigger
  bool phases = true;        // honor program phase tags when grouping
  bool gather_fusion = true;  // false: stage scattered batch inputs via copies
  bool const_reuse = true;    // dedupe zero-arity constant nodes
  // Flat batch execution for elementwise families: a batch of n same-kernel
  // elementwise ops with contiguous inputs (the common case — batch outputs
  // are allocated back-to-back) runs as ONE run_op over n×numel elements
  // instead of n calls, with bitwise-identical outputs. Scattered inputs
  // fall back per-op, or through an explicit staging gather when
  // gather_fusion is off. False isolates the op-at-a-time path (tests).
  bool fuse_elementwise = true;
  SchedulerKind scheduler = SchedulerKind::kDepth;
  bool shape_keyed_batching = true;  // false: matmul family batches per first arg
  bool boxed_dfg = false;            // DyNet-style per-node construction work
  bool fuse_waves = false;           // Cortex: one persistent launch per ready wave
  int stage_all_amp = 0;             // Cortex MV-RNN: forced input copies, amplified
  std::size_t memory_cap_bytes = 0;  // 0 = uncapped
  bool time_activities = false;
  // Steady-state serving (DESIGN.md §7 "Recycling"): per-request node slots
  // and arena pages are reclaimed when the serve loop retires a completed
  // request, so node table and arena footprint plateau at peak concurrency
  // instead of growing with request count. Requires lazy mode; mutually
  // exclusive with exec-log autodiff replay (the log is not kept — retired
  // node ids would dangle).
  bool recycle = false;
};

// Identifies the recording program instance (used for diagnostics and for
// instance-at-a-time baselines; batching is signature-driven, not
// instance-driven).
struct InstCtx {
  int instance = 0;
};

class Engine {
 public:
  Engine(const KernelRegistry& registry, EngineConfig cfg);

  // Wraps external storage (weights, dataset tensors) as a materialized node.
  TRef add_concrete(TensorView v);

  // Records a lazy op; returns a future. `phase` is the program-phase tag
  // the executor is currently in (0 = main phase).
  TRef add_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx, int phase);

  // Materializes (triggering execution if pending) and returns a view.
  Tensor force(TRef r);

  // Ensures `r` is materialized. Inside a fiber this suspends the instance
  // and lets other instances record (runtime/fiber.h); otherwise it triggers
  // execution directly — the instance-at-a-time fallback.
  void sync(TRef r);

  // sync + read element 0 (data-dependent control flow).
  float scalar(TRef r);

  bool materialized(TRef r) const;
  const Shape& shape(TRef r) const;
  const float* data(TRef r) const;  // null until materialized

  // Executes every pending op in batched order.
  void trigger_execution();

  void set_fiber_scheduler(FiberScheduler* fs) { fibers_ = fs; }

  // Serving hook (serve/server.h): called at the top of every trigger,
  // before pending ops are scheduled. The hook may admit newly arrived
  // requests (spawn fibers and step them until they suspend), so one
  // trigger batches ops from old and new requests together — continuous
  // batching across requests, not just across a closed instance batch.
  void set_admission_hook(std::function<void()> hook) { admission_hook_ = std::move(hook); }

  const EngineStats& stats() const { return stats_; }
  const KernelRegistry& registry() const { return registry_; }

  // Execution log for reverse-replay autodiff (grad/backward.h): batches in
  // execution order, each a kernel id plus the node ids it ran.
  struct ExecBatch {
    int kernel_id = -1;
    std::vector<std::uint32_t> nodes;
  };
  // Empty when recycling is on (retired node ids would dangle); callers
  // that replay it must check `recycling()` — backward() refuses loudly.
  const std::vector<ExecBatch>& exec_log() const { return exec_log_; }
  bool recycling() const { return cfg_.recycle; }
  int kernel_of(TRef r) const;  // -1 for concrete nodes
  const std::vector<TRef>& inputs_of(TRef r) const;
  // Node-table slots ever allocated; with recycling this plateaus at peak
  // concurrency while `live_nodes` dips as requests retire.
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t live_nodes() const { return nodes_.size() - free_slots_.size(); }

  // --- epoch recycling (EngineConfig::recycle; serve/server.h drives this)

  // Registers a request at the current epoch. Every node it records is
  // tracked as its span; arena pages it allocates into cannot be reclaimed
  // until it retires.
  void begin_request(int instance);

  // Retires a completed request: its node slots go onto the free list with
  // bumped generations (stale TRefs then fault in debug), and arena pages
  // older than every still-live request's admission epoch return to the
  // page pool. Call only after the request's outputs have been consumed.
  void retire_request(int instance);

  // Memory-watermark and live-node gauges (serve/stats.h per-shard report).
  struct MemoryStats {
    std::size_t node_table_size = 0;   // slots ever allocated
    std::size_t live_nodes = 0;        // slots not on the free list
    std::size_t live_nodes_peak = 0;
    long long nodes_recycled = 0;
    std::size_t arena_active_bytes = 0;
    std::size_t arena_high_water_bytes = 0;  // peak bytes in live arena pages
    long long arena_pages_recycled = 0;
    // Slots a Release-mode retire_request could not recycle because the
    // request still had pending (unexecuted) ops — reusing such a slot
    // would alias the next request, so it is abandoned instead. Debug
    // builds assert; steady-state soaks check this stays 0.
    long long leaked_slots = 0;
    // Persistent-region footprint (cached constants materialized outside
    // the epoch protocol). With a multi-model fleet shard every model's
    // constants land here once; the gauge must go flat after each model's
    // first request and stay flat for the rest of the trace
    // (tests/test_fleet.cpp soak).
    std::size_t persist_arena_high_water_bytes = 0;
  };
  MemoryStats memory() const;

 private:
  struct Node {
    int kernel_id = -1;  // -1: concrete
    std::vector<TRef> ins;
    Shape shape;
    const float* data = nullptr;
    int depth = 0;
    int phase = 0;
    int instance = 0;
    std::uint32_t gen = 0;   // bumped when the slot is retired
    bool persist = false;    // persistent region: weights, cached constants
  };

  // Generation-checked accessors: a stale ref (slot retired or reissued
  // since hand-out) aborts loudly in debug instead of aliasing whatever
  // request owns the slot now. Internal scheduler loops index `nodes_` by
  // raw pending ids, which are live by construction.
  void check_ref(TRef r) const;
  Node& node(TRef r) {
    check_ref(r);
    return nodes_[r.id];
  }
  const Node& node(TRef r) const {
    check_ref(r);
    return nodes_[r.id];
  }
  TRef record_op(int kernel_id, const TRef* ins, int n_ins, const InstCtx& ctx, int phase);
  TRef alloc_node(Node&& n, bool reusable_slot);
  void execute_batch(int kernel_id, const std::vector<std::uint32_t>& ids, bool merge_launch);
  // Flat/stacked fast paths (DESIGN.md §4 "Flat elementwise execution"):
  // collapse n same-kernel ops into one run_op call when inputs line up.
  // Both return false to fall back to the op-at-a-time loop.
  bool try_execute_flat(const Kernel& k, const std::vector<std::uint32_t>& ids,
                        float* out_base);
  bool try_execute_stacked(const Kernel& k, const std::vector<std::uint32_t>& ids,
                           float* out_base);
  // Explicit staging gather: copies operand `operand` of every batch member
  // (`step` floats each) into one contiguous arena buffer, charging
  // gather-copy time and bytes. charge_bytes may throw OomError.
  float* stage_gather(const std::vector<std::uint32_t>& ids, int operand,
                      std::int64_t step);
  void schedule_depth(std::vector<std::uint32_t>& pending);
  void schedule_agenda(std::vector<std::uint32_t>& pending);
  void recover_depths(const std::vector<std::uint32_t>& pending);
  void charge_bytes(std::size_t bytes);  // memory-cap accounting (OomError)
  void charge_launch();

  // --- allocation-free scheduling (DESIGN.md §5 "Scratch reuse") ---------
  // Dense-keyed bucket map reused across triggers: `index[key]` names a
  // slot in `lists`, `keys` records touched keys for ordered iteration and
  // O(touched) reset. Growth goes through scratch_reserve so the stats
  // counter sees every scheduler heap allocation.
  struct BucketScratch {
    std::vector<std::int32_t> index;                // key → slot, -1 empty
    std::vector<std::vector<std::uint32_t>> lists;  // slot → member ids
    std::vector<std::uint32_t> keys;                // touched keys
    std::size_t used = 0;                           // live slots
  };
  template <class T>
  void scratch_reserve(std::vector<T>& v, std::size_t need);
  void bucket_push(BucketScratch& b, std::uint32_t key, std::uint32_t id);
  void bucket_reset(BucketScratch& b);
  void reset_sched_scratch();  // exception path: drop partial trigger state

  const KernelRegistry& registry_;
  EngineConfig cfg_;
  EngineStats stats_;
  TensorPool arena_;
  // Persistent region under recycling: outputs of cached constant nodes
  // live here, outside the epoch protocol, because the const cache shares
  // them across requests of any epoch.
  TensorPool persist_arena_{1u << 12};  // small pages: a handful of constants
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pending_;
  std::vector<ExecBatch> exec_log_;
  std::unordered_map<int, TRef> const_cache_;  // const_reuse: kernel id → node
  std::vector<std::shared_ptr<std::string>> boxed_;  // boxed_dfg allocations
  FiberScheduler* fibers_ = nullptr;
  std::function<void()> admission_hook_;
  std::size_t live_bytes_ = 0;
  bool in_trigger_ = false;
  bool in_admission_ = false;
  // --- recycling state (empty when cfg_.recycle is off)
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<int, std::vector<std::uint32_t>> request_nodes_;  // instance → span
  std::unordered_map<int, std::uint64_t> live_requests_;  // instance → admission epoch
  std::uint64_t epoch_ = 0;  // advances at the end of every trigger
  std::size_t live_nodes_peak_ = 0;
  long long nodes_recycled_ = 0;
  long long leaked_slots_ = 0;

  // --- scheduler scratch, reused across triggers (zero steady-state heap
  // traffic; growth events count into stats_.scheduling_allocs)
  BucketScratch phase_buckets_;  // phase → pending ids
  BucketScratch depth_buckets_;  // depth*K + kernel → pending ids (phase 0)
  BucketScratch wave_buckets_;   // kernel → ready ids (phase > 0 waves)
  std::vector<std::uint32_t> wave_todo_, wave_rest_;
  std::vector<std::uint32_t> trigger_scratch_;  // pending_ swap buffer
  std::vector<float*> outs_scratch_;            // per-batch output cursors
  std::vector<std::uint32_t> eager_scratch_;    // eager mode's 1-op batch
  // Agenda-scheduler scratch: per-node stamp/rank (stamped, so no O(table)
  // clears) plus per-pending remaining counts and a consumers CSR.
  std::vector<std::uint32_t> agenda_stamp_, agenda_rank_, agenda_order_;
  std::uint32_t agenda_gen_ = 0;
  std::vector<int> agenda_remaining_;
  std::vector<std::uint32_t> agenda_cons_off_, agenda_cons_cur_, agenda_cons_;
  std::vector<std::uint32_t> agenda_batch_;  // the class being executed
  struct ReadyClass {
    std::uint64_t sig;
    std::uint32_t list;  // slot in ready_pool_
  };
  std::vector<ReadyClass> ready_classes_;  // sig-ascending (map iteration order)
  std::vector<std::vector<std::uint32_t>> ready_pool_;
  std::vector<std::uint32_t> ready_free_;
};

}  // namespace acrobat
