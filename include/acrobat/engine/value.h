// Runtime values: tensor futures (TRef) plus the structured values (ADTs,
// tuples, ints) that dynamic-control-flow programs branch on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace acrobat {

// Handle to an engine tensor node (a future until the engine executes it).
// In a Dataset, `id` indexes the dataset's tensor list instead until
// models::remap_trefs swaps in real engine refs.
//
// `gen` is the slot's generation at hand-out. Without recycling every slot
// stays at generation 0 and the field is inert; with epoch recycling
// (EngineConfig::recycle) a retired request's slots are reissued with a
// bumped generation, so a stale ref no longer matches its slot and the
// engine's debug accessor faults loudly instead of silently reading the
// next request's tensor.
struct TRef {
  std::uint32_t id = 0xffffffffu;
  std::uint32_t gen = 0;
  bool ok() const { return id != 0xffffffffu; }
};

struct Adt;
struct Tup;

struct Value {
  enum Kind { kNone, kTensor, kAdt, kTuple, kInt };
  Kind kind = kNone;
  TRef tref;
  std::int64_t i = 0;
  std::shared_ptr<Adt> adt;
  std::shared_ptr<Tup> tuple;

  static Value tensor(TRef r) {
    Value v;
    v.kind = kTensor;
    v.tref = r;
    return v;
  }
  static Value integer(std::int64_t x) {
    Value v;
    v.kind = kInt;
    v.i = x;
    return v;
  }
  static Value make_adt(int tag, std::vector<Value> fields);
  static Value make_tuple(std::vector<Value> elems);
};

// Algebraic-data-type node: constructor tag + fields (e.g. tree Leaf/Node,
// list Cons/Nil).
struct Adt {
  int tag = 0;
  std::vector<Value> fields;
};

struct Tup {
  std::vector<Value> elems;
};

inline Value Value::make_adt(int tag, std::vector<Value> fields) {
  Value v;
  v.kind = kAdt;
  v.adt = std::make_shared<Adt>();
  v.adt->tag = tag;
  v.adt->fields = std::move(fields);
  return v;
}

inline Value Value::make_tuple(std::vector<Value> elems) {
  Value v;
  v.kind = kTuple;
  v.tuple = std::make_shared<Tup>();
  v.tuple->elems = std::move(elems);
  return v;
}

}  // namespace acrobat
