// The kernel registry: the compiled module's table of primitive kernels.
//
// Model builders register kernels by name (deduplicated); the engine batches
// ops by kernel id; the auto-scheduler mutates each kernel's `variant` in
// place (autosched/tuner.h). A kernel remembers representative input shapes
// from registration so the tuner can measure variants offline.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/ops.h"

namespace acrobat {

struct Kernel {
  std::string name;
  OpKind op = OpKind::kAdd;
  std::int64_t attr = 0;
  int arity = 0;
  int variant = 0;  // chosen schedule; mutated by the tuner
  int num_variants = 1;
  Shape rep[4];  // representative input shapes for offline measurement
};

class KernelRegistry {
 public:
  // Registers (or finds) a kernel. `rep_shapes` may be null when arity == 0.
  int add(const std::string& name, OpKind op, std::int64_t attr, int arity,
          const Shape* rep_shapes) {
    auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    assert(arity <= 4);
    std::string skey;
    if (structural_dedupe_) {
      skey = structural_key(op, attr, arity, rep_shapes);
      auto sit = by_struct_.find(skey);
      if (sit != by_struct_.end()) {
        // Structurally identical to an existing kernel: alias this name to
        // it so the models' ops share batches (and launches) at runtime.
        by_name_.emplace(name, sit->second);
        ++structural_dupes_;
        return sit->second;
      }
    }
    Kernel k;
    k.name = name;
    k.op = op;
    k.attr = attr;
    k.arity = arity;
    k.num_variants = op_num_variants(op);
    for (int i = 0; i < arity && rep_shapes; ++i) k.rep[i] = rep_shapes[i];
    const int id = static_cast<int>(kernels_.size());
    kernels_.push_back(std::move(k));
    by_name_.emplace(name, id);
    if (structural_dedupe_) by_struct_.emplace(std::move(skey), id);
    return id;
  }

  // Shape-keyed kernel dedupe (ROADMAP / DESIGN.md §8): `run_op` is a pure
  // function of (op, variant, attr, input shapes), so two kernels agreeing
  // on (op, attr, arity, representative shapes) compute the same function
  // regardless of the model-prefixed names they were registered under. With
  // dedupe enabled (fleet ModelRegistry merges), such kernels collapse into
  // ONE entry, and cross-model ops batch into shared launches. Off by
  // default so solo modules keep their historical per-name identity. Must
  // be enabled before the first add.
  void enable_structural_dedupe() {
    assert(kernels_.empty() && "enable dedupe before registering kernels");
    structural_dedupe_ = true;
  }
  long long structural_dupes() const { return structural_dupes_; }

  std::size_t num_kernels() const { return kernels_.size(); }
  Kernel& kernel(int id) { return kernels_[static_cast<std::size_t>(id)]; }
  const Kernel& kernel(int id) const { return kernels_[static_cast<std::size_t>(id)]; }

 private:
  static std::string structural_key(OpKind op, std::int64_t attr, int arity,
                                    const Shape* rep_shapes) {
    std::string key;
    key.reserve(48);
    key += std::to_string(static_cast<int>(op));
    key += '|';
    key += std::to_string(attr);
    key += '|';
    key += std::to_string(arity);
    for (int i = 0; i < arity && rep_shapes; ++i) {
      key += '|';
      for (int d = 0; d < rep_shapes[i].ndim; ++d) {
        key += std::to_string(rep_shapes[i].dim[d]);
        key += 'x';
      }
    }
    return key;
  }

  std::vector<Kernel> kernels_;
  std::unordered_map<std::string, int> by_name_;
  std::unordered_map<std::string, int> by_struct_;  // structural_key → id
  bool structural_dedupe_ = false;
  long long structural_dupes_ = 0;
};

}  // namespace acrobat
