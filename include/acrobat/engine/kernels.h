// The kernel registry: the compiled module's table of primitive kernels.
//
// Model builders register kernels by name (deduplicated); the engine batches
// ops by kernel id; the auto-scheduler mutates each kernel's `variant` in
// place (autosched/tuner.h). A kernel remembers representative input shapes
// from registration so the tuner can measure variants offline.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/ops.h"

namespace acrobat {

struct Kernel {
  std::string name;
  OpKind op = OpKind::kAdd;
  std::int64_t attr = 0;
  int arity = 0;
  int variant = 0;  // chosen schedule; mutated by the tuner
  int num_variants = 1;
  Shape rep[4];  // representative input shapes for offline measurement
};

class KernelRegistry {
 public:
  // Registers (or finds) a kernel. `rep_shapes` may be null when arity == 0.
  int add(const std::string& name, OpKind op, std::int64_t attr, int arity,
          const Shape* rep_shapes) {
    auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    Kernel k;
    k.name = name;
    k.op = op;
    k.attr = attr;
    k.arity = arity;
    k.num_variants = op_num_variants(op);
    assert(arity <= 4);
    for (int i = 0; i < arity && rep_shapes; ++i) k.rep[i] = rep_shapes[i];
    const int id = static_cast<int>(kernels_.size());
    kernels_.push_back(std::move(k));
    by_name_.emplace(name, id);
    return id;
  }

  std::size_t num_kernels() const { return kernels_.size(); }
  Kernel& kernel(int id) { return kernels_[static_cast<std::size_t>(id)]; }
  const Kernel& kernel(int id) const { return kernels_[static_cast<std::size_t>(id)]; }

 private:
  std::vector<Kernel> kernels_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace acrobat
