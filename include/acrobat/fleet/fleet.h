// acrobat/fleet — multi-model serving over the serve layer (DESIGN.md §8).
//
// A fleet run plays a mixed-model request trace against shard workers
// built from a ModelRegistry. Each shard multiplexes fibers from every
// model into one trigger cadence: by default all models share a single
// merged engine (one node table, one recycling arena, per-model persistent
// regions), with a per-model-engine fallback for isolation. The dispatcher
// routes by latency class (per-class shard affinity, least-loaded within
// class), the FleetPolicy sheds requests whose deadline is already blown,
// and results report shed count and goodput (SLO attainment) alongside
// the latency tail.
//
// Two client modes: open-loop (replay a generate_load trace in real time —
// arrivals never wait, queueing counts) and closed-loop (K concurrent
// clients, each issuing its next request only after the previous one
// completes plus a think time — the classic contrast whose measured
// latency cannot exceed what K outstanding requests can queue).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fleet/policy.h"
#include "fleet/registry.h"
#include "serve/server.h"

namespace acrobat::fleet {

struct FleetOptions {
  int shards = 1;
  serve::DispatchKind dispatch = serve::DispatchKind::kLeastLoaded;
  FleetPolicyConfig policy;
  std::int64_t launch_overhead_ns = 0;
  bool collect_outputs = false;
  bool time_activities = false;
  bool recycle = true;
  // Schedule memoization, as in serve::ServeOptions — on by default. With
  // a merged (structurally deduped) module the cache keys on post-dedupe
  // kernel ids, so a recurring cross-model cohort replays one shared plan.
  bool sched_memo = true;
  // true: one merged engine per shard — every model's fibers share a
  // trigger cadence, node table, and recycling arena (the profitable
  // default). false: one engine per model per shard (isolation fallback);
  // the shard still runs one fiber pool and triggers every engine at the
  // same all-blocked cadence.
  bool multiplex = true;
  // Class-aware routing: shard indices eligible per class; an empty list
  // means every shard. Within the eligible set, dispatch follows
  // `dispatch` (least-loaded ties break to the lowest index).
  std::array<std::vector<int>, serve::kNumLatencyClasses> class_affinity;
  // Observability (DESIGN.md §9), as in serve::ServeOptions. The slow-
  // request exemplar threshold defaults to each request's own class
  // deadline when slow_threshold_ns is 0.
  trace::TraceOptions trace;
};

// Aborts loudly on nonsense (shards <= 0, affinity index out of range).
void validate(const FleetOptions& opts);

struct ClassReport {
  int requests = 0;
  int shed = 0;
  serve::Percentiles latency_ms;  // completed (non-shed) requests only
  double goodput = 0;  // met deadline (or completed, if class has none) / requests
};

struct FleetResult {
  std::vector<serve::RequestRecord> records;  // indexed by request id
  serve::Percentiles latency_ms;              // completed (non-shed) only
  double throughput_rps = 0;  // completed (non-shed) per second of makespan
  double makespan_ms = 0;
  long long shed = 0;
  // Fraction of ALL requests that completed within their class deadline
  // (sheds and no-deadline non-completions count as misses; classes with
  // no deadline count completion itself as success).
  double goodput = 0;
  // Decode split (zero-count without generative sessions) — merged from the
  // per-shard token histograms, as in serve::ServeResult.
  serve::Percentiles ttft_ms;
  serve::Percentiles inter_token_ms;
  long long tokens = 0;
  int cancelled = 0;  // sessions stopped mid-stream by the token deadline
  double tokens_per_sec = 0;
  std::array<ClassReport, serve::kNumLatencyClasses> by_class;
  std::vector<serve::ShardReport> shards;
  // Populated when FleetOptions::trace.enabled (write_chrome_json →
  // Perfetto); includes triage/shed instants alongside the engine spans.
  trace::TraceDump trace;

  long long total_launches() const {
    long long n = 0;
    for (const serve::ShardReport& s : shards) n += s.stats.kernel_launches;
    return n;
  }
  std::size_t peak_arena_bytes() const {
    std::size_t m = 0;
    for (const serve::ShardReport& s : shards)
      m = std::max(m, s.mem.arena_high_water_bytes);
    return m;
  }
  std::size_t peak_node_table() const {
    std::size_t m = 0;
    for (const serve::ShardReport& s : shards) m = std::max(m, s.mem.node_table_size);
    return m;
  }
  std::size_t peak_persist_bytes() const {
    std::size_t m = 0;
    for (const serve::ShardReport& s : shards)
      m = std::max(m, s.mem.persist_arena_high_water_bytes);
    return m;
  }
};

// Open-loop: `trace` must be sorted by arrival_ns with ids 0..N-1 and every
// model_id/input_index valid for `reg` (generate_load over reg mixes
// guarantees this). Blocks until every request has completed or been shed.
FleetResult serve_fleet(const ModelRegistry& reg, const std::vector<serve::Request>& trace,
                        const FleetOptions& opts);

// Closed-loop client population: `clients` concurrent logical users, each
// issuing `per_client` requests back to back — the next request is issued
// only after the previous one completes plus an exponential think time
// with mean `think_mean_ms` (0 = reissue immediately).
struct ClosedLoopSpec {
  int clients = 4;
  int per_client = 8;
  double think_mean_ms = 0.5;
  std::uint64_t seed = 1;
};

void validate(const ClosedLoopSpec& spec);

// Deterministic request *content* for a closed-loop run: client c owns ids
// [c*per_client, (c+1)*per_client) in issue order; model/input/class are
// drawn from `mix` under spec.seed. arrival_ns is 0 here — the dispatcher
// stamps it at issue time, because in a closed loop arrivals depend on
// completions by construction.
std::vector<serve::Request> generate_closed_load(const ClosedLoopSpec& spec,
                                                 const std::vector<serve::ModelMix>& mix);

FleetResult serve_fleet_closed(const ModelRegistry& reg, const ClosedLoopSpec& spec,
                               const std::vector<serve::ModelMix>& mix,
                               const FleetOptions& opts);

}  // namespace acrobat::fleet
