// SLO admission control (DESIGN.md §8): the FleetPolicy extends a base
// BatchPolicy (greedy / max-batch / deadline-hold — the trigger-cadence
// half) with class-aware triage — the goodput half. Admission is earliest-
// deadline-first; a request whose class deadline is already blown is
// deprioritized (sorted after every request that can still make it) and,
// past the grace window, shed outright: completing it would be worthless,
// and the capacity it would burn is what pushes *other* requests past
// their deadlines. Shedding is what separates goodput from throughput past
// saturation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "serve/policy.h"

namespace acrobat::fleet {

struct FleetPolicyConfig {
  serve::PolicyConfig base;  // trigger cadence / batch-width behavior
  // Per-class completion deadline (ns from arrival); <= 0 means none —
  // the class is never deprioritized or shed (best-effort default).
  std::array<std::int64_t, serve::kNumLatencyClasses> deadline_ns{5'000'000, 50'000'000, 0};
  // false: blown requests are only deprioritized, never dropped (the
  // latency-only contrast the goodput tests compare against).
  bool shed = true;
  // Defer a blown request until it is blown by grace*deadline before
  // shedding; 0 sheds the moment the deadline passes.
  double shed_grace = 0.0;
  // Estimated per-request service time: a request is "blown" once
  // now + est_service_ns exceeds its deadline — it can no longer finish
  // inside the SLO even if admitted immediately. 0 sheds only after the
  // deadline itself passes, which lets EDF admit requests right at their
  // deadline and burn a whole service time on work that is already doomed
  // (tests/test_fleet.cpp demonstrates the goodput gap).
  std::int64_t est_service_ns = 0;
  // Per-token deadline for generative sessions (iteration-level scheduling):
  // a parked decode step's deadline is last_token_ns + token_deadline_ns,
  // so EDF triage orders steps against fresh arrivals and a hopelessly
  // stalled session is cancelled mid-stream rather than shed-at-arrival
  // (it exits through the model's tail; RequestRecord::cancelled). <= 0
  // disables step triage — steps are admitted ahead of arrivals untriaged.
  std::int64_t token_deadline_ns = 0;
};

std::int64_t class_deadline_ns(const FleetPolicyConfig& cfg, serve::LatencyClass c);

std::unique_ptr<serve::BatchPolicy> make_fleet_policy(const FleetPolicyConfig& cfg);

}  // namespace acrobat::fleet
