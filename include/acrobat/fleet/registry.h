// The fleet's model table (DESIGN.md §8): N models compiled once into ONE
// merged module — a single KernelRegistry (names are model-prefixed, so
// only genuinely shared kernels alias) and a single ir::Program holding
// every model's functions, with one entry Func recorded per model. A shard
// worker built from the registry hosts every model behind one engine: one
// trigger cadence, one node table, one recycling arena, and a persistent
// region holding every model's weights, dataset tensors, and cached
// constants side by side.
//
// Weights are materialized per model with the model's own deterministic
// seed (harness::materialize_weights), so a model's parameters are
// bitwise-identical whether it is prepared solo or into a fleet — the
// parity tests depend on it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/harness.h"
#include "serve/load.h"

namespace acrobat::fleet {

struct FleetModel {
  std::string name;
  bool large = false;
  models::Dataset dataset;
  std::shared_ptr<ir::Func> entry;  // this model's main in the merged program
  int entry_index = -1;             // its index in the merged program's funcs
  // This model's slice of the merged weight table (diagnostics; the IR's
  // kLoadWeight indices are global, so executors always get the full table).
  std::size_t weight_begin = 0, weight_end = 0;
};

class ModelRegistry {
 public:
  // One pipeline config per fleet: every model compiles at the same
  // ablation level, exactly as a solo harness::prepare would.
  //
  // `dedupe_kernels` (default on) keys the merged KernelRegistry by
  // structure — (op, attr, arity, representative shapes) — instead of by
  // model-prefixed name, so genuinely identical kernels across (and
  // within) fleet models collapse into one registry entry and their ops
  // batch into shared launches. Outputs are bitwise-unchanged: merging
  // affects only how ops group, never what each op computes
  // (tests/test_fleet.cpp cross-checks both claims).
  explicit ModelRegistry(passes::PipelineConfig cfg = {}, bool dedupe_kernels = true)
      : cfg_(cfg) {
    if (dedupe_kernels) compiled_.module.registry.enable_structural_dedupe();
  }

  // Compiles the spec into the merged module and takes ownership of its
  // dataset. Returns the model id requests use (dense, in add order).
  // Call before prepare(); aborts loudly afterwards.
  int add(const models::ModelSpec& spec, bool large, models::Dataset ds);

  // Finalizes the merged IR (may_sync propagation) and applies the default
  // (assumed-fastest, PGO-ready) schedule variants — once, for all models.
  void prepare();
  bool prepared() const { return prepared_; }

  const harness::Compiled& compiled() const { return compiled_; }
  const harness::Weights& weights() const { return weights_; }
  const passes::PipelineConfig& cfg() const { return cfg_; }
  const std::vector<FleetModel>& models() const { return models_; }
  const FleetModel& model(int id) const { return models_[static_cast<std::size_t>(id)]; }
  int num_models() const { return static_cast<int>(models_.size()); }

  // Equal-weight all-interactive mix over every model (input bounds filled
  // in); callers adjust weights/classes per entry before generate_load.
  std::vector<serve::ModelMix> uniform_mix() const;

 private:
  passes::PipelineConfig cfg_;
  bool prepared_ = false;
  harness::Compiled compiled_;
  harness::Weights weights_;
  std::vector<models::WeightDecl> decls_;  // merged; kLoadWeight indices are global
  std::vector<FleetModel> models_;
};

}  // namespace acrobat::fleet
