// AOT executor (paper §6, Table 4 right columns): a compiled program runs
// as direct native dispatch over unboxed registers — per-instruction cost
// is a switch and a vector slot, control-flow overhead stays out of the
// latency path. Depth/phase bookkeeping is inline (compiled-in counters);
// data-dependent branches suspend via Engine::sync when fibers are active.
#pragma once

#include <span>
#include <vector>

#include "engine/engine.h"
#include "ir/ir.h"

namespace acrobat::aot {

class AotExecutor {
 public:
  AotExecutor(const ir::Program& program, Engine& engine, std::vector<TRef> weights)
      : prog_(program), engine_(engine), weights_(std::move(weights)) {}

  // Executes program.main over one instance's inputs. Re-entrant across
  // fibers: one executor is shared by every in-flight request, and a fiber
  // suspends mid-exec (kSyncSign), so instance/phase state lives on the
  // caller's stack — under recycling the instance id decides which request
  // span a recorded node retires with, so cross-fiber clobbering would be
  // a use-after-free, not a mislabel.
  Value run(std::span<const Value> args, InstCtx ctx);

  // Fleet entry (DESIGN.md §8): runs a specific entry function of a merged
  // multi-model program (fleet/registry.h holds one per model). `entry`
  // must belong to this executor's program; same re-entrancy contract as
  // run(), which is the main-entry special case.
  Value run_entry(const ir::Func& entry, std::span<const Value> args, InstCtx ctx);

 private:
  struct RunState {
    InstCtx ctx;
    int phase = 0;  // shared down the call chain of one run, as before
  };
  Value exec(const ir::Func& f, const Value* args, std::size_t n_args, RunState& st);

  const ir::Program& prog_;
  Engine& engine_;
  std::vector<TRef> weights_;
};

}  // namespace acrobat::aot
