// AOT executor (paper §6, Table 4 right columns): a compiled program runs
// as direct native dispatch over unboxed registers — per-instruction cost
// is a switch and a vector slot, control-flow overhead stays out of the
// latency path. Depth/phase bookkeeping is inline (compiled-in counters);
// data-dependent branches suspend via Engine::sync when fibers are active.
#pragma once

#include <span>
#include <vector>

#include "engine/engine.h"
#include "ir/ir.h"

namespace acrobat::aot {

class AotExecutor {
 public:
  AotExecutor(const ir::Program& program, Engine& engine, std::vector<TRef> weights)
      : prog_(program), engine_(engine), weights_(std::move(weights)) {}

  // Executes program.main over one instance's inputs.
  Value run(std::span<const Value> args, InstCtx ctx);

 private:
  Value exec(const ir::Func& f, const Value* args, std::size_t n_args);

  const ir::Program& prog_;
  Engine& engine_;
  std::vector<TRef> weights_;
  InstCtx ctx_;
  int phase_ = 0;
};

}  // namespace acrobat::aot
