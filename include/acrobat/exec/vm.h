// The boxed interpreter VM (paper §2/§6, Table 4 left columns): the same
// Program as exec/aot.h, executed the way a naive Relay-VM-style
// interpreter would — every register access goes through a string-keyed
// environment, every value is freshly heap-boxed, and every instruction
// pays dynamic checks with formatted diagnostics. Tensor work is identical
// (same engine, same kernels); the gap Table 4 measures is pure
// interpretation overhead, so it is largest where control flow, not tensor
// time, dominates.
#pragma once

#include <span>
#include <vector>

#include "engine/engine.h"
#include "ir/ir.h"

namespace acrobat::exec {

class Vm {
 public:
  Vm(const ir::Program& program, Engine& engine, std::vector<TRef> weights)
      : prog_(program), engine_(engine), weights_(std::move(weights)) {}

  // Re-entrant across fibers, same as AotExecutor: instance/phase state is
  // stack-held per run, so interleaved instances can't clobber each other's
  // identity (under recycling that would retire the wrong request's nodes).
  Value run(std::span<const Value> args, InstCtx ctx);

 private:
  struct RunState {
    InstCtx ctx;
    int phase = 0;  // shared down the call chain of one run
  };
  Value exec(const ir::Func& f, const std::vector<Value>& args, RunState& st);

  const ir::Program& prog_;
  Engine& engine_;
  std::vector<TRef> weights_;
};

}  // namespace acrobat::exec
