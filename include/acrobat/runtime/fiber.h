// Cooperative fiber scheduler (paper §4.2): each program instance runs as a
// stackful fiber; an instance that reaches data-dependent control flow
// suspends instead of forcing execution, other instances keep recording,
// and only when every live instance is blocked does the scheduler wake the
// engine (`on_all_blocked` → Engine::trigger_execution). This is what lets
// tensor-dependent control flow (DRNN generation, Berxit early exit) still
// batch across instances.
//
// Two driving modes share the same machinery:
//  - `run` executes a closed batch of tasks to completion (the bench/test
//    path: every instance is known up front).
//  - the primitive API (`spawn` / `step_ready` / `wake_blocked` /
//    `reap_done`) lets a driver admit new fibers while earlier ones are
//    suspended — continuous batching across requests (serve/server.h).
//
// Single-threaded per scheduler (ucontext swap, no locks): determinism and
// zero synchronization cost are the point — concurrency here is about
// program shape, not parallel hardware. Shard workers (serve/) each own a
// private scheduler on their own thread; the active-scheduler slot is
// thread-local, so schedulers never share state across threads.
#pragma once

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace acrobat {

namespace trace {
class Tracer;
}

using FiberTask = std::function<void()>;

class FiberScheduler {
 public:
  FiberScheduler() = default;
  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  // Closed-batch mode: runs all tasks to completion. Whenever no fiber is
  // runnable but some are blocked, calls `on_all_blocked` (the engine
  // trigger) and wakes every blocked fiber.
  void run(std::vector<FiberTask> tasks, const std::function<void()>& on_all_blocked);

  // --- primitive API (dynamic admission; all calls from the scheduler
  // side, never from inside a fiber) ---

  // Admits a new fiber in the ready state. Legal while other fibers are
  // suspended: a serve-loop trigger boundary admits newly arrived requests
  // so their ops batch with the suspended instances' pending ops. `tag`
  // identifies the fiber to the reap hook (serve: the request id, which
  // keys the engine's per-request node span); -1 = untagged.
  void spawn(FiberTask task, int tag = -1);

  // Called once per tagged fiber as reap_done recycles it — after the task
  // has finished and its stack is off the hot path, i.e. the point where a
  // serve shard retires the request's engine state (node span + arena
  // epoch). Runs on the scheduler side, never inside a fiber.
  void set_reap_hook(std::function<void(int)> hook) { reap_hook_ = std::move(hook); }

  // Observability (trace/trace.h, DESIGN.md §9): spawn/block/wake/reap emit
  // instants into the shard's ring. Null (default) costs one predicted
  // branch per site.
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  // Runs every ready fiber until it blocks or completes; returns how many
  // fibers were stepped.
  std::size_t step_ready();

  // Fibers that are ready or blocked (completed-but-unreaped excluded).
  std::size_t live() const;
  bool any_blocked() const;

  // Moves every blocked fiber back to ready (their futures materialized by
  // the trigger that just ran); counts one idle trigger when any woke.
  void wake_blocked();

  // Recycles completed fibers onto the free list (stack kept for reuse);
  // returns how many were reaped.
  std::size_t reap_done();

  // Called from inside a fiber (via Engine::sync): suspends the current
  // fiber until the next wake.
  void block_current();

  // Iteration-level scheduling (DESIGN.md §7): a decode fiber at a token
  // boundary parks itself until the serve loop re-admits its next step.
  // Parked is distinct from blocked — wake_blocked (the trigger wake) never
  // resumes a parked fiber and any_blocked ignores them, so a shard full of
  // parked sessions does not force triggers; only a targeted unpark(tag)
  // from the admission path makes the fiber runnable again.
  void park_current();
  bool unpark(int tag);  // scheduler side; false if no parked fiber has tag
  std::size_t parked() const;

  bool in_fiber() const { return current_ >= 0; }

  // Number of all-blocked wakeups performed (tests and diagnostics).
  long long idle_triggers() const { return idle_triggers_; }

  // Stacks ever allocated by this scheduler. Under serving load fibers are
  // created per request; the free-list pool keeps this bounded by the peak
  // number of concurrently live fibers, not the request count.
  long long stacks_allocated() const { return stacks_allocated_; }

 private:
  // Heap-stable: glibc's ucontext_t points into itself (uc_mcontext.fpregs),
  // so a Fiber must never move once getcontext has run. Dynamic admission
  // grows the fiber list mid-run, hence unique_ptr elements.
  struct Fiber {
    ucontext_t ctx;
    std::unique_ptr<char[]> stack;
    FiberTask task;
    int tag = -1;
    enum State { kReady, kBlocked, kParked, kDone } state = kReady;
  };

  static void trampoline();

  static constexpr std::size_t kStackBytes = 256 * 1024;

  ucontext_t main_ctx_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<std::unique_ptr<Fiber>> pool_;  // recycled fibers, stacks retained
  std::function<void(int)> reap_hook_;
  trace::Tracer* tracer_ = nullptr;
  int current_ = -1;
  long long idle_triggers_ = 0;
  long long stacks_allocated_ = 0;
};

}  // namespace acrobat
