// Cooperative fiber scheduler (paper §4.2): each program instance runs as a
// stackful fiber; an instance that reaches data-dependent control flow
// suspends instead of forcing execution, other instances keep recording,
// and only when every live instance is blocked does the scheduler wake the
// engine (`on_all_blocked` → Engine::trigger_execution). This is what lets
// tensor-dependent control flow (DRNN generation, Berxit early exit) still
// batch across instances.
//
// Single-threaded by design (ucontext swap, no locks): determinism and zero
// synchronization cost are the point — concurrency here is about program
// shape, not parallel hardware.
#pragma once

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace acrobat {

using FiberTask = std::function<void()>;

class FiberScheduler {
 public:
  FiberScheduler() = default;
  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  // Runs all tasks to completion. Whenever no fiber is runnable but some
  // are blocked, calls `on_all_blocked` (the engine trigger) and wakes
  // every blocked fiber.
  void run(std::vector<FiberTask> tasks, const std::function<void()>& on_all_blocked);

  // Called from inside a fiber (via Engine::sync): suspends the current
  // fiber until the next wake.
  void block_current();

  bool in_fiber() const { return current_ >= 0; }

  // Number of all-blocked wakeups performed (tests and diagnostics).
  long long idle_triggers() const { return idle_triggers_; }

 private:
  struct Fiber {
    ucontext_t ctx;
    std::unique_ptr<char[]> stack;
    FiberTask task;
    enum State { kReady, kBlocked, kDone } state = kReady;
  };

  static void trampoline();

  static constexpr std::size_t kStackBytes = 256 * 1024;

  ucontext_t main_ctx_;
  std::vector<Fiber> fibers_;
  int current_ = -1;
  long long idle_triggers_ = 0;
};

}  // namespace acrobat
