// Minimal blocking client for the acrobat/net wire protocol. Used by the
// tests and by bench/net_client; one NetClient per connection, single
// threaded. Responses for concurrently outstanding requests are demuxed by
// req_id, so a client may pipeline many requests on one connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acrobat/net/frame.h"

namespace acrobat::net {

// Capped exponential backoff with seeded multiplicative jitter in
// [0.5, 1.5): delay for retry attempt k (0-based) is
// min(base << k, cap) * (0.5 + u). `jitter_state` is an xorshift64 state
// advanced per call — seed it once per client/run and the whole backoff
// schedule is reproducible. Pure and header-only so the determinism unit
// test exercises exactly the production code path.
inline std::int64_t retry_backoff_ns(int attempt, std::int64_t base_ns,
                                     std::int64_t cap_ns,
                                     std::uint64_t& jitter_state) {
  if (attempt < 0) attempt = 0;
  std::int64_t d = attempt >= 62 ? cap_ns : base_ns << attempt;
  if (d > cap_ns || d <= 0) d = cap_ns;
  std::uint64_t x = jitter_state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  jitter_state = x;
  const double u = static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
  return static_cast<std::int64_t>(static_cast<double>(d) * (0.5 + u));
}

// Per-call resilience policy for NetClient::call().
struct CallOptions {
  std::int64_t deadline_ms = 60'000;  // end-to-end budget incl. all retries
  int max_attempts = 16;              // sends, including the first
  std::int64_t backoff_base_ms = 1;
  std::int64_t backoff_cap_ms = 200;
  bool stream = true;
};

struct ClientStats {
  std::uint64_t retries = 0;     // resends: kRetry, retryable kError, transport
  std::uint64_t reconnects = 0;  // successful redials of the stored endpoint
  std::uint64_t timeouts = 0;    // call()s that exhausted their deadline
};

struct ClientResponse {
  std::uint32_t req_id = 0;
  enum class Kind { kDone, kRetry, kError } kind = Kind::kDone;
  std::uint32_t error_code = 0;
  std::uint32_t tokens = 0;
  bool cancelled = false;
  std::vector<float> output;
  // Wire-side observation timestamps (CLOCK_MONOTONIC ns): when each token
  // frame and the final frame were *received*, for TTFT / inter-token stats
  // measured at the client.
  std::vector<std::int64_t> token_recv_ns;
  std::int64_t done_recv_ns = 0;
};

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  bool connect_tcp(const std::string& host, int port);
  bool connect_uds(const std::string& path);
  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }
  void close();

  // Fire-and-forget send; responses are collected with wait().
  bool send_request(std::uint32_t req_id, std::uint32_t input_index,
                    std::uint16_t model_id = 0, std::uint8_t latency_class = 0,
                    bool stream = true);

  // Blocks until the terminal frame (kDone / kRetry / kError) for `req_id`
  // arrives, filling `out`. Terminal frames for *other* pipelined requests
  // seen along the way are stashed and returned by their own wait() calls.
  // Returns false on connection error or timeout.
  bool wait(std::uint32_t req_id, ClientResponse& out, int timeout_ms = 60000);

  // Resilient blocking call (ISSUE 10): send_request + wait with retry.
  // Retries (capped exponential backoff, seeded jitter — set_jitter_seed)
  // on kRetry, on kError(kWorkerDied / kUnavailable), and on transport
  // failure — the latter after reconnect-and-resubmit against the endpoint
  // remembered by the last connect_*(). Returns true iff kDone arrived
  // within the deadline; on false, `out.kind` holds the last terminal
  // answer (kError with a non-retryable code returns false immediately).
  // Single request at a time: do not interleave with pipelined wait()s.
  bool call(std::uint32_t req_id, std::uint32_t input_index, ClientResponse& out,
            const CallOptions& opts = {});

  // Redial the endpoint stored by the last connect_*(). Drops any buffered
  // partial frames and unclaimed responses — in-flight pipelined requests
  // on the old connection are gone (the server cancels them on drop).
  bool reconnect();

  // Authn: fold `token` into every subsequent request's aux field
  // (frame.h auth_token16). Empty = send no token.
  void set_auth(const std::string& token);
  void set_jitter_seed(std::uint64_t seed) { jitter_ = seed != 0 ? seed : 1; }

  const ClientStats& stats() const { return stats_; }

 private:
  bool pump(int timeout_ms);

  int fd_ = -1;
  FrameReader reader_;
  std::string error_;
  std::vector<ClientResponse> pending_;  // terminal responses not yet claimed
  std::vector<ClientResponse> partial_;  // streams in progress (token stamps)

  // Stored endpoint for reconnect(): exactly one of host/uds is set.
  std::string host_;
  int port_ = -1;
  std::string uds_;
  std::uint16_t auth_ = 0;
  std::uint64_t jitter_ = 0x6a09e667f3bcc909ull;
  ClientStats stats_;
};

}  // namespace acrobat::net
