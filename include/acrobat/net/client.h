// Minimal blocking client for the acrobat/net wire protocol. Used by the
// tests and by bench/net_client; one NetClient per connection, single
// threaded. Responses for concurrently outstanding requests are demuxed by
// req_id, so a client may pipeline many requests on one connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acrobat/net/frame.h"

namespace acrobat::net {

struct ClientResponse {
  std::uint32_t req_id = 0;
  enum class Kind { kDone, kRetry, kError } kind = Kind::kDone;
  std::uint32_t error_code = 0;
  std::uint32_t tokens = 0;
  bool cancelled = false;
  std::vector<float> output;
  // Wire-side observation timestamps (CLOCK_MONOTONIC ns): when each token
  // frame and the final frame were *received*, for TTFT / inter-token stats
  // measured at the client.
  std::vector<std::int64_t> token_recv_ns;
  std::int64_t done_recv_ns = 0;
};

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  bool connect_tcp(const std::string& host, int port);
  bool connect_uds(const std::string& path);
  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }
  void close();

  // Fire-and-forget send; responses are collected with wait().
  bool send_request(std::uint32_t req_id, std::uint32_t input_index,
                    std::uint16_t model_id = 0, std::uint8_t latency_class = 0,
                    bool stream = true);

  // Blocks until the terminal frame (kDone / kRetry / kError) for `req_id`
  // arrives, filling `out`. Terminal frames for *other* pipelined requests
  // seen along the way are stashed and returned by their own wait() calls.
  // Returns false on connection error or timeout.
  bool wait(std::uint32_t req_id, ClientResponse& out, int timeout_ms = 60000);

 private:
  bool pump(int timeout_ms);

  int fd_ = -1;
  FrameReader reader_;
  std::string error_;
  std::vector<ClientResponse> pending_;  // terminal responses not yet claimed
  std::vector<ClientResponse> partial_;  // streams in progress (token stamps)
};

}  // namespace acrobat::net
