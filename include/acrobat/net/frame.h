// acrobat/net wire protocol (DESIGN.md §10): small length-prefixed binary
// frames over TCP or UNIX-domain stream sockets.
//
// Every frame is an 8-byte header followed by `len` payload bytes:
//
//   u32 len   — payload bytes after the header (bounded: kMaxPayload)
//   u8  type  — FrameType
//   u8  flags — type-specific bits (request: bit0 = stream per-token frames)
//   u16 aux   — type-specific small field (request: folded authn token;
//               worker-mode: degraded bit)
//
// Integers are little-endian; floats are IEEE-754 bit patterns. The
// protocol is host-local by design (loopback TCP or UDS between processes
// on one machine), so there is no cross-endian negotiation — the parity
// tests' bitwise-output contract relies on the bits crossing the wire
// untouched.
//
// The same framing carries both the client-facing protocol (kRequest /
// kDone / kToken / kRetry / kError) and the router↔shard-worker protocol of
// the multi-process fleet (kWorker*). FrameReader is an incremental parser:
// feed it whatever recv returned — any fragmentation, including one byte at
// a time — and it yields complete frames in order, faulting loudly on an
// oversized or malformed header instead of buffering unboundedly.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace acrobat::net {

enum class FrameType : std::uint8_t {
  // client → server
  kRequest = 1,  // u32 req_id, u32 input_index, u16 model_id, u8 class, u8 pad
                 //   aux = auth_token16() when the server requires authn
  // server → client
  kDone = 2,   // u32 req_id, u32 tokens, u8 cancelled, u8 pad[3],
               // u32 n_floats, f32[n_floats]
  kToken = 3,  // u32 req_id, u32 ordinal — streamed per decode token
  kRetry = 4,  // u32 req_id — admission queue full: retry later (the 429)
  kError = 5,  // u32 req_id, u32 code (ErrorCode)
  // router ↔ shard worker (multi-process fleet, over a UDS socketpair)
  kWorkerReq = 8,     // u32 slot, u32 input_index, u16 model_id, u8 class, u8 pad
                      //   flags bit0 = stream
  kWorkerToken = 9,   // u32 slot, u32 ordinal
  kWorkerDone = 10,   // u32 slot, u32 tokens, u8 cancelled, u8 pad[3],
                      // u32 n_floats, f32[n_floats]
  kWorkerCancel = 11, // u32 slot — cancel a live session mid-stream
  kWorkerPing = 12,   // liveness probe (router → worker)
  kWorkerPong = 13,   // liveness reply (worker → router)
  kWorkerDrain = 14,  // finish in-flight work, reply kWorkerBye, exit
  kWorkerBye = 15,    // u32 requests, u64 tokens — drain acknowledgement
  kWorkerMode = 16,   // empty payload; aux bit0 = degraded-mode on/off
};

enum class ErrorCode : std::uint32_t {
  kWorkerDied = 1,    // the shard process serving this request exited
  kUnavailable = 2,   // no live shard worker to route to
  kBadRequest = 3,    // malformed request fields (model id / input index)
  kUnauthorized = 4,  // auth token required and the aux field did not match
};

inline constexpr std::size_t kHeaderBytes = 8;
// Payload bound: a done-frame for any model output fits with huge margin;
// anything larger is a corrupt header, not a legitimate frame.
inline constexpr std::uint32_t kMaxPayload = 1u << 24;

// Request frame flag bits.
inline constexpr std::uint8_t kFlagStream = 1;

// Authn (ISSUE 10): a shared secret folded to the 16-bit request aux field.
// FNV-1a with xor-folding — not cryptography, a deployment tripwire: the
// token never crosses the wire in the clear and a stray client without the
// secret is rejected before admission. 0 is reserved for "no token".
inline std::uint16_t auth_token16(const std::string& token) {
  std::uint32_t h = 2166136261u;
  for (const char c : token) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  const std::uint16_t folded = static_cast<std::uint16_t>((h ^ (h >> 16)) & 0xffff);
  return folded == 0 ? 1 : folded;
}

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint8_t flags = 0;
  std::uint16_t aux = 0;
  std::vector<std::uint8_t> payload;
};

// ------------------------------------------------------------- encode side

namespace wire {

inline void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace wire

// Appends one complete frame (header + payload) to `out`.
inline void encode_frame(std::vector<std::uint8_t>& out, FrameType type,
                         const std::uint8_t* payload, std::size_t len,
                         std::uint8_t flags = 0, std::uint16_t aux = 0) {
  wire::put_u32(out, static_cast<std::uint32_t>(len));
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(flags);
  wire::put_u16(out, aux);
  out.insert(out.end(), payload, payload + len);
}

// Typed encoders: the whole protocol surface in one place, shared by the
// server, the client library, and the shard-worker loop.

inline void encode_request(std::vector<std::uint8_t>& out, std::uint32_t req_id,
                           std::uint32_t input_index, std::uint16_t model_id,
                           std::uint8_t latency_class, bool stream,
                           std::uint16_t auth = 0) {
  std::vector<std::uint8_t> p;
  p.reserve(12);
  wire::put_u32(p, req_id);
  wire::put_u32(p, input_index);
  wire::put_u16(p, model_id);
  p.push_back(latency_class);
  p.push_back(0);
  encode_frame(out, FrameType::kRequest, p.data(), p.size(),
               stream ? kFlagStream : 0, auth);
}

inline void encode_done(std::vector<std::uint8_t>& out, FrameType type,
                        std::uint32_t id, std::uint32_t tokens, bool cancelled,
                        const float* data, std::size_t n_floats) {
  std::vector<std::uint8_t> p;
  p.reserve(16 + n_floats * 4);
  wire::put_u32(p, id);
  wire::put_u32(p, tokens);
  p.push_back(cancelled ? 1 : 0);
  p.push_back(0);
  p.push_back(0);
  p.push_back(0);
  wire::put_u32(p, static_cast<std::uint32_t>(n_floats));
  const std::size_t off = p.size();
  p.resize(off + n_floats * 4);
  if (n_floats > 0) std::memcpy(p.data() + off, data, n_floats * 4);
  encode_frame(out, type, p.data(), p.size());
}

inline void encode_id_pair(std::vector<std::uint8_t>& out, FrameType type,
                           std::uint32_t id, std::uint32_t value) {
  std::vector<std::uint8_t> p;
  p.reserve(8);
  wire::put_u32(p, id);
  wire::put_u32(p, value);
  encode_frame(out, type, p.data(), p.size());
}

inline void encode_id_only(std::vector<std::uint8_t>& out, FrameType type,
                           std::uint32_t id) {
  std::vector<std::uint8_t> p;
  p.reserve(4);
  wire::put_u32(p, id);
  encode_frame(out, type, p.data(), p.size());
}

inline void encode_empty(std::vector<std::uint8_t>& out, FrameType type) {
  encode_frame(out, type, nullptr, 0);
}

// Decoded request/done payload views (parse helpers for both directions).
struct RequestFields {
  std::uint32_t id = 0;  // client req_id or router slot id
  std::uint32_t input_index = 0;
  std::uint16_t model_id = 0;
  std::uint8_t latency_class = 0;
  bool stream = false;
  std::uint16_t auth = 0;  // aux field: folded authn token (0 = none sent)
};

inline bool parse_request(const Frame& f, RequestFields& out) {
  if (f.payload.size() < 12) return false;
  out.id = wire::get_u32(f.payload.data());
  out.input_index = wire::get_u32(f.payload.data() + 4);
  out.model_id = wire::get_u16(f.payload.data() + 8);
  out.latency_class = f.payload[10];
  out.stream = (f.flags & kFlagStream) != 0;
  out.auth = f.aux;
  return true;
}

struct DoneFields {
  std::uint32_t id = 0;
  std::uint32_t tokens = 0;
  bool cancelled = false;
  const float* data = nullptr;  // points into the frame payload
  std::uint32_t n_floats = 0;
};

inline bool parse_done(const Frame& f, DoneFields& out) {
  if (f.payload.size() < 16) return false;
  out.id = wire::get_u32(f.payload.data());
  out.tokens = wire::get_u32(f.payload.data() + 4);
  out.cancelled = f.payload[8] != 0;
  out.n_floats = wire::get_u32(f.payload.data() + 12);
  if (f.payload.size() != 16 + static_cast<std::size_t>(out.n_floats) * 4) return false;
  out.data = reinterpret_cast<const float*>(f.payload.data() + 16);
  return true;
}

// ------------------------------------------------------------- decode side

// Incremental frame parser over a byte stream. feed() appends received
// bytes; next() extracts the oldest complete frame. Memory is bounded by
// one frame (kMaxPayload): a header announcing more is a protocol error
// (next() returns kError and the connection should be dropped), never an
// unbounded buffer.
class FrameReader {
 public:
  enum class Status { kFrame, kNeedMore, kError };

  void feed(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  Status next(Frame& out) {
    if (buf_.size() - off_ < kHeaderBytes) {
      compact();
      return Status::kNeedMore;
    }
    const std::uint8_t* h = buf_.data() + off_;
    const std::uint32_t len = wire::get_u32(h);
    if (len > kMaxPayload) return Status::kError;
    if (buf_.size() - off_ < kHeaderBytes + len) {
      compact();
      return Status::kNeedMore;
    }
    out.type = static_cast<FrameType>(h[4]);
    out.flags = h[5];
    out.aux = wire::get_u16(h + 6);
    out.payload.assign(h + kHeaderBytes, h + kHeaderBytes + len);
    off_ += kHeaderBytes + len;
    return Status::kFrame;
  }

  std::size_t buffered() const { return buf_.size() - off_; }

  // Discard all buffered bytes (reconnect / post-error resync): the next
  // feed() starts parsing at a frame boundary again.
  void reset() {
    buf_.clear();
    off_ = 0;
  }

 private:
  // Consumed prefix is dropped lazily (amortized O(1) per byte): only once
  // it dominates the buffer, so steady-state parsing never memmoves per
  // frame.
  void compact() {
    if (off_ > 4096 && off_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
      off_ = 0;
    }
  }

  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;
};

}  // namespace acrobat::net
