// acrobat/net: the socket ingress (DESIGN.md §10).
//
// NetServer is the front door that turns the in-process serving stack into a
// real server: a poll()-based event loop accepts TCP (loopback) and/or UDS
// connections, parses length-prefixed request frames, stamps arrivals, and
// feeds them through a *bounded* admission queue to a dispatcher thread that
// routes onto shard inboxes — the same SPSC + admission-hook machinery the
// in-proc `serve()` path uses. Completions (including per-token decode
// frames) stream back on the originating connection.
//
// Three invariants the design enforces:
//   * Overload sheds, never grows: the admission queue has fixed capacity
//     and the slot table has fixed size; when either is exhausted new
//     requests get an explicit kRetry (429) frame. No unbounded buffer
//     exists anywhere on the request path.
//   * Slow readers never block the hot path: only the event-loop thread
//     writes sockets; per-connection write buffers are bounded and a
//     connection that exceeds its bound is dropped, cancelling its live
//     sessions through the existing mid-stream-cancel path.
//   * Shards are shared-nothing: in-proc shards are threads that own their
//     engine exclusively; with `multiprocess = true` each shard is a forked
//     `--shard-worker` process speaking the worker frame protocol over a
//     UDS socketpair, with ping/pong liveness and drain-on-shutdown.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "acrobat/harness/harness.h"
#include "acrobat/models/models.h"
#include "acrobat/serve/policy.h"
#include "acrobat/serve/server.h"
#include "acrobat/trace/trace.h"

namespace acrobat::net {

struct NetOptions {
  // Listeners. port 0 = pick an ephemeral loopback port (read it back via
  // NetServer::port()); port < 0 = no TCP listener. Empty uds_path = no UDS
  // listener. At least one must be enabled.
  int port = 0;
  std::string uds_path;

  int shards = 1;
  serve::PolicyConfig policy;
  std::int64_t launch_overhead_ns = 0;
  bool recycle = true;
  bool sched_memo = true;

  // Bounded-ingress knobs. admission_capacity bounds the acceptor →
  // dispatcher queue (full → 429); max_sessions bounds the slot table, i.e.
  // requests admitted but not yet completed server-wide (exhausted → the
  // dispatcher stops popping admission, which backs up into 429s).
  std::size_t admission_capacity = 64;
  std::size_t max_sessions = 128;
  std::size_t write_buffer_limit = 1 << 20;  // bytes buffered per conn before drop
  int max_connections = 256;
  int sndbuf_bytes = 0;  // >0: shrink SO_SNDBUF (test knob for slow-reader paths)

  // Per-connection fairness (first slice of the per-client fairness item):
  // > 0 caps how many admitted-but-unfinished requests one connection may
  // hold; beyond the cap a request is answered kRetry and counted in
  // fairness_rejects, so a single client cannot monopolize the admission
  // queue. 0 = uncapped.
  int max_inflight_per_conn = 0;

  // Optional authn: when non-empty, every kRequest must carry
  // auth_token16(auth_token) in its aux field; a mismatch is answered
  // kError(kUnauthorized) before admission (counted auth_rejects).
  std::string auth_token;

  // Worker liveness (multiprocess): the router pings each worker every
  // ping_interval_ns; a worker with work in flight that has been silent for
  // liveness_timeout_ns is SIGKILLed and declared dead. Validated in
  // start() config_die-style: both must be > 0 and the timeout must exceed
  // the interval (otherwise a healthy-but-idle gap reads as death).
  std::int64_t ping_interval_ns = 200'000'000;
  std::int64_t liveness_timeout_ns = 5'000'000'000;

  // Supervision (multiprocess): re-fork and re-register a dead worker under
  // the same recipe. respawn_budget bounds total respawns per shard (a
  // crash-looping recipe must not fork forever); the delay before attempt k
  // without an intervening completed request is
  // min(respawn_backoff_ns << k, respawn_backoff_cap_ns) — one completed
  // request resets the exponent. The shard is routed around while a respawn
  // is pending, exactly like an unsupervised death.
  bool supervise = true;
  int respawn_budget = 8;
  std::int64_t respawn_backoff_ns = 50'000'000;
  std::int64_t respawn_backoff_cap_ns = 2'000'000'000;

  // Graceful degradation: when admission occupancy reaches the high
  // watermark the server enters degraded mode — best-effort-class requests
  // (LatencyClass::kBestEffort) are answered kRetry on arrival and shards
  // halve their per-window decode step budget (decode_admit) to favor
  // finishing admitted work — and exits when occupancy falls back to the
  // low watermark (hysteresis, so occupancy noise at the boundary does not
  // flap the mode). 0 = derive from admission_capacity (7/8 and 1/4).
  std::size_t degrade_high_watermark = 0;
  std::size_t degrade_low_watermark = 0;

  // Fault-injection plan (DESIGN.md §11). Empty = read ACROBAT_FAULT_SPEC;
  // both empty = inert. A malformed spec fails start(). Ignored entirely
  // when built with -DACROBAT_FAULT=OFF.
  std::string fault_spec;

  // Multi-process fleet: each shard is a forked worker process. worker_cmd
  // empty = re-exec this binary (/proc/self/exe), which must route
  // `--shard-worker` argv to shard_worker_main() before anything else.
  bool multiprocess = false;
  std::string worker_cmd;

  // Model + dataset recipe. In multiprocess mode workers rebuild both from
  // this recipe (materialize_weights and build_dataset are deterministic),
  // which is what makes wire parity hold across process boundaries.
  std::string model = "Decoder";
  bool large = false;
  int ds_batch = 24;
  std::uint64_t ds_seed = 0;

  trace::TraceOptions trace;
};

struct NetStats {
  // Event-loop counters.
  std::uint64_t connections = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t requests = 0;       // well-formed request frames seen
  std::uint64_t completed = 0;      // kDone frames written
  std::uint64_t rejected_429 = 0;   // kRetry frames written (admission full)
  std::uint64_t errors = 0;         // kError frames written
  std::uint64_t cancelled = 0;      // sessions cancelled mid-stream
  std::uint64_t conn_drops = 0;     // connections dropped with work pending
  std::uint64_t slow_reader_drops = 0;  // subset: write buffer bound exceeded
  std::uint64_t tokens_streamed = 0;    // kToken frames written
  std::uint64_t worker_deaths = 0;
  // Fault tolerance (ISSUE 10).
  std::uint64_t worker_respawns = 0;     // supervisor re-forks that succeeded
  std::uint64_t respawns_exhausted = 0;  // shards left dead: budget burned
  std::uint64_t fairness_rejects = 0;    // kRetry: per-conn in-flight cap hit
  std::uint64_t auth_rejects = 0;        // kError(kUnauthorized) sent
  std::uint64_t degraded_entries = 0;    // overload mode transitions
  std::uint64_t degraded_exits = 0;
  std::uint64_t degraded_sheds = 0;      // kRetry: best-effort shed while degraded
  std::uint64_t fault_kills = 0;         // injected router-side worker kills
  std::uint64_t fault_short_writes = 0;  // injected router-side send clamps
  // High-water marks: all bounded by their configured caps.
  std::size_t admission_peak = 0;
  std::size_t slots_peak = 0;
  std::size_t write_buf_peak = 0;

  // Per-shard reports. In-proc shards fill the full serve::ShardReport;
  // worker processes report the subset carried home by the kWorkerBye frame
  // (requests, tokens).
  std::vector<serve::ShardReport> shards;

  trace::TraceDump trace;
};

class NetServer {
 public:
  // `p` and `ds` may be null when multiprocess (workers rebuild from the
  // recipe in opts); in-proc shards require both.
  NetServer(const harness::Prepared* p, const models::Dataset* ds, NetOptions opts);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds listeners, spawns workers (multiproc) and threads. Returns false
  // with error() set if no listener could be created (e.g. sockets are
  // unavailable in the sandbox) — callers fall back to in-proc serve().
  bool start();
  const std::string& error() const;

  int port() const;                         // bound TCP port (after start)
  const std::string& uds_path() const;
  std::vector<pid_t> worker_pids() const;   // multiproc only

  // Drain: stop accepting, 429 new requests, finish in-flight sessions,
  // flush completions, stop workers (kWorkerDrain/kWorkerBye), join.
  // Idempotent; also run by the destructor.
  void shutdown();

  // Valid after shutdown().
  const NetStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Supervisor backoff schedule (pure, unit-tested): delay before respawn
// attempt `consecutive_failures - 1`, i.e. the first death after a served
// request waits `base`, each further death without an intervening
// completion doubles it, capped. Deterministic by construction — no jitter:
// one supervisor per shard means there is no thundering herd to break up,
// and a reproducible schedule is worth more in tests.
inline std::int64_t respawn_delay_ns(int attempt, std::int64_t base,
                                     std::int64_t cap) {
  if (attempt < 0) attempt = 0;
  std::int64_t d = attempt >= 62 ? cap : base << attempt;
  if (d > cap || d <= 0) d = cap;
  return d;
}

// Entry point for `--shard-worker` child processes (multi-process fleet).
// Any binary that may host workers (netd, net_client, test_net) must call
// this from main() when argv[1] == "--shard-worker" and exit with its
// return value. argv is the full command line.
int shard_worker_main(int argc, char** argv);

}  // namespace acrobat::net
