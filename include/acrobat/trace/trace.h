// acrobat/trace: always-on low-overhead event tracing (DESIGN.md §9).
//
// Each shard owns one Tracer — a fixed-capacity power-of-two ring of small
// POD events written by exactly one thread (the shard's worker), so the hot
// path takes no locks and performs no steady-state allocation: the same
// discipline as the engine's scheduler scratch. When the ring wraps, the
// oldest events are overwritten and a drop counter keeps the books honest.
//
// A disabled site costs one predicted branch: every instrumentation point
// goes through ACROBAT_TRACE(tracer, stmt), which expands to an
// __builtin_expect(ptr != nullptr, 0) test (and to nothing at all when the
// build defines ACROBAT_TRACE_COMPILED_OUT). Bitwise on/off parity is
// enforced by tests/test_trace.cpp.
//
// Export paths:
//   * TraceDump::write_chrome_json — Chrome trace-event JSON, loadable in
//     Perfetto / chrome://tracing: one track per shard plus one for the
//     dispatcher, "X" complete events for spans (trigger ⊃ schedule ⊃ …,
//     batch), "i" instants for point events, and "C" counter tracks fed by
//     the per-shard MetricsTick stream (live_nodes, arena bytes, memo hit
//     rate, …).
//   * MetricsRegistry — named gauges snapshotted into fixed-size
//     MetricsTick PODs every few triggers and shipped over the existing
//     SPSC machinery to the dispatcher thread; memory is bounded at any
//     request count.
//
// Slow-request exemplars: when a request's latency crosses a threshold
// (default: its SLO deadline), the events overlapping its [admit,
// completion] window are frozen out of the ring into one of a fixed set of
// keep-N-worst slots, so a soak can answer "what did the worst request
// actually do".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/timer.h"

namespace acrobat::trace {

enum class EventKind : std::uint8_t {
  kTrigger = 0,  // span: one trigger_execution (a = ops in the trigger)
  kSchedule,     // span: memo probe + scheduling (a = ops, flags bit0 = replayed)
  kBatch,        // span: one fused batch (a = kernel id, b = width, c = variant,
                 //       flags: path 0 per-op / 1 flat / 2 stacked, bit2 = merged launch)
  kGather,       // instant: staged gather (a = width, b = operand, c = bytes)
  kMemoHit,      // instant: schedule-cache replay (a = ops)
  kMemoMiss,     // instant: schedule-cache miss (a = ops)
  kFiberSpawn,   // instant: a = request tag
  kFiberBlock,   // instant: a = request tag
  kFiberWake,    // instant: a = fibers woken this trigger
  kFiberReap,    // instant: a = request tag
  kAdmit,        // instant: request admitted (a = request id, b = model id,
                 //          c = queue delay ns)
  kDispatch,     // instant: dispatcher routed a request (a = id, b = shard)
  kTriage,       // instant: blown request deferred (a = id, b = class)
  kShed,         // instant: request shed (a = id, b = class, c = lateness ns)
  kCounter,      // gauges (a = live nodes, b = memo hit rate per-mille,
                 //         c = arena bytes)
  // Net ingress (acrobat/net, DESIGN.md §10); emitted by the event-loop
  // thread into its own track (tid 0, "net").
  kNetAccept,    // instant: connection accepted (a = conn index, b = open conns)
  kNetReject,    // instant: request 429'd, admission full (a = conn, b = req id)
  kNetConnDrop,  // instant: conn dropped with work pending (a = conn,
                 //          b = 1 if a slow reader exceeded its write bound)
  kNetDegrade,   // instant: degraded-mode transition (a = 1 enter / 0 exit,
                 //          b = admission occupancy at the transition)
};
inline constexpr int kNumEventKinds = 19;
const char* event_name(EventKind k);

// 40 bytes; written into the ring by value — no pointers, trivially
// copyable, so snapshot/exemplar capture is a memcpy-shaped loop.
struct Event {
  std::int64_t t_ns = 0;    // relative to the tracer epoch
  std::int64_t dur_ns = 0;  // 0 = instant event
  std::int64_t c = 0;
  std::int32_t a = -1;
  std::int32_t b = -1;
  EventKind kind = EventKind::kTrigger;
  std::uint8_t flags = 0;
  std::uint16_t shard = 0;
};
static_assert(sizeof(Event) == 40, "Event is a small POD by contract");

// Everything here is preallocated at construction; steady-state tracing
// never allocates (tests/test_trace.cpp soaks this under the same plateau
// assertions as the recycling engine).
struct TraceConfig {
  std::size_t ring_capacity = 1u << 14;  // events; rounded up to a power of 2
  int max_exemplars = 4;                 // keep-N-worst slow-request slots
  std::size_t exemplar_events = 64;      // ring slice retained per exemplar
};

// How a serving layer (serve/fleet) runs its tracers; `enabled` is the
// runtime half of the gate (the compile-time half is
// ACROBAT_TRACE_COMPILED_OUT).
struct TraceOptions {
  bool enabled = false;
  TraceConfig config;
  // A completed request slower than this freezes a ring slice as an
  // exemplar; 0 derives the threshold from the policy's SLO deadline (the
  // per-class deadline in the fleet), and stays off when there is none.
  std::int64_t slow_threshold_ns = 0;
  // Shard gauges are snapshotted into a MetricsTick every this many
  // triggers and streamed to the dispatcher over an SPSC ring.
  int tick_every_triggers = 16;
};

struct Exemplar {
  std::int32_t request_id = -1;
  std::int64_t t0_ns = 0;       // admit time (tracer epoch-relative)
  std::int64_t t1_ns = 0;       // completion time
  std::int64_t latency_ns = 0;  // full arrival→completion latency
  std::uint64_t truncated = 0;  // window events beyond the slot capacity
  std::vector<Event> events;    // oldest→newest slice of the ring
};

class Tracer {
 public:
  explicit Tracer(int shard, const TraceConfig& cfg = TraceConfig{});

  // Timestamps are recorded relative to this epoch so serve/fleet tracks
  // share one time axis (serve() stamps its start-of-run epoch into every
  // shard's tracer before dispatch begins).
  void set_epoch(std::int64_t epoch_ns) { epoch_ns_ = epoch_ns; }
  std::int64_t now() const { return now_ns() - epoch_ns_; }

  // Single-writer by contract: only the owning shard's thread calls these.
  void instant(EventKind k, std::int32_t a = -1, std::int32_t b = -1,
               std::int64_t c = 0, std::uint8_t flags = 0) {
    push(Event{now(), 0, c, a, b, k, flags, shard_});
  }
  // dur = now() - t0 where t0 came from an earlier now() call at span entry.
  void span(EventKind k, std::int64_t t0, std::int32_t a = -1,
            std::int32_t b = -1, std::int64_t c = 0, std::uint8_t flags = 0) {
    push(Event{t0, now() - t0, c, a, b, k, flags, shard_});
  }
  void counter(std::int32_t live_nodes, std::int32_t hit_permille,
               std::int64_t arena_bytes) {
    push(Event{now(), 0, arena_bytes, live_nodes, hit_permille,
               EventKind::kCounter, 0, shard_});
  }

  std::uint64_t emitted() const { return n_; }
  std::uint64_t dropped() const {
    return n_ > ring_.size() ? n_ - ring_.size() : 0;
  }
  std::size_t capacity() const { return ring_.size(); }
  int shard() const { return shard_; }

  // Oldest→newest copy of the retained window (allocates; not hot path).
  void snapshot(std::vector<Event>& out) const;

  // Freeze the events overlapping [t0, t1] into a keep-worst exemplar slot.
  // Bounded work (scans at most the ring) and no allocation: the slot's
  // event storage was reserved at construction.
  void capture_exemplar(std::int32_t request_id, std::int64_t t0,
                        std::int64_t t1, std::int64_t latency_ns);
  const std::vector<Exemplar>& exemplars() const { return exemplars_; }

 private:
  void push(const Event& e) {
    ring_[static_cast<std::size_t>(n_) & mask_] = e;
    ++n_;
  }

  std::vector<Event> ring_;
  std::size_t mask_ = 0;
  std::uint64_t n_ = 0;  // total emitted; n_ - capacity = dropped
  std::int64_t epoch_ns_ = 0;
  std::uint16_t shard_ = 0;
  std::size_t exemplar_events_ = 0;
  std::vector<Exemplar> exemplars_;
};

// Every instrumentation site in engine/fiber/serve/fleet goes through this
// macro: tracer off (null pointer) costs one predicted-not-taken branch,
// and ACROBAT_TRACE_COMPILED_OUT removes the sites entirely.
#ifdef ACROBAT_TRACE_COMPILED_OUT
#define ACROBAT_TRACE(tracer, stmt) \
  do {                              \
  } while (0)
#else
#define ACROBAT_TRACE(tracer, stmt)              \
  do {                                           \
    if (__builtin_expect((tracer) != nullptr, 0)) { \
      stmt;                                      \
    }                                            \
  } while (0)
#endif

// ---------------------------------------------------------------------------
// Streaming metrics: a registry of named gauges per shard, snapshotted into
// fixed-size PODs and shipped to the dispatcher over an SpscQueue. Names are
// registration-time only; the per-tick payload is a flat double array.

inline constexpr int kMaxMetrics = 16;

struct MetricsTick {
  std::int64_t t_ns = 0;
  std::uint16_t shard = 0;
  std::uint16_t n = 0;
  double v[kMaxMetrics] = {};
};

class MetricsRegistry {
 public:
  // Returns the gauge id; at most kMaxMetrics gauges per registry.
  int add(const char* name);
  // Ids are small and registration-time; a -1 (registry full / tracing off)
  // is silently ignored so call sites need no guard.
  void set(int id, double v) {
    if (id >= 0) vals_[static_cast<std::size_t>(id)] = v;
  }
  void inc(int id, double d = 1.0) {
    if (id >= 0) vals_[static_cast<std::size_t>(id)] += d;
  }
  double get(int id) const {
    return id >= 0 ? vals_[static_cast<std::size_t>(id)] : 0.0;
  }

  MetricsTick tick(std::int64_t t_ns, int shard) const;
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::vector<double> vals_;
};

// ---------------------------------------------------------------------------
// Run-end assembly + Chrome trace-event export.

struct TrackDump {
  int tid = 0;  // 0 = dispatcher, shard s = s + 1
  std::string name;
  std::vector<Event> events;  // oldest→newest
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
  std::vector<Exemplar> exemplars;
};

struct TraceDump {
  std::vector<TrackDump> tracks;
  std::vector<MetricsTick> ticks;
  std::vector<std::string> metric_names;
  std::uint64_t dropped_ticks = 0;

  // Nothing recorded: no events, ticks, or exemplars. Track skeletons may
  // exist — with ACROBAT_TRACE_COMPILED_OUT the serve layers still dump
  // their (event-less) per-shard tracks when tracing is requested.
  bool empty() const {
    if (!ticks.empty()) return false;
    for (const TrackDump& t : tracks)
      if (!t.events.empty() || !t.exemplars.empty()) return false;
    return true;
  }
  std::uint64_t total_events() const;
  std::uint64_t count(EventKind k) const;
  // Chrome trace-event JSON (Perfetto-compatible). Returns false on I/O
  // error. ts/dur are microseconds with ns precision (%.3f).
  bool write_chrome_json(const std::string& path) const;
};

// Unrolls the tracer's ring (plus drop counters and exemplars) into a track.
TrackDump dump_track(const Tracer& t, int tid, std::string name);

}  // namespace acrobat::trace
