// acrobat/fault: deterministic fault injection (DESIGN.md §11).
//
// A FaultPlan is parsed from a compact spec string (the ACROBAT_FAULT_SPEC
// environment variable, or NetOptions::fault_spec):
//
//   action@key=val[,key=val...][;action@...]
//
//   kill_worker@req=N[,shard=S]  router side: SIGKILL the worker that every
//                                Nth forwarded request routes to (S >= 0
//                                restricts the kill to one shard index)
//   crash_worker@req=N           worker side: the worker kills itself upon
//                                receiving its Nth request, before replying
//                                (per process life: a respawned worker
//                                crash-loops until the restart budget ends)
//   wedge_shard@req=N,dur_ms=D   worker side: stall D ms before handling
//                                every Nth request — the worker stops
//                                reading its socket, so pings go
//                                unanswered and the liveness timeout fires
//   short_write@p=P[,seed=S]     frame writer (router<->worker channel,
//                                both directions): with probability P clamp
//                                a send to a few bytes. Pure fragmentation,
//                                never data loss: exercises FrameReader
//                                reassembly, and must not change any output
//                                bit.
//
// Every decision is a pure function of the plan and a per-injector event
// sequence number (Bernoulli draws hash the seed with the sequence number;
// there is no shared mutable RNG), so a failing faulted run replays with
// the same fault schedule. Counting is atomic: the router-side hooks are
// called from several proxy threads.
//
// Compile-out: -DACROBAT_FAULT=OFF defines ACROBAT_FAULT_COMPILED_OUT and
// the ACROBAT_FAULT(stmt) hook macro expands to nothing — zero cost at
// every hook site. The parser and Injector stay compiled (they are inert
// without hooks), so spec-handling tests run in every build flavor.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace acrobat::fault {

#if defined(ACROBAT_FAULT_COMPILED_OUT)
inline constexpr bool kCompiledOut = true;
#define ACROBAT_FAULT(stmt) \
  do {                      \
  } while (0)
#else
inline constexpr bool kCompiledOut = false;
#define ACROBAT_FAULT(stmt) \
  do {                      \
    stmt;                   \
  } while (0)
#endif

struct FaultPlan {
  std::uint64_t kill_every_req = 0;   // kill_worker: 0 = off
  int kill_shard = -1;                // kill_worker: -1 = any shard
  std::uint64_t crash_at_req = 0;     // crash_worker: 0 = off
  std::uint64_t wedge_every_req = 0;  // wedge_shard: 0 = off
  std::int64_t wedge_dur_ms = 0;
  double short_write_p = 0.0;  // short_write: 0 = off
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  bool any() const {
    return kill_every_req != 0 || crash_at_req != 0 || wedge_every_req != 0 ||
           short_write_p > 0.0;
  }
};

// Parses `spec` into `plan`. Empty spec = valid empty plan. Returns false
// on malformed input (unknown action/key, missing required key, bad
// number) with a human-readable reason in *err when provided.
bool parse_fault_spec(const std::string& spec, FaultPlan& plan,
                      std::string* err = nullptr);

class Injector {
 public:
  Injector() = default;
  explicit Injector(const FaultPlan& plan) : plan_(plan) {}

  // Plan resolution used by NetServer and the shard worker: an explicit
  // spec wins; otherwise ACROBAT_FAULT_SPEC; otherwise inert.
  static std::string spec_from_env();

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.any(); }

  // Install a plan on a default-constructed injector (atomics make the
  // class non-assignable). Counters and sequences restart from zero.
  void reset(const FaultPlan& plan) {
    plan_ = plan;
    req_seq_.store(0, std::memory_order_relaxed);
    crash_seq_ = wedge_seq_ = 0;
    sw_seq_.store(0, std::memory_order_relaxed);
    kills_.store(0, std::memory_order_relaxed);
    crashes_.store(0, std::memory_order_relaxed);
    wedges_.store(0, std::memory_order_relaxed);
    short_writes_.store(0, std::memory_order_relaxed);
  }

  // Router: called once per request forwarded to a worker; true when the
  // plan says this request's worker should be SIGKILLed.
  bool fire_kill(int shard) {
    if (plan_.kill_every_req == 0) return false;
    const std::uint64_t seq = req_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (seq % plan_.kill_every_req != 0) return false;
    if (plan_.kill_shard >= 0 && shard != plan_.kill_shard) return false;
    kills_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Worker: called once per received request; true when this process
  // should die right now (single-threaded: the worker loop).
  bool fire_crash() {
    if (plan_.crash_at_req == 0) return false;
    if (++crash_seq_ != plan_.crash_at_req) return false;
    crashes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Worker: called once per received request; > 0 = stall this many ns
  // before handling it (single-threaded: the worker loop).
  std::int64_t fire_wedge_ns() {
    if (plan_.wedge_every_req == 0) return 0;
    if (++wedge_seq_ % plan_.wedge_every_req != 0) return 0;
    wedges_.fetch_add(1, std::memory_order_relaxed);
    return plan_.wedge_dur_ms * 1'000'000;
  }

  // Frame writer: clamp a pending send of `want` bytes. Seeded Bernoulli
  // per call; thread-safe (the draw hashes seed ^ sequence, no shared RNG
  // state beyond the atomic counter).
  std::size_t clamp_write(std::size_t want) {
    if (plan_.short_write_p <= 0.0 || want <= 1) return want;
    const std::uint64_t seq = sw_seq_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h = mix(plan_.seed ^ (seq * 0x9e3779b97f4a7c15ull));
    const double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u >= plan_.short_write_p) return want;
    short_writes_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t cap = want < 16 ? want - 1 : 15;
    return 1 + static_cast<std::size_t>(mix(h) % cap);
  }

  std::uint64_t kills() const { return kills_.load(std::memory_order_relaxed); }
  std::uint64_t crashes() const { return crashes_.load(std::memory_order_relaxed); }
  std::uint64_t wedges() const { return wedges_.load(std::memory_order_relaxed); }
  std::uint64_t short_writes() const {
    return short_writes_.load(std::memory_order_relaxed);
  }

 private:
  // splitmix64 finalizer: the stateless per-sequence hash behind every
  // probabilistic draw.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  FaultPlan plan_;
  std::atomic<std::uint64_t> req_seq_{0};
  std::uint64_t crash_seq_ = 0;
  std::uint64_t wedge_seq_ = 0;
  std::atomic<std::uint64_t> sw_seq_{0};
  std::atomic<std::uint64_t> kills_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> wedges_{0};
  std::atomic<std::uint64_t> short_writes_{0};
};

}  // namespace acrobat::fault
