// Iteration-level scheduling acceptance (ISSUE 8 / DESIGN.md §7): the
// autoregressive Decoder's fiber parks at every kStepKeep token boundary
// and rejoins admission, so each trigger batches decode steps across
// sessions old and new.
//  (a) a single served session is bitwise-identical to a solo engine run —
//      the batching-never-changes-results invariant extends per token;
//  (b) the deterministic cohort recipe (all arrivals at t0, deadline policy
//      with min_batch == max_admit == cohort) makes batch composition a
//      pure function of arrival order: two runs agree exactly, and every
//      session still matches its solo outputs bitwise;
//  (c) steady-state decode-step triggers hit the schedule cache — the
//      depth-0 checkpointed state keys like any materialized input;
//  (d) soak: session-state, node-table, and arena watermarks plateau at
//      peak concurrent sessions while tokens scale with the trace;
//  (e) fleet: per-token deadlines cancel stalled sessions mid-stream (they
//      exit through the model's tail with valid prefix output), and the
//      fleet trace contract is validated loudly.
//
// ACROBAT_SERVE_REQUESTS bounds the soak (default 400 ≈ 6k+ tokens; the
// ctest entry registers a 64-request smoke).
#include "fleet/fleet.h"
#include "models/specs.h"
#include "serve/server.h"
#include "test_util.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace acrobat;
using acrobat::test::dies;
using acrobat::test::env_requests;

namespace {

models::Dataset solo_dataset(const models::Dataset& ds, std::size_t idx) {
  models::Dataset one;
  one.pool = ds.pool;
  one.tensors = ds.tensors;
  one.inputs.push_back(ds.inputs[idx]);
  return one;
}

std::vector<float> solo_outputs(const harness::Prepared& p, const models::Dataset& ds,
                                std::size_t idx) {
  harness::RunOptions o;
  o.collect_outputs = true;
  return harness::run_acrobat(p, solo_dataset(ds, idx), o).outputs.at(0);
}

std::vector<serve::Request> t0_trace(int n, std::size_t n_inputs) {
  std::vector<serve::Request> trace;
  for (int i = 0; i < n; ++i)
    trace.push_back(serve::Request{i, static_cast<std::size_t>(i) % n_inputs, 0});
  return trace;
}

// The deterministic cohort recipe (as in test_serve's recycling parity):
// everything arrives at t0 and the deadline policy holds the first trigger
// until the whole cohort is admitted (min_batch == max_admit == n, SLO and
// hold far beyond the run), so batch composition — including every decode
// step's width — is a pure function of arrival order, not of timing.
serve::ServeOptions cohort_opts(int n) {
  serve::ServeOptions so;
  so.collect_outputs = true;
  so.policy.kind = serve::PolicyKind::kDeadline;
  so.policy.min_batch = static_cast<std::size_t>(n);
  so.policy.max_admit = static_cast<std::size_t>(n);
  so.policy.slo_ns = 10'000'000'000;
  so.policy.max_hold_ns = 10'000'000'000;
  return so;
}

// (a) One served session == one solo run, bitwise. The serve path runs
// with recycling on (per-step span retirement + session checkpointing);
// the solo run is a plain closed-batch execution — agreement proves the
// checkpoint protocol is observation-free.
void test_single_session_matches_solo() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 4, 11);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  for (std::size_t idx = 0; idx < ds.inputs.size(); ++idx) {
    std::vector<serve::Request> trace{serve::Request{0, idx, 0}};
    serve::ServeOptions so;
    so.collect_outputs = true;
    const serve::ServeResult res = serve::serve(p, ds, trace, so);

    const serve::RequestRecord& rec = res.records.at(0);
    CHECK(rec.completion_ns >= 0);
    CHECK(rec.tokens >= 1);
    CHECK(rec.tokens <= models::decoder_max_tokens(false));
    CHECK(rec.first_token_ns >= rec.arrival_ns);
    CHECK(rec.last_token_ns >= rec.first_token_ns);
    CHECK(!rec.cancelled);
    CHECK_EQ(res.tokens, rec.tokens);
    CHECK_EQ(res.ttft_ms.count, 1);
    CHECK_EQ(res.inter_token_ms.count, static_cast<std::size_t>(rec.tokens - 1));

    const std::vector<float> solo = solo_outputs(p, ds, idx);
    CHECK_EQ(rec.output.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i)
      CHECK(rec.output[i] == solo[i]);  // bitwise, not approximate
  }
}

// (b) Deterministic cohort: two identical runs agree on every counter and
// every output bit; co-batched sessions still match their solo outputs.
void test_cohort_deterministic_and_matches_solo() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 6, 23);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const int n = 6;
  const auto trace = t0_trace(n, ds.inputs.size());
  const serve::ServeResult a = serve::serve(p, ds, trace, cohort_opts(n));
  const serve::ServeResult b = serve::serve(p, ds, trace, cohort_opts(n));

  CHECK_EQ(a.shards.at(0).stats.kernel_launches, b.shards.at(0).stats.kernel_launches);
  CHECK_EQ(a.shards.at(0).stats.flat_batches, b.shards.at(0).stats.flat_batches);
  CHECK_EQ(a.shards.at(0).stats.stacked_batches, b.shards.at(0).stats.stacked_batches);
  CHECK_EQ(a.tokens, b.tokens);
  CHECK(a.tokens >= n);  // every session emitted at least one token
  CHECK_EQ(a.cancelled, 0);
  CHECK_EQ(a.ttft_ms.count, static_cast<std::size_t>(n));
  CHECK_EQ(a.inter_token_ms.count, static_cast<std::size_t>(a.tokens - n));

  // Sessions must have genuinely varied, input-dependent lengths — a
  // degenerate all-stop-immediately or all-ride-to-cap decoder would make
  // the iteration-level scheduler untestable.
  int min_tok = models::decoder_max_tokens(false) + 1, max_tok = 0;
  for (const serve::RequestRecord& rec : a.records) {
    min_tok = std::min(min_tok, rec.tokens);
    max_tok = std::max(max_tok, rec.tokens);
    CHECK_EQ(rec.tokens, b.records.at(static_cast<std::size_t>(rec.id)).tokens);
  }
  CHECK(min_tok < max_tok);

  for (const serve::RequestRecord& rec : a.records) {
    const auto& other = b.records.at(static_cast<std::size_t>(rec.id)).output;
    CHECK_EQ(rec.output.size(), other.size());
    for (std::size_t i = 0; i < rec.output.size(); ++i)
      CHECK(rec.output[i] == other[i]);
    const std::vector<float> solo =
        solo_outputs(p, ds, trace[static_cast<std::size_t>(rec.id)].input_index);
    CHECK_EQ(rec.output.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i)
      CHECK(rec.output[i] == solo[i]);  // co-batching never changes results
  }
}

// (c) Steady-state decode-step triggers replay cached schedules: the
// checkpointed state is a depth-0 materialized node, so a decode step's
// trigger signature recurs from one token to the next at fixed cohort
// width. The cache must also stay observation-free for decode (memo on vs
// off: identical launches and outputs).
void test_decode_memo_steady_state() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 6, 31);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const int n = 6;
  const auto trace = t0_trace(n, ds.inputs.size());
  serve::ServeOptions on = cohort_opts(n);
  serve::ServeOptions off = cohort_opts(n);
  off.sched_memo = false;

  const serve::ServeResult with = serve::serve(p, ds, trace, on);
  const serve::ServeResult without = serve::serve(p, ds, trace, off);

  const ActivityStats& st = with.shards.at(0).stats;
  std::printf("decode memo: triggers=%lld hits=%lld misses=%lld tokens=%lld\n",
              with.shards.at(0).triggers, st.sched_cache_hits, st.sched_cache_misses,
              with.tokens);
  CHECK(st.sched_cache_hits > 0);
  // Steady state dominates: width only changes when a session stops, so
  // recurring-signature triggers (hits) outnumber the distinct shapes.
  CHECK(st.sched_cache_hits > st.sched_cache_misses);
  CHECK_EQ(without.shards.at(0).stats.sched_cache_hits, 0);

  CHECK_EQ(st.kernel_launches, without.shards.at(0).stats.kernel_launches);
  for (const serve::RequestRecord& rec : with.records) {
    const auto& other = without.records.at(static_cast<std::size_t>(rec.id)).output;
    CHECK_EQ(rec.output.size(), other.size());
    for (std::size_t i = 0; i < rec.output.size(); ++i)
      CHECK(rec.output[i] == other[i]);
  }
}

// (d) Soak: with recycling on, session buffers / node table / arena all
// plateau at peak concurrent sessions (the max-batch cap) — 4x the
// requests means ~4x the tokens but the same memory watermarks.
void test_session_memory_plateau() {
  const int n = env_requests(400);
  const int n_short = n >= 16 ? n / 4 : n;

  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 29);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const auto run = [&](int count) {
    serve::ServeOptions so;
    so.policy.kind = serve::PolicyKind::kMaxBatch;
    so.policy.max_batch = 8;  // caps concurrent sessions, parked included
    so.recycle = true;
    return serve::serve(p, ds, t0_trace(count, ds.inputs.size()), so);
  };

  const serve::ServeResult short_res = run(n_short);
  const serve::ServeResult long_res = run(n);
  const Engine::MemoryStats& sm = short_res.shards.at(0).mem;
  const Engine::MemoryStats& lm = long_res.shards.at(0).mem;

  std::printf("decode soak: %d vs %d requests | tokens %lld vs %lld | sessions peak "
              "%zu vs %zu | session KB %.0f vs %.0f | nodes %zu vs %zu | arenaKB %.0f "
              "vs %.0f\n",
              n_short, n, short_res.tokens, long_res.tokens, sm.session_buffers_peak,
              lm.session_buffers_peak,
              static_cast<double>(sm.session_bytes_allocated) / 1024.0,
              static_cast<double>(lm.session_bytes_allocated) / 1024.0,
              sm.node_table_size, lm.node_table_size,
              static_cast<double>(sm.arena_high_water_bytes) / 1024.0,
              static_cast<double>(lm.arena_high_water_bytes) / 1024.0);

  for (const serve::RequestRecord& r : long_res.records) CHECK(r.completion_ns >= 0);
  // Tokens scale with the trace...
  CHECK(long_res.tokens > 2 * short_res.tokens);
  // ...but session state plateaus at peak concurrency, not token count:
  CHECK(lm.session_buffers_peak <= 8);
  CHECK_EQ(lm.session_buffers_peak, sm.session_buffers_peak);
  CHECK(lm.session_bytes_allocated <= 2 * sm.session_bytes_allocated);
  CHECK_EQ(lm.session_buffers_live, 0);  // all returned to the pool at the end
  // Node table and arena plateau exactly as in the one-shot soak.
  CHECK(lm.node_table_size <= 2 * sm.node_table_size);
  CHECK(lm.arena_high_water_bytes <= 2 * sm.arena_high_water_bytes);
  CHECK_EQ(lm.leaked_slots, 0);
  CHECK(lm.nodes_recycled > 0);
}

// (e) Fleet: a tiny per-token deadline with shedding on cancels sessions
// mid-stream. Cancelled sessions still complete through the model's tail
// (valid output for the emitted prefix) and are counted as cancelled, not
// shed; a no-token-deadline contrast run cancels nothing.
void test_fleet_token_deadline_cancels() {
  fleet::ModelRegistry reg;
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  reg.add(spec, false, spec.build_dataset(false, 6, 37));
  reg.prepare();

  const int n = 6;
  const auto run = [&](std::int64_t token_deadline_ns) {
    std::vector<serve::Request> trace = t0_trace(n, 6);
    fleet::FleetOptions fo;
    fo.collect_outputs = true;
    fo.policy.token_deadline_ns = token_deadline_ns;
    return fleet::serve_fleet(reg, trace, fo);
  };

  // 1ns per token: every parked step is blown at triage time → cancel.
  const fleet::FleetResult cut = run(1);
  CHECK(cut.cancelled > 0);
  CHECK_EQ(cut.shed, 0);  // mid-stream cancel is not arrival-shedding
  for (const serve::RequestRecord& r : cut.records) {
    CHECK(r.completion_ns >= 0);  // tail still ran
    CHECK(!r.shed);
    CHECK(r.tokens >= 1);
    CHECK(!r.output.empty());  // prefix output stays valid
    if (r.cancelled) CHECK(r.tokens < models::decoder_max_tokens(false));
  }
  CHECK_EQ(cut.cancelled, cut.shards.at(0).cancelled);

  // No token deadline: nothing is cancelled, sessions run to their natural
  // stop, and the fleet worker reports the same token accounting serve does.
  const fleet::FleetResult free_run = run(0);
  CHECK_EQ(free_run.cancelled, 0);
  CHECK(free_run.tokens >= cut.tokens);  // uncut sessions emit at least as much
  CHECK_EQ(free_run.ttft_ms.count, static_cast<std::size_t>(n));
  CHECK(free_run.tokens_per_sec > 0);

  // The fleet trace contract is validated loudly at entry, like serve's.
  CHECK(dies([&] {
    auto bad = t0_trace(n, 6);
    bad[1].model_id = 42;  // outside the registry
    (void)fleet::serve_fleet(reg, bad, fleet::FleetOptions{});
  }));
  CHECK(dies([&] {
    auto bad = t0_trace(n, 6);
    bad[0].id = 3;  // re-numbered
    (void)fleet::serve_fleet(reg, bad, fleet::FleetOptions{});
  }));
}

// (f) Decode-aware width split (ISSUE 9 satellite): with decode_admit set,
// max_admit gates *prefill* admissions against non-decode live sessions
// only, and parked decode steps re-admit in decode_admit-sized chunks per
// trigger window.
void test_decode_split_budget() {
  // Unit: the split arithmetic, pinned against synthetic shard state.
  serve::PolicyConfig pc;
  pc.kind = serve::PolicyKind::kDeadline;
  pc.min_batch = 1;
  pc.slo_ns = 10'000'000'000;
  pc.max_hold_ns = 10'000'000'000;
  pc.max_admit = 4;
  pc.decode_admit = 2;
  const auto pol = serve::make_policy(pc);

  serve::PolicyCtx ctx;
  ctx.live = 6;
  ctx.live_decode = 4;  // prefill_live = 2 → room for 2 more prefills
  serve::AdmitDecision d = pol->decide(ctx);
  CHECK_EQ(d.max_admit, 2u);
  CHECK_EQ(d.max_step_admit, 2u);

  ctx.live = 8;
  ctx.live_decode = 2;  // prefill_live = 6 ≥ max_admit → no new prefills
  d = pol->decide(ctx);
  CHECK_EQ(d.max_admit, 0u);
  CHECK_EQ(d.max_step_admit, 2u);  // decode steps still metered through

  serve::PolicyConfig flat = pc;
  flat.decode_admit = 0;  // split off: classic hard cap, unlimited steps
  const auto pol2 = serve::make_policy(flat);
  ctx.live = 3;
  ctx.live_decode = 3;
  d = pol2->decide(ctx);
  CHECK_EQ(d.max_admit, 1u);
  CHECK(d.max_step_admit == static_cast<std::size_t>(-1));

  // End-to-end: the split changes *scheduling* only — every session still
  // matches its solo outputs bitwise, token counts are identical to the
  // hard-cap run, and the live pool is allowed to grow past max_admit
  // (decode sessions no longer consume prefill width).
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 6, 23);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
  const int n = 6;
  const auto trace = t0_trace(n, ds.inputs.size());

  const auto run = [&](std::size_t decode_admit) {
    serve::ServeOptions so;
    so.collect_outputs = true;
    so.policy.kind = serve::PolicyKind::kDeadline;
    so.policy.min_batch = 1;
    so.policy.slo_ns = 2'000'000;
    so.policy.max_hold_ns = 200'000;
    so.policy.max_admit = 3;
    so.policy.decode_admit = decode_admit;
    return serve::serve(p, ds, trace, so);
  };

  const serve::ServeResult capped = run(0);
  const serve::ServeResult split = run(2);

  CHECK(capped.shards.at(0).max_live <= 3);  // the hard cap really caps
  CHECK(split.shards.at(0).max_live >= capped.shards.at(0).max_live);
  CHECK_EQ(split.tokens, capped.tokens);  // lengths are input-dependent only
  CHECK_EQ(split.cancelled, 0);
  for (const serve::RequestRecord& rec : split.records) {
    CHECK(rec.completion_ns >= 0);
    const std::vector<float> solo =
        solo_outputs(p, ds, trace[static_cast<std::size_t>(rec.id)].input_index);
    CHECK_EQ(rec.output.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i)
      CHECK(rec.output[i] == solo[i]);  // metered steps never change results
  }
}

}  // namespace

int main() {
  test_single_session_matches_solo();
  test_cohort_deterministic_and_matches_solo();
  test_decode_memo_steady_state();
  test_session_memory_plateau();
  test_fleet_token_deadline_cancels();
  test_decode_split_budget();
  return acrobat::test::finish("test_decode");
}
