// Dedicated tuner coverage (autosched/tuner.h) — previously only exercised
// incidentally through test_models. Properties: the trial budget is
// respected (cold kernels are never touched once it runs out), the
// frequency profile steers trials hottest-first with stable registration-
// order tie-breaks, results stay inside each kernel's variant space, and
// the visit pattern is deterministic for a fixed (freq, budget) — the only
// nondeterminism in the tuner is which variant a measurement prefers,
// never which kernels get measured.
#include "autosched/tuner.h"

#include <vector>

#include "harness/harness.h"
#include "test_util.h"

using namespace acrobat;

namespace {

// Three multi-variant kernels (dense: 3 variants; add/tanh: 2) plus a
// single-variant one the tuner must skip without spending budget.
KernelRegistry make_registry() {
  KernelRegistry reg;
  const Shape vec(32), mat(32, 32);
  const Shape dense_rep[2] = {vec, mat};
  const Shape add_rep[2] = {vec, vec};
  const Shape tanh_rep[1] = {vec};
  const Shape concat_rep[2] = {vec, vec};
  reg.add("t.dense", OpKind::kDense, 0, 2, dense_rep);
  reg.add("t.add", OpKind::kAdd, 0, 2, add_rep);
  reg.add("t.tanh", OpKind::kTanh, 0, 1, tanh_rep);
  reg.add("t.concat", OpKind::kConcat, 0, 2, concat_rep);  // 1 variant
  return reg;
}

std::vector<int> variants_of(const KernelRegistry& reg) {
  std::vector<int> v;
  for (std::size_t i = 0; i < reg.num_kernels(); ++i)
    v.push_back(reg.kernel(static_cast<int>(i)).variant);
  return v;
}

void test_reset_clamps() {
  KernelRegistry reg = make_registry();
  autosched::reset_schedules(reg, 99);
  for (std::size_t i = 0; i < reg.num_kernels(); ++i) {
    const Kernel& k = reg.kernel(static_cast<int>(i));
    CHECK_EQ(k.variant, k.num_variants - 1);
  }
  autosched::reset_schedules(reg, 0);
  for (std::size_t i = 0; i < reg.num_kernels(); ++i)
    CHECK_EQ(reg.kernel(static_cast<int>(i)).variant, 0);
}

void test_zero_budget_changes_nothing() {
  KernelRegistry reg = make_registry();
  autosched::reset_schedules(reg, 0);
  const std::vector<int> before = variants_of(reg);
  autosched::tune(reg, std::vector<double>(reg.num_kernels(), 1.0), 0);
  CHECK(variants_of(reg) == before);
}

void test_budget_respected_in_registration_order() {
  // Uniform frequencies tie; the stable sort keeps registration order, so a
  // budget covering only the dense kernel's 3 variants must leave add and
  // tanh untouched.
  KernelRegistry reg = make_registry();
  autosched::reset_schedules(reg, 0);
  autosched::tune(reg, std::vector<double>(reg.num_kernels(), 1.0), 3);
  CHECK_EQ(reg.kernel(1).variant, 0);  // t.add: never measured
  CHECK_EQ(reg.kernel(2).variant, 0);  // t.tanh: never measured
  CHECK(reg.kernel(0).variant >= 0 && reg.kernel(0).variant < 3);
}

void test_freq_steers_budget_to_hot_kernels() {
  // A PGO profile that marks t.tanh hottest sends the (tiny) budget there:
  // dense — registered first, but cold — is never measured.
  KernelRegistry reg = make_registry();
  autosched::reset_schedules(reg, 0);
  std::vector<double> freq{1.0, 2.0, 100.0, 1.0};
  autosched::tune(reg, freq, 2);  // exactly t.tanh's variant count
  CHECK_EQ(reg.kernel(0).variant, 0);  // t.dense: cold, unmeasured
  CHECK_EQ(reg.kernel(1).variant, 0);  // t.add: cold, unmeasured
  CHECK(reg.kernel(2).variant >= 0 && reg.kernel(2).variant < 2);
}

void test_deterministic_visit_pattern() {
  // Two identical registries, same freq and budget: the *set of kernels the
  // tuner may change* is identical (the visit order is a pure function of
  // freq + registration order). Chosen variants depend on measurements, so
  // only the untouched kernels are compared exactly.
  for (int trial = 0; trial < 2; ++trial) {
    KernelRegistry a = make_registry();
    KernelRegistry b = make_registry();
    autosched::reset_schedules(a, 0);
    autosched::reset_schedules(b, 0);
    const std::vector<double> freq{5.0, 1.0, 1.0, 9.0};
    autosched::tune(a, freq, 3);  // covers only t.dense (hottest tunable)
    autosched::tune(b, freq, 3);
    // t.concat is hottest by freq but has one variant: skipped for free.
    CHECK_EQ(a.kernel(1).variant, 0);
    CHECK_EQ(b.kernel(1).variant, 0);
    CHECK_EQ(a.kernel(2).variant, 0);
    CHECK_EQ(b.kernel(2).variant, 0);
    CHECK_EQ(a.kernel(3).variant, 0);
    CHECK_EQ(b.kernel(3).variant, 0);
  }
}

void test_tune_monotone_non_worsening_from_worst() {
  // On a real model registry, a saturating budget must move at least one
  // kernel off the worst (variant-0) schedule and never leave a variant out
  // of range — the tuner only ever replaces a schedule with one that
  // measured no slower.
  const models::ModelSpec& spec = models::model_by_name("NestedRNN");
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
  KernelRegistry& reg = p.compiled.module.registry;
  autosched::reset_schedules(reg, 0);
  autosched::tune(reg, std::vector<double>(reg.num_kernels(), 1.0), 100000);
  bool any_changed = false;
  for (std::size_t i = 0; i < reg.num_kernels(); ++i) {
    const Kernel& k = reg.kernel(static_cast<int>(i));
    CHECK(k.variant >= 0 && k.variant < k.num_variants);
    if (k.variant != 0) any_changed = true;
  }
  CHECK(any_changed);
}

}  // namespace

int main() {
  test_reset_clamps();
  test_zero_budget_changes_nothing();
  test_budget_respected_in_registration_order();
  test_freq_steers_budget_to_hot_kernels();
  test_deterministic_visit_pattern();
  test_tune_monotone_non_worsening_from_worst();
  return acrobat::test::finish("test_tuner");
}
