// The engine's batching invariant: same-signature ops recorded by N
// instances collapse into one kernel launch (and eager mode into N), with
// numerics identical either way.
#include "engine/engine.h"
#include "support/rng.h"
#include "test_util.h"

using namespace acrobat;

namespace {

struct Fixture {
  KernelRegistry reg;
  TensorPool pool;
  Rng rng{7};
  int k_dense, k_tanh, k_zero;

  Fixture() {
    const Shape x(8), w(8, 8);
    const Shape reps[2] = {x, w};
    k_dense = reg.add("t.dense", OpKind::kDense, 0, 2, reps);
    k_tanh = reg.add("t.tanh", OpKind::kTanh, 0, 1, reps);
    k_zero = reg.add("t.zero", OpKind::kZeros, 8, 0, nullptr);
  }
};

void test_same_signature_collapses() {
  Fixture f;
  EngineConfig cfg;
  Engine eng(f.reg, cfg);
  const Tensor w = f.pool.alloc_random(Shape(8, 8), f.rng, 0.5f);
  const TRef wref = eng.add_concrete(w.view());
  constexpr int kInstances = 16;
  std::vector<TRef> outs;
  for (int i = 0; i < kInstances; ++i) {
    InstCtx ctx{i};
    const Tensor x = f.pool.alloc_random(RowVec(8), f.rng, 1.0f);
    const TRef xr = eng.add_concrete(x.view());
    const TRef ins[2] = {xr, wref};
    const TRef d = eng.add_op(f.k_dense, ins, 2, ctx, 0);
    const TRef t = eng.add_op(f.k_tanh, &d, 1, ctx, 0);
    outs.push_back(t);
  }
  eng.trigger_execution();
  // 16 denses at depth 1 → one launch; 16 tanhs at depth 2 → one launch.
  CHECK_EQ(eng.stats().kernel_launches, 2);
  CHECK_EQ(eng.stats().kernel_invocations[f.k_dense], kInstances);
  for (const TRef r : outs) CHECK(eng.data(r) != nullptr);
}

void test_eager_launches_per_op() {
  Fixture f;
  EngineConfig cfg;
  cfg.lazy = false;
  Engine eng(f.reg, cfg);
  const Tensor w = f.pool.alloc_random(Shape(8, 8), f.rng, 0.5f);
  const TRef wref = eng.add_concrete(w.view());
  for (int i = 0; i < 5; ++i) {
    InstCtx ctx{i};
    const Tensor x = f.pool.alloc_random(RowVec(8), f.rng, 1.0f);
    const TRef xr = eng.add_concrete(x.view());
    const TRef ins[2] = {xr, wref};
    eng.add_op(f.k_dense, ins, 2, ctx, 0);
  }
  CHECK_EQ(eng.stats().kernel_launches, 5);
}

void test_batched_matches_unbatched() {
  Fixture f;
  std::vector<Tensor> xs;
  for (int i = 0; i < 6; ++i) xs.push_back(f.pool.alloc_random(RowVec(8), f.rng, 1.0f));
  const Tensor w = f.pool.alloc_random(Shape(8, 8), f.rng, 0.5f);

  auto run = [&](bool lazy) {
    EngineConfig cfg;
    cfg.lazy = lazy;
    Engine eng(f.reg, cfg);
    const TRef wref = eng.add_concrete(w.view());
    std::vector<TRef> outs;
    for (int i = 0; i < 6; ++i) {
      InstCtx ctx{i};
      const TRef xr = eng.add_concrete(xs[static_cast<std::size_t>(i)].view());
      const TRef ins[2] = {xr, wref};
      const TRef d = eng.add_op(f.k_dense, ins, 2, ctx, 0);
      outs.push_back(eng.add_op(f.k_tanh, &d, 1, ctx, 0));
    }
    eng.trigger_execution();
    std::vector<float> flat;
    for (const TRef r : outs) {
      const Tensor t = eng.force(r);
      flat.insert(flat.end(), t.data, t.data + t.numel());
    }
    return flat;
  };

  const std::vector<float> batched = run(true);
  const std::vector<float> eager = run(false);
  CHECK_EQ(batched.size(), eager.size());
  for (std::size_t i = 0; i < batched.size(); ++i) CHECK_NEAR(batched[i], eager[i], 1e-6);
}

void test_const_reuse() {
  Fixture f;
  EngineConfig cfg;
  Engine eng(f.reg, cfg);
  InstCtx ctx{0};
  const TRef a = eng.add_op(f.k_zero, nullptr, 0, ctx, 0);
  const TRef b = eng.add_op(f.k_zero, nullptr, 0, ctx, 0);
  CHECK_EQ(a.id, b.id);  // hoisted constant

  EngineConfig cfg2;
  cfg2.const_reuse = false;
  Engine eng2(f.reg, cfg2);
  const TRef c = eng2.add_op(f.k_zero, nullptr, 0, ctx, 0);
  const TRef d = eng2.add_op(f.k_zero, nullptr, 0, ctx, 0);
  CHECK(c.id != d.id);  // DyNet-style duplicate constants
}

void test_memory_cap_oom() {
  Fixture f;
  EngineConfig cfg;
  cfg.memory_cap_bytes = 256;  // 8 floats = 32 bytes per node
  cfg.const_reuse = false;     // keep the duplicate nodes alive
  Engine eng(f.reg, cfg);
  InstCtx ctx{0};
  bool oom = false;
  try {
    for (int i = 0; i < 64; ++i) eng.add_op(f.k_zero, nullptr, 0, ctx, 0);
    eng.trigger_execution();
  } catch (const OomError&) {
    oom = true;
  }
  CHECK(oom);
}

}  // namespace

int main() {
  test_same_signature_collapses();
  test_eager_launches_per_op();
  test_batched_matches_unbatched();
  test_const_reuse();
  test_memory_cap_oom();
  return acrobat::test::finish("test_engine_batching");
}
