// The engine's batching invariant: same-signature ops recorded by N
// instances collapse into one kernel launch (and eager mode into N), with
// numerics identical either way.
#include <cstdlib>
#include <cstring>
#include <new>
#include <tuple>
#include <utility>

#include "engine/engine.h"
#include "support/rng.h"
#include "test_util.h"

// Counting global allocator: test_record_op_ins_inline measures how many
// heap allocations DFG construction performs per recorded op. Counting is
// gated so only the measurement window is observed; storage is plain
// malloc/free, which keeps sanitizer builds honest (ASan still tracks the
// underlying blocks).
namespace {
bool g_count_news = false;
long long g_news = 0;
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_news) ++g_news;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

using namespace acrobat;

namespace {

struct Fixture {
  KernelRegistry reg;
  TensorPool pool;
  Rng rng{7};
  int k_dense, k_tanh, k_zero;

  Fixture() {
    const Shape x(8), w(8, 8);
    const Shape reps[2] = {x, w};
    k_dense = reg.add("t.dense", OpKind::kDense, 0, 2, reps);
    k_tanh = reg.add("t.tanh", OpKind::kTanh, 0, 1, reps);
    k_zero = reg.add("t.zero", OpKind::kZeros, 8, 0, nullptr);
  }
};

void test_same_signature_collapses() {
  Fixture f;
  EngineConfig cfg;
  Engine eng(f.reg, cfg);
  const Tensor w = f.pool.alloc_random(Shape(8, 8), f.rng, 0.5f);
  const TRef wref = eng.add_concrete(w.view());
  constexpr int kInstances = 16;
  std::vector<TRef> outs;
  for (int i = 0; i < kInstances; ++i) {
    InstCtx ctx{i};
    const Tensor x = f.pool.alloc_random(RowVec(8), f.rng, 1.0f);
    const TRef xr = eng.add_concrete(x.view());
    const TRef ins[2] = {xr, wref};
    const TRef d = eng.add_op(f.k_dense, ins, 2, ctx, 0);
    const TRef t = eng.add_op(f.k_tanh, &d, 1, ctx, 0);
    outs.push_back(t);
  }
  eng.trigger_execution();
  // 16 denses at depth 1 → one launch; 16 tanhs at depth 2 → one launch.
  CHECK_EQ(eng.stats().kernel_launches, 2);
  CHECK_EQ(eng.stats().kernel_invocations[f.k_dense], kInstances);
  for (const TRef r : outs) CHECK(eng.data(r) != nullptr);
}

void test_eager_launches_per_op() {
  Fixture f;
  EngineConfig cfg;
  cfg.lazy = false;
  Engine eng(f.reg, cfg);
  const Tensor w = f.pool.alloc_random(Shape(8, 8), f.rng, 0.5f);
  const TRef wref = eng.add_concrete(w.view());
  for (int i = 0; i < 5; ++i) {
    InstCtx ctx{i};
    const Tensor x = f.pool.alloc_random(RowVec(8), f.rng, 1.0f);
    const TRef xr = eng.add_concrete(x.view());
    const TRef ins[2] = {xr, wref};
    eng.add_op(f.k_dense, ins, 2, ctx, 0);
  }
  CHECK_EQ(eng.stats().kernel_launches, 5);
}

void test_batched_matches_unbatched() {
  Fixture f;
  std::vector<Tensor> xs;
  for (int i = 0; i < 6; ++i) xs.push_back(f.pool.alloc_random(RowVec(8), f.rng, 1.0f));
  const Tensor w = f.pool.alloc_random(Shape(8, 8), f.rng, 0.5f);

  auto run = [&](bool lazy) {
    EngineConfig cfg;
    cfg.lazy = lazy;
    Engine eng(f.reg, cfg);
    const TRef wref = eng.add_concrete(w.view());
    std::vector<TRef> outs;
    for (int i = 0; i < 6; ++i) {
      InstCtx ctx{i};
      const TRef xr = eng.add_concrete(xs[static_cast<std::size_t>(i)].view());
      const TRef ins[2] = {xr, wref};
      const TRef d = eng.add_op(f.k_dense, ins, 2, ctx, 0);
      outs.push_back(eng.add_op(f.k_tanh, &d, 1, ctx, 0));
    }
    eng.trigger_execution();
    std::vector<float> flat;
    for (const TRef r : outs) {
      const Tensor t = eng.force(r);
      flat.insert(flat.end(), t.data, t.data + t.numel());
    }
    return flat;
  };

  const std::vector<float> batched = run(true);
  const std::vector<float> eager = run(false);
  CHECK_EQ(batched.size(), eager.size());
  for (std::size_t i = 0; i < batched.size(); ++i) CHECK_NEAR(batched[i], eager[i], 1e-6);
}

void test_const_reuse() {
  Fixture f;
  EngineConfig cfg;
  Engine eng(f.reg, cfg);
  InstCtx ctx{0};
  const TRef a = eng.add_op(f.k_zero, nullptr, 0, ctx, 0);
  const TRef b = eng.add_op(f.k_zero, nullptr, 0, ctx, 0);
  CHECK_EQ(a.id, b.id);  // hoisted constant

  EngineConfig cfg2;
  cfg2.const_reuse = false;
  Engine eng2(f.reg, cfg2);
  const TRef c = eng2.add_op(f.k_zero, nullptr, 0, ctx, 0);
  const TRef d = eng2.add_op(f.k_zero, nullptr, 0, ctx, 0);
  CHECK(c.id != d.id);  // DyNet-style duplicate constants
}

// --- flat elementwise + stacked matmul execution (ISSUE 5 tentpole) --------

// The dense → tanh/sigmoid → mul → add(shared bias) ladder: one batch per
// (depth, kernel), every elementwise batch reading the previous batch's
// back-to-back outputs — the contiguous common case the flat path targets.
struct LadderFixture {
  KernelRegistry reg;
  TensorPool pool;
  Rng rng{11};
  int k_dense, k_tanh, k_sig, k_mul, k_add;
  Tensor w, bias;
  std::vector<Tensor> xs;

  explicit LadderFixture(int n_instances) {
    const Shape x(8), ww(8, 8);
    const Shape reps2[2] = {x, ww};
    const Shape repsb[2] = {x, x};
    k_dense = reg.add("l.dense", OpKind::kDense, 0, 2, reps2);
    k_tanh = reg.add("l.tanh", OpKind::kTanh, 0, 1, reps2);
    k_sig = reg.add("l.sig", OpKind::kSigmoid, 0, 1, reps2);
    k_mul = reg.add("l.mul", OpKind::kMul, 0, 2, repsb);
    k_add = reg.add("l.add", OpKind::kAdd, 0, 2, repsb);
    w = pool.alloc_random(Shape(8, 8), rng, 0.5f);
    bias = pool.alloc_random(RowVec(8), rng, 0.3f);
    // Back-to-back allocations: the dense batch's first-arg rows are
    // contiguous, so the stacked path fires too.
    for (int i = 0; i < n_instances; ++i)
      xs.push_back(pool.alloc_random(RowVec(8), rng, 1.0f));
  }

  // Records the ladder for every instance and returns the flattened outputs
  // after one trigger.
  std::vector<float> run(Engine& eng) {
    const TRef wref = eng.add_concrete(w.view());
    const TRef bref = eng.add_concrete(bias.view());
    std::vector<TRef> outs;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      InstCtx ctx{static_cast<int>(i)};
      const TRef xr = eng.add_concrete(xs[i].view());
      const TRef dins[2] = {xr, wref};
      const TRef d = eng.add_op(k_dense, dins, 2, ctx, 0);
      const TRef t = eng.add_op(k_tanh, &d, 1, ctx, 0);
      const TRef s = eng.add_op(k_sig, &d, 1, ctx, 0);
      const TRef mins[2] = {t, s};
      const TRef m = eng.add_op(k_mul, mins, 2, ctx, 0);
      const TRef ains[2] = {m, bref};
      outs.push_back(eng.add_op(k_add, ains, 2, ctx, 0));
    }
    eng.trigger_execution();
    std::vector<float> flat;
    for (const TRef r : outs) {
      const Tensor t = eng.force(r);
      flat.insert(flat.end(), t.data, t.data + t.numel());
    }
    return flat;
  }
};

// Contiguous batches: the flat path fires (4 elementwise batches + 1
// stacked dense), kernel_launches are EXACTLY the per-op path's counts, and
// outputs are bitwise-identical across flat, per-op, and eager execution.
void test_flat_elementwise_bitwise_parity() {
  constexpr int kN = 16;
  std::vector<float> flat_out, perop_out, eager_out;
  long long flat_launches = 0, perop_launches = 0, eager_launches = 0;
  {
    LadderFixture f(kN);
    EngineConfig cfg;  // fuse_elementwise defaults on
    Engine eng(f.reg, cfg);
    flat_out = f.run(eng);
    flat_launches = eng.stats().kernel_launches;
    CHECK_EQ(eng.stats().flat_batches, 4);     // tanh, sigmoid, mul, add
    CHECK_EQ(eng.stats().stacked_batches, 1);  // the dense batch
    CHECK_EQ(eng.stats().gather_bytes, 0);     // contiguous: nothing staged
  }
  {
    LadderFixture f(kN);
    EngineConfig cfg;
    cfg.fuse_elementwise = false;
    Engine eng(f.reg, cfg);
    perop_out = f.run(eng);
    perop_launches = eng.stats().kernel_launches;
    CHECK_EQ(eng.stats().flat_batches, 0);
  }
  {
    LadderFixture f(kN);
    EngineConfig cfg;
    cfg.lazy = false;  // one launch per op: the op-at-a-time reference
    Engine eng(f.reg, cfg);
    eager_out = f.run(eng);
    eager_launches = eng.stats().kernel_launches;
  }
  CHECK_EQ(flat_launches, 5);  // one per (depth, kernel) bucket — unchanged
  CHECK_EQ(perop_launches, 5);
  CHECK_EQ(eager_launches, 5ll * kN);
  CHECK_EQ(flat_out.size(), perop_out.size());
  CHECK_EQ(flat_out.size(), eager_out.size());
  for (std::size_t i = 0; i < flat_out.size(); ++i) {
    CHECK(flat_out[i] == perop_out[i]);  // bitwise, not approximate
    CHECK(flat_out[i] == eager_out[i]);
  }
}

// Scattered inputs: with gather fusion the batch falls back per-op (no
// copies); with explicit gathers it stages one contiguous buffer (counted
// bytes) and still runs flat. All three agree bitwise.
void test_flat_scattered_fallback() {
  constexpr int kN = 8;
  Rng rng{23};
  TensorPool pool;
  KernelRegistry reg;
  const Shape x(8);
  const int k_tanh = reg.add("s.tanh", OpKind::kTanh, 0, 1, &x);
  std::vector<Tensor> xs;
  for (int i = 0; i < kN; ++i) {
    xs.push_back(pool.alloc_random(RowVec(8), rng, 1.0f));
    pool.alloc(RowVec(3));  // padding: make consecutive inputs non-contiguous
  }
  const auto run = [&](bool gather_fusion, bool fuse) {
    EngineConfig cfg;
    cfg.gather_fusion = gather_fusion;
    cfg.fuse_elementwise = fuse;
    Engine eng(reg, cfg);
    std::vector<TRef> outs;
    for (int i = 0; i < kN; ++i) {
      InstCtx ctx{i};
      const TRef xr = eng.add_concrete(xs[static_cast<std::size_t>(i)].view());
      outs.push_back(eng.add_op(k_tanh, &xr, 1, ctx, 0));
    }
    eng.trigger_execution();
    std::vector<float> flat;
    for (const TRef r : outs) {
      const Tensor t = eng.force(r);
      flat.insert(flat.end(), t.data, t.data + t.numel());
    }
    return std::make_tuple(flat, eng.stats().flat_batches, eng.stats().gather_bytes,
                           eng.stats().kernel_launches);
  };

  const auto [fused_out, fused_flat, fused_bytes, fused_launches] = run(true, true);
  CHECK_EQ(fused_flat, 0);  // scattered + fusion: per-op fallback, in place
  CHECK_EQ(fused_bytes, 0);
  const auto [staged_out, staged_flat, staged_bytes, staged_launches] = run(false, true);
  CHECK_EQ(staged_flat, 1);  // explicit mode: stage once, run flat
  CHECK_EQ(staged_bytes, kN * 8ll * static_cast<long long>(sizeof(float)));
  const auto [perop_out, perop_flat, perop_bytes, perop_launches] = run(false, false);
  CHECK_EQ(perop_flat, 0);
  CHECK_EQ(perop_bytes, 0);  // elementwise per-op never staged pre-flat either
  CHECK_EQ(fused_launches, 1);
  CHECK_EQ(staged_launches, 1);
  CHECK_EQ(perop_launches, 1);
  CHECK_EQ(fused_out.size(), staged_out.size());
  for (std::size_t i = 0; i < fused_out.size(); ++i) {
    CHECK(fused_out[i] == staged_out[i]);  // bitwise across all three paths
    CHECK(fused_out[i] == perop_out[i]);
  }
}

// Recycling on: slot reuse and epoch reclamation leave the flat path's
// outputs bitwise-identical to the per-op path, and after warmup the
// scheduler scratch stops allocating — steady-state triggers are
// allocation-free (the scheduling_allocs plateau).
void test_flat_recycling_parity_and_alloc_plateau() {
  constexpr int kRounds = 6;
  LadderFixture fa(8), fb(8);
  EngineConfig on;
  on.recycle = true;
  EngineConfig off;
  off.recycle = true;
  off.fuse_elementwise = false;
  Engine ea(fa.reg, on), eb(fb.reg, off);

  const TRef wa = ea.add_concrete(fa.w.view()), ba = ea.add_concrete(fa.bias.view());
  const TRef wb = eb.add_concrete(fb.w.view()), bb = eb.add_concrete(fb.bias.view());
  std::vector<TRef> xa, xb;
  for (std::size_t i = 0; i < fa.xs.size(); ++i) {
    xa.push_back(ea.add_concrete(fa.xs[i].view()));
    xb.push_back(eb.add_concrete(fb.xs[i].view()));
  }

  const auto round = [&](Engine& eng, const LadderFixture& f, const std::vector<TRef>& xs,
                         TRef wref, TRef bref, int request) {
    eng.begin_request(request);
    InstCtx ctx{request};
    std::vector<TRef> outs;
    for (const TRef xr : xs) {
      const TRef dins[2] = {xr, wref};
      const TRef d = eng.add_op(f.k_dense, dins, 2, ctx, 0);
      const TRef t = eng.add_op(f.k_tanh, &d, 1, ctx, 0);
      const TRef s = eng.add_op(f.k_sig, &d, 1, ctx, 0);
      const TRef mins[2] = {t, s};
      const TRef m = eng.add_op(f.k_mul, mins, 2, ctx, 0);
      const TRef ains[2] = {m, bref};
      outs.push_back(eng.add_op(f.k_add, ains, 2, ctx, 0));
    }
    eng.trigger_execution();
    std::vector<float> flat;
    for (const TRef r : outs) {
      const Tensor t = eng.force(r);
      flat.insert(flat.end(), t.data, t.data + t.numel());
    }
    eng.retire_request(request);
    return flat;
  };

  long long allocs_prev = -1;
  for (int r = 0; r < kRounds; ++r) {
    const std::vector<float> a = round(ea, fa, xa, wa, ba, r);
    const std::vector<float> b = round(eb, fb, xb, wb, bb, r);
    CHECK_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) CHECK(a[i] == b[i]);  // bitwise
    if (r >= kRounds - 2) {
      // Last two identical rounds: zero new scratch growth.
      if (allocs_prev >= 0) CHECK_EQ(ea.stats().scheduling_allocs, allocs_prev);
      allocs_prev = ea.stats().scheduling_allocs;
    }
  }
  CHECK(ea.stats().flat_batches > 0);
  CHECK(ea.memory().nodes_recycled > 0);
  CHECK_EQ(ea.memory().leaked_slots, 0);
}

// The stacked fast path covers the whole matmul family now: a batch of
// row-vector matmuls sharing the parameter operand is ONE launch and ONE
// stacked call, bitwise-identical to eager per-op execution.
void test_stacked_matmul_family() {
  for (const OpKind op : {OpKind::kMatMul, OpKind::kMatMulBT}) {
    constexpr int kN = 12;
    Rng rng{31};
    TensorPool pool;
    KernelRegistry reg;
    const Shape x(8), b(8, 8);
    const Shape reps[2] = {x, b};
    const int kid = reg.add("m.mm", op, 0, 2, reps);
    const Tensor bmat = pool.alloc_random(Shape(8, 8), rng, 0.4f);
    std::vector<Tensor> xs;
    for (int i = 0; i < kN; ++i) xs.push_back(pool.alloc_random(RowVec(8), rng, 1.0f));

    const auto run = [&](bool lazy) {
      EngineConfig cfg;
      cfg.lazy = lazy;
      Engine eng(reg, cfg);
      const TRef bref = eng.add_concrete(bmat.view());
      std::vector<TRef> outs;
      for (int i = 0; i < kN; ++i) {
        InstCtx ctx{i};
        const TRef xr = eng.add_concrete(xs[static_cast<std::size_t>(i)].view());
        const TRef ins[2] = {xr, bref};
        outs.push_back(eng.add_op(kid, ins, 2, ctx, 0));
      }
      eng.trigger_execution();
      std::vector<float> flat;
      for (const TRef r : outs) {
        const Tensor t = eng.force(r);
        flat.insert(flat.end(), t.data, t.data + t.numel());
      }
      return std::make_pair(flat, eng.stats());
    };

    const auto [batched, bstats] = run(true);
    const auto [eager, estats] = run(false);
    CHECK_EQ(bstats.kernel_launches, 1);
    CHECK_EQ(bstats.stacked_batches, 1);
    CHECK_EQ(estats.kernel_launches, kN);
    CHECK_EQ(batched.size(), eager.size());
    for (std::size_t i = 0; i < batched.size(); ++i) CHECK(batched[i] == eager[i]);
  }
}

// Carried-forward fix: Node::ins used to heap-allocate a vector per
// recorded multi-input op. With the arity ≤ 4 inline small-vector plus
// recycled slots and warmed scratch, a steady-state recording round does
// (nearly) no heap allocation at all — the counting allocator above sees
// a handful of allocations where the vector version paid one per op.
// Outputs are bitwise unchanged across the fix (warm round vs measured).
void test_record_op_ins_inline() {
  Fixture f;
  EngineConfig cfg;
  cfg.recycle = true;
  Engine eng(f.reg, cfg);
  const Tensor w = f.pool.alloc_random(Shape(8, 8), f.rng, 0.5f);
  const Tensor x = f.pool.alloc_random(RowVec(8), f.rng, 1.0f);
  const TRef wref = eng.add_concrete(w.view());
  const TRef xref = eng.add_concrete(x.view());
  constexpr int kOps = 64;

  const auto round = [&](int id) {
    eng.begin_request(id);
    const InstCtx ctx{id};
    const TRef ins[2] = {xref, wref};
    TRef v = eng.add_op(f.k_dense, ins, 2, ctx, 0);
    for (int i = 1; i < kOps; ++i) v = eng.add_op(f.k_tanh, &v, 1, ctx, 0);
    eng.trigger_execution();
    const Tensor t = eng.force(v);
    std::vector<float> out(t.data, t.data + t.numel());
    eng.retire_request(id);
    return out;
  };

  // Two warm rounds: the pending list and the trigger scratch are a swap
  // pair, so both buffers need one round to reach full capacity.
  const std::vector<float> warm = round(0);
  round(1);
  g_news = 0;
  g_count_news = true;
  const std::vector<float> measured = round(2);
  g_count_news = false;
  CHECK(g_news <= kOps / 8);  // pre-fix floor: one allocation per recorded op
  CHECK_EQ(warm.size(), measured.size());
  CHECK(std::memcmp(warm.data(), measured.data(), warm.size() * sizeof(float)) == 0);
}

// Ops wider than the inline bound spill to heap storage and stay correct:
// the registry caps declared arity at 4, but record_op accepts up to 8
// (variable-arity concat). A 5-way concat must round-trip its operand list
// through inputs_of and lay the rows out end to end.
void test_wide_op_heap_spill() {
  Fixture f;
  const Shape v8 = RowVec(8);
  const Shape reps[2] = {v8, v8};
  const int k_cat = f.reg.add("t.concat", OpKind::kConcat, 1, 2, reps);
  Engine eng(f.reg, EngineConfig{});
  const InstCtx ctx{0};
  TRef ins[5];
  std::vector<Tensor> xs;
  for (int i = 0; i < 5; ++i) {
    xs.push_back(f.pool.alloc_random(v8, f.rng, 1.0f));
    ins[i] = eng.add_concrete(xs.back().view());
  }
  const TRef out = eng.add_op(k_cat, ins, 5, ctx, 0);
  const Tensor t = eng.force(out);
  CHECK_EQ(t.numel(), 40);
  for (int i = 0; i < 5; ++i)
    CHECK(std::memcmp(t.data + 8 * i, xs[static_cast<std::size_t>(i)].data,
                      sizeof(float) * 8) == 0);
  const std::span<const TRef> back = eng.inputs_of(out);
  CHECK_EQ(back.size(), 5u);
  for (int i = 0; i < 5; ++i) CHECK(back[static_cast<std::size_t>(i)].id == ins[i].id);
}

void test_memory_cap_oom() {
  Fixture f;
  EngineConfig cfg;
  cfg.memory_cap_bytes = 256;  // 8 floats = 32 bytes per node
  cfg.const_reuse = false;     // keep the duplicate nodes alive
  Engine eng(f.reg, cfg);
  InstCtx ctx{0};
  bool oom = false;
  try {
    for (int i = 0; i < 64; ++i) eng.add_op(f.k_zero, nullptr, 0, ctx, 0);
    eng.trigger_execution();
  } catch (const OomError&) {
    oom = true;
  }
  CHECK(oom);
}

}  // namespace

int main() {
  test_same_signature_collapses();
  test_eager_launches_per_op();
  test_batched_matches_unbatched();
  test_flat_elementwise_bitwise_parity();
  test_flat_scattered_fallback();
  test_flat_recycling_parity_and_alloc_plateau();
  test_stacked_matmul_family();
  test_const_reuse();
  test_record_op_ins_inline();
  test_wide_op_heap_spill();
  test_memory_cap_oom();
  return acrobat::test::finish("test_engine_batching");
}
