// Fault tolerance acceptance (ISSUE 10 / DESIGN.md §11): crashes are a
// steady-state input, not an exceptional path.
//  (a) fault-spec parser: the full grammar roundtrips; malformed specs fail
//      loudly with a reason, never silently produce an inert plan;
//  (b) backoff schedules: respawn_delay_ns and retry_backoff_ns are pure,
//      bounded, and (given a seed) bitwise reproducible;
//  (c) config validation: nonsensical liveness / supervision / watermark
//      settings abort (config_die) — fork-based death tests, every build;
//  (d) FrameReader fuzz: seeded garbage, truncated headers, and bit-flipped
//      valid streams never crash the reader, never buffer unboundedly;
//  (e) client resilience: call() retries 429s with backoff until completion
//      and times out against a server that never answers;
//  (f) supervisor: a SIGKILLed worker is respawned under the same recipe
//      (post-respawn outputs stay solo-bitwise-identical), a crash-looping
//      command burns its restart budget and degrades to explicit errors;
//  (g) kill-loop soak: SIGKILL a worker every ~n/10 requests via the fault
//      plan — every request still reaches a terminal frame and the fleet
//      keeps goodput;
//  (h) degraded mode: overload enters/exits with hysteresis, sheds
//      best-effort work, and accounts every request;
//  (i) authn + fairness: a bad token is refused before admission; one
//      connection cannot hold more than its in-flight cap;
//  (j) short-write injection fragments frames without changing any output
//      bit; a wedged worker trips the liveness timeout and is respawned.
//
// Wire tests SKIP loudly when sockets are unavailable; fault-plan tests
// SKIP when built with -DACROBAT_FAULT=OFF (the parser tests still run).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "models/specs.h"
#include "net/client.h"
#include "net/net.h"
#include "serve/server.h"
#include "support/timer.h"
#include "test_util.h"

using namespace acrobat;
using acrobat::test::env_requests;

namespace {

int g_skips = 0;

bool start_or_skip(net::NetServer& srv, const char* what) {
  if (srv.start()) return true;
  std::printf("SKIP %s: %s\n", what, srv.error().c_str());
  ++g_skips;
  return false;
}

bool fault_or_skip(const char* what) {
  if (!fault::kCompiledOut) return true;
  std::printf("SKIP %s: built with ACROBAT_FAULT=OFF\n", what);
  ++g_skips;
  return false;
}

models::Dataset solo_dataset(const models::Dataset& ds, std::size_t idx) {
  models::Dataset one;
  one.pool = ds.pool;
  one.tensors = ds.tensors;
  one.inputs.push_back(ds.inputs[idx]);
  return one;
}

std::vector<float> solo_outputs(const harness::Prepared& p,
                                const models::Dataset& ds, std::size_t idx) {
  harness::RunOptions o;
  o.collect_outputs = true;
  return harness::run_acrobat(p, solo_dataset(ds, idx), o).outputs.at(0);
}

// (a) Spec parser: grammar roundtrip + loud failures.
void test_fault_spec_parser() {
  fault::FaultPlan pl;
  std::string err;

  CHECK(fault::parse_fault_spec("", pl, &err));
  CHECK(!pl.any());

  CHECK(fault::parse_fault_spec(
      "kill_worker@req=200;short_write@p=0.01;wedge_shard@req=500,dur_ms=50",
      pl, &err));
  CHECK_EQ(pl.kill_every_req, 200u);
  CHECK_EQ(pl.kill_shard, -1);
  CHECK_EQ(pl.wedge_every_req, 500u);
  CHECK_EQ(pl.wedge_dur_ms, 50);
  CHECK(pl.short_write_p > 0.009 && pl.short_write_p < 0.011);
  CHECK(pl.any());

  CHECK(fault::parse_fault_spec("kill_worker@req=7,shard=1", pl, &err));
  CHECK_EQ(pl.kill_every_req, 7u);
  CHECK_EQ(pl.kill_shard, 1);

  CHECK(fault::parse_fault_spec("crash_worker@req=3;", pl, &err));  // trailing ;
  CHECK_EQ(pl.crash_at_req, 3u);

  CHECK(fault::parse_fault_spec("short_write@p=0.5,seed=42", pl, &err));
  CHECK_EQ(pl.seed, 42u);

  // Every malformed shape names its problem.
  const char* bad[] = {
      "explode@req=1",          // unknown action
      "kill_worker",            // missing @
      "kill_worker@shard=0",    // missing required key
      "wedge_shard@req=5",      // wedge needs dur_ms too
      "short_write@p=1.5",      // probability out of range
      "kill_worker@req=zero",   // bad number
      "kill_worker@req",        // key without value
  };
  for (const char* s : bad) {
    err.clear();
    CHECK(!fault::parse_fault_spec(s, pl, &err));
    CHECK(!err.empty());
  }
}

// (b) Backoff schedules are pure, bounded, reproducible.
void test_backoff_determinism() {
  const std::int64_t base = 50'000'000, cap = 2'000'000'000;
  CHECK_EQ(net::respawn_delay_ns(0, base, cap), base);
  CHECK_EQ(net::respawn_delay_ns(1, base, cap), 2 * base);
  CHECK_EQ(net::respawn_delay_ns(-3, base, cap), base);
  std::int64_t prev = 0;
  for (int k = 0; k < 200; ++k) {
    const std::int64_t d = net::respawn_delay_ns(k, base, cap);
    CHECK(d >= prev);   // monotone non-decreasing
    CHECK(d <= cap);    // capped, no overflow wraparound
    prev = d;
  }
  CHECK_EQ(net::respawn_delay_ns(63, base, cap), cap);

  // Same seed, same schedule — bitwise; bounds follow the jitter range.
  std::uint64_t s1 = 12345, s2 = 12345;
  for (int k = 0; k < 64; ++k) {
    const std::int64_t a = net::retry_backoff_ns(k, 1'000'000, 200'000'000, s1);
    const std::int64_t b = net::retry_backoff_ns(k, 1'000'000, 200'000'000, s2);
    CHECK_EQ(a, b);
    std::uint64_t probe = 12345;  // bounds: d * [0.5, 1.5)
    std::int64_t d = k >= 62 ? 200'000'000 : 1'000'000ll << k;
    if (d > 200'000'000 || d <= 0) d = 200'000'000;
    (void)probe;
    CHECK(a >= d / 2);
    CHECK(a < d + d / 2 + 1);
  }
  std::uint64_t s3 = 99;
  CHECK(net::retry_backoff_ns(0, 1'000'000, 200'000'000, s3) !=
        net::retry_backoff_ns(0, 1'000'000, 200'000'000, s3));  // state advances
}

// (c) config_die: nonsense liveness / supervision / watermark settings
// abort instead of producing a server that flaps or never declares death.
void test_config_validation_dies() {
  const auto start_with = [](void (*tweak)(net::NetOptions&)) {
    net::NetOptions o;
    o.multiprocess = true;  // skip the prep/ds requirement; dies pre-listen
    tweak(o);
    net::NetServer srv(nullptr, nullptr, o);
    (void)srv.start();
  };
  CHECK(test::dies([&] {
    start_with([](net::NetOptions& o) { o.ping_interval_ns = 0; });
  }));
  CHECK(test::dies([&] {
    start_with([](net::NetOptions& o) {
      o.ping_interval_ns = 100;
      o.liveness_timeout_ns = 100;  // timeout must exceed the interval
    });
  }));
  CHECK(test::dies([&] {
    start_with([](net::NetOptions& o) { o.respawn_backoff_ns = 0; });
  }));
  CHECK(test::dies([&] {
    start_with([](net::NetOptions& o) {
      o.respawn_backoff_cap_ns = o.respawn_backoff_ns - 1;
    });
  }));
  CHECK(test::dies([&] {
    start_with([](net::NetOptions& o) {
      o.degrade_high_watermark = 4;
      o.degrade_low_watermark = 8;  // inverted hysteresis band
    });
  }));
  CHECK(test::dies([&] {
    start_with([](net::NetOptions& o) {
      o.admission_capacity = 8;
      o.degrade_high_watermark = 9;  // outside the queue bound
    });
  }));
}

// (d) FrameReader fuzz: garbage, truncation, bit flips — never a crash,
// never unbounded buffering, valid prefixes still decode.
void test_frame_reader_fuzz() {
  std::uint64_t rng = test::seed(0xf00dface);
  const auto next_u64 = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  // Pure garbage in random-sized chunks: the reader either errors or wants
  // more; its buffer never exceeds one frame's worth of lookahead.
  for (int round = 0; round < 50; ++round) {
    net::FrameReader rd;
    bool errored = false;
    for (int i = 0; i < 64 && !errored; ++i) {
      std::uint8_t chunk[256];
      const std::size_t len = 1 + next_u64() % sizeof chunk;
      for (std::size_t j = 0; j < len; ++j)
        chunk[j] = static_cast<std::uint8_t>(next_u64());
      rd.feed(chunk, len);
      net::Frame f;
      for (;;) {
        const auto st = rd.next(f);
        if (st == net::FrameReader::Status::kFrame) {
          CHECK(f.payload.size() <= net::kMaxPayload);
          continue;
        }
        if (st == net::FrameReader::Status::kError) errored = true;
        break;
      }
      CHECK(rd.buffered() <= net::kMaxPayload + 8);
    }
    // reset() restores a clean stream position.
    rd.reset();
    std::vector<std::uint8_t> ok;
    net::encode_id_only(ok, net::FrameType::kRetry, 7);
    rd.feed(ok.data(), ok.size());
    net::Frame f;
    CHECK(rd.next(f) == net::FrameReader::Status::kFrame);
    CHECK(f.type == net::FrameType::kRetry);
  }

  // A valid multi-frame stream with one flipped bit: every frame before the
  // flip decodes bitwise; after it the reader errors or resyncs — but never
  // fabricates an oversized frame.
  std::vector<std::uint8_t> stream;
  const float ref[] = {1.0f, 2.0f};
  for (std::uint32_t id = 0; id < 32; ++id) {
    net::encode_request(stream, id, id % 8, 0, 0, true);
    net::encode_done(stream, net::FrameType::kDone, id, 3, false, ref, 2);
  }
  for (int round = 0; round < 100; ++round) {
    std::vector<std::uint8_t> mut = stream;
    mut[next_u64() % mut.size()] ^=
        static_cast<std::uint8_t>(1u << (next_u64() % 8));
    net::FrameReader rd;
    std::size_t off = 0;
    while (off < mut.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + next_u64() % 64, mut.size() - off);
      rd.feed(mut.data() + off, len);
      off += len;
      net::Frame f;
      for (;;) {
        const auto st = rd.next(f);
        if (st == net::FrameReader::Status::kFrame) {
          CHECK(f.payload.size() <= net::kMaxPayload);
          continue;
        }
        break;
      }
      CHECK(rd.buffered() <= net::kMaxPayload + 8);
      if (rd.next(f) == net::FrameReader::Status::kError) break;
    }
  }
}

// (e1) call() against a server that never answers: the deadline is honored
// and counted; no hang, no spin.
void test_client_deadline() {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    std::printf("SKIP client_deadline: no sockets\n");
    ++g_skips;
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(lfd, 4) != 0) {
    std::printf("SKIP client_deadline: bind failed\n");
    ++g_skips;
    ::close(lfd);
    return;
  }
  socklen_t alen = sizeof addr;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen);

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", ntohs(addr.sin_port)));
  net::ClientResponse r;
  net::CallOptions co;
  co.deadline_ms = 200;
  co.max_attempts = 8;
  co.backoff_base_ms = 1;
  co.backoff_cap_ms = 20;
  const std::int64_t t0 = now_ns();
  CHECK(!cli.call(1, 0, r, co));
  const std::int64_t el = now_ns() - t0;
  CHECK(el >= 150'000'000);      // actually waited for the deadline
  CHECK(el < 10'000'000'000);    // ...and did not hang
  CHECK(cli.stats().timeouts >= 1);
  ::close(lfd);
}

// (e2) call() rides out backpressure: a saturated 1-slot server answers 429
// until the slot frees; the client's backoff-and-resubmit loop lands kDone.
void test_client_retry_on_429() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 7);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.admission_capacity = 1;
  o.max_sessions = 1;
  o.launch_overhead_ns = 5'000'000;  // keep the slot busy for hundreds of ms
  o.ds_batch = 8;
  o.ds_seed = 7;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "client_retry_on_429")) return;

  // The two filler sends are spaced out so the server ingests (and pumps)
  // each in its own poll cycle: if both frames drained in one pass, the
  // SECOND filler would eat the 429 (the queue only empties into the session
  // at the loop top) and cli would be admitted straight away.
  net::NetClient filler;
  CHECK(filler.connect_tcp("127.0.0.1", srv.port()));
  CHECK(filler.send_request(0, 0));  // occupies the slot
  ::usleep(20'000);
  CHECK(filler.send_request(1, 1));  // occupies the 1-deep admission queue
  ::usleep(20'000);

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  cli.set_jitter_seed(test::seed(7));
  net::ClientResponse r;
  net::CallOptions co;
  co.deadline_ms = 30'000;
  co.backoff_base_ms = 1;
  co.backoff_cap_ms = 16;
  co.max_attempts = 1'000;
  co.stream = false;
  CHECK(cli.call(100, 2, r, co));
  CHECK(r.kind == net::ClientResponse::Kind::kDone);
  CHECK(cli.stats().retries >= 1);  // the first attempts genuinely hit 429

  net::ClientResponse fr;
  CHECK(filler.wait(0, fr));
  CHECK(filler.wait(1, fr));
  cli.close();
  filler.close();
  srv.shutdown();
}

// (f1) Supervisor: SIGKILL a worker; it is respawned under the same recipe
// and post-respawn outputs remain solo-bitwise-identical.
void test_supervisor_respawn() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 6, 23);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.multiprocess = true;
  o.shards = 2;
  o.ds_batch = 6;
  o.ds_seed = 23;
  o.respawn_backoff_ns = 5'000'000;
  o.respawn_backoff_cap_ns = 100'000'000;
  net::NetServer srv(nullptr, nullptr, o);
  if (!start_or_skip(srv, "supervisor_respawn")) return;
  CHECK_EQ(srv.worker_pids().size(), 2u);

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  net::ClientResponse r;
  for (std::uint32_t i = 0; i < 4; ++i) {
    CHECK(cli.call(i, i % 6, r));
    CHECK(r.kind == net::ClientResponse::Kind::kDone);
  }

  ::kill(srv.worker_pids().at(0), SIGKILL);
  ::usleep(100'000);  // death detection + 5ms backoff + respawn

  // Post-respawn: both shards serve, and single-session outputs are still
  // bitwise the solo reference — the respawn rebuilt the same recipe.
  for (std::uint32_t i = 100; i < 108; ++i) {
    CHECK(cli.call(i, i % 6, r));
    CHECK(r.kind == net::ClientResponse::Kind::kDone);
    const std::vector<float> solo = solo_outputs(p, ds, i % 6);
    CHECK_EQ(r.output.size(), solo.size());
    for (std::size_t j = 0; j < solo.size(); ++j)
      CHECK(r.output[j] == solo[j]);
  }
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK_EQ(st.worker_deaths, 1u);
  CHECK_EQ(st.worker_respawns, 1u);
  CHECK_EQ(st.respawns_exhausted, 0u);
  CHECK_EQ(st.shards.size(), 2u);
}

// (f2) Budget exhaustion: a worker command that dies instantly burns its
// restart budget (backoff between attempts), then the shard stays dead and
// requests get explicit errors — not hangs, not fork bombs.
void test_respawn_budget_exhaustion() {
  net::NetOptions o;
  o.multiprocess = true;
  o.shards = 1;
  o.worker_cmd = "/bin/false";  // execs fine, exits immediately: crash loop
  o.respawn_budget = 2;
  o.respawn_backoff_ns = 2'000'000;
  o.respawn_backoff_cap_ns = 8'000'000;
  net::NetServer srv(nullptr, nullptr, o);
  if (!start_or_skip(srv, "respawn_budget")) return;

  ::usleep(300'000);  // let the crash loop burn the whole budget

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  CHECK(cli.send_request(1, 0));
  net::ClientResponse r;
  CHECK(cli.wait(1, r));
  CHECK(r.kind == net::ClientResponse::Kind::kError);
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK_EQ(st.worker_respawns, 2u);     // exactly the budget, then stop
  CHECK_EQ(st.respawns_exhausted, 1u);
  CHECK(st.worker_deaths >= 3u);        // initial spawn + both respawns died
  CHECK(st.errors >= 1u);
}

// (g) Kill-loop soak: the fault plan SIGKILLs a worker every ~n/10 routed
// requests. With supervision + client retry, every request completes, and
// the respawn count tracks the injected kills.
void test_kill_loop_soak() {
  if (!fault_or_skip("kill_loop_soak")) return;
  const int n = env_requests(1000);
  const int period = std::max(10, n / 10);

  net::NetOptions o;
  o.multiprocess = true;
  o.shards = 2;
  o.ds_batch = 8;
  o.ds_seed = 7;
  o.respawn_budget = n;  // generous: the budget is not what is under test
  o.respawn_backoff_ns = 2'000'000;
  o.respawn_backoff_cap_ns = 20'000'000;

  net::CallOptions co;
  co.deadline_ms = 30'000;
  co.max_attempts = 200;
  co.backoff_base_ms = 1;
  co.backoff_cap_ms = 20;
  co.stream = false;

  const auto run = [&](const std::string& spec, net::NetStats& st_out,
                       std::int64_t& elapsed) {
    net::NetOptions oo = o;
    oo.fault_spec = spec;
    net::NetServer srv(nullptr, nullptr, oo);
    if (!start_or_skip(srv, "kill_loop_soak")) return false;
    net::NetClient cli;
    CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
    cli.set_jitter_seed(test::seed(11));
    const std::int64_t t0 = now_ns();
    int completed = 0;
    for (int i = 0; i < n; ++i) {
      net::ClientResponse r;
      // Terminal-frame guarantee: under the kill loop every call must still
      // land kDone within its retry budget.
      if (cli.call(static_cast<std::uint32_t>(i),
                   static_cast<std::uint32_t>(i) % 8, r, co))
        ++completed;
    }
    elapsed = now_ns() - t0;
    CHECK_EQ(completed, n);
    cli.close();
    srv.shutdown();
    st_out = srv.stats();
    return true;
  };

  net::NetStats base_st, fault_st;
  std::int64_t base_ns = 0, fault_ns = 0;
  if (!run("", base_st, base_ns)) return;
  CHECK_EQ(base_st.worker_deaths, 0u);
  CHECK_EQ(base_st.fault_kills, 0u);

  char spec[64];
  std::snprintf(spec, sizeof spec, "kill_worker@req=%d", period);
  if (!run(spec, fault_st, fault_ns)) return;

  CHECK(fault_st.fault_kills >= static_cast<std::uint64_t>(n / period / 2));
  CHECK(fault_st.worker_deaths >= 1u);
  CHECK(fault_st.worker_respawns >= 1u);
  // Every death is answered by a respawn, except at most one abandoned when
  // shutdown caught a backoff in flight.
  CHECK(fault_st.worker_respawns <= fault_st.worker_deaths);
  CHECK(fault_st.worker_deaths - fault_st.worker_respawns <= 1u);
  CHECK_EQ(fault_st.respawns_exhausted, 0u);
  // Goodput under the kill loop: bounded degradation, not collapse. (The
  // 15%-of-fault-free acceptance number is measured in Release CI; here the
  // bound is loose enough for sanitizer builds.)
  CHECK(fault_ns < 5 * base_ns + 5'000'000'000);
  std::printf(
      "  kill-loop: n=%d period=%d kills=%llu deaths=%llu respawns=%llu "
      "goodput %.2fx of fault-free\n",
      n, period, static_cast<unsigned long long>(fault_st.fault_kills),
      static_cast<unsigned long long>(fault_st.worker_deaths),
      static_cast<unsigned long long>(fault_st.worker_respawns),
      fault_ns > 0 ? static_cast<double>(base_ns) / static_cast<double>(fault_ns)
                   : 0.0);
}

// (h) Degraded mode: overload crosses the high watermark, best-effort work
// is shed, the mode exits under hysteresis, and the books balance.
void test_degraded_mode() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 7);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.admission_capacity = 8;   // derived watermarks: enter at 7, exit at 2
  o.max_sessions = 4;         // make the queue actually back up
  o.launch_overhead_ns = 200'000;
  o.ds_batch = 8;
  o.ds_seed = 7;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "degraded_mode")) return;

  const int burst = 64;
  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  for (int i = 0; i < burst; ++i)
    CHECK(cli.send_request(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i) % 8, 0,
                           /*latency_class=*/i % 2 == 0 ? 0 : 2,
                           /*stream=*/false));
  int done = 0, retried = 0;
  for (int i = 0; i < burst; ++i) {
    net::ClientResponse r;
    CHECK(cli.wait(static_cast<std::uint32_t>(i), r));
    if (r.kind == net::ClientResponse::Kind::kDone) ++done;
    else ++retried;
  }
  ::usleep(50'000);  // drained: the event loop records the mode exit
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK_EQ(done + retried, burst);
  CHECK(st.degraded_entries >= 1u);
  CHECK(st.degraded_sheds >= 1u);  // best-effort class hit the shed path
  CHECK_EQ(st.degraded_entries, st.degraded_exits);
  // Sheds are accounted separately from queue-full 429s, and together they
  // explain every kRetry the client saw.
  CHECK_EQ(st.rejected_429 + st.degraded_sheds,
           static_cast<std::uint64_t>(retried));
  CHECK_EQ(st.completed, static_cast<std::uint64_t>(done));
}

// (i1) Authn: a missing/wrong token is refused before admission; the right
// token serves normally.
void test_auth_token() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 6, 23);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.auth_token = "sesame";
  o.ds_batch = 6;
  o.ds_seed = 23;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "auth_token")) return;

  net::NetClient anon;
  CHECK(anon.connect_tcp("127.0.0.1", srv.port()));
  CHECK(anon.send_request(1, 0));
  net::ClientResponse r;
  CHECK(anon.wait(1, r));
  CHECK(r.kind == net::ClientResponse::Kind::kError);
  CHECK_EQ(r.error_code,
           static_cast<std::uint32_t>(net::ErrorCode::kUnauthorized));
  // kUnauthorized is non-retryable: call() must fail fast, not burn its
  // whole deadline resubmitting a hopeless request.
  net::CallOptions co;
  co.deadline_ms = 10'000;
  const std::int64_t t0 = now_ns();
  CHECK(!anon.call(2, 0, r, co));
  CHECK(now_ns() - t0 < 5'000'000'000);
  anon.close();

  net::NetClient authed;
  CHECK(authed.connect_tcp("127.0.0.1", srv.port()));
  authed.set_auth("sesame");
  CHECK(authed.call(3, 0, r));
  CHECK(r.kind == net::ClientResponse::Kind::kDone);
  authed.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK_EQ(st.auth_rejects, 2u);
  CHECK_EQ(st.completed, 1u);
}

// (i2) Per-connection fairness: one connection cannot hold more than its
// in-flight cap; the overflow is kRetry, counted separately from 429s.
void test_fairness_cap() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 7);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.max_inflight_per_conn = 2;
  o.launch_overhead_ns = 500'000;  // the first two stay live while the rest land
  o.ds_batch = 8;
  o.ds_seed = 7;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "fairness_cap")) return;

  const int burst = 8;
  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  for (int i = 0; i < burst; ++i)
    CHECK(cli.send_request(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i) % 8, 0, 0,
                           /*stream=*/false));
  int done = 0, retried = 0;
  for (int i = 0; i < burst; ++i) {
    net::ClientResponse r;
    CHECK(cli.wait(static_cast<std::uint32_t>(i), r));
    if (r.kind == net::ClientResponse::Kind::kDone) ++done;
    else ++retried;
  }
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK_EQ(done + retried, burst);
  CHECK(st.fairness_rejects >= 1u);
  CHECK_EQ(st.fairness_rejects, static_cast<std::uint64_t>(retried));
  CHECK_EQ(st.rejected_429, 0u);  // capacity was never the constraint
  CHECK(done >= 2);               // the capped connection still got its share
}

// (j1) Short-write injection fragments every channel frame; outputs remain
// bitwise the solo reference — fragmentation is never data loss.
void test_short_write_parity() {
  if (!fault_or_skip("short_write_parity")) return;
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 6, 23);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.multiprocess = true;
  o.shards = 1;
  o.ds_batch = 6;
  o.ds_seed = 23;
  o.fault_spec = "short_write@p=0.5,seed=9";
  net::NetServer srv(nullptr, nullptr, o);
  if (!start_or_skip(srv, "short_write_parity")) return;

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  for (std::uint32_t i = 0; i < 6; ++i) {
    CHECK(cli.send_request(i, i % 6));
    net::ClientResponse r;
    CHECK(cli.wait(i, r));
    CHECK(r.kind == net::ClientResponse::Kind::kDone);
    const std::vector<float> solo = solo_outputs(p, ds, i % 6);
    CHECK_EQ(r.output.size(), solo.size());
    for (std::size_t j = 0; j < solo.size(); ++j)
      CHECK(r.output[j] == solo[j]);  // bitwise through injected fragmentation
    CHECK_EQ(r.token_recv_ns.size(), static_cast<std::size_t>(r.tokens));
  }
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK(st.fault_short_writes >= 1u);  // router→worker sends were clamped
  CHECK_EQ(st.completed, 6u);
  CHECK_EQ(st.errors, 0u);
  CHECK_EQ(st.worker_deaths, 0u);
}

// (j2) A wedged worker (stops reading, pings unanswered) trips the liveness
// timeout, is SIGKILLed and respawned; the client's retry completes the
// request on the fresh process.
void test_wedge_liveness_respawn() {
  if (!fault_or_skip("wedge_liveness")) return;

  net::NetOptions o;
  o.multiprocess = true;
  o.shards = 1;
  o.ds_batch = 6;
  o.ds_seed = 23;
  o.fault_spec = "wedge_shard@req=3,dur_ms=2000";
  o.ping_interval_ns = 50'000'000;
  o.liveness_timeout_ns = 200'000'000;  // well under the wedge duration
  o.respawn_backoff_ns = 5'000'000;
  o.respawn_backoff_cap_ns = 100'000'000;
  net::NetServer srv(nullptr, nullptr, o);
  if (!start_or_skip(srv, "wedge_liveness")) return;

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  cli.set_jitter_seed(test::seed(13));
  net::CallOptions co;
  co.deadline_ms = 30'000;
  co.max_attempts = 100;
  co.backoff_base_ms = 2;
  co.backoff_cap_ms = 50;
  co.stream = false;
  for (std::uint32_t i = 0; i < 5; ++i) {
    net::ClientResponse r;
    CHECK(cli.call(i, i % 6, r, co));
    CHECK(r.kind == net::ClientResponse::Kind::kDone);
  }
  CHECK(cli.stats().retries >= 1);  // the wedged request came back kError
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK(st.worker_deaths >= 1u);   // liveness, not EOF, declared this death
  CHECK(st.worker_respawns >= 1u);
  CHECK_EQ(st.respawns_exhausted, 0u);
}

}  // namespace

int main(int argc, char** argv) {
  // Worker host: the multi-process fleet re-execs this binary.
  if (argc > 1 && std::strcmp(argv[1], "--shard-worker") == 0)
    return net::shard_worker_main(argc, argv);

  test_fault_spec_parser();
  test_backoff_determinism();
  test_config_validation_dies();
  test_frame_reader_fuzz();
  test_client_deadline();
  test_client_retry_on_429();
  test_supervisor_respawn();
  test_respawn_budget_exhaustion();
  test_kill_loop_soak();
  test_degraded_mode();
  test_auth_token();
  test_fairness_cap();
  test_short_write_parity();
  test_wedge_liveness_respawn();
  if (g_skips > 0)
    std::printf("note: %d fault test(s) skipped\n", g_skips);
  return acrobat::test::finish("test_fault");
}
