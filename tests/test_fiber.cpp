// Fiber scheduler semantics: cooperative interleaving, all-blocked wakeups,
// and engine integration (blocked instances batch across a sync point).
#include "engine/engine.h"
#include "runtime/fiber.h"
#include "support/rng.h"
#include "test_util.h"

#include <string>
#include <vector>

using namespace acrobat;

namespace {

void test_interleaving_order() {
  FiberScheduler fs;
  std::string trace;
  std::vector<FiberTask> tasks;
  for (int i = 0; i < 3; ++i)
    tasks.push_back([&, i] {
      trace += static_cast<char>('a' + i);
      fs.block_current();
      trace += static_cast<char>('A' + i);
    });
  int wakes = 0;
  fs.run(std::move(tasks), [&] { ++wakes; });
  CHECK(trace == "abcABC");
  CHECK_EQ(wakes, 1);
  CHECK_EQ(fs.idle_triggers(), 1);
}

void test_engine_sync_batches_across_instances() {
  KernelRegistry reg;
  const Shape x(8), w(8, 8);
  const Shape reps[2] = {x, w};
  const int k_dense = reg.add("t.dense", OpKind::kDense, 0, 2, reps);

  TensorPool pool;
  Rng rng(3);
  const Tensor wt = pool.alloc_random(Shape(8, 8), rng, 0.5f);
  std::vector<Tensor> xs;
  for (int i = 0; i < 8; ++i) xs.push_back(pool.alloc_random(RowVec(8), rng, 1.0f));

  EngineConfig cfg;
  Engine eng(reg, cfg);
  const TRef wref = eng.add_concrete(wt.view());

  FiberScheduler fs;
  eng.set_fiber_scheduler(&fs);
  std::vector<FiberTask> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back([&, i] {
      InstCtx ctx{i};
      const TRef xr = eng.add_concrete(xs[static_cast<std::size_t>(i)].view());
      const TRef ins[2] = {xr, wref};
      const TRef d = eng.add_op(k_dense, ins, 2, ctx, 0);
      // Data-dependent decision: suspends this instance.
      const float v = eng.scalar(d);
      const TRef ins2[2] = {d, wref};
      if (v < 1e30f) eng.add_op(k_dense, ins2, 2, ctx, 0);
    });
  fs.run(std::move(tasks), [&] { eng.trigger_execution(); });
  eng.set_fiber_scheduler(nullptr);
  eng.trigger_execution();

  // All 8 first-stage denses batch into one launch despite every instance
  // syncing on its own result, and the post-sync denses into another.
  CHECK_EQ(eng.stats().kernel_launches, 2);
  CHECK_EQ(fs.idle_triggers(), 1);
}

void test_instance_at_a_time_fallback() {
  KernelRegistry reg;
  const Shape x(8), w(8, 8);
  const Shape reps[2] = {x, w};
  const int k_dense = reg.add("t.dense", OpKind::kDense, 0, 2, reps);
  TensorPool pool;
  Rng rng(3);
  const Tensor wt = pool.alloc_random(Shape(8, 8), rng, 0.5f);

  EngineConfig cfg;
  Engine eng(reg, cfg);
  const TRef wref = eng.add_concrete(wt.view());
  for (int i = 0; i < 8; ++i) {
    InstCtx ctx{i};
    const Tensor xt = pool.alloc_random(RowVec(8), rng, 1.0f);
    const TRef xr = eng.add_concrete(xt.view());
    const TRef ins[2] = {xr, wref};
    const TRef d = eng.add_op(k_dense, ins, 2, ctx, 0);
    (void)eng.scalar(d);  // no fibers: forces a trigger per instance
  }
  CHECK_EQ(eng.stats().kernel_launches, 8);
}

void test_dynamic_admission() {
  // A fiber admitted while earlier fibers are suspended runs in the same
  // scheduling round and wakes with them — the serving-layer primitive.
  FiberScheduler fs;
  std::string trace;
  fs.spawn([&] {
    trace += 'a';
    fs.block_current();
    trace += 'A';
  });
  fs.spawn([&] {
    trace += 'b';
    fs.block_current();
    trace += 'B';
  });
  fs.step_ready();
  CHECK(fs.any_blocked());
  CHECK_EQ(fs.live(), 2);
  fs.spawn([&] {
    trace += 'c';
    fs.block_current();
    trace += 'C';
  });
  fs.step_ready();  // only the newly admitted fiber is ready
  CHECK(trace == "abc");
  fs.wake_blocked();
  fs.step_ready();
  CHECK(trace == "abcABC");
  CHECK_EQ(fs.idle_triggers(), 1);
  CHECK_EQ(fs.reap_done(), 3);
  CHECK_EQ(fs.live(), 0);
}

void test_stack_pool_reuse() {
  // Fibers are created per request under serving load; stacks must come
  // from the free list, not a fresh allocation per fiber.
  FiberScheduler fs;
  for (int round = 0; round < 4; ++round) {
    std::vector<FiberTask> tasks;
    for (int i = 0; i < 3; ++i)
      tasks.push_back([&] { fs.block_current(); });
    fs.run(std::move(tasks), [] {});
  }
  CHECK_EQ(fs.stacks_allocated(), 3);  // peak concurrency, not 4x3
}

}  // namespace

int main() {
  test_interleaving_order();
  test_engine_sync_batches_across_instances();
  test_instance_at_a_time_fallback();
  test_dynamic_admission();
  test_stack_pool_reuse();
  return acrobat::test::finish("test_fiber");
}
