// Serving-layer acceptance (ISSUE 2 / DESIGN.md §7):
//  (a) continuous batching across requests is bitwise identical to running
//      each request solo — the batching-never-changes-results invariant
//      extends across requests;
//  (b) with arrivals spread over time, continuous batching launches
//      strictly fewer kernels than one-request-at-a-time execution;
//  (c) a 2-shard run partitions requests across independent engines with
//      no cross-shard state sharing;
//  (d) epoch recycling (ISSUE 3) is observation-free: recycling on vs off
//      is bitwise-identical in outputs and exact in kernel_launches.
// Plus units: percentile math, seeded load generation, the SPSC inbox, and
// the policy family.
#include "serve/server.h"
#include "serve/spsc.h"
#include "test_util.h"

#include <cmath>
#include <cstdio>
#include <utility>

using namespace acrobat;

namespace {

models::Dataset solo_dataset(const models::Dataset& ds, std::size_t idx) {
  models::Dataset one;
  one.pool = ds.pool;
  one.tensors = ds.tensors;
  one.inputs.push_back(ds.inputs[idx]);
  return one;
}

std::vector<float> solo_outputs(const harness::Prepared& p, const models::Dataset& ds,
                                std::size_t idx) {
  harness::RunOptions o;
  o.collect_outputs = true;
  const harness::RunResult r = harness::run_acrobat(p, solo_dataset(ds, idx), o);
  return r.outputs.at(0);
}

// Fixed-gap arrivals: "spread over time", deterministic.
std::vector<serve::Request> spread_trace(int n, std::size_t n_inputs,
                                         std::int64_t gap_ns) {
  std::vector<serve::Request> trace;
  for (int i = 0; i < n; ++i)
    trace.push_back(serve::Request{i, static_cast<std::size_t>(i) % n_inputs,
                                   static_cast<std::int64_t>(i) * gap_ns});
  return trace;
}

void test_percentiles() {
  // Percentiles are histogram-backed (DESIGN.md §9): quantiles land within
  // the bucket resolution (~4.4% relative) of exact nearest-rank, while
  // count/mean/max stay exact. tests/test_trace.cpp checks the error bound
  // systematically; this is the serve-facing contract.
  const auto tol = [](double v) {
    return v * (serve::LatencyHisto::kRelError + 0.01);
  };
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  const serve::Percentiles p = serve::Percentiles::of(xs);
  CHECK_NEAR(p.p50, 50.0, tol(50.0));
  CHECK_NEAR(p.p95, 95.0, tol(95.0));
  CHECK_NEAR(p.p99, 99.0, tol(99.0));
  CHECK_NEAR(p.mean, 50.5, 1e-9);  // exact: tracked outside the buckets
  CHECK_EQ(static_cast<int>(p.max), 100);
  CHECK_EQ(p.count, 100);
  CHECK_EQ(serve::Percentiles::of({}).count, 0);

  // p99.9 needs 1000+ samples to separate from p99 under nearest-rank.
  std::vector<double> ys;
  for (int i = 1; i <= 1000; ++i) ys.push_back(i);
  const serve::Percentiles q = serve::Percentiles::of(ys);
  CHECK_NEAR(q.p99, 990.0, tol(990.0));
  CHECK_NEAR(q.p999, 999.0, tol(999.0));
  CHECK(q.p999 >= q.p99);
  // Deadline attainment: fraction of samples at or under the deadline.
  // Interior deadlines interpolate inside a bucket (±5%); at or past the
  // observed max the answer is exact — "every request met its SLO" must
  // read 1.0, and a deadline below every sample must read 0.
  CHECK_NEAR(q.attainment(500.0), 0.5, 0.05);
  CHECK_NEAR(q.attainment(0.5), 0.0, 1e-12);
  CHECK_NEAR(q.attainment(1000.0), 1.0, 1e-12);
  CHECK_NEAR(q.attainment(2000.0), 1.0, 1e-12);
  CHECK_NEAR(serve::Percentiles::of({}).attainment(1.0), 1.0, 1e-12);  // vacuous
}

void test_load_generator() {
  serve::LoadSpec spec;
  spec.rate_rps = 10000;
  spec.num_requests = 200;
  spec.seed = 7;
  const auto a = serve::generate_load(spec, 8);
  const auto b = serve::generate_load(spec, 8);
  CHECK_EQ(a.size(), 200);
  for (std::size_t i = 0; i < a.size(); ++i) {
    CHECK_EQ(a[i].id, static_cast<int>(i));
    CHECK(a[i].input_index < 8);
    CHECK(a[i].arrival_ns == b[i].arrival_ns);  // deterministic under seed
    CHECK(a[i].input_index == b[i].input_index);
    if (i > 0) CHECK(a[i].arrival_ns >= a[i - 1].arrival_ns);
  }
  // Mean inter-arrival tracks 1/rate (100us) within Poisson noise.
  const double mean_gap =
      static_cast<double>(a.back().arrival_ns) / static_cast<double>(a.size() - 1);
  CHECK(mean_gap > 50e3 && mean_gap < 200e3);

  serve::LoadSpec burst = spec;
  burst.kind = serve::ArrivalKind::kBurst;
  burst.burst_size = 8;
  const auto c = serve::generate_load(burst, 8);
  CHECK_EQ(c.size(), 200);
  // Full bursts share one arrival instant.
  for (std::size_t i = 0; i + 8 <= c.size(); i += 8)
    for (std::size_t j = 1; j < 8; ++j)
      CHECK(c[i + j].arrival_ns == c[i].arrival_ns);
}

// Mixed-model traces are a pure function of (spec, mix): same seed, same
// trace, across repeated calls — serving config (shard count etc.) never
// feeds back into generation. Model/input/class draws respect the mix.
void test_mixed_load_determinism() {
  serve::LoadSpec spec;
  spec.rate_rps = 5000;
  spec.num_requests = 300;
  spec.seed = 13;
  std::vector<serve::ModelMix> mix(2);
  mix[0] = serve::ModelMix{0, 3.0, 8, 0.5, 0.3};
  mix[1] = serve::ModelMix{1, 1.0, 5, 0.2, 0.0};

  const auto a = serve::generate_load(spec, mix);
  const auto b = serve::generate_load(spec, mix);
  CHECK_EQ(a.size(), 300);
  int per_model[2] = {0, 0};
  bool classes_seen[3] = {false, false, false};
  for (std::size_t i = 0; i < a.size(); ++i) {
    CHECK_EQ(a[i].id, static_cast<int>(i));
    CHECK(a[i].arrival_ns == b[i].arrival_ns);
    CHECK(a[i].model_id == b[i].model_id);
    CHECK(a[i].input_index == b[i].input_index);
    CHECK(a[i].latency_class == b[i].latency_class);
    CHECK(a[i].model_id == 0 || a[i].model_id == 1);
    CHECK(a[i].input_index < mix[static_cast<std::size_t>(a[i].model_id)].num_inputs);
    classes_seen[static_cast<int>(a[i].latency_class)] = true;
    ++per_model[a[i].model_id];
  }
  // 3:1 weighting within Binomial noise; every class occurs at these sizes.
  CHECK(per_model[0] > per_model[1]);
  CHECK(classes_seen[0] && classes_seen[1] && classes_seen[2]);

  // The single-model overload is the degenerate mix, bit for bit.
  serve::LoadSpec one = spec;
  const auto c = serve::generate_load(one, 8);
  const auto d = serve::generate_load(one, {serve::ModelMix{0, 1.0, 8, 1.0, 0.0}});
  CHECK_EQ(c.size(), d.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    CHECK(c[i].arrival_ns == d[i].arrival_ns);
    CHECK(c[i].input_index == d[i].input_index);
    CHECK(c[i].model_id == 0 && d[i].model_id == 0);
    CHECK(c[i].latency_class == serve::LatencyClass::kInteractive);
  }
}

// Nonsense configurations abort loudly instead of silently clamping.
// Unlike the Debug-only generation checks (test_engine_recycle.cpp), config
// validation aborts via fprintf+abort in every build type.
using acrobat::test::dies;

void test_config_validation_dies() {
  CHECK(dies([] {
    serve::LoadSpec spec;
    spec.rate_rps = 0;
    (void)serve::generate_load(spec, 8);
  }));
  CHECK(dies([] {
    serve::LoadSpec spec;
    spec.num_requests = 0;
    (void)serve::generate_load(spec, 8);
  }));
  CHECK(dies([] {
    serve::LoadSpec spec;
    spec.kind = serve::ArrivalKind::kBurst;
    spec.burst_size = -1;
    (void)serve::generate_load(spec, 8);
  }));
  CHECK(dies([] {
    serve::ServeOptions so;
    so.shards = 0;
    serve::validate(so);
  }));
  CHECK(dies([] {
    serve::ServeOptions so;
    so.launch_overhead_ns = -1;
    serve::validate(so);
  }));
  // Sane configs pass through untouched.
  serve::ServeOptions ok;
  serve::validate(ok);
  serve::LoadSpec ls;
  serve::validate(ls);
}

// The serve() trace contract ("sorted by arrival_ns with ids 0..N-1") is
// validated loudly at entry — a hand-built trace that violates it must
// abort in every build type, not index records out of bounds in Release.
void test_trace_contract_dies() {
  const models::ModelSpec& spec = models::model_by_name("BiRNN");
  const models::Dataset ds = spec.build_dataset(false, 4, 43);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
  CHECK(dies([&] {
    auto bad = spread_trace(4, ds.inputs.size(), 1000);
    bad[2].id = 7;  // re-numbered
    (void)serve::serve(p, ds, bad, serve::ServeOptions{});
  }));
  CHECK(dies([&] {
    auto bad = spread_trace(4, ds.inputs.size(), 1000);
    std::swap(bad[1].arrival_ns, bad[2].arrival_ns);  // unsorted
    (void)serve::serve(p, ds, bad, serve::ServeOptions{});
  }));
  CHECK(dies([&] {
    auto bad = spread_trace(4, ds.inputs.size(), 1000);
    bad[3].input_index = 999;  // outside the dataset
    (void)serve::serve(p, ds, bad, serve::ServeOptions{});
  }));
  // The contract-conforming trace from the same builder serves fine.
  const auto good = spread_trace(4, ds.inputs.size(), 1000);
  CHECK_EQ(serve::serve(p, ds, good, serve::ServeOptions{}).records.size(), 4);
}

// A negative or non-finite latency sample is an upstream bug (unset
// completion_ns flowing through latency_ms()); the histogram rejects it
// loudly instead of silently corrupting bucket 0.
void test_histo_rejects_bad_samples() {
  CHECK(dies([] {
    serve::LatencyHisto h;
    h.add(-1.0);
  }));
  CHECK(dies([] {
    serve::LatencyHisto h;
    h.add(std::nan(""));
  }));
  serve::LatencyHisto h;
  h.add(0.0);  // zero is a legal same-tick sample
  CHECK_EQ(h.count(), 1);
}

void test_spsc_queue() {
  serve::SpscQueue<int> q(3);  // rounds up to 4
  CHECK(q.empty_hint());
  for (int i = 0; i < 4; ++i) CHECK(q.push(i));
  int v = -1;
  CHECK(q.pop(v));
  CHECK_EQ(v, 0);
  CHECK(q.push(4));
  for (int want = 1; want <= 4; ++want) {
    CHECK(q.pop(v));
    CHECK_EQ(v, want);
  }
  CHECK(!q.pop(v));
  CHECK(!q.closed());
  q.close();
  CHECK(q.closed());
}

// (a) Serving N requests through continuous batching produces bitwise-
// identical outputs to running each request alone.
void test_serve_matches_solo() {
  for (const char* name : {"TreeLSTM", "Berxit"}) {  // recursive + TDCF
    const models::ModelSpec& spec = models::model_by_name(name);
    const models::Dataset ds = spec.build_dataset(false, 6, 11);
    harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

    const auto trace = spread_trace(10, ds.inputs.size(), 20'000);
    serve::ServeOptions so;
    so.collect_outputs = true;
    const serve::ServeResult res = serve::serve(p, ds, trace, so);

    CHECK_EQ(res.records.size(), 10);
    for (const serve::RequestRecord& rec : res.records) {
      CHECK(rec.completion_ns >= rec.arrival_ns);
      CHECK(rec.shard == 0);
      const std::vector<float> solo =
          solo_outputs(p, ds, trace[static_cast<std::size_t>(rec.id)].input_index);
      CHECK_EQ(rec.output.size(), solo.size());
      for (std::size_t i = 0; i < solo.size(); ++i)
        CHECK(rec.output[i] == solo[i]);  // bitwise, not approximate
    }
    CHECK_EQ(res.latency_ms.count, 10);
  }
}

// (b) Requests arriving over time still batch: strictly fewer launches
// than executing each request one at a time.
void test_continuous_batching_reduces_launches() {
  const models::ModelSpec& spec = models::model_by_name("TreeLSTM");
  const models::Dataset ds = spec.build_dataset(false, 6, 13);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const int n = 12;
  long long solo_total = 0;
  for (int i = 0; i < n; ++i) {
    harness::RunOptions o;
    solo_total += harness::run_acrobat(p, solo_dataset(ds, static_cast<std::size_t>(i) %
                                                               ds.inputs.size()),
                                       o)
                      .stats.kernel_launches;
  }

  // Service time (20us simulated launch overhead per batch) dwarfs the
  // 20us arrival gaps, so the live pool builds up and requests co-batch.
  const auto trace = spread_trace(n, ds.inputs.size(), 20'000);
  serve::ServeOptions so;
  so.launch_overhead_ns = 20'000;
  const serve::ServeResult res = serve::serve(p, ds, trace, so);

  const long long cont = res.total_launches();
  if (cont >= solo_total)
    std::printf("continuous=%lld solo=%lld\n", cont, solo_total);
  CHECK(cont < solo_total);
  CHECK(res.shards.at(0).triggers > 0);
  // The fiber pool recycles stacks: allocations track peak concurrency,
  // not the request count.
  CHECK(res.shards.at(0).stacks_allocated <= n);
}

// (c) Two shards partition the requests; each shard owns its own engine
// (independent launch counters), nothing is shared across shards.
void test_two_shards_partition() {
  const models::ModelSpec& spec = models::model_by_name("TreeLSTM");
  const models::Dataset ds = spec.build_dataset(false, 6, 17);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const int n = 12;
  const auto trace = spread_trace(n, ds.inputs.size(), 10'000);
  serve::ServeOptions so;
  so.shards = 2;
  so.dispatch = serve::DispatchKind::kRoundRobin;
  so.collect_outputs = true;
  const serve::ServeResult res = serve::serve(p, ds, trace, so);

  CHECK_EQ(res.shards.size(), 2);
  int per_shard[2] = {0, 0};
  for (const serve::RequestRecord& rec : res.records) {
    CHECK(rec.shard == rec.id % 2);  // round-robin partition
    ++per_shard[rec.shard];
    // Partitioning never changes results either.
    const std::vector<float> solo =
        solo_outputs(p, ds, trace[static_cast<std::size_t>(rec.id)].input_index);
    CHECK_EQ(rec.output.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) CHECK(rec.output[i] == solo[i]);
  }
  CHECK_EQ(per_shard[0], n / 2);
  CHECK_EQ(per_shard[1], n / 2);
  CHECK_EQ(res.shards[0].requests, n / 2);
  CHECK_EQ(res.shards[1].requests, n / 2);
  // Independent engines: each shard did its own (nonzero) launches.
  CHECK(res.shards[0].stats.kernel_launches > 0);
  CHECK(res.shards[1].stats.kernel_launches > 0);
}

// Epoch recycling is memory management only: an identical seeded trace with
// recycling on vs off produces bitwise-identical per-request outputs and an
// identical kernel_launches count. Determinism setup: all requests arrive
// at t=0 and a deadline policy with min_batch == N holds the first trigger
// until the whole cohort is admitted — from there the shard is single-
// threaded and batch composition is fixed, so launch counts are exactly
// comparable across the two runs.
void test_recycling_parity() {
  for (const char* name : {"TreeLSTM", "Berxit"}) {  // recursive + TDCF
    const models::ModelSpec& spec = models::model_by_name(name);
    const models::Dataset ds = spec.build_dataset(false, 6, 37);
    harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

    const int n = 16;
    const auto trace = spread_trace(n, ds.inputs.size(), 0);
    const auto run = [&](bool recycle) {
      serve::ServeOptions so;
      so.collect_outputs = true;
      so.recycle = recycle;
      so.policy.kind = serve::PolicyKind::kDeadline;
      so.policy.min_batch = n;
      so.policy.slo_ns = 10'000'000'000;      // never trigger early on SLO
      // Renewed on every loop pass while arrivals trickle in; generous so a
      // descheduled dispatcher on a loaded CI runner can't split the cohort
      // (a partial first trigger would break exact launch parity). Normal
      // runs never wait it out — the hold ends once all n are admitted.
      so.policy.max_hold_ns = 10'000'000'000;
      return serve::serve(p, ds, trace, so);
    };

    const serve::ServeResult on = run(true);
    const serve::ServeResult off = run(false);

    CHECK_EQ(on.shards.at(0).stats.kernel_launches, off.shards.at(0).stats.kernel_launches);
    for (int i = 0; i < n; ++i) {
      const auto& a = on.records[static_cast<std::size_t>(i)].output;
      const auto& b = off.records[static_cast<std::size_t>(i)].output;
      CHECK_EQ(a.size(), b.size());
      for (std::size_t j = 0; j < a.size(); ++j) CHECK(a[j] == b[j]);  // bitwise
    }
    // The on-run actually recycled; the off-run grew append-only.
    CHECK(on.shards.at(0).mem.nodes_recycled > 0);
    CHECK_EQ(off.shards.at(0).mem.nodes_recycled, 0);
    CHECK(on.shards.at(0).mem.node_table_size <= off.shards.at(0).mem.node_table_size);
  }
}

void test_max_batch_policy_caps_pool() {
  const models::ModelSpec& spec = models::model_by_name("BiRNN");
  const models::Dataset ds = spec.build_dataset(false, 6, 19);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  // Everything arrives at once; the policy must still cap the live pool.
  const auto trace = spread_trace(10, ds.inputs.size(), 0);
  serve::ServeOptions so;
  so.policy.kind = serve::PolicyKind::kMaxBatch;
  so.policy.max_batch = 2;
  const serve::ServeResult res = serve::serve(p, ds, trace, so);
  CHECK_EQ(res.shards.at(0).requests, 10);
  CHECK(res.shards.at(0).max_live <= 2);
  for (const serve::RequestRecord& rec : res.records) CHECK(rec.completion_ns >= 0);
}

// Least-loaded ties break to the lowest shard index: every arrival that
// finds all shards idle (gaps far longer than the service time) must land
// on shard 0, deterministically — no hash, no rotation.
void test_least_loaded_tie_break() {
  const models::ModelSpec& spec = models::model_by_name("BiRNN");
  const models::Dataset ds = spec.build_dataset(false, 4, 41);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const int n = 5;
  const auto trace = spread_trace(n, ds.inputs.size(), 50'000'000);  // 50ms gaps
  // (gaps dwarf the ~ms service time even under ASan, so each arrival
  // finds every shard idle — a genuine 3-way tie)
  serve::ServeOptions so;
  so.shards = 3;
  so.dispatch = serve::DispatchKind::kLeastLoaded;
  const serve::ServeResult res = serve::serve(p, ds, trace, so);

  for (const serve::RequestRecord& rec : res.records) {
    CHECK_EQ(rec.shard, 0);  // all-idle tie → lowest index, every time
    CHECK(rec.completion_ns >= 0);
  }
  CHECK_EQ(res.shards.at(0).requests, n);
  CHECK_EQ(res.shards.at(1).requests, 0);
  CHECK_EQ(res.shards.at(2).requests, 0);
}

void test_deadline_policy_and_least_loaded() {
  const models::ModelSpec& spec = models::model_by_name("DRNN");
  const models::Dataset ds = spec.build_dataset(false, 6, 23);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  const auto trace = spread_trace(10, ds.inputs.size(), 15'000);
  serve::ServeOptions so;
  so.shards = 2;
  so.dispatch = serve::DispatchKind::kLeastLoaded;
  so.policy.kind = serve::PolicyKind::kDeadline;
  so.policy.min_batch = 3;
  so.policy.slo_ns = 5'000'000;
  so.policy.max_hold_ns = 100'000;
  const serve::ServeResult res = serve::serve(p, ds, trace, so);

  int total = 0;
  for (const serve::ShardReport& s : res.shards) total += s.requests;
  CHECK_EQ(total, 10);
  for (const serve::RequestRecord& rec : res.records) {
    CHECK(rec.shard == 0 || rec.shard == 1);
    CHECK(rec.completion_ns >= rec.admit_ns);
    CHECK(rec.admit_ns >= rec.arrival_ns);
  }
  CHECK(res.throughput_rps > 0);
}

}  // namespace

int main() {
  test_percentiles();
  test_load_generator();
  test_mixed_load_determinism();
  test_config_validation_dies();
  test_trace_contract_dies();
  test_histo_rejects_bad_samples();
  test_spsc_queue();
  test_least_loaded_tie_break();
  test_serve_matches_solo();
  test_continuous_batching_reduces_launches();
  test_two_shards_partition();
  test_recycling_parity();
  test_max_batch_policy_caps_pool();
  test_deadline_policy_and_least_loaded();
  return acrobat::test::finish("test_serve");
}
