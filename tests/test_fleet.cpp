// Fleet-layer acceptance (ISSUE 4 / DESIGN.md §8):
//  (a) a 2-model fleet run — models merged into one module, fibers
//      multiplexed into one engine per shard — is bitwise identical, per
//      request, to per-model solo serve runs (both shard modes);
//  (b) SLO shedding kicks in only past saturation: zero sheds at low rate,
//      sheds at overload, and goodput with shedding is no worse than the
//      latency-only attainment of the same overload without shedding;
//  (c) closed-loop mode completes all K×M requests, with deterministic
//      seeded content and per-client issue ordering;
//  (d) a mixed-model soak keeps per-shard node slots, arena pages, and the
//      per-model persistent region plateaued — recycling holds across
//      models sharing one engine (ACROBAT_SERVE_REQUESTS overrides the
//      trace length; default 5000).
// Plus units: fleet policy triage, class-affinity routing, and registry
// misuse aborts.
#include "fleet/fleet.h"
#include "test_util.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace acrobat;

namespace {

using acrobat::test::env_requests;

models::Dataset dataset_of(const char* name, int batch, std::uint64_t seed) {
  return models::model_by_name(name).build_dataset(false, batch, seed);
}

// A registry over TreeLSTM (recursive) + BiRNN (iterative, phase-tagged):
// two control-flow classes sharing one merged module.
fleet::ModelRegistry two_model_registry() {
  fleet::ModelRegistry reg;
  reg.add(models::model_by_name("TreeLSTM"), false, dataset_of("TreeLSTM", 6, 11));
  reg.add(models::model_by_name("BiRNN"), false, dataset_of("BiRNN", 6, 19));
  reg.prepare();
  return reg;
}

// No-SLO policy: FIFO admission, nothing deprioritized or shed — parity
// and soak runs must not depend on deadline timing.
fleet::FleetPolicyConfig no_slo_policy() {
  fleet::FleetPolicyConfig pc;
  pc.deadline_ns = {0, 0, 0};
  return pc;
}

// Deterministic mixed trace: models interleaved, fixed arrival gaps.
std::vector<serve::Request> interleaved_trace(int n, const fleet::ModelRegistry& reg,
                                              std::int64_t gap_ns) {
  std::vector<serve::Request> trace;
  for (int i = 0; i < n; ++i) {
    serve::Request r;
    r.id = i;
    r.model_id = i % reg.num_models();
    r.input_index = static_cast<std::size_t>(i / reg.num_models()) %
                    reg.model(r.model_id).dataset.inputs.size();
    r.arrival_ns = static_cast<std::int64_t>(i) * gap_ns;
    trace.push_back(r);
  }
  return trace;
}

// (a) Fleet multiplexing is observation-free: each request's outputs are
// bitwise identical to a per-model solo serve run — across models sharing
// one engine (mux) and across per-model engines (iso).
void test_fleet_parity_with_solo_serve() {
  fleet::ModelRegistry reg = two_model_registry();
  const int n = 12;
  const auto trace = interleaved_trace(n, reg, 20'000);

  // Per-model solo serve baselines: same model spec, same dataset seeds,
  // prepared stand-alone (harness::prepare).
  std::map<int, std::vector<std::vector<float>>> solo;  // model -> outputs in trace order
  for (int m = 0; m < reg.num_models(); ++m) {
    const models::ModelSpec& spec = models::model_by_name(reg.model(m).name);
    const models::Dataset ds = dataset_of(reg.model(m).name.c_str(), 6, m == 0 ? 11 : 19);
    harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
    std::vector<serve::Request> mtrace;
    for (const serve::Request& r : trace) {
      if (r.model_id != m) continue;
      serve::Request s;
      s.id = static_cast<int>(mtrace.size());
      s.input_index = r.input_index;
      s.arrival_ns = static_cast<std::int64_t>(mtrace.size()) * 20'000;
      mtrace.push_back(s);
    }
    serve::ServeOptions so;
    so.collect_outputs = true;
    const serve::ServeResult sres = serve::serve(p, ds, mtrace, so);
    for (const serve::RequestRecord& rec : sres.records)
      solo[m].push_back(rec.output);
  }

  for (const bool multiplex : {true, false}) {
    fleet::FleetOptions fo;
    fo.multiplex = multiplex;
    fo.collect_outputs = true;
    fo.policy = no_slo_policy();
    const fleet::FleetResult res = fleet::serve_fleet(reg, trace, fo);

    CHECK_EQ(res.records.size(), n);
    CHECK_EQ(res.shed, 0);
    std::map<int, std::size_t> seen;  // model -> next solo index
    for (const serve::RequestRecord& rec : res.records) {
      CHECK(!rec.shed);
      CHECK(rec.completion_ns >= rec.arrival_ns);
      const int m = trace[static_cast<std::size_t>(rec.id)].model_id;
      const std::vector<float>& want = solo[m][seen[m]++];
      CHECK_EQ(rec.output.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        CHECK(rec.output[i] == want[i]);  // bitwise, not approximate
    }
    // Multiplexed: one engine per shard, so both models' constants share
    // one persistent region; isolated: one engine per model.
    CHECK_EQ(res.shards.size(), 1);
    CHECK(res.shards[0].stats.kernel_launches > 0);
  }
}

// Shape-keyed kernel dedupe (ROADMAP item / ISSUE 5): kernels that agree on
// (op, attr, arity, representative shapes) but were registered under
// different model prefixes — BiRNN's fwd/bwd GRU cells, the two models'
// zero-state constants — collapse into one merged-registry entry, so their
// ops land in the same (depth, kernel) buckets and share launches. The
// deduped fleet must launch STRICTLY fewer kernels than the name-keyed one
// on the same trace, with bitwise-identical per-request outputs.
// Determinism setup (cf. test_serve's recycling parity): all arrivals at
// t=0 and a deadline policy holding the first trigger until the whole
// cohort is admitted, so batch composition is fixed across both runs.
void test_registry_kernel_dedupe() {
  const int n = 12;
  const auto build = [&](bool dedupe) {
    fleet::ModelRegistry reg{passes::PipelineConfig{}, dedupe};
    reg.add(models::model_by_name("TreeLSTM"), false, dataset_of("TreeLSTM", 6, 11));
    reg.add(models::model_by_name("BiRNN"), false, dataset_of("BiRNN", 6, 19));
    reg.prepare();
    return reg;
  };
  const fleet::ModelRegistry on = build(true);
  const fleet::ModelRegistry off = build(false);
  CHECK(on.compiled().module.registry.structural_dupes() > 0);
  CHECK_EQ(off.compiled().module.registry.structural_dupes(), 0);
  CHECK(on.compiled().module.registry.num_kernels() <
        off.compiled().module.registry.num_kernels());

  const auto run = [&](const fleet::ModelRegistry& reg) {
    std::vector<serve::Request> trace = interleaved_trace(n, reg, 0);
    fleet::FleetOptions fo;
    fo.collect_outputs = true;
    fo.policy = no_slo_policy();
    fo.policy.base.kind = serve::PolicyKind::kDeadline;
    fo.policy.base.min_batch = n;
    fo.policy.base.slo_ns = 10'000'000'000;       // never trigger early on SLO
    fo.policy.base.max_hold_ns = 10'000'000'000;  // hold until the cohort is in
    return fleet::serve_fleet(reg, trace, fo);
  };
  const fleet::FleetResult a = run(on);
  const fleet::FleetResult b = run(off);
  CHECK_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ao = a.records[i].output;
    const auto& bo = b.records[i].output;
    CHECK_EQ(ao.size(), bo.size());
    for (std::size_t j = 0; j < ao.size(); ++j) CHECK(ao[j] == bo[j]);  // bitwise
  }
  std::printf("dedupe: %zu vs %zu kernels (%lld dupes) | launches %lld vs %lld\n",
              on.compiled().module.registry.num_kernels(),
              off.compiled().module.registry.num_kernels(),
              on.compiled().module.registry.structural_dupes(),
              a.shards[0].stats.kernel_launches, b.shards[0].stats.kernel_launches);
  CHECK(a.shards[0].stats.kernel_launches < b.shards[0].stats.kernel_launches);
}

// Schedule memoization across a merged two-model module (ISSUE 6): plan
// keys are built from post-dedupe kernel ids, so a structurally-recurring
// mixed cohort replays cached plans spanning BOTH models' ops. Three
// identical 12-request cohorts all arrive at t=0 and a deadline policy with
// min_batch == max_admit == 12 carves them back out: the hold waits until a
// full cohort is available and the admission cap stops the trigger from
// swallowing the next cohort, so batch composition is a pure function of
// arrival order — deterministic even on a loaded machine. A trailing
// singleton flushes alone. Cohort 1 misses (and records the shared
// constants), cohort 2 misses (const-cache hits shrink its ready sets),
// cohort 3 replays cohort 2's plans — so hits are nonzero AND exactly
// reproducible run to run, and outputs match a memo-off fleet bitwise.
void test_fleet_memo_merged_module() {
  fleet::ModelRegistry reg{passes::PipelineConfig{}, /*dedupe=*/true};
  reg.add(models::model_by_name("TreeLSTM"), false, dataset_of("TreeLSTM", 6, 11));
  reg.add(models::model_by_name("BiRNN"), false, dataset_of("BiRNN", 6, 19));
  reg.prepare();
  CHECK(reg.compiled().module.registry.structural_dupes() > 0);

  const int cohort = 12, cohorts = 3;
  std::vector<serve::Request> trace;
  for (int c = 0; c < cohorts; ++c) {
    for (int i = 0; i < cohort; ++i) {
      serve::Request r;
      r.id = static_cast<int>(trace.size());
      r.model_id = i % reg.num_models();
      r.input_index = static_cast<std::size_t>(i / reg.num_models()) %
                      reg.model(r.model_id).dataset.inputs.size();
      r.arrival_ns = 0;
      trace.push_back(r);
    }
  }
  serve::Request tail;  // flushes as a singleton trigger after cohort 3
  tail.id = static_cast<int>(trace.size());
  tail.model_id = 0;
  tail.input_index = 0;
  tail.arrival_ns = 0;
  trace.push_back(tail);

  const auto run = [&](bool memo) {
    fleet::FleetOptions fo;
    fo.collect_outputs = true;
    fo.sched_memo = memo;
    fo.policy = no_slo_policy();
    fo.policy.base.kind = serve::PolicyKind::kDeadline;
    fo.policy.base.min_batch = cohort;
    fo.policy.base.max_admit = cohort;
    fo.policy.base.slo_ns = 10'000'000'000;
    fo.policy.base.max_hold_ns = 10'000'000'000;
    return fleet::serve_fleet(reg, trace, fo);
  };

  const fleet::FleetResult a = run(true);
  const fleet::FleetResult b = run(true);
  const fleet::FleetResult off = run(false);

  const ActivityStats& sa = a.shards.at(0).stats;
  const ActivityStats& sb = b.shards.at(0).stats;
  const ActivityStats& so = off.shards.at(0).stats;
  std::printf("fleet memo: hits %lld misses %lld evictions %lld | launches %lld vs %lld\n",
              sa.sched_cache_hits, sa.sched_cache_misses, sa.sched_cache_evictions,
              sa.kernel_launches, so.kernel_launches);
  CHECK(sa.sched_cache_hits > 0);
  CHECK_EQ(sa.sched_cache_hits, sb.sched_cache_hits);      // deterministic replay
  CHECK_EQ(sa.sched_cache_misses, sb.sched_cache_misses);
  CHECK_EQ(so.sched_cache_hits + so.sched_cache_misses, 0);  // off: untouched
  CHECK_EQ(sa.kernel_launches, so.kernel_launches);  // replay = identical batching

  CHECK_EQ(a.records.size(), off.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    CHECK(!a.records[i].shed);
    const auto& ao = a.records[i].output;
    const auto& bo = b.records[i].output;
    const auto& oo = off.records[i].output;
    CHECK_EQ(ao.size(), oo.size());
    for (std::size_t j = 0; j < ao.size(); ++j) CHECK(ao[j] == oo[j]);  // bitwise
    CHECK_EQ(ao.size(), bo.size());
    for (std::size_t j = 0; j < ao.size(); ++j) CHECK(ao[j] == bo[j]);
  }
}

// (b) Shedding kicks in only past saturation, and never hurts goodput
// relative to running every blown request anyway.
void test_shedding_only_past_saturation() {
  fleet::ModelRegistry reg;
  reg.add(models::model_by_name("TreeLSTM"), false, dataset_of("TreeLSTM", 6, 23));
  reg.prepare();

  fleet::FleetPolicyConfig pc;
  pc.base.kind = serve::PolicyKind::kMaxBatch;
  pc.base.max_batch = 4;  // bounded admission: overload builds a real queue
  pc.deadline_ns = {2'000'000'000, 2'000'000'000, 0};  // generous at low rate

  // Low rate, generous deadline: nothing is ever blown, nothing is shed.
  {
    const auto trace = interleaved_trace(12, reg, 2'000'000);
    fleet::FleetOptions fo;
    fo.policy = pc;
    const fleet::FleetResult res = fleet::serve_fleet(reg, trace, fo);
    CHECK_EQ(res.shed, 0);
    CHECK_NEAR(res.goodput, 1.0, 1e-12);
    for (const serve::RequestRecord& r : res.records) CHECK(!r.shed);
  }

  // Sustained overload: arrivals at several times capacity against a tight
  // deadline, so the FIFO queue grows without bound. With SLO admission
  // control, blown queue entries are shed and fresh arrivals wait only
  // behind still-viable work — they can meet their deadline. The latency-
  // only contrast (no SLO awareness at all: FIFO admission, everything
  // runs) queues every arrival behind doomed requests, so its attainment —
  // the fraction of latencies under the same deadline — collapses.
  // Goodput(shed) >= latency-only attainment, up to one boundary request
  // of timing noise.
  {
    const int n = 200;
    // Service time is anchored by the deterministic simulated launch
    // overhead (DESIGN.md §2), not by this machine's CPU speed: ~50us per
    // launch makes one batched request cost a few hundred us, so 500us
    // arrival gaps are a sustained ~1.5-3x overload everywhere. The
    // deadline sits far above one batched service time (fresh admissions
    // meet it comfortably) but far below the cumulative FIFO backlog.
    // Attainment under FIFO is a prefix phenomenon — only arrivals before
    // the backlog first exceeds the deadline can make it — so it keeps
    // falling as the trace grows, while shedding holds its steady state;
    // the long trace is what makes the gap robust to machine noise.
    const double deadline_ms = 20.0;
    const std::int64_t overhead_ns = 50'000;
    const auto trace = interleaved_trace(n, reg, 500'000);
    fleet::FleetPolicyConfig tight = pc;
    tight.deadline_ns = {static_cast<std::int64_t>(deadline_ms * 1e6),
                         static_cast<std::int64_t>(deadline_ms * 1e6), 0};
    // Slack-aware shedding: drop work that cannot finish inside the SLO
    // (~2 batched service times of slack), instead of admitting requests
    // right at their deadline and burning capacity on doomed work.
    tight.est_service_ns = 12'000'000;

    fleet::FleetOptions shed_on;
    shed_on.policy = tight;
    shed_on.launch_overhead_ns = overhead_ns;
    const fleet::FleetResult a = fleet::serve_fleet(reg, trace, shed_on);

    fleet::FleetOptions fifo = shed_on;
    fifo.policy = no_slo_policy();
    fifo.policy.base = tight.base;
    const fleet::FleetResult b = fleet::serve_fleet(reg, trace, fifo);
    const double fifo_attainment = b.latency_ms.attainment(deadline_ms);

    std::printf("overload: shed=%lld goodput=%.2f vs latency-only attainment=%.2f\n",
                a.shed, a.goodput, fifo_attainment);
    CHECK(a.shed > 0);
    CHECK_EQ(b.shed, 0);
    for (const serve::RequestRecord& r : b.records) CHECK(r.completion_ns >= 0);
    CHECK(a.goodput >= fifo_attainment - 1.0 / n);
    // Shed requests complete (as sheds) and never carry outputs.
    for (const serve::RequestRecord& r : a.records)
      if (r.shed) {
        CHECK(r.completion_ns >= 0);
        CHECK_EQ(r.output.size(), 0);
      }
  }
}

// (c) Closed loop: all K×M requests complete; content is deterministic per
// seed; a client's requests are issued strictly after its previous one
// completed (the defining closed-loop property).
void test_closed_loop() {
  fleet::ModelRegistry reg = two_model_registry();
  fleet::ClosedLoopSpec cs;
  cs.clients = 4;
  cs.per_client = 5;
  cs.think_mean_ms = 0.05;
  cs.seed = 7;
  const std::vector<serve::ModelMix> mix = reg.uniform_mix();

  const auto t1 = fleet::generate_closed_load(cs, mix);
  const auto t2 = fleet::generate_closed_load(cs, mix);
  CHECK_EQ(t1.size(), 20);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    CHECK_EQ(t1[i].id, static_cast<int>(i));
    CHECK_EQ(t1[i].model_id, t2[i].model_id);
    CHECK(t1[i].input_index == t2[i].input_index);
    CHECK(t1[i].latency_class == t2[i].latency_class);
    CHECK(t1[i].model_id >= 0 && t1[i].model_id < reg.num_models());
    CHECK(t1[i].input_index < reg.model(t1[i].model_id).dataset.inputs.size());
  }

  fleet::FleetOptions fo;
  fo.policy = no_slo_policy();
  const fleet::FleetResult res = fleet::serve_fleet_closed(reg, cs, mix, fo);
  CHECK_EQ(res.records.size(), 20);
  CHECK_EQ(res.shed, 0);
  for (int c = 0; c < cs.clients; ++c) {
    for (int k = 0; k < cs.per_client; ++k) {
      const serve::RequestRecord& r =
          res.records[static_cast<std::size_t>(c * cs.per_client + k)];
      CHECK(r.completion_ns >= r.arrival_ns);
      CHECK(r.arrival_ns >= 0);
      if (k > 0) {
        const serve::RequestRecord& prev =
            res.records[static_cast<std::size_t>(c * cs.per_client + k - 1)];
        CHECK(r.arrival_ns >= prev.completion_ns);  // issued after completion
      }
    }
  }
  CHECK(res.throughput_rps > 0);
}

// Class-aware routing: per-class shard affinity pins classes to disjoint
// shard sets; least-loaded dispatch stays within the class's set.
void test_class_affinity_routing() {
  fleet::ModelRegistry reg = two_model_registry();
  const int n = 12;
  std::vector<serve::Request> trace = interleaved_trace(n, reg, 15'000);
  for (int i = 0; i < n; ++i)
    trace[static_cast<std::size_t>(i)].latency_class =
        i % 3 == 0 ? serve::LatencyClass::kInteractive : serve::LatencyClass::kBatch;

  fleet::FleetOptions fo;
  fo.shards = 2;
  fo.policy = no_slo_policy();
  fo.class_affinity[0] = {0};  // interactive pinned to shard 0
  fo.class_affinity[1] = {1};  // batch pinned to shard 1
  const fleet::FleetResult res = fleet::serve_fleet(reg, trace, fo);

  for (const serve::RequestRecord& rec : res.records) {
    const serve::LatencyClass c = trace[static_cast<std::size_t>(rec.id)].latency_class;
    CHECK_EQ(rec.shard, c == serve::LatencyClass::kInteractive ? 0 : 1);
  }
  CHECK(res.shards[0].requests > 0);
  CHECK(res.shards[1].requests > 0);
}

// Fleet policy triage units: EDF keys, deprioritization, grace, shedding.
void test_fleet_policy_triage() {
  fleet::FleetPolicyConfig pc;
  pc.deadline_ns = {1'000'000, 10'000'000, 0};
  const auto policy = fleet::make_fleet_policy(pc);

  serve::RequestView v;
  v.now_ns = 500'000;
  v.arrival_ns = 0;
  v.latency_class = serve::LatencyClass::kInteractive;
  serve::Triage t = policy->triage(v);
  CHECK(t.verdict == serve::Verdict::kAdmit);
  CHECK_EQ(t.deadline_ns, 1'000'000);

  v.latency_class = serve::LatencyClass::kBatch;
  t = policy->triage(v);
  CHECK(t.verdict == serve::Verdict::kAdmit);
  CHECK_EQ(t.deadline_ns, 10'000'000);  // later deadline: admitted after interactive

  v.latency_class = serve::LatencyClass::kBestEffort;
  t = policy->triage(v);
  CHECK(t.verdict == serve::Verdict::kAdmit);
  CHECK(t.deadline_ns == std::numeric_limits<std::int64_t>::max());  // sorts last

  // Blown interactive request: shed with grace 0...
  v.latency_class = serve::LatencyClass::kInteractive;
  v.now_ns = 1'500'000;
  t = policy->triage(v);
  CHECK(t.verdict == serve::Verdict::kShed);

  // ...deferred within a grace window...
  fleet::FleetPolicyConfig graced = pc;
  graced.shed_grace = 1.0;  // shed only once blown by a whole deadline
  const auto gpolicy = fleet::make_fleet_policy(graced);
  t = gpolicy->triage(v);
  CHECK(t.verdict == serve::Verdict::kDefer);
  v.now_ns = 2'500'000;
  t = gpolicy->triage(v);
  CHECK(t.verdict == serve::Verdict::kShed);

  // ...and only ever deferred when shedding is disabled.
  fleet::FleetPolicyConfig noshed = pc;
  noshed.shed = false;
  const auto npolicy = fleet::make_fleet_policy(noshed);
  v.now_ns = 100'000'000;
  t = npolicy->triage(v);
  CHECK(t.verdict == serve::Verdict::kDefer);
}

// (d) Mixed-model soak: recycling holds across models sharing one engine.
// Node table, arena watermark, and the persistent region all plateau —
// the full trace stays within 2x of its short prefix, and the persistent
// region (both models' cached constants) goes exactly flat.
void test_fleet_soak_mixed_models() {
  const int n = env_requests(5000);
  const int n_short = n >= 1000 ? 500 : (n >= 40 ? n / 4 : n);

  fleet::ModelRegistry reg = two_model_registry();
  serve::LoadSpec ls;
  ls.num_requests = n;
  ls.rate_rps = 1e12;  // effectively simultaneous arrivals
  ls.seed = acrobat::test::seed(37);
  const std::vector<serve::Request> full = serve::generate_load(ls, reg.uniform_mix());
  const std::vector<serve::Request> prefix(full.begin(), full.begin() + n_short);

  const auto run = [&](const std::vector<serve::Request>& trace) {
    fleet::FleetOptions fo;
    fo.policy = no_slo_policy();
    fo.policy.base.kind = serve::PolicyKind::kMaxBatch;
    fo.policy.base.max_batch = 8;
    return fleet::serve_fleet(reg, trace, fo);
  };

  const fleet::FleetResult short_res = run(prefix);
  const fleet::FleetResult long_res = run(full);

  for (const serve::RequestRecord& r : long_res.records) CHECK(r.completion_ns >= 0);
  CHECK_EQ(long_res.shards.at(0).requests, n);
  CHECK_EQ(long_res.shed, 0);

  const Engine::MemoryStats& sm = short_res.shards.at(0).mem;
  const Engine::MemoryStats& lm = long_res.shards.at(0).mem;
  std::printf("fleet soak: %d vs %d requests | nodes %zu vs %zu | arenaKB %.0f vs %.0f | "
              "persistKB %.0f vs %.0f | recycled nodes %lld pages %lld | leaked %lld\n",
              n_short, n, sm.node_table_size, lm.node_table_size,
              static_cast<double>(sm.arena_high_water_bytes) / 1024.0,
              static_cast<double>(lm.arena_high_water_bytes) / 1024.0,
              static_cast<double>(sm.persist_arena_high_water_bytes) / 1024.0,
              static_cast<double>(lm.persist_arena_high_water_bytes) / 1024.0,
              lm.nodes_recycled, lm.arena_pages_recycled, lm.leaked_slots);
  CHECK_EQ(lm.leaked_slots, 0);

  // The plateau: ~10x the requests, ~same memory — across two models.
  CHECK(lm.node_table_size <= 2 * sm.node_table_size);
  CHECK(lm.arena_high_water_bytes <= 2 * sm.arena_high_water_bytes);
  // The persistent region (weights refs + cached constants of BOTH models)
  // is populated by each model's first requests and then never grows.
  CHECK_EQ(lm.persist_arena_high_water_bytes, sm.persist_arena_high_water_bytes);
  CHECK(lm.nodes_recycled > 0);
  CHECK(lm.live_nodes < lm.node_table_size);  // drained to the persistent set
  // Fiber stacks track peak concurrency, not trace length.
  CHECK(long_res.shards.at(0).stacks_allocated <=
        static_cast<long long>(long_res.shards.at(0).max_live) + 1);
}

}  // namespace

int main() {
  test_fleet_parity_with_solo_serve();
  test_registry_kernel_dedupe();
  test_fleet_memo_merged_module();
  test_shedding_only_past_saturation();
  test_closed_loop();
  test_class_affinity_routing();
  test_fleet_policy_triage();
  test_fleet_soak_mixed_models();
  return acrobat::test::finish("test_fleet");
}
