// Minimal test harness: CHECK macros + a failure count returned from main.
#pragma once

#include <cmath>
#include <cstdio>

namespace acrobat::test {

inline int g_failures = 0;

#define CHECK(cond)                                                              \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);                \
      ++acrobat::test::g_failures;                                               \
    }                                                                            \
  } while (0)

#define CHECK_EQ(a, b)                                                           \
  do {                                                                           \
    const auto va = (a);                                                         \
    const auto vb = (b);                                                         \
    if (!(va == vb)) {                                                           \
      std::printf("FAIL %s:%d: %s == %s (%lld vs %lld)\n", __FILE__, __LINE__,   \
                  #a, #b, static_cast<long long>(va), static_cast<long long>(vb)); \
      ++acrobat::test::g_failures;                                               \
    }                                                                            \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                                    \
  do {                                                                           \
    const double va = (a);                                                       \
    const double vb = (b);                                                       \
    if (!(std::fabs(va - vb) <= (tol) * (1.0 + std::fabs(vb)))) {                \
      std::printf("FAIL %s:%d: %s ~= %s (%g vs %g)\n", __FILE__, __LINE__, #a,   \
                  #b, va, vb);                                                   \
      ++acrobat::test::g_failures;                                               \
    }                                                                            \
  } while (0)

inline int finish(const char* name) {
  if (acrobat::test::g_failures == 0) {
    std::printf("OK %s\n", name);
    return 0;
  }
  std::printf("%d failure(s) in %s\n", acrobat::test::g_failures, name);
  return 1;
}

}  // namespace acrobat::test
