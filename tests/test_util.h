// Minimal test harness: CHECK macros + a failure count returned from main.
//
// Seeded tests draw their seed through acrobat::test::seed(default): the
// ACROBAT_TEST_SEED env var overrides it, and every failure path prints the
// seed in use — a flaky-looking seeded failure in a CI log is reproducible
// locally with ACROBAT_TEST_SEED=<printed value>.
#pragma once

#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace acrobat::test {

// ACROBAT_SERVE_REQUESTS override for the soak tests (serve + fleet): the
// ctest entries register reduced-count smokes; the binaries default to the
// full-scale trace.
inline int env_requests(int def) {
  const char* e = std::getenv("ACROBAT_SERVE_REQUESTS");
  if (e == nullptr) return def;
  const int v = std::atoi(e);
  return v > 0 ? v : def;
}

// Runs `f` in a fork; true iff the child died by signal (std::abort) — the
// death-test helper behind the stale-ref checks (Debug) and the config
// validation checks (every build type). The child's stderr is silenced so
// intended abort messages don't pollute the log.
template <typename F>
inline bool dies(F&& f) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid == 0) {
    if (freopen("/dev/null", "w", stderr) == nullptr) _exit(2);
    f();
    _exit(0);  // skips atexit/leak checks: the child must die in f()
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFSIGNALED(status);
}

inline int g_failures = 0;
inline std::uint64_t g_seed = 0;
inline bool g_seed_set = false;

// Returns `def`, or the ACROBAT_TEST_SEED override; records the choice so
// failure output can point back at it.
inline std::uint64_t seed(std::uint64_t def) {
  if (const char* e = std::getenv("ACROBAT_TEST_SEED")) def = std::strtoull(e, nullptr, 0);
  g_seed = def;
  g_seed_set = true;
  return def;
}

// Called on every CHECK failure: counts it and names the active seed.
inline void note_failure() {
  ++g_failures;
  if (g_seed_set)
    std::printf("  seed=%" PRIu64 " (rerun with ACROBAT_TEST_SEED=%" PRIu64 ")\n", g_seed,
                g_seed);
}

#define CHECK(cond)                                                              \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);                \
      acrobat::test::note_failure();                                             \
    }                                                                            \
  } while (0)

#define CHECK_EQ(a, b)                                                           \
  do {                                                                           \
    const auto va = (a);                                                         \
    const auto vb = (b);                                                         \
    if (!(va == vb)) {                                                           \
      std::printf("FAIL %s:%d: %s == %s (%lld vs %lld)\n", __FILE__, __LINE__,   \
                  #a, #b, static_cast<long long>(va), static_cast<long long>(vb)); \
      acrobat::test::note_failure();                                             \
    }                                                                            \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                                    \
  do {                                                                           \
    const double va = (a);                                                       \
    const double vb = (b);                                                       \
    if (!(std::fabs(va - vb) <= (tol) * (1.0 + std::fabs(vb)))) {                \
      std::printf("FAIL %s:%d: %s ~= %s (%g vs %g)\n", __FILE__, __LINE__, #a,   \
                  #b, va, vb);                                                   \
      acrobat::test::note_failure();                                             \
    }                                                                            \
  } while (0)

inline int finish(const char* name) {
  if (acrobat::test::g_failures == 0) {
    std::printf("OK %s\n", name);
    return 0;
  }
  std::printf("%d failure(s) in %s", acrobat::test::g_failures, name);
  if (g_seed_set) std::printf(" [seed=%" PRIu64 "]", g_seed);
  std::printf("\n");
  return 1;
}

}  // namespace acrobat::test
