// Tensor-op correctness against hand-computed references, and variant
// agreement (every schedule variant of a kernel computes the same function).
#include "support/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "test_util.h"

using namespace acrobat;

namespace {

void test_dense_reference() {
  // x = [1, 2], W = [[1, -1], [0.5, 0.25], [2, 0]] (3 outputs, row-major).
  const float x[2] = {1.0f, 2.0f};
  const float w[6] = {1.0f, -1.0f, 0.5f, 0.25f, 2.0f, 0.0f};
  const Shape shapes[2] = {RowVec(2), Shape(3, 2)};
  const float* ins[2] = {x, w};
  float out[3] = {};
  for (int variant = 0; variant < op_num_variants(OpKind::kDense); ++variant) {
    run_op(OpKind::kDense, variant, ins, shapes, out, RowVec(3), 0);
    CHECK_NEAR(out[0], -1.0, 1e-6);   // 1*1 + 2*(-1)
    CHECK_NEAR(out[1], 1.0, 1e-6);    // 1*0.5 + 2*0.25
    CHECK_NEAR(out[2], 2.0, 1e-6);    // 1*2 + 2*0
  }
}

void test_matmul_reference() {
  // a (2x2) · b (2x2)
  const float a[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const float b[4] = {5.0f, 6.0f, 7.0f, 8.0f};
  const Shape shapes[2] = {Shape(2, 2), Shape(2, 2)};
  const float* ins[2] = {a, b};
  float out[4] = {};
  for (int variant = 0; variant < op_num_variants(OpKind::kMatMul); ++variant) {
    run_op(OpKind::kMatMul, variant, ins, shapes, out, Shape(2, 2), 0);
    CHECK_NEAR(out[0], 19.0, 1e-6);
    CHECK_NEAR(out[1], 22.0, 1e-6);
    CHECK_NEAR(out[2], 43.0, 1e-6);
    CHECK_NEAR(out[3], 50.0, 1e-6);
  }
  // a·bᵀ
  run_op(OpKind::kMatMulBT, 0, ins, shapes, out, Shape(2, 2), 0);
  CHECK_NEAR(out[0], 17.0, 1e-6);  // [1 2]·[5 6]
  CHECK_NEAR(out[1], 23.0, 1e-6);  // [1 2]·[7 8]
  CHECK_NEAR(out[2], 39.0, 1e-6);
  CHECK_NEAR(out[3], 53.0, 1e-6);
}

void test_eltwise_and_broadcast() {
  const float a[6] = {1, 2, 3, 4, 5, 6};
  const float b[3] = {10, 20, 30};
  const Shape shapes[2] = {Shape(2, 3), RowVec(3)};
  const float* ins[2] = {a, b};
  float out[6] = {};
  run_op(OpKind::kAdd, 0, ins, shapes, out, Shape(2, 3), 0);
  CHECK_NEAR(out[0], 11.0, 1e-6);
  CHECK_NEAR(out[5], 36.0, 1e-6);
  run_op(OpKind::kMul, 1, ins, shapes, out, Shape(2, 3), 0);  // broadcast falls back
  CHECK_NEAR(out[4], 100.0, 1e-6);
}

void test_softmax_and_reductions() {
  const float a[3] = {0.0f, 0.0f, 0.0f};
  const Shape s[1] = {RowVec(3)};
  const float* ins[1] = {a};
  float out[3] = {};
  run_op(OpKind::kSoftmax, 0, ins, s, out, RowVec(3), 0);
  CHECK_NEAR(out[0], 1.0 / 3.0, 1e-6);
  float one[1] = {};
  run_op(OpKind::kSumAll, 0, ins, s, one, Shape(1), 0);
  CHECK_NEAR(one[0], 0.0, 1e-6);
  run_op(OpKind::kMaxProb, 0, ins, s, one, Shape(1), 0);
  CHECK_NEAR(one[0], 1.0 / 3.0, 1e-6);
}

void test_variants_agree() {
  // Random larger shapes: all variants of a kind agree within float noise.
  TensorPool pool;
  Rng rng(42);
  const Tensor x = pool.alloc_random(Shape(5, 33), rng, 1.0f);
  const Tensor w = pool.alloc_random(Shape(17, 33), rng, 0.5f);
  const Shape shapes[2] = {x.shape, w.shape};
  const float* ins[2] = {x.data, w.data};
  Tensor ref = pool.alloc(Shape(5, 17));
  Tensor got = pool.alloc(Shape(5, 17));
  run_op(OpKind::kDense, 0, ins, shapes, ref.data, ref.shape, 0);
  for (int v = 1; v < op_num_variants(OpKind::kDense); ++v) {
    run_op(OpKind::kDense, v, ins, shapes, got.data, got.shape, 0);
    for (std::int64_t i = 0; i < ref.numel(); ++i) CHECK_NEAR(got.data[i], ref.data[i], 1e-4);
  }
}

void test_lstm_pointwise() {
  // One unit: gates [i f g o] = [0, 0, raw g, 0], c = 2.
  const float gates[4] = {0.0f, 0.0f, 0.5f, 0.0f};
  const float c[1] = {2.0f};
  const Shape shapes[2] = {RowVec(4), RowVec(1)};
  const float* ins[2] = {gates, c};
  float out[1] = {};
  run_op(OpKind::kLstmNewC, 0, ins, shapes, out, RowVec(1), 0);
  // σ(0+1)*2 + σ(0)*tanh(0.5)
  const double expect = 1.0 / (1.0 + std::exp(-1.0)) * 2.0 + 0.5 * std::tanh(0.5);
  CHECK_NEAR(out[0], expect, 1e-6);
}

}  // namespace

int main() {
  test_dense_reference();
  test_matmul_reference();
  test_eltwise_and_broadcast();
  test_softmax_and_reductions();
  test_variants_agree();
  test_lstm_pointwise();
  return acrobat::test::finish("test_tensor_ops");
}
