// Differential proof that schedule memoization is invisible (ISSUE 6).
//
// A seeded generator builds random DFG traces over the full op vocabulary
// the 8 models use — random op mix, shapes, phases, depths, shared and
// scattered operands, mid-trace triggers — and replays every trace three
// times into two engines that differ ONLY in EngineConfig::sched_memo. The
// memo engine must be bit-for-bit indistinguishable: identical outputs,
// identical kernel_launches / flat_batches / stacked_batches / gather_bytes
// per pass, and (because pass 3 recurs pass 2's trigger structure) a
// nonzero hit count proving the cache actually replayed. The sweep covers
// both schedulers and rotates inline_depth / gather_fusion /
// shape_keyed_batching / fuse_waves off the seed bits.
//
// ACROBAT_SERVE_REQUESTS bounds the number of seeds (default 50; CI's
// sanitize job pins it back to 50). ACROBAT_TEST_SEED overrides the base
// seed; every failure prints the exact per-trace seed to rerun with.
//
// The targeted tests below the sweep pin the invalidation surface: a
// changed attr (kernel identity), shape, or PGO-chosen variant must MISS;
// replay through a gather-staging batch must re-stage (never reuse stale
// pointers); and a bounded cache must evict LRU-first without ever serving
// a wrong plan.
#include <cstdio>
#include <cstring>
#include <vector>

#include "engine/engine.h"
#include "support/rng.h"
#include "test_util.h"

using namespace acrobat;

namespace {

// ---------------------------------------------------------------- fixture

// Value shape classes the generator tracks pools for. kM* classes are
// weight-like: only concrete tensors feed them.
enum ShapeClass : int {
  kV8 = 0,  // RowVec(8)
  kV16,     // RowVec(16): concat2 output
  kV24,     // RowVec(24): GRU gates
  kV32,     // RowVec(32): LSTM gates
  kV40,     // RowVec(40): concat5 output (sink)
  kS1,      // Shape(1): whole-batch reductions (sinks)
  kM8,      // Shape(8,8) parameter
  kM24,     // Shape(24,8) parameter
  kM32,     // Shape(32,8) parameter
  kNumClasses
};

Shape class_shape(int c) {
  switch (c) {
    case kV8: return RowVec(8);
    case kV16: return RowVec(16);
    case kV24: return RowVec(24);
    case kV32: return RowVec(32);
    case kV40: return RowVec(40);
    case kS1: return Shape(1);
    case kM8: return Shape(8, 8);
    case kM24: return Shape(24, 8);
    default: return Shape(32, 8);
  }
}

struct OpSpec {
  const char* name;
  OpKind op;
  std::int64_t attr;
  int arity;
  int out;
  int in[5];
};

// The whole vocabulary: dense family, elementwise, fused pointwise, coarse
// cells, structural and reduction kinds.
const OpSpec kOps[] = {
    {"g.dense8", OpKind::kDense, 0, 2, kV8, {kV8, kM8}},
    {"g.dense24", OpKind::kDense, 0, 2, kV24, {kV8, kM24}},
    {"g.dense32", OpKind::kDense, 0, 2, kV32, {kV8, kM32}},
    {"g.matmul", OpKind::kMatMul, 0, 2, kV8, {kV8, kM8}},
    {"g.matmulbt", OpKind::kMatMulBT, 0, 2, kV8, {kV8, kM8}},
    {"g.add", OpKind::kAdd, 0, 2, kV8, {kV8, kV8}},
    {"g.sub", OpKind::kSub, 0, 2, kV8, {kV8, kV8}},
    {"g.mul", OpKind::kMul, 0, 2, kV8, {kV8, kV8}},
    {"g.tanh", OpKind::kTanh, 0, 1, kV8, {kV8}},
    {"g.sigmoid", OpKind::kSigmoid, 0, 1, kV8, {kV8}},
    {"g.relu", OpKind::kRelu, 0, 1, kV8, {kV8}},
    {"g.scale", OpKind::kScale, 1500000, 1, kV8, {kV8}},
    {"g.softmax", OpKind::kSoftmax, 0, 1, kV8, {kV8}},
    {"g.abt", OpKind::kAddBiasTanh, 0, 3, kV8, {kV8, kV8, kV8}},
    {"g.abs", OpKind::kAddBiasSigmoid, 0, 3, kV8, {kV8, kV8, kV8}},
    {"g.fma2", OpKind::kFma2, 0, 4, kV8, {kV8, kV8, kV8, kV8}},
    {"g.multanh", OpKind::kMulTanh, 0, 2, kV8, {kV8, kV8}},
    {"g.lstmc", OpKind::kLstmNewC, 0, 2, kV8, {kV32, kV8}},
    {"g.lstmh", OpKind::kLstmNewH, 0, 2, kV8, {kV32, kV8}},
    {"g.gru", OpKind::kGruPoint, 0, 2, kV8, {kV24, kV8}},
    {"g.concat2", OpKind::kConcat, 1, 2, kV16, {kV8, kV8}},
    {"g.tanh16", OpKind::kTanh, 0, 1, kV16, {kV16}},
    // Variable arity above the inline small-vector bound: exercises the
    // InsList heap spill and the engine-executed concat loop.
    {"g.concat5", OpKind::kConcat, 1, 5, kV40, {kV8, kV8, kV8, kV8, kV8}},
    {"g.zeros", OpKind::kZeros, 8, 0, kV8, {}},
    {"g.sumall", OpKind::kSumAll, 0, 1, kS1, {kV8}},
    {"g.maxprob", OpKind::kMaxProb, 0, 1, kS1, {kV8}},
};
constexpr int kNumOps = static_cast<int>(sizeof(kOps) / sizeof(kOps[0]));

struct Fixture {
  KernelRegistry reg;
  TensorPool pool;
  std::vector<int> kernel_ids;    // per OpSpec
  std::vector<Tensor> tensors;    // concrete inputs
  std::vector<int> tensor_class;  // ShapeClass per tensor

  explicit Fixture(Rng& rng) {
    for (const OpSpec& os : kOps) {
      Shape reps[4];
      const int rep_arity = os.arity > 4 ? 2 : os.arity;  // registry cap
      for (int j = 0; j < rep_arity; ++j) reps[j] = class_shape(os.in[j]);
      kernel_ids.push_back(
          reg.add(os.name, os.op, os.attr, rep_arity, rep_arity ? reps : nullptr));
    }
    // Per-seed PGO state: random schedule variants, shared by both engines.
    for (const int id : kernel_ids) {
      Kernel& k = reg.kernel(id);
      k.variant = rng.uniform_int(k.num_variants);
    }
    // Concrete inputs: several V8 activations (shared/scattered operand
    // draws) and two M8 parameters (shared-parameter stacking vs split
    // first-argument classes), one each of the gate-sized parameters.
    const int counts[kNumClasses] = {4, 0, 0, 0, 0, 0, 2, 1, 1};
    for (int c = 0; c < kNumClasses; ++c)
      for (int i = 0; i < counts[c]; ++i) {
        tensors.push_back(pool.alloc_random(class_shape(c), rng, 0.8f));
        tensor_class.push_back(c);
      }
  }
};

// --------------------------------------------------------------- generator

struct TraceStep {
  enum Kind { kConcrete, kOp, kTrigger } kind = kTrigger;
  int a = 0;  // kConcrete: fixture tensor index; kOp: OpSpec index
  int phase = 0;
  std::vector<int> args;  // kOp: value indices
};

struct Trace {
  std::vector<TraceStep> steps;
  int n_values = 0;
};

Trace make_trace(const Fixture& f, Rng& rng) {
  Trace t;
  std::vector<std::vector<int>> pool(kNumClasses);
  std::vector<int> vphase;
  for (std::size_t i = 0; i < f.tensors.size(); ++i) {
    TraceStep st;
    st.kind = TraceStep::kConcrete;
    st.a = static_cast<int>(i);
    t.steps.push_back(st);
    pool[f.tensor_class[i]].push_back(t.n_values);
    vphase.push_back(0);
    ++t.n_values;
  }
  const int n_ops = 30 + rng.uniform_int(91);
  int made = 0;
  for (int guard = 0; made < n_ops && guard < n_ops * 20; ++guard) {
    const int oi = rng.uniform_int(kNumOps);
    const OpSpec& os = kOps[oi];
    bool feasible = true;
    for (int j = 0; j < os.arity; ++j)
      if (pool[os.in[j]].empty()) {
        feasible = false;
        break;
      }
    if (!feasible) continue;
    TraceStep st;
    st.kind = TraceStep::kOp;
    st.a = oi;
    int ph = 0;
    for (int j = 0; j < os.arity; ++j) {
      const std::vector<int>& p = pool[os.in[j]];
      const int v = p[rng.uniform_int(static_cast<int>(p.size()))];
      st.args.push_back(v);
      if (vphase[v] > ph) ph = vphase[v];
    }
    // Phase tags stay monotone along dependencies (the builders' contract);
    // occasional bumps exercise the phase>0 readiness-wave scheduler.
    // Zero-arity consts stay at phase 0: const_reuse aliases every such op
    // to one cached node, so a phase-bumped const would leak its tag to
    // structurally-phase-0 consumers elsewhere in the trace.
    if (os.arity > 0 && ph < 2 && rng.uniform_int(8) == 0) ++ph;
    st.phase = ph;
    t.steps.push_back(std::move(st));
    pool[os.out].push_back(t.n_values);
    vphase.push_back(ph);
    ++t.n_values;
    ++made;
    if (rng.uniform_int(12) == 0) t.steps.push_back(TraceStep{});  // mid-trace trigger
  }
  return t;
}

// ------------------------------------------------------------------ apply

struct PassCounters {
  long long launches = 0, flat = 0, stacked = 0, gather_bytes = 0;
  long long hits = 0, misses = 0;
};

// Replays the trace `passes` times into one engine. Concrete tensors are
// wrapped once (pass 0) and reused — like weights in a server — so
// recurring passes present recurring trigger structure.
std::vector<std::vector<float>> apply(const Fixture& f, const Trace& t, EngineConfig cfg,
                                      int passes, std::vector<PassCounters>& per_pass) {
  Engine eng(f.reg, cfg);
  std::vector<std::vector<float>> out;
  std::vector<TRef> cvals;
  ActivityStats prev;
  for (int p = 0; p < passes; ++p) {
    InstCtx ctx{p};
    std::vector<TRef> vals;
    vals.reserve(static_cast<std::size_t>(t.n_values));
    std::size_t c_idx = 0;
    for (const TraceStep& st : t.steps) {
      switch (st.kind) {
        case TraceStep::kConcrete:
          if (p == 0) cvals.push_back(eng.add_concrete(f.tensors[st.a].view()));
          vals.push_back(cvals[c_idx++]);
          break;
        case TraceStep::kOp: {
          TRef ins[8];
          for (std::size_t j = 0; j < st.args.size(); ++j)
            ins[j] = vals[static_cast<std::size_t>(st.args[j])];
          vals.push_back(eng.add_op(f.kernel_ids[st.a], ins,
                                    static_cast<int>(st.args.size()), ctx, st.phase));
          break;
        }
        case TraceStep::kTrigger:
          eng.trigger_execution();
          break;
      }
    }
    eng.trigger_execution();
    std::vector<float> flat;
    for (const TRef v : vals) {
      const Tensor tt = eng.force(v);
      flat.insert(flat.end(), tt.data, tt.data + tt.numel());
    }
    out.push_back(std::move(flat));
    const ActivityStats& s = eng.stats();
    PassCounters pc;
    pc.launches = s.kernel_launches - prev.kernel_launches;
    pc.flat = s.flat_batches - prev.flat_batches;
    pc.stacked = s.stacked_batches - prev.stacked_batches;
    pc.gather_bytes = s.gather_bytes - prev.gather_bytes;
    pc.hits = s.sched_cache_hits - prev.sched_cache_hits;
    pc.misses = s.sched_cache_misses - prev.sched_cache_misses;
    per_pass.push_back(pc);
    prev = s;
  }
  return out;
}

// ------------------------------------------------------ differential sweep

void run_one_seed(std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  Fixture f(rng);
  const Trace t = make_trace(f, rng);

  for (int si = 0; si < 2; ++si) {
    EngineConfig cfg;
    cfg.scheduler = si == 0 ? SchedulerKind::kDepth : SchedulerKind::kAgenda;
    cfg.inline_depth = ((seed >> 1) & 1) != 0;
    cfg.gather_fusion = ((seed >> 2) & 1) != 0;
    cfg.shape_keyed_batching = ((seed >> 3) & 1) != 0;
    cfg.fuse_waves = si == 0 && ((seed >> 4) & 1) != 0;

    EngineConfig on = cfg;
    on.sched_memo = true;
    std::vector<PassCounters> pc_on, pc_off;
    const auto out_on = apply(f, t, on, 3, pc_on);
    const auto out_off = apply(f, t, cfg, 3, pc_off);

    for (int p = 0; p < 3; ++p) {
      CHECK_EQ(out_on[p].size(), out_off[p].size());
      CHECK(std::memcmp(out_on[p].data(), out_off[p].data(),
                        out_on[p].size() * sizeof(float)) == 0);
      CHECK_EQ(pc_on[p].launches, pc_off[p].launches);
      CHECK_EQ(pc_on[p].flat, pc_off[p].flat);
      CHECK_EQ(pc_on[p].stacked, pc_off[p].stacked);
      CHECK_EQ(pc_on[p].gather_bytes, pc_off[p].gather_bytes);
      CHECK_EQ(pc_off[p].hits + pc_off[p].misses, 0);  // cache-off: untouched
    }
    // Pass 3 recurs pass 2's trigger structure exactly (the constant cache
    // makes pass 2 differ from pass 1), so the cache must have replayed.
    CHECK(pc_on[2].hits > 0);
    CHECK_EQ(pc_on[2].misses, 0);
  }
}

void test_differential_sweep() {
  const std::uint64_t base = acrobat::test::seed(0x6e0d1ffull);
  const int n_seeds = acrobat::test::env_requests(50);
  for (int i = 0; i < n_seeds; ++i) {
    // Record the per-trace seed so a CHECK failure prints the exact rerun.
    acrobat::test::g_seed = base + static_cast<std::uint64_t>(i);
    run_one_seed(base + static_cast<std::uint64_t>(i));
  }
  acrobat::test::g_seed = base;
  std::printf("differential sweep: %d seeds x 2 schedulers x 3 passes\n", n_seeds);
}

// ------------------------------------------------------ invalidation tests

// Small fixed fixture for the targeted tests.
struct Mini {
  KernelRegistry reg;
  TensorPool pool;
  Rng rng{acrobat::test::seed(0x6e0d1ffull) ^ 0x7ull};
  int k_dense, k_tanh, k_scale2, k_scale3;
  Tensor w, x8, x8b, x16;

  Mini() {
    const Shape v8 = RowVec(8), v16 = RowVec(16), m8(8, 8);
    const Shape rd[2] = {v8, m8};
    k_dense = reg.add("m.dense", OpKind::kDense, 0, 2, rd);
    k_tanh = reg.add("m.tanh", OpKind::kTanh, 0, 1, rd);
    // Same op, same shapes, different attr: distinct kernel identities.
    k_scale2 = reg.add("m.scale2", OpKind::kScale, 2000000, 1, rd);
    k_scale3 = reg.add("m.scale3", OpKind::kScale, 3000000, 1, rd);
    // x16 sits between the two V8 tensors so x8/x8b are NOT back-to-back in
    // the pool — the gather-restage test needs genuinely scattered rows.
    w = pool.alloc_random(m8, rng, 0.5f);
    x8 = pool.alloc_random(v8, rng, 1.0f);
    x16 = pool.alloc_random(v16, rng, 1.0f);
    x8b = pool.alloc_random(v8, rng, 1.0f);
  }

  static EngineConfig memo_config() {
    EngineConfig cfg;
    cfg.sched_memo = true;
    return cfg;
  }
};

// A PGO retune (kernel variant mutated in place, exactly what the tuner
// does) must invalidate: same structure, new variant → MISS, and the
// replayed round's outputs must match a from-scratch engine at the new
// variant bitwise.
void test_variant_invalidation() {
  Mini m;
  Engine eng(m.reg, Mini::memo_config());
  const TRef xr = eng.add_concrete(m.x8.view());
  const TRef wr = eng.add_concrete(m.w.view());
  const InstCtx ctx{0};

  auto round = [&]() {
    const TRef ins[2] = {xr, wr};
    const TRef d = eng.add_op(m.k_dense, ins, 2, ctx, 0);
    const TRef o = eng.add_op(m.k_tanh, &d, 1, ctx, 0);
    eng.trigger_execution();
    return eng.force(o);
  };

  Kernel& dk = m.reg.kernel(m.k_dense);
  dk.variant = 1;
  const Tensor r1 = round();
  CHECK_EQ(eng.stats().sched_cache_misses, 1);
  round();
  CHECK_EQ(eng.stats().sched_cache_hits, 1);

  dk.variant = 0;  // the tuner picked a different schedule
  const Tensor r3 = round();
  CHECK_EQ(eng.stats().sched_cache_hits, 1);  // no stale-plan replay
  CHECK_EQ(eng.stats().sched_cache_misses, 2);

  // Cross-check against an untouched engine running variant 0 from scratch.
  Engine ref(m.reg, EngineConfig{});
  const TRef xr2 = ref.add_concrete(m.x8.view());
  const TRef wr2 = ref.add_concrete(m.w.view());
  const TRef ins2[2] = {xr2, wr2};
  const TRef d2 = ref.add_op(m.k_dense, ins2, 2, ctx, 0);
  const TRef o2 = ref.add_op(m.k_tanh, &d2, 1, ctx, 0);
  const Tensor rr = ref.force(o2);
  CHECK(std::memcmp(r3.data, rr.data, sizeof(float) * 8) == 0);
  (void)r1;
  dk.variant = dk.num_variants - 1;
}

// Attr rides on kernel identity: two kernels differing only in attr may
// never share a plan entry.
void test_attr_keys_separate() {
  Mini m;
  Engine eng(m.reg, Mini::memo_config());
  const TRef xr = eng.add_concrete(m.x8.view());
  const InstCtx ctx{0};

  const TRef a = eng.add_op(m.k_scale2, &xr, 1, ctx, 0);
  eng.trigger_execution();
  const TRef b = eng.add_op(m.k_scale3, &xr, 1, ctx, 0);
  eng.trigger_execution();
  CHECK_EQ(eng.stats().sched_cache_hits, 0);
  CHECK_EQ(eng.stats().sched_cache_misses, 2);
  // And the attrs really executed differently (x2 vs x3).
  const Tensor ta = eng.force(a), tb = eng.force(b);
  for (int i = 0; i < 8; ++i) CHECK_NEAR(tb.data[i], ta.data[i] * 1.5f, 1e-6);
}

// Same kernel, different input shape → different signature → MISS; the
// original shape still hits afterwards.
void test_shape_invalidation() {
  Mini m;
  Engine eng(m.reg, Mini::memo_config());
  const TRef x8 = eng.add_concrete(m.x8.view());
  const TRef x16 = eng.add_concrete(m.x16.view());
  const InstCtx ctx{0};

  eng.add_op(m.k_tanh, &x8, 1, ctx, 0);
  eng.trigger_execution();
  eng.add_op(m.k_tanh, &x16, 1, ctx, 0);
  eng.trigger_execution();
  CHECK_EQ(eng.stats().sched_cache_hits, 0);
  CHECK_EQ(eng.stats().sched_cache_misses, 2);
  eng.add_op(m.k_tanh, &x8, 1, ctx, 0);
  eng.trigger_execution();
  CHECK_EQ(eng.stats().sched_cache_hits, 1);
}

// Gather-mode replay safety: with gather fusion off, a stacked batch over
// scattered rows stages an explicit copy. A replayed plan must RE-stage
// from live pointers — gather bytes double, outputs stay bitwise equal to
// a cache-off engine.
void test_gather_restaged_on_replay() {
  Mini m;
  EngineConfig cfg = Mini::memo_config();
  cfg.gather_fusion = false;
  Engine eng(m.reg, cfg);
  EngineConfig off = cfg;
  off.sched_memo = false;
  Engine ref(m.reg, off);
  const InstCtx ctx{0};

  auto round = [&](Engine& e, const TRef* xs, TRef wr) {
    const TRef i0[2] = {xs[0], wr};
    const TRef i1[2] = {xs[1], wr};
    const TRef a = e.add_op(m.k_dense, i0, 2, ctx, 0);
    const TRef b = e.add_op(m.k_dense, i1, 2, ctx, 0);
    e.trigger_execution();
    return std::make_pair(e.force(a), e.force(b));
  };

  const TRef exs[2] = {eng.add_concrete(m.x8.view()), eng.add_concrete(m.x8b.view())};
  const TRef ewr = eng.add_concrete(m.w.view());
  const TRef rxs[2] = {ref.add_concrete(m.x8.view()), ref.add_concrete(m.x8b.view())};
  const TRef rwr = ref.add_concrete(m.w.view());

  round(eng, exs, ewr);
  const long long bytes1 = eng.stats().gather_bytes;
  CHECK(bytes1 > 0);  // the two xs come from separate pool allocations
  CHECK_EQ(eng.stats().stacked_batches, 1);

  const auto [a2, b2] = round(eng, exs, ewr);
  CHECK_EQ(eng.stats().sched_cache_hits, 1);
  CHECK_EQ(eng.stats().gather_bytes, 2 * bytes1);  // re-staged, not reused
  CHECK_EQ(eng.stats().stacked_batches, 2);

  round(ref, rxs, rwr);
  const auto [ra, rb] = round(ref, rxs, rwr);
  CHECK(std::memcmp(a2.data, ra.data, sizeof(float) * 8) == 0);
  CHECK(std::memcmp(b2.data, rb.data, sizeof(float) * 8) == 0);
}

// Bounded capacity with LRU-ish eviction: three distinct structures cycled
// through a 2-entry cache never hit and evict deterministically; the same
// cycle under a roomier cache hits every repeat.
void test_capacity_eviction() {
  Mini m;
  const auto cycle = [&](Engine& eng, TRef xr) {
    const InstCtx ctx{0};
    for (int len = 1; len <= 3; ++len) {
      TRef v = xr;
      for (int i = 0; i < len; ++i) v = eng.add_op(m.k_tanh, &v, 1, ctx, 0);
      eng.trigger_execution();
    }
  };

  EngineConfig tight = Mini::memo_config();
  tight.sched_memo_capacity = 2;
  Engine eng(m.reg, tight);
  const TRef xr = eng.add_concrete(m.x8.view());
  cycle(eng, xr);
  cycle(eng, xr);
  CHECK_EQ(eng.stats().sched_cache_hits, 0);
  CHECK_EQ(eng.stats().sched_cache_misses, 6);
  CHECK_EQ(eng.stats().sched_cache_evictions, 4);

  Engine roomy(m.reg, Mini::memo_config());
  const TRef xr2 = roomy.add_concrete(m.x8.view());
  cycle(roomy, xr2);
  cycle(roomy, xr2);
  CHECK_EQ(roomy.stats().sched_cache_hits, 3);
  CHECK_EQ(roomy.stats().sched_cache_misses, 3);
  CHECK_EQ(roomy.stats().sched_cache_evictions, 0);
}

}  // namespace

int main() {
  test_differential_sweep();
  test_variant_invalidation();
  test_attr_keys_separate();
  test_shape_invalidation();
  test_gather_restaged_on_replay();
  test_capacity_eviction();
  return acrobat::test::finish("test_sched_memo");
}
