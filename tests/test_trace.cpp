// Observability acceptance (ISSUE 7 / DESIGN.md §9):
//  (a) the event ring is fixed-capacity with honest drop accounting —
//      wraparound keeps the newest events and counts what it overwrote;
//  (b) histogram-backed percentiles stay within the bucket-resolution error
//      bound of exact sorted-sample quantiles on seeded data, in O(1)
//      memory (the type-level no-sample-vectors contract is a
//      static_assert in serve/stats.h);
//  (c) tracing is observation-free: a serve run with the tracer on is
//      bitwise identical (outputs) and counter-identical (ActivityStats)
//      to the same run with it off, and the trace itself contains the
//      spans/instants the run implies;
//  (d) same for a fleet run with shedding — every shed has its kShed
//      instant, every completion its kAdmit;
//  (e) a tracer-on soak stays on the recycling layer's zero-steady-state-
//      allocation plateau while the ring and metrics stream stay bounded
//      (ACROBAT_SERVE_REQUESTS overrides the trace length; default 2000).
#include "fleet/fleet.h"
#include "models/specs.h"
#include "serve/server.h"
#include "test_util.h"
#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

using namespace acrobat;

namespace {

using acrobat::test::env_requests;

// (a) Ring wraparound: capacity is a power of two, emitted counts
// everything, dropped counts exactly the overwritten prefix, and the
// snapshot is the newest `capacity` events oldest→newest.
void test_ring_wraparound() {
  trace::TraceConfig cfg;
  cfg.ring_capacity = 5;  // rounds up to 8
  trace::Tracer t(/*shard=*/3, cfg);
  CHECK_EQ(t.capacity(), 8);
  CHECK_EQ(t.emitted(), 0);
  CHECK_EQ(t.dropped(), 0);

  for (int i = 0; i < 20; ++i)
    t.instant(trace::EventKind::kFiberSpawn, /*a=*/i);
  CHECK_EQ(t.emitted(), 20);
  CHECK_EQ(t.dropped(), 12);

  std::vector<trace::Event> snap;
  t.snapshot(snap);
  CHECK_EQ(snap.size(), 8);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    CHECK_EQ(snap[i].a, static_cast<int>(i) + 12);  // newest 8 survive
    CHECK_EQ(snap[i].shard, 3);
    if (i > 0) CHECK(snap[i].t_ns >= snap[i - 1].t_ns);  // oldest→newest
  }

  // dump_track carries the drop ledger into the run-end assembly.
  const trace::TrackDump d = trace::dump_track(t, 4, "shard3");
  CHECK_EQ(d.events.size(), 8);
  CHECK_EQ(d.emitted, 20);
  CHECK_EQ(d.dropped, 12);
}

// Exemplar slots: keep-N-worst, no growth beyond the reserved slice.
void test_exemplar_capture() {
  trace::TraceConfig cfg;
  cfg.ring_capacity = 64;
  cfg.max_exemplars = 2;
  cfg.exemplar_events = 4;
  trace::Tracer t(0, cfg);
  t.set_epoch(0);  // absolute timestamps: windows below use raw now()

  const std::int64_t t0 = t.now();
  for (int i = 0; i < 8; ++i) t.instant(trace::EventKind::kGather, i);
  const std::int64_t t1 = t.now();

  t.capture_exemplar(/*request_id=*/7, t0, t1, /*latency_ns=*/100);
  t.capture_exemplar(/*request_id=*/8, t0, t1, /*latency_ns=*/300);
  t.capture_exemplar(/*request_id=*/9, t0, t1, /*latency_ns=*/200);  // evicts 100

  int kept = 0;
  bool saw_slow = false, saw_fast = false;
  for (const trace::Exemplar& e : t.exemplars()) {
    if (e.request_id < 0) continue;
    ++kept;
    saw_slow |= e.request_id == 8;
    saw_fast |= e.request_id == 7;
    CHECK(e.events.size() <= 4);  // slot capacity, overflow counted
    CHECK(e.events.size() + e.truncated >= 8);
    CHECK(e.latency_ns >= 200);
  }
  CHECK_EQ(kept, 2);
  CHECK(saw_slow);
  CHECK(!saw_fast);  // the fastest exemplar lost its slot to a slower one
}

// (b) Histogram error bound: log-bucketed quantiles vs exact nearest-rank
// on seeded heavy-tailed data; attainment vs the exact empirical CDF.
void test_histo_error_bound() {
  std::mt19937_64 rng(acrobat::test::seed(0x715c0));
  std::lognormal_distribution<double> dist(1.0, 1.5);  // ms, heavy tail
  const int n = 20000;
  serve::LatencyHisto h;
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double ms = dist(rng);
    xs.push_back(ms);
    h.add(ms);
  }
  std::sort(xs.begin(), xs.end());

  const auto exact_q = [&](double q) {
    std::size_t r = static_cast<std::size_t>(std::ceil(q * n));
    if (r < 1) r = 1;
    return xs[r - 1];
  };
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double got = h.quantile(q);
    const double want = exact_q(q);
    const double rel = std::fabs(got - want) / want;
    if (rel > serve::LatencyHisto::kRelError + 1e-6)
      std::printf("q=%.3f got=%.4f want=%.4f rel=%.4f\n", q, got, want, rel);
    CHECK(rel <= serve::LatencyHisto::kRelError + 1e-6);
  }
  CHECK_EQ(h.count(), n);
  CHECK(h.quantile(1.0) == h.max());  // clamped to the exact max

  for (const double d : {1.0, 3.0, 10.0, 50.0}) {
    const double exact = static_cast<double>(std::upper_bound(xs.begin(), xs.end(), d) -
                                             xs.begin()) /
                         n;
    CHECK_NEAR(h.attainment(d), exact, 0.05);
  }
  CHECK_NEAR(h.attainment(xs.back()), 1.0, 1e-12);  // exact at the max

  // merge == adding both sample streams into one histogram.
  serve::LatencyHisto a, b;
  for (int i = 0; i < n; ++i) (i % 2 == 0 ? a : b).add(xs[static_cast<std::size_t>(i)]);
  a.merge(b);
  CHECK_EQ(a.count(), h.count());
  CHECK(a.quantile(0.99) == h.quantile(0.99));
  CHECK(a.max() == h.max());
}

// Deterministic serve run (cf. test_serve's recycling parity): all arrivals
// at t=0 and a deadline policy holding the first trigger until the whole
// cohort is admitted, so batch composition — and thus every counter — is a
// pure function of arrival order.
serve::ServeResult run_cohorts(const harness::Prepared& p, const models::Dataset& ds,
                               int n, int cohort, const trace::TraceOptions& to) {
  std::vector<serve::Request> trace;
  for (int i = 0; i < n; ++i)
    trace.push_back(serve::Request{i, static_cast<std::size_t>(i) % ds.inputs.size(), 0});
  serve::ServeOptions so;
  so.collect_outputs = true;
  so.policy.kind = serve::PolicyKind::kDeadline;
  so.policy.min_batch = cohort;
  so.policy.max_admit = cohort;
  so.policy.slo_ns = 10'000'000'000;
  so.policy.max_hold_ns = 10'000'000'000;
  so.trace = to;
  return serve::serve(p, ds, trace, so);
}

// (c) Tracer parity + trace content over a serve run.
void test_serve_trace_parity() {
  const models::ModelSpec& spec = models::model_by_name("BiRNN");
  const models::Dataset ds = models::make_token_dataset(false, 8, 29, 14, 14);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
  const int n = 24, cohort = 8;

  trace::TraceOptions off;  // default: disabled
  trace::TraceOptions on;
  on.enabled = true;
  on.slow_threshold_ns = 1;     // every completion qualifies as an exemplar
  on.tick_every_triggers = 1;   // force metric ticks even in a short run
  const serve::ServeResult a = run_cohorts(p, ds, n, cohort, off);
  const serve::ServeResult b = run_cohorts(p, ds, n, cohort, on);

  // Observation-free: outputs bitwise identical, counters exactly equal.
  CHECK_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ao = a.records[i].output;
    const auto& bo = b.records[i].output;
    CHECK_EQ(ao.size(), bo.size());
    for (std::size_t j = 0; j < ao.size(); ++j) CHECK(ao[j] == bo[j]);  // bitwise
  }
  const ActivityStats& sa = a.shards.at(0).stats;
  const ActivityStats& sb = b.shards.at(0).stats;
  CHECK_EQ(sa.kernel_launches, sb.kernel_launches);
  CHECK_EQ(sa.flat_batches, sb.flat_batches);
  CHECK_EQ(sa.stacked_batches, sb.stacked_batches);
  CHECK_EQ(sa.gather_bytes, sb.gather_bytes);
  CHECK_EQ(sa.sched_cache_hits, sb.sched_cache_hits);
  CHECK_EQ(sa.sched_cache_misses, sb.sched_cache_misses);
  CHECK_EQ(sa.scheduling_allocs, sb.scheduling_allocs);
  CHECK_EQ(a.shards.at(0).triggers, b.shards.at(0).triggers);

  // Off: no dump at all. On: dispatcher track + one per shard.
  CHECK(a.trace.empty());
#ifndef ACROBAT_TRACE_COMPILED_OUT
  CHECK_EQ(b.trace.tracks.size(), 2);
  CHECK(b.trace.total_events() > 0);
  CHECK(b.trace.count(trace::EventKind::kTrigger) > 0);
  CHECK(b.trace.count(trace::EventKind::kSchedule) > 0);
  CHECK(b.trace.count(trace::EventKind::kBatch) > 0);
  CHECK(b.trace.count(trace::EventKind::kMemoHit) +
            b.trace.count(trace::EventKind::kMemoMiss) >
        0);
  CHECK_EQ(b.trace.count(trace::EventKind::kAdmit), n);
  CHECK_EQ(b.trace.count(trace::EventKind::kDispatch), n);
  CHECK_EQ(b.trace.count(trace::EventKind::kShed), 0);
  for (const trace::TrackDump& t : b.trace.tracks) CHECK_EQ(t.dropped, 0);

  // Every batch span nests inside some trigger span on its track (the
  // Python validator re-checks this on the exported JSON in CI).
  for (const trace::TrackDump& t : b.trace.tracks) {
    for (const trace::Event& e : t.events) {
      if (e.kind != trace::EventKind::kBatch) continue;
      bool inside = false;
      for (const trace::Event& s : t.events) {
        if (s.kind != trace::EventKind::kTrigger) continue;
        if (s.t_ns <= e.t_ns && e.t_ns + e.dur_ns <= s.t_ns + s.dur_ns) {
          inside = true;
          break;
        }
      }
      CHECK(inside);
    }
  }

  // Metric stream: ticking every trigger must produce ticks, with the
  // shard's registered gauge names riding along.
  CHECK(!b.trace.ticks.empty());
  CHECK_EQ(b.trace.metric_names.size(), 7);
  for (const trace::MetricsTick& t : b.trace.ticks)
    CHECK_EQ(t.n, b.trace.metric_names.size());

  // Slow-request exemplars: threshold 1ns freezes the worst completions.
  bool any_exemplar = false;
  for (const trace::TrackDump& t : b.trace.tracks)
    for (const trace::Exemplar& e : t.exemplars) any_exemplar |= e.request_id >= 0;
  CHECK(any_exemplar);

  // Chrome JSON export round-trip: starts as a JSON object, non-trivial.
  const char* path = "test_trace_out.json";
  CHECK(b.trace.write_chrome_json(path));
  FILE* f = std::fopen(path, "rb");
  CHECK(f != nullptr);
  if (f != nullptr) {
    char head[2] = {0, 0};
    CHECK_EQ(std::fread(head, 1, 1, f), 1);
    CHECK_EQ(head[0], '{');
    std::fclose(f);
    std::remove(path);
  }
#else
  CHECK(b.trace.empty());  // compiled out: enabling records nothing
#endif
}

// (d) Fleet: shedding is fully visible in the trace. Interactive deadline
// 1ns (blown on arrival, est_service 0, grace 0) + no-SLO batch class →
// exactly the interactive requests shed, deterministically; the cohort
// hold makes the rest one fixed batch.
void test_fleet_trace_sheds() {
  fleet::ModelRegistry reg;
  reg.add(models::model_by_name("TreeLSTM"), false,
          models::model_by_name("TreeLSTM").build_dataset(false, 6, 11));
  reg.add(models::model_by_name("BiRNN"), false,
          models::model_by_name("BiRNN").build_dataset(false, 6, 19));
  reg.prepare();

  const int n = 24;
  std::vector<serve::Request> trace;
  int interactive = 0;
  for (int i = 0; i < n; ++i) {
    serve::Request r;
    r.id = i;
    r.model_id = i % reg.num_models();
    r.input_index = static_cast<std::size_t>(i / reg.num_models()) %
                    reg.model(r.model_id).dataset.inputs.size();
    r.arrival_ns = 0;
    r.latency_class = i % 3 == 0 ? serve::LatencyClass::kInteractive
                                 : serve::LatencyClass::kBatch;
    interactive += i % 3 == 0 ? 1 : 0;
    trace.push_back(r);
  }

  const auto run = [&](bool traced) {
    fleet::FleetOptions fo;
    fo.collect_outputs = true;
    fo.policy.deadline_ns = {1, 0, 0};  // interactive blown at arrival; rest no-SLO
    fo.policy.est_service_ns = 0;
    fo.policy.shed_grace = 0.0;
    fo.policy.base.kind = serve::PolicyKind::kDeadline;
    fo.policy.base.min_batch = n;  // hold until the whole cohort (incl. doomed) is in
    fo.policy.base.max_admit = n;
    fo.policy.base.slo_ns = 10'000'000'000;
    fo.policy.base.max_hold_ns = 10'000'000'000;
    fo.trace.enabled = traced;
    fo.trace.slow_threshold_ns = traced ? 1 : 0;
    return fleet::serve_fleet(reg, trace, fo);
  };

  const fleet::FleetResult a = run(false);
  const fleet::FleetResult b = run(true);

  CHECK_EQ(a.shed, interactive);
  CHECK_EQ(b.shed, interactive);
  CHECK_EQ(a.shards.at(0).stats.kernel_launches, b.shards.at(0).stats.kernel_launches);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    CHECK_EQ(a.records[i].shed ? 1 : 0, b.records[i].shed ? 1 : 0);
    const auto& ao = a.records[i].output;
    const auto& bo = b.records[i].output;
    CHECK_EQ(ao.size(), bo.size());
    for (std::size_t j = 0; j < ao.size(); ++j) CHECK(ao[j] == bo[j]);  // bitwise
  }

  CHECK(a.trace.empty());
#ifndef ACROBAT_TRACE_COMPILED_OUT
  CHECK_EQ(b.trace.count(trace::EventKind::kShed), interactive);
  CHECK_EQ(b.trace.count(trace::EventKind::kAdmit), n - interactive);
  CHECK_EQ(b.trace.count(trace::EventKind::kDispatch), n);
  CHECK(b.trace.count(trace::EventKind::kTrigger) > 0);
  CHECK(b.trace.count(trace::EventKind::kBatch) > 0);
  bool any_exemplar = false;
  for (const trace::TrackDump& t : b.trace.tracks)
    for (const trace::Exemplar& e : t.exemplars) any_exemplar |= e.request_id >= 0;
  CHECK(any_exemplar);
#endif
}

// (e) Tracer-on soak: the ring and tick stream stay bounded while the
// engine keeps its zero-steady-state-allocation plateau — tracing must not
// reintroduce the per-request growth the recycling layer removed.
void test_soak_tracer_on_plateau() {
  const int n = env_requests(2000);
  const int n_short = n >= 1000 ? 500 : (n >= 40 ? n / 4 : n);

  const models::ModelSpec& spec = models::model_by_name("BiRNN");
  const models::Dataset ds = models::make_token_dataset(false, 8, 29, 14, 14);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  serve::LoadSpec ls;
  ls.num_requests = n;
  ls.rate_rps = 1e12;
  ls.seed = acrobat::test::seed(31) ^ 0x7ace;
  const std::vector<serve::Request> full = serve::generate_load(ls, ds.inputs.size());
  std::vector<serve::Request> prefix(full.begin(), full.begin() + n_short);

  const auto run = [&](const std::vector<serve::Request>& trace) {
    serve::ServeOptions so;
    so.policy.kind = serve::PolicyKind::kMaxBatch;
    so.policy.max_batch = 8;
    so.trace.enabled = true;
    so.trace.config.ring_capacity = 1u << 12;
    return serve::serve(p, ds, trace, so);
  };
  const serve::ServeResult short_res = run(prefix);
  const serve::ServeResult long_res = run(full);

  const ActivityStats& ss = short_res.shards.at(0).stats;
  const ActivityStats& st = long_res.shards.at(0).stats;
  std::printf("traced soak: %d vs %d requests | sched allocs %lld vs %lld | "
              "nodes %zu vs %zu | events %llu (dropped %llu) ticks %zu\n",
              n_short, n, ss.scheduling_allocs, st.scheduling_allocs,
              short_res.shards.at(0).mem.node_table_size,
              long_res.shards.at(0).mem.node_table_size,
              static_cast<unsigned long long>(long_res.trace.total_events() +
                                              (long_res.trace.tracks.empty()
                                                   ? 0
                                                   : long_res.trace.tracks[0].dropped)),
              static_cast<unsigned long long>(
                  long_res.trace.tracks.empty() ? 0 : long_res.trace.tracks[1].dropped),
              long_res.trace.ticks.size());

  // Engine plateau holds with the tracer attached.
  CHECK(st.scheduling_allocs <= 2 * ss.scheduling_allocs);
  CHECK_EQ(long_res.shards.at(0).mem.leaked_slots, 0);
  CHECK(long_res.shards.at(0).mem.node_table_size <=
        2 * short_res.shards.at(0).mem.node_table_size);

#ifndef ACROBAT_TRACE_COMPILED_OUT
  // Bounded observability: however long the run, the retained window never
  // exceeds the ring and the emitted/dropped ledger accounts for the rest.
  for (const trace::TrackDump& t : long_res.trace.tracks) {
    CHECK(t.events.size() <= (1u << 12));
    CHECK_EQ(t.emitted, t.events.size() + t.dropped);
  }
  // The shard track of a 4x-longer run actually wrapped (same window size).
  CHECK(long_res.trace.tracks.at(1).dropped > 0 || n < 200);
  CHECK(long_res.trace.ticks.size() >= short_res.trace.ticks.size());
#endif
}

}  // namespace

int main() {
  test_ring_wraparound();
  test_exemplar_capture();
  test_histo_error_bound();
  test_serve_trace_parity();
  test_fleet_trace_sheds();
  test_soak_tracer_on_plateau();
  return acrobat::test::finish("test_trace");
}
