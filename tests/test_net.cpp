// Ingress acceptance (ISSUE 9 / DESIGN.md §10): the socket front door must
// add *nothing* to the serving semantics — only a wire.
//  (a) frame codec: encode/parse roundtrips bitwise under any fragmentation
//      (byte-at-a-time included); a corrupt header faults, never buffers;
//  (b) wire parity: a deterministic cohort served over loopback TCP is
//      bitwise-identical — outputs, token counts, and hermetic engine
//      counters — to the same cohort through the in-proc serve() path;
//  (c) backpressure: a burst beyond the admission bound gets explicit 429
//      frames, every request gets exactly one terminal frame, and the
//      admission/slot high-water marks never exceed their configured caps;
//  (d) slow reader: a connection that stops reading is dropped when its
//      bounded write buffer fills — the shards drain to completion anyway;
//  (e) mid-stream drop: closing a connection with live streaming sessions
//      cancels them through the owner-tagged cancel path;
//  (f) multi-process fleet: a 2-worker fleet serves solo-bitwise-identical
//      outputs across the process boundary, and SIGKILLing a worker still
//      yields a terminal frame for every request plus a clean drain;
//  (g) soak: a bounded-ingress loop with client-side 429 retry completes
//      every request (the ASan job runs this shape for leak coverage).
//
// Sockets may be unavailable in a sandbox: each wire test SKIPs (loudly)
// when NetServer::start() cannot bind, leaving the codec test as the floor.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "models/specs.h"
#include "net/client.h"
#include "net/net.h"
#include "serve/server.h"
#include "test_util.h"

using namespace acrobat;
using acrobat::test::env_requests;

namespace {

int g_skips = 0;

bool start_or_skip(net::NetServer& srv, const char* what) {
  if (srv.start()) return true;
  std::printf("SKIP %s: %s\n", what, srv.error().c_str());
  ++g_skips;
  return false;
}

models::Dataset solo_dataset(const models::Dataset& ds, std::size_t idx) {
  models::Dataset one;
  one.pool = ds.pool;
  one.tensors = ds.tensors;
  one.inputs.push_back(ds.inputs[idx]);
  return one;
}

std::vector<float> solo_outputs(const harness::Prepared& p,
                                const models::Dataset& ds, std::size_t idx) {
  harness::RunOptions o;
  o.collect_outputs = true;
  return harness::run_acrobat(p, solo_dataset(ds, idx), o).outputs.at(0);
}

// The deterministic cohort recipe (test_decode.cpp): everything in one
// admission window, so batch composition — and therefore every counter and
// output bit — is a pure function of arrival order.
serve::PolicyConfig cohort_policy(int n) {
  serve::PolicyConfig pc;
  pc.kind = serve::PolicyKind::kDeadline;
  pc.min_batch = static_cast<std::size_t>(n);
  pc.max_admit = static_cast<std::size_t>(n);
  pc.slo_ns = 10'000'000'000;
  pc.max_hold_ns = 10'000'000'000;
  return pc;
}

// (a) Codec: typed roundtrips, arbitrary fragmentation, loud corruption.
void test_frame_codec() {
  using namespace acrobat::net;
  std::vector<std::uint8_t> bytes;
  const float ref[] = {1.5f, -0.25f, 3e-7f};
  encode_request(bytes, 42, 7, 0, 3, true);
  encode_done(bytes, FrameType::kDone, 42, 9, false, ref, 3);
  encode_id_pair(bytes, FrameType::kToken, 42, 4);
  encode_id_only(bytes, FrameType::kRetry, 99);
  encode_empty(bytes, FrameType::kWorkerPing);

  // Feed one byte at a time: frames must pop complete and in order.
  FrameReader rd;
  std::vector<Frame> got;
  for (std::uint8_t b : bytes) {
    rd.feed(&b, 1);
    Frame f;
    while (rd.next(f) == FrameReader::Status::kFrame) got.push_back(f);
  }
  CHECK_EQ(got.size(), 5u);
  CHECK_EQ(rd.buffered(), 0u);

  RequestFields rf;
  CHECK(parse_request(got.at(0), rf));
  CHECK_EQ(rf.id, 42u);
  CHECK_EQ(rf.input_index, 7u);
  CHECK_EQ(rf.latency_class, 3);
  CHECK(rf.stream);

  DoneFields df;
  CHECK(parse_done(got.at(1), df));
  CHECK_EQ(df.id, 42u);
  CHECK_EQ(df.tokens, 9u);
  CHECK(!df.cancelled);
  CHECK_EQ(df.n_floats, 3u);
  CHECK(std::memcmp(df.data, ref, sizeof ref) == 0);  // bitwise across the wire

  CHECK(got.at(2).type == FrameType::kToken);
  CHECK_EQ(wire::get_u32(got.at(2).payload.data() + 4), 4u);
  CHECK(got.at(3).type == FrameType::kRetry);
  CHECK_EQ(wire::get_u32(got.at(3).payload.data()), 99u);
  CHECK(got.at(4).type == FrameType::kWorkerPing);
  CHECK_EQ(got.at(4).payload.size(), 0u);

  // One recv delivering many frames: same result.
  FrameReader rd2;
  rd2.feed(bytes.data(), bytes.size());
  Frame f;
  int n = 0;
  while (rd2.next(f) == FrameReader::Status::kFrame) ++n;
  CHECK_EQ(n, 5);

  // A header announcing more than kMaxPayload is a protocol error the
  // moment it is seen — no buffering until the announced length arrives.
  std::vector<std::uint8_t> bad;
  wire::put_u32(bad, kMaxPayload + 1);
  bad.push_back(1);
  bad.push_back(0);
  wire::put_u16(bad, 0);
  FrameReader rd3;
  rd3.feed(bad.data(), bad.size());
  CHECK(rd3.next(f) == FrameReader::Status::kError);
}

// (b) Wire parity: same cohort, same bits, same hermetic counters —
// in-proc serve() vs the full socket path.
void test_wire_parity_vs_serve() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 6, 23);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
  const int n = 6;

  // Reference: the in-proc cohort.
  std::vector<serve::Request> trace;
  for (int i = 0; i < n; ++i)
    trace.push_back(serve::Request{i, static_cast<std::size_t>(i) % ds.inputs.size(), 0});
  serve::ServeOptions so;
  so.collect_outputs = true;
  so.policy = cohort_policy(n);
  const serve::ServeResult ref = serve::serve(p, ds, trace, so);

  // Wire: the same cohort through loopback TCP, streamed.
  net::NetOptions o;
  o.policy = cohort_policy(n);
  o.ds_batch = 6;
  o.ds_seed = 23;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "wire_parity")) return;

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  for (int i = 0; i < n; ++i)
    CHECK(cli.send_request(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i) % ds.inputs.size()));
  std::vector<net::ClientResponse> got(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    CHECK(cli.wait(static_cast<std::uint32_t>(i), got[static_cast<std::size_t>(i)]));
    CHECK(got[static_cast<std::size_t>(i)].kind == net::ClientResponse::Kind::kDone);
  }
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();

  for (int i = 0; i < n; ++i) {
    const net::ClientResponse& r = got[static_cast<std::size_t>(i)];
    const serve::RequestRecord& rec = ref.records.at(static_cast<std::size_t>(i));
    CHECK(!r.cancelled);
    CHECK_EQ(r.tokens, static_cast<std::uint32_t>(rec.tokens));
    // Every decode token crossed the wire as its own frame, in order.
    CHECK_EQ(r.token_recv_ns.size(), static_cast<std::size_t>(rec.tokens));
    CHECK_EQ(r.output.size(), rec.output.size());
    for (std::size_t j = 0; j < rec.output.size(); ++j)
      CHECK(r.output[j] == rec.output[j]);  // bitwise, not approximate
  }

  // Hermetic counters agree across the transport: the ingress changed how
  // requests arrive, not what the engine does with them.
  CHECK_EQ(st.shards.size(), 1u);
  CHECK_EQ(st.shards.at(0).stats.kernel_launches, ref.shards.at(0).stats.kernel_launches);
  CHECK_EQ(st.shards.at(0).stats.flat_batches, ref.shards.at(0).stats.flat_batches);
  CHECK_EQ(st.shards.at(0).stats.stacked_batches, ref.shards.at(0).stats.stacked_batches);
  CHECK_EQ(st.shards.at(0).stats.sched_cache_hits, ref.shards.at(0).stats.sched_cache_hits);
  CHECK_EQ(st.shards.at(0).stats.sched_cache_misses, ref.shards.at(0).stats.sched_cache_misses);
  CHECK_EQ(st.shards.at(0).tokens, ref.tokens);
  CHECK_EQ(st.completed, static_cast<std::uint64_t>(n));
  CHECK_EQ(st.requests, static_cast<std::uint64_t>(n));
  CHECK_EQ(st.rejected_429, 0u);
  CHECK_EQ(st.errors, 0u);
  CHECK_EQ(st.conn_drops, 0u);
  CHECK_EQ(st.cancelled, 0u);
}

// (c) Backpressure: overload sheds with explicit 429s; the bounded queues
// never exceed their configured caps; every request gets one terminal frame.
void test_backpressure_429() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 7);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.admission_capacity = 4;
  o.max_sessions = 4;
  o.launch_overhead_ns = 100'000;  // slow the shard so the burst outruns it
  o.ds_batch = 8;
  o.ds_seed = 7;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "backpressure_429")) return;

  const int burst = 64;
  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  for (int i = 0; i < burst; ++i)
    CHECK(cli.send_request(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i) % ds.inputs.size(),
                           0, 0, /*stream=*/false));
  int done = 0, retried = 0;
  for (int i = 0; i < burst; ++i) {
    net::ClientResponse r;
    CHECK(cli.wait(static_cast<std::uint32_t>(i), r));
    if (r.kind == net::ClientResponse::Kind::kDone) {
      ++done;
      CHECK(!r.output.empty());
    } else {
      CHECK(r.kind == net::ClientResponse::Kind::kRetry);
      ++retried;
    }
  }
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();

  CHECK(retried >= 1);  // the burst genuinely outran a 4-deep admission queue
  CHECK(done >= 1);
  CHECK_EQ(done + retried, burst);
  CHECK_EQ(st.requests, static_cast<std::uint64_t>(burst));
  CHECK_EQ(st.completed, static_cast<std::uint64_t>(done));
  CHECK_EQ(st.rejected_429, static_cast<std::uint64_t>(retried));
  CHECK_EQ(st.errors, 0u);
  // The bounded-ingress contract: high-water marks never exceed the caps.
  CHECK(st.admission_peak <= o.admission_capacity);
  CHECK(st.slots_peak <= o.max_sessions);
}

// (d) Slow reader: a connection that never reads is dropped once its write
// buffer bound fills; the server still drains every admitted session.
void test_slow_reader_dropped() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 7);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.write_buffer_limit = 4096;
  o.sndbuf_bytes = 4096;  // shrink the kernel's slack so the bound is hit
  o.ds_batch = 8;
  o.ds_seed = 7;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "slow_reader")) return;

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  // Stream tokens + outputs at a reader that never reads. The kernel's
  // receive buffer on our side soaks up the first chunk, so keep the server
  // writing — a flood of small requests each earns a response frame (429s
  // once admission fills) until the socket path clogs and the server's
  // bounded write buffer trips. The drop is observable from outside: the
  // server closes with unread data queued (RST), so our sends start failing.
  for (int i = 0; i < 32; ++i)
    CHECK(cli.send_request(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i) % ds.inputs.size()));
  bool send_failed = false;
  for (int i = 0; i < 200'000 && !send_failed; ++i)
    if (!cli.send_request(static_cast<std::uint32_t>(1000 + i), 0, 0, 0,
                          /*stream=*/false))
      send_failed = true;
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK(send_failed);
  CHECK(st.slow_reader_drops >= 1);
  CHECK(st.conn_drops >= 1);
  CHECK(st.write_buf_peak <= o.write_buffer_limit + net::kMaxPayload);
}

// (e) Mid-stream connection drop cancels the live sessions it owned.
void test_midstream_drop_cancels() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 7);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.launch_overhead_ns = 200'000;  // each decode step costs ~a few hundred µs
  o.ds_batch = 8;
  o.ds_seed = 7;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "midstream_drop")) return;

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  for (int i = 0; i < 4; ++i)
    CHECK(cli.send_request(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i) % ds.inputs.size()));
  // Give the dispatcher time to slot the sessions (µs), then vanish
  // mid-stream — at 200µs per simulated launch the cohort is still decoding
  // tens of milliseconds after this.
  ::usleep(5000);
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();

  CHECK(st.conn_drops >= 1);
  long long shard_cancelled = 0;
  for (const serve::ShardReport& s : st.shards) shard_cancelled += s.cancelled;
  // Every request either completed before the drop or was cancelled by it;
  // with 200µs launch overhead at least one session was still mid-decode.
  CHECK(shard_cancelled >= 1);
  CHECK_EQ(st.completed, 4u);  // cancelled sessions still retire through kDone
}

// (f) Multi-process fleet: bitwise parity across the process boundary, and
// a SIGKILLed worker degrades to explicit errors, not hangs.
void test_multiprocess_fleet() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  // Workers rebuild model + dataset from this recipe; build the same one
  // here for the solo reference.
  const models::Dataset ds = spec.build_dataset(false, 6, 23);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.multiprocess = true;
  o.shards = 2;
  o.ds_batch = 6;
  o.ds_seed = 23;
  net::NetServer srv(nullptr, nullptr, o);
  if (!start_or_skip(srv, "multiprocess_fleet")) return;
  CHECK_EQ(srv.worker_pids().size(), 2u);

  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));

  // Sequential (closed-loop K=1) requests: each runs alone in its shard, so
  // the single-session == solo invariant must hold bitwise across the wire
  // AND the process boundary.
  for (int i = 0; i < 6; ++i) {
    CHECK(cli.send_request(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i) % ds.inputs.size()));
    net::ClientResponse r;
    CHECK(cli.wait(static_cast<std::uint32_t>(i), r));
    if (r.kind != net::ClientResponse::Kind::kDone) {
      CHECK(r.kind == net::ClientResponse::Kind::kDone);
      continue;
    }
    const std::vector<float> solo =
        solo_outputs(p, ds, static_cast<std::size_t>(i) % ds.inputs.size());
    CHECK_EQ(r.output.size(), solo.size());
    for (std::size_t j = 0; j < solo.size(); ++j)
      CHECK(r.output[j] == solo[j]);  // bitwise through fork+exec+UDS+TCP
    CHECK_EQ(r.token_recv_ns.size(), static_cast<std::size_t>(r.tokens));
  }

  // Kill one worker. Every subsequent request must still get a terminal
  // frame — kDone from the surviving shard or an explicit kError for any
  // request the dead shard had in flight.
  ::kill(srv.worker_pids().at(0), SIGKILL);
  int done = 0, errored = 0, retried = 0;
  for (int i = 100; i < 112; ++i) {
    CHECK(cli.send_request(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i) % ds.inputs.size()));
    net::ClientResponse r;
    CHECK(cli.wait(static_cast<std::uint32_t>(i), r));
    if (r.kind == net::ClientResponse::Kind::kDone) ++done;
    else if (r.kind == net::ClientResponse::Kind::kError) ++errored;
    else ++retried;
  }
  CHECK_EQ(done + errored + retried, 12);
  CHECK(done >= 1);  // the surviving worker kept serving
  cli.close();
  srv.shutdown();  // must drain cleanly: kWorkerDrain/kWorkerBye + waitpid
  const net::NetStats& st = srv.stats();
  CHECK_EQ(st.worker_deaths, 1u);
  CHECK_EQ(st.shards.size(), 2u);
}

// (g) Bounded-ingress soak: small caps, client-side retry on 429 — every
// request eventually completes. The ASan CI job leans on this shape.
void test_soak_with_retry() {
  const models::ModelSpec& spec = models::model_by_name("Decoder");
  const models::Dataset ds = spec.build_dataset(false, 8, 7);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  net::NetOptions o;
  o.admission_capacity = 8;
  o.max_sessions = 8;
  o.ds_batch = 8;
  o.ds_seed = 7;
  net::NetServer srv(&p, &ds, o);
  if (!start_or_skip(srv, "soak_with_retry")) return;

  const int n = env_requests(64);
  net::NetClient cli;
  CHECK(cli.connect_tcp("127.0.0.1", srv.port()));
  const int window = 16;  // deliberately larger than the admission cap
  int completed = 0, next = 0, outstanding = 0;
  long long retries = 0;
  while (completed < n) {
    while (outstanding < window && next < n) {
      CHECK(cli.send_request(static_cast<std::uint32_t>(next),
                             static_cast<std::uint32_t>(next) % ds.inputs.size()));
      ++next;
      ++outstanding;
    }
    net::ClientResponse r;
    CHECK(cli.wait(static_cast<std::uint32_t>(completed), r));
    if (r.kind == net::ClientResponse::Kind::kRetry) {
      ++retries;
      CHECK(retries < 1'000'000);  // forward progress, not a 429 livelock
      CHECK(cli.send_request(r.req_id,
                             static_cast<std::uint32_t>(r.req_id) % ds.inputs.size()));
      continue;
    }
    CHECK(r.kind == net::ClientResponse::Kind::kDone);
    ++completed;
    --outstanding;
  }
  cli.close();
  srv.shutdown();
  const net::NetStats& st = srv.stats();
  CHECK_EQ(st.completed, static_cast<std::uint64_t>(n));
  CHECK(st.admission_peak <= o.admission_capacity);
  CHECK(st.slots_peak <= o.max_sessions);
  CHECK_EQ(st.conn_drops, 0u);
  std::printf("  soak: %d requests, %llu 429s retried, slots_peak=%zu\n", n,
              static_cast<unsigned long long>(st.rejected_429), st.slots_peak);
}

}  // namespace

int main(int argc, char** argv) {
  // Worker host: the multi-process fleet re-execs this binary.
  if (argc > 1 && std::strcmp(argv[1], "--shard-worker") == 0)
    return net::shard_worker_main(argc, argv);

  test_frame_codec();
  test_wire_parity_vs_serve();
  test_backpressure_429();
  test_slow_reader_dropped();
  test_midstream_drop_cancels();
  test_multiprocess_fleet();
  test_soak_with_retry();
  if (g_skips > 0)
    std::printf("note: %d wire test(s) skipped (no sockets in this sandbox)\n",
                g_skips);
  return acrobat::test::finish("test_net");
}
