// Steady-state soak (DESIGN.md §7 "Recycling", ISSUE 3 acceptance): drive
// thousands of requests through a 1-shard server with epoch recycling on
// and assert the shard's node table and arena high-water mark PLATEAU —
// the run over the full trace must stay within 2x of the run over its
// short prefix, i.e. memory is bounded by peak concurrency, not by the
// request count. A recycling-off contrast run at reduced count shows the
// unbounded-growth shape the recycler removes.
//
// ACROBAT_SERVE_REQUESTS overrides the trace length (default 5000; CI
// registers a reduced-count smoke). The trace seed goes through
// acrobat::test::seed, so ACROBAT_TEST_SEED reproduces a CI failure.
#include "models/specs.h"
#include "serve/server.h"
#include "test_util.h"

#include <cstdio>
#include <cstdlib>

using namespace acrobat;

namespace {

using acrobat::test::env_requests;

// All arrivals at t=0: the dispatcher floods the shard and max-batch
// admission turns the run into a long sequence of recycle epochs at a
// fixed peak concurrency — the densest possible slot/page churn, with no
// real-time waiting.
std::vector<serve::Request> flood_trace(const std::vector<serve::Request>& full, int n) {
  return {full.begin(), full.begin() + n};
}

serve::ServeResult run(const harness::Prepared& p, const models::Dataset& ds,
                       const std::vector<serve::Request>& trace, bool recycle) {
  serve::ServeOptions so;
  so.policy.kind = serve::PolicyKind::kMaxBatch;
  so.policy.max_batch = 8;
  so.recycle = recycle;
  return serve::serve(p, ds, trace, so);
}

void test_soak_memory_plateau() {
  const int n = env_requests(5000);
  const int n_short = n >= 1000 ? 500 : (n >= 40 ? n / 4 : n);

  const models::ModelSpec& spec = models::model_by_name("BiRNN");
  const models::Dataset ds = spec.build_dataset(false, 8, 29);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  serve::LoadSpec ls;
  ls.num_requests = n;
  ls.rate_rps = 1e12;  // effectively simultaneous arrivals
  ls.seed = acrobat::test::seed(31);
  const std::vector<serve::Request> full = serve::generate_load(ls, ds.inputs.size());

  const serve::ServeResult short_res = run(p, ds, flood_trace(full, n_short), true);
  const serve::ServeResult long_res = run(p, ds, full, true);

  for (const serve::RequestRecord& r : long_res.records) CHECK(r.completion_ns >= 0);
  CHECK_EQ(long_res.shards.at(0).requests, n);

  const Engine::MemoryStats& sm = short_res.shards.at(0).mem;
  const Engine::MemoryStats& lm = long_res.shards.at(0).mem;
  std::printf("soak: %d vs %d requests | nodes %zu vs %zu | arenaKB %.0f vs %.0f | "
              "recycled nodes %lld pages %lld | leaked slots %lld | sched allocs %lld vs %lld\n",
              n_short, n, sm.node_table_size, lm.node_table_size,
              static_cast<double>(sm.arena_high_water_bytes) / 1024.0,
              static_cast<double>(lm.arena_high_water_bytes) / 1024.0,
              lm.nodes_recycled, lm.arena_pages_recycled, lm.leaked_slots,
              short_res.shards.at(0).stats.scheduling_allocs,
              long_res.shards.at(0).stats.scheduling_allocs);

  // The plateau: 10x the requests, ~same memory.
  CHECK(lm.node_table_size <= 2 * sm.node_table_size);
  CHECK(lm.arena_high_water_bytes <= 2 * sm.arena_high_water_bytes);
  // No request ever retired with pending ops (the Release-mode leak path
  // retire_request counts instead of hiding).
  CHECK_EQ(lm.leaked_slots, 0);
  // Scheduler scratch plateaus with the working set, not the trace: 10x the
  // requests may not 2x the allocation events (steady state adds zero).
  CHECK(long_res.shards.at(0).stats.scheduling_allocs <=
        2 * short_res.shards.at(0).stats.scheduling_allocs);
  // The recycler actually ran, and shutdown drained to the persistent set.
  CHECK(lm.nodes_recycled > 0);
  CHECK(lm.live_nodes < lm.node_table_size);  // drained to the persistent set
  CHECK(lm.live_nodes_peak <= lm.node_table_size);
  // Fiber stacks already plateaued pre-recycling; they must still.
  CHECK(long_res.shards.at(0).stacks_allocated <=
        static_cast<long long>(long_res.shards.at(0).max_live) + 1);

  // Contrast (reduced count to bound runtime): without recycling the node
  // table tracks the request count — the growth the recycler removes. Only
  // meaningful when the counts differ enough to separate the shapes.
  if (n_short >= 4 * 40) {
    const int n_mid = n_short / 4;
    const serve::ServeResult off_short = run(p, ds, flood_trace(full, n_mid), false);
    const serve::ServeResult off_long = run(p, ds, flood_trace(full, n_short), false);
    const std::size_t grow_off =
        off_long.shards.at(0).mem.node_table_size - off_short.shards.at(0).mem.node_table_size;
    CHECK(grow_off > 0);  // table keeps growing with requests
    CHECK_EQ(off_long.shards.at(0).mem.nodes_recycled, 0);
    CHECK(off_long.shards.at(0).mem.node_table_size >
          2 * off_short.shards.at(0).mem.node_table_size);
  }
}

// Schedule memoization in steady-state serving (ISSUE 6 acceptance): with a
// fixed-length dataset every max-batch cohort is structurally identical, so
// after the first few triggers populate the cache (the constant-recording
// trigger keys differently than its successors) the shard replays plans for
// the rest of the soak — the hit rate must clear 90% while the scheduling-
// alloc plateau and the leak gauge hold exactly as without the cache.
void test_soak_memo_hit_rate() {
  const int n = env_requests(5000);
  const int n_short = n >= 1000 ? 500 : (n >= 40 ? n / 4 : n);

  const models::ModelSpec& spec = models::model_by_name("BiRNN");
  // Fixed length 14 (the middle of BiRNN's default 12..18 range): the
  // recurring-trigger regime a production fleet sees for a bucketed model.
  const models::Dataset ds = models::make_token_dataset(false, 8, 29, 14, 14);
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});

  serve::LoadSpec ls;
  ls.num_requests = n;
  ls.rate_rps = 1e12;
  ls.seed = acrobat::test::seed(31) ^ 0x50ull;
  const std::vector<serve::Request> full = serve::generate_load(ls, ds.inputs.size());

  const serve::ServeResult short_res = run(p, ds, flood_trace(full, n_short), true);
  const serve::ServeResult long_res = run(p, ds, full, true);

  const ActivityStats& ss = short_res.shards.at(0).stats;
  const ActivityStats& st = long_res.shards.at(0).stats;
  const double hit_rate = static_cast<double>(st.sched_cache_hits) /
                          static_cast<double>(st.sched_cache_hits + st.sched_cache_misses);
  std::printf("memo soak: %d requests | hits %lld misses %lld evictions %lld "
              "(%.1f%% hit rate) | sched allocs %lld vs %lld\n",
              n, st.sched_cache_hits, st.sched_cache_misses, st.sched_cache_evictions,
              100.0 * hit_rate, ss.scheduling_allocs, st.scheduling_allocs);
  CHECK(st.sched_cache_hits + st.sched_cache_misses > 0);
  CHECK(hit_rate >= 0.90);
  // Replayed plans come out of the same engine-owned scratch discipline:
  // 10x the requests may not 2x the allocation events, and nothing leaks.
  CHECK(st.scheduling_allocs <= 2 * ss.scheduling_allocs);
  CHECK_EQ(long_res.shards.at(0).mem.leaked_slots, 0);
  CHECK(long_res.shards.at(0).mem.node_table_size <=
        2 * short_res.shards.at(0).mem.node_table_size);
}

}  // namespace

int main() {
  test_soak_memory_plateau();
  test_soak_memo_hit_rate();
  return acrobat::test::finish("test_serve_soak");
}
