// Backward-pass correctness: reverse-plan replay gradients vs finite
// differences on a small dense→tanh→sum network, plus the batching
// inheritance property (batched backward ⇒ few launches).
#include "grad/backward.h"
#include "support/rng.h"
#include "test_util.h"

using namespace acrobat;

namespace {

struct Net {
  KernelRegistry reg;
  int k_dense, k_tanh, k_sum;
  Net() {
    const Shape x(6), w(4, 6);
    const Shape reps[2] = {x, w};
    k_dense = reg.add("g.dense", OpKind::kDense, 0, 2, reps);
    k_tanh = reg.add("g.tanh", OpKind::kTanh, 0, 1, reps);
    k_sum = reg.add("g.sum", OpKind::kSumAll, 0, 1, reps);
  }
};

float forward(Net& net, const float* xv, const float* wv) {
  TensorPool pool;
  Tensor x = pool.alloc(RowVec(6));
  Tensor w = pool.alloc(Shape(4, 6));
  for (int i = 0; i < 6; ++i) x.data[i] = xv[i];
  for (int i = 0; i < 24; ++i) w.data[i] = wv[i];
  EngineConfig cfg;
  Engine eng(net.reg, cfg);
  const TRef xr = eng.add_concrete(x.view());
  const TRef wr = eng.add_concrete(w.view());
  InstCtx ctx{0};
  const TRef ins[2] = {xr, wr};
  const TRef d = eng.add_op(net.k_dense, ins, 2, ctx, 0);
  const TRef t = eng.add_op(net.k_tanh, &d, 1, ctx, 0);
  const TRef s = eng.add_op(net.k_sum, &t, 1, ctx, 0);
  return eng.force(s).data[0];
}

void test_finite_differences() {
  Net net;
  Rng rng(11);
  float xv[6], wv[24];
  for (float& v : xv) v = rng.uniform(1.0f);
  for (float& v : wv) v = rng.uniform(0.4f);

  // Analytic gradients via backward().
  TensorPool pool;
  Tensor x = pool.alloc(RowVec(6));
  Tensor w = pool.alloc(Shape(4, 6));
  for (int i = 0; i < 6; ++i) x.data[i] = xv[i];
  for (int i = 0; i < 24; ++i) w.data[i] = wv[i];
  EngineConfig cfg;
  Engine eng(net.reg, cfg);
  const TRef xr = eng.add_concrete(x.view());
  const TRef wr = eng.add_concrete(w.view());
  InstCtx ctx{0};
  const TRef ins[2] = {xr, wr};
  const TRef d = eng.add_op(net.k_dense, ins, 2, ctx, 0);
  const TRef t = eng.add_op(net.k_tanh, &d, 1, ctx, 0);
  const TRef s = eng.add_op(net.k_sum, &t, 1, ctx, 0);
  eng.trigger_execution();

  grad::BackwardOptions bopts;
  const grad::BackwardResult bw =
      grad::backward(eng, net.reg, {{s, {1.0f}}}, bopts);
  const auto& dx = bw.grads.at(xr.id);
  const auto& dw = bw.grads.at(wr.id);

  const float eps = 1e-3f;
  for (int i = 0; i < 6; ++i) {
    float xp[6], xm[6];
    for (int j = 0; j < 6; ++j) xp[j] = xm[j] = xv[j];
    xp[i] += eps;
    xm[i] -= eps;
    const double fd = (forward(net, xp, wv) - forward(net, xm, wv)) / (2.0 * eps);
    CHECK_NEAR(dx[static_cast<std::size_t>(i)], fd, 2e-2);
  }
  for (int i = 0; i < 24; i += 5) {
    float wp[24], wm[24];
    for (int j = 0; j < 24; ++j) wp[j] = wm[j] = wv[j];
    wp[i] += eps;
    wm[i] -= eps;
    const double fd = (forward(net, xv, wp) - forward(net, xv, wm)) / (2.0 * eps);
    CHECK_NEAR(dw[static_cast<std::size_t>(i)], fd, 2e-2);
  }
}

void test_backward_inherits_batching() {
  Net net;
  TensorPool pool;
  Rng rng(5);
  const Tensor w = pool.alloc_random(Shape(4, 6), rng, 0.4f);

  auto launches = [&](int instances, bool batched) {
    long long total = 0;
    auto run_group = [&](int n) {
      EngineConfig cfg;
      Engine eng(net.reg, cfg);
      const TRef wr = eng.add_concrete(w.view());
      std::vector<grad::Seed> seeds;
      for (int i = 0; i < n; ++i) {
        InstCtx ctx{i};
        const Tensor x = pool.alloc_random(RowVec(6), rng, 1.0f);
        const TRef xr = eng.add_concrete(x.view());
        const TRef ins[2] = {xr, wr};
        const TRef d = eng.add_op(net.k_dense, ins, 2, ctx, 0);
        const TRef t = eng.add_op(net.k_tanh, &d, 1, ctx, 0);
        seeds.push_back({t, std::vector<float>(4, 1.0f)});
      }
      eng.trigger_execution();
      grad::BackwardOptions bopts;
      total += grad::backward(eng, net.reg, seeds, bopts).backward_launches;
    };
    if (batched) {
      run_group(instances);
    } else {
      for (int i = 0; i < instances; ++i) run_group(1);
    }
    return total;
  };

  const long long batched = launches(12, true);
  const long long solo = launches(12, false);
  CHECK(batched < solo);
  CHECK_EQ(batched, 3);  // tanh:1 + dense:2 — one batch each
  CHECK_EQ(solo, 36);
}

}  // namespace

int main() {
  test_finite_differences();
  test_backward_inherits_batching();
  return acrobat::test::finish("test_grad");
}
