// The boxed VM and the AOT executor must compute identical results for
// every model (same program, same engine kernels — only dispatch differs),
// and the batched runtime must match across schedulers.
#include "baselines/dynet.h"
#include "baselines/eager.h"
#include "grad/backward.h"
#include "harness/harness.h"
#include "test_util.h"

using namespace acrobat;

namespace {

harness::RunOptions out_opts() {
  harness::RunOptions o;
  o.collect_outputs = true;
  return o;
}

void check_same(const harness::RunResult& a, const harness::RunResult& b, double tol) {
  CHECK_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    CHECK_EQ(a.outputs[i].size(), b.outputs[i].size());
    for (std::size_t j = 0; j < a.outputs[i].size(); ++j)
      CHECK_NEAR(a.outputs[i][j], b.outputs[i][j], tol);
  }
}

void test_vm_vs_aot_all_models() {
  for (const auto& spec : models::all_models()) {
    const models::Dataset ds = spec.build_dataset(false, 4, 0x1234);
    harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
    const harness::RunResult aot = harness::run_acrobat(p, ds, out_opts());
    const harness::RunResult vm = harness::run_vm(p, ds, out_opts());
    CHECK(!aot.outputs.empty());
    check_same(aot, vm, 1e-5);
  }
}

void test_batched_vs_eager_numerics() {
  // The lazy batched runtime and the eager per-op baseline agree (same
  // per-op pipeline so the kernel graphs match exactly).
  for (const char* name : {"TreeLSTM", "BiRNN", "NestedRNN"}) {
    const models::ModelSpec& spec = models::model_by_name(name);
    const models::Dataset ds = spec.build_dataset(false, 4, 0x77);
    harness::Prepared lazy = harness::prepare(spec, false, grad::training_pipeline_config());
    harness::Prepared eager = harness::prepare(spec, false, baselines::eager_pipeline_config());
    const harness::RunResult a = harness::run_acrobat(lazy, ds, out_opts());
    const harness::RunResult b = baselines::run_eager(eager, ds, out_opts());
    check_same(a, b, 1e-5);
  }
}

void test_dynet_schedulers_numerics() {
  for (const char* name : {"TreeLSTM", "MV-RNN"}) {
    const models::ModelSpec& spec = models::model_by_name(name);
    const models::Dataset ds = spec.build_dataset(false, 4, 0x99);
    harness::Prepared p = harness::prepare(spec, false, baselines::dynet_pipeline_config());
    harness::Prepared pe = harness::prepare(spec, false, baselines::eager_pipeline_config());
    const harness::RunResult ref = baselines::run_eager(pe, ds, out_opts());
    // run_dynet has no output collection; drive the same configs through
    // run_with_engine to compare numerics under both dynamic schedulers.
    for (const bool agenda : {true, false}) {
      EngineConfig ec;
      ec.inline_depth = false;
      ec.phases = false;
      ec.gather_fusion = false;
      ec.const_reuse = false;
      ec.scheduler = agenda ? SchedulerKind::kAgenda : SchedulerKind::kDepth;
      ec.shape_keyed_batching = false;
      ec.boxed_dfg = true;
      const harness::RunResult d = harness::run_with_engine(p, ds, out_opts(), ec, false, false);
      check_same(ref, d, 1e-5);
    }
  }
}

}  // namespace

int main() {
  test_vm_vs_aot_all_models();
  test_batched_vs_eager_numerics();
  test_dynet_schedulers_numerics();
  return acrobat::test::finish("test_vm_aot_parity");
}
