// Epoch recycling at the engine layer (DESIGN.md §7 "Recycling"):
//  (a) property test — random interleavings of record/trigger/retire never
//      hand a free-listed slot to a new request while its old owner is
//      live, reissued slots carry a bumped generation, and live requests'
//      tensors stay intact across other requests' retirements;
//  (b) the node table and arena high-water mark plateau at peak concurrency
//      instead of growing with the request count;
//  (c) under Debug, dereferencing a stale generation-tagged TRef aborts
//      loudly (fork-based death test) instead of aliasing the slot's new
//      owner.
#include <cstdio>
#include <cstring>
#include <iterator>
#include <map>
#include <vector>

#include "engine/engine.h"
#include "support/rng.h"
#include "test_util.h"

using namespace acrobat;

namespace {

struct Fixture {
  KernelRegistry reg;
  TensorPool pool;
  Rng rng{acrobat::test::seed(0x5eedull)};
  int k_dense, k_tanh;
  Tensor w, x;

  Fixture() {
    const Shape xs(8), ws(8, 8);
    const Shape reps[2] = {xs, ws};
    k_dense = reg.add("r.dense", OpKind::kDense, 0, 2, reps);
    k_tanh = reg.add("r.tanh", OpKind::kTanh, 0, 1, reps);
    w = pool.alloc_random(ws, rng, 0.5f);
    x = pool.alloc_random(xs, rng, 1.0f);
  }

  static EngineConfig recycle_config() {
    EngineConfig cfg;
    cfg.recycle = true;
    return cfg;
  }
};

// One simulated request: a dense followed by `len` tanhs.
std::vector<TRef> record_request(Engine& eng, Fixture& f, TRef xref, TRef wref, int id,
                                 int len) {
  eng.begin_request(id);
  InstCtx ctx{id};
  const TRef ins[2] = {xref, wref};
  std::vector<TRef> refs;
  refs.push_back(eng.add_op(f.k_dense, ins, 2, ctx, 0));
  for (int i = 0; i < len; ++i) refs.push_back(eng.add_op(f.k_tanh, &refs.back(), 1, ctx, 0));
  return refs;
}

// (a)+(b): interleaved alloc/trigger/retire rounds driven by the harness
// seed. Tracks which live request owns each slot; a reissued slot must not
// belong to a live owner and must carry a new generation.
void test_free_list_never_reissues_live_slots() {
  Fixture f;
  Engine eng(f.reg, Fixture::recycle_config());
  const TRef xref = eng.add_concrete(f.x.view());
  const TRef wref = eng.add_concrete(f.w.view());

  std::map<int, std::vector<TRef>> live;               // request → its refs
  std::map<std::uint32_t, int> owner;                  // slot → live owner
  std::map<std::uint32_t, std::uint32_t> last_gen;     // slot → last issued gen
  int next_id = 0;
  std::size_t plateau_nodes = 0, warm_rounds = 0;
  std::int64_t plateau_arena = 0;

  for (int round = 0; round < 200; ++round) {
    // Admit 1..4 requests of random length.
    const int admit = f.rng.range(1, 4);
    for (int a = 0; a < admit && live.size() < 6; ++a) {
      const int id = next_id++;
      const int len = f.rng.range(1, 5);
      std::vector<TRef> refs = record_request(eng, f, xref, wref, id, len);
      for (const TRef r : refs) {
        const auto own = owner.find(r.id);
        if (own != owner.end()) {
          std::printf("slot %u reissued while request %d is live\n", r.id, own->second);
          CHECK(own == owner.end());
        }
        owner[r.id] = id;
        const auto lg = last_gen.find(r.id);
        // A reused slot must be distinguishable from every earlier hand-out.
        if (lg != last_gen.end()) CHECK(r.gen != lg->second);
        last_gen[r.id] = r.gen;
      }
      live.emplace(id, std::move(refs));
    }

    eng.trigger_execution();

    // Every live request's tensors are materialized and still theirs.
    for (const auto& [id, refs] : live) {
      for (const TRef r : refs) {
        CHECK(eng.materialized(r));
        CHECK(eng.data(r) != nullptr);
      }
    }

    // Retire a random subset (possibly none) of completed requests.
    const int retire = f.rng.range(0, static_cast<int>(live.size()));
    for (int d = 0; d < retire; ++d) {
      auto it = live.begin();
      std::advance(it, f.rng.uniform_int(static_cast<int>(live.size())));
      for (const TRef r : it->second) owner.erase(r.id);
      eng.retire_request(it->first);
      live.erase(it);
    }

    // (b) plateau: once warmed past peak concurrency, neither the node
    // table nor the arena high-water mark keeps growing.
    if (round == 40) {
      plateau_nodes = eng.num_nodes();
      plateau_arena = eng.memory().arena_high_water_bytes;
      warm_rounds = static_cast<std::size_t>(next_id);
    }
  }
  CHECK(plateau_nodes > 0);
  CHECK(static_cast<std::size_t>(next_id) > warm_rounds);  // kept allocating after warmup
  CHECK(eng.num_nodes() <= 2 * plateau_nodes);
  CHECK(eng.memory().arena_high_water_bytes <=
        2 * static_cast<std::size_t>(plateau_arena));
  CHECK(eng.memory().nodes_recycled > 0);
}

// Live tensors survive a neighbor's retirement byte-for-byte: the epoch
// protocol may not reclaim a page any still-live request can read.
void test_survivor_bytes_intact_across_retirement() {
  Fixture f;
  Engine eng(f.reg, Fixture::recycle_config());
  const TRef xref = eng.add_concrete(f.x.view());
  const TRef wref = eng.add_concrete(f.w.view());

  const std::vector<TRef> a = record_request(eng, f, xref, wref, 0, 3);
  const std::vector<TRef> b = record_request(eng, f, xref, wref, 1, 3);
  eng.trigger_execution();
  const Tensor bt = eng.force(b.back());
  const std::vector<float> before(bt.data, bt.data + bt.numel());

  eng.retire_request(0);
  // Churn through enough follow-on requests to force slot and page reuse.
  for (int id = 2; id < 40; ++id) {
    record_request(eng, f, xref, wref, id, 4);
    eng.trigger_execution();
    eng.retire_request(id);
  }
  const Tensor bt2 = eng.force(b.back());
  CHECK_EQ(before.size(), static_cast<std::size_t>(bt2.numel()));
  for (std::size_t i = 0; i < before.size(); ++i) CHECK(before[i] == bt2.data[i]);
  eng.retire_request(1);
  CHECK_EQ(eng.live_nodes(), 2);  // only the two concrete nodes remain
}

// Schedule memoization under recycling (DESIGN.md §5): recycled node ids
// must not poison the cached plans — keys are position-based, so a cohort
// re-recorded into reused slots replays the same plan. Soak a recurring
// 2-request cohort (lengths cycling with period 3) through a memo+recycle
// engine against a recycle-only reference: outputs stay bitwise equal every
// round, the hit/miss split is exact (3 structures → 3 misses, every later
// round hits), and memory plateaus exactly as without the cache — cached
// plans are engine-owned scratch, not per-request state.
void test_memo_with_recycling_soak() {
  Fixture f;
  EngineConfig memo_cfg = Fixture::recycle_config();
  memo_cfg.sched_memo = true;
  Engine eng(f.reg, memo_cfg);
  Engine ref(f.reg, Fixture::recycle_config());
  const TRef xref = eng.add_concrete(f.x.view());
  const TRef wref = eng.add_concrete(f.w.view());
  const TRef rx = ref.add_concrete(f.x.view());
  const TRef rw = ref.add_concrete(f.w.view());

  std::size_t plateau_nodes = 0;
  std::size_t plateau_arena = 0;
  long long plateau_allocs = 0;
  const int rounds = 200;
  for (int round = 0; round < rounds; ++round) {
    const int len = 1 + round % 3;
    const std::vector<TRef> a = record_request(eng, f, xref, wref, 2 * round, len);
    const std::vector<TRef> b = record_request(eng, f, xref, wref, 2 * round + 1, len);
    eng.trigger_execution();
    const std::vector<TRef> ra = record_request(ref, f, rx, rw, 2 * round, len);
    const std::vector<TRef> rb = record_request(ref, f, rx, rw, 2 * round + 1, len);
    ref.trigger_execution();
    const Tensor ta = eng.force(a.back());
    const Tensor tb = eng.force(b.back());
    const Tensor ka = ref.force(ra.back());
    const Tensor kb = ref.force(rb.back());
    CHECK(std::memcmp(ta.data, ka.data, sizeof(float) * 8) == 0);
    CHECK(std::memcmp(tb.data, kb.data, sizeof(float) * 8) == 0);
    eng.retire_request(2 * round);
    eng.retire_request(2 * round + 1);
    ref.retire_request(2 * round);
    ref.retire_request(2 * round + 1);
    if (round == 40) {
      plateau_nodes = eng.num_nodes();
      plateau_arena = eng.memory().arena_high_water_bytes;
      plateau_allocs = eng.stats().scheduling_allocs;
    }
  }
  CHECK_EQ(eng.stats().sched_cache_misses, 3);
  CHECK_EQ(eng.stats().sched_cache_hits, rounds - 3);
  CHECK_EQ(eng.stats().sched_cache_evictions, 0);
  CHECK(eng.num_nodes() <= 2 * plateau_nodes);
  CHECK(eng.memory().arena_high_water_bytes <= 2 * plateau_arena);
  CHECK_EQ(eng.stats().scheduling_allocs, plateau_allocs);  // warm: no cache growth
  CHECK_EQ(eng.memory().leaked_slots, 0);
  CHECK(eng.memory().nodes_recycled > 0);
}

// Size-class session-buffer pooling (DESIGN.md §7 "Recycling"): a session
// whose checkpointed state *grows* per step defeats a single free-list —
// every growth would pool an undersized buffer no successor could adopt,
// so bytes-allocated would climb with every session. With size classes the
// allocation ladder is paid once per concurrency level and
// session_bytes_allocated plateaus exactly.
void test_session_buffer_pool_plateaus() {
  KernelRegistry reg;
  TensorPool pool;
  Rng rng{acrobat::test::seed(0xba11ull)};
  constexpr int kSteps = 4;
  const int ladder[kSteps] = {16, 24, 48, 96};  // growing per-step state
  int tanh_k[kSteps];
  Tensor inputs[kSteps];
  for (int i = 0; i < kSteps; ++i) {
    const Shape s(ladder[i]);
    const Shape reps[1] = {s};
    char name[16];
    std::snprintf(name, sizeof name, "r.tanh%d", ladder[i]);
    tanh_k[i] = reg.add(name, OpKind::kTanh, 0, 1, reps);
    inputs[i] = pool.alloc_random(s, rng, 1.0f);
  }

  Engine eng(reg, Fixture::recycle_config());
  TRef in_refs[kSteps];
  for (int i = 0; i < kSteps; ++i) in_refs[i] = eng.add_concrete(inputs[i].view());

  const auto run_session = [&](int id) {
    eng.begin_request(id);
    const InstCtx ctx{id};
    for (int s = 0; s < kSteps; ++s) {
      const TRef step = eng.add_op(tanh_k[s], &in_refs[s], 1, ctx, 0);
      eng.trigger_execution();
      const Tensor t = eng.force(step);
      const std::vector<float> want(t.data, t.data + t.numel());
      const Engine::StepResult sr = eng.session_step(step, ctx);
      // The checkpoint lands bitwise-intact in its (possibly pooled) buffer.
      const float* got = eng.data(sr.state);
      CHECK(got != nullptr);
      for (std::size_t j = 0; j < want.size(); ++j) CHECK(want[j] == got[j]);
    }
    eng.retire_request(id);
  };

  run_session(0);
  const std::size_t ladder_bytes = eng.memory().session_bytes_allocated;
  CHECK(ladder_bytes > 0);
  for (int id = 1; id < 8; ++id) run_session(id);
  // Exact plateau: every later session adopts pooled buffers class-for-class
  // through its whole growth ladder — zero new allocation after session 0.
  CHECK_EQ(eng.memory().session_bytes_allocated, ladder_bytes);
  CHECK_EQ(eng.memory().session_buffers_live, 0);
  CHECK_EQ(eng.memory().session_buffers_peak, 1);

  // Two concurrent growing sessions: the ladder is paid once more (peak
  // concurrency 2), re-pooled at retirement — further pairs allocate nothing.
  const auto run_pair = [&](int id_a, int id_b) {
    eng.begin_request(id_a);
    eng.begin_request(id_b);
    const InstCtx ca{id_a}, cb{id_b};
    for (int s = 0; s < kSteps; ++s) {
      const TRef sa = eng.add_op(tanh_k[s], &in_refs[s], 1, ca, 0);
      const TRef sb = eng.add_op(tanh_k[s], &in_refs[s], 1, cb, 0);
      eng.trigger_execution();
      (void)eng.session_step(sa, ca);
      (void)eng.session_step(sb, cb);
    }
    eng.retire_request(id_a);
    eng.retire_request(id_b);
  };
  run_pair(100, 101);
  const std::size_t pair_bytes = eng.memory().session_bytes_allocated;
  CHECK(pair_bytes <= 2 * ladder_bytes);
  for (int i = 0; i < 6; ++i) run_pair(110 + 2 * i, 111 + 2 * i);
  CHECK_EQ(eng.memory().session_bytes_allocated, pair_bytes);
  CHECK_EQ(eng.memory().session_buffers_peak, 2);
  CHECK_EQ(eng.memory().session_buffers_live, 0);
  CHECK_EQ(eng.memory().leaked_slots, 0);
}

#ifndef NDEBUG
using acrobat::test::dies;

// (c) a retired request's TRef no longer matches its slot's generation;
// any deref through the engine's checked accessor must abort.
void test_stale_ref_faults_in_debug() {
  Fixture f;
  Engine eng(f.reg, Fixture::recycle_config());
  const TRef xref = eng.add_concrete(f.x.view());
  const TRef wref = eng.add_concrete(f.w.view());

  const std::vector<TRef> a = record_request(eng, f, xref, wref, 0, 2);
  eng.trigger_execution();
  eng.retire_request(0);
  const TRef stale = a.back();

  CHECK(dies([&] { (void)eng.shape(stale); }));
  CHECK(dies([&] { (void)eng.data(stale); }));
  // A fresh request that reuses the slot does not trip the check.
  const std::vector<TRef> b = record_request(eng, f, xref, wref, 1, 2);
  eng.trigger_execution();
  CHECK(eng.data(b.back()) != nullptr);
}
#endif

}  // namespace

int main() {
  test_free_list_never_reissues_live_slots();
  test_survivor_bytes_intact_across_retirement();
  test_memo_with_recycling_soak();
  test_session_buffer_pool_plateaus();
#ifndef NDEBUG
  test_stale_ref_faults_in_debug();
#else
  std::printf("note: stale-ref death test needs a Debug build (generation "
              "checks compile out under NDEBUG)\n");
#endif
  return acrobat::test::finish("test_engine_recycle");
}
