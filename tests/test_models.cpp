// End-to-end model properties: deterministic datasets, every model runs
// under every ablation level, batching beats instance-at-a-time on launch
// counts, DyNet's Berxit trips the memory cap, and the tuner improves on
// the worst schedules.
#include "autosched/tuner.h"
#include "baselines/dynet.h"
#include "harness/harness.h"
#include "test_util.h"

using namespace acrobat;

namespace {

void test_datasets_deterministic() {
  for (const auto& spec : models::all_models()) {
    const models::Dataset a = spec.build_dataset(false, 3, 42);
    const models::Dataset b = spec.build_dataset(false, 3, 42);
    CHECK_EQ(a.tensors.size(), b.tensors.size());
    for (std::size_t i = 0; i < a.tensors.size(); ++i) {
      CHECK(a.tensors[i].shape == b.tensors[i].shape);
      for (std::int64_t j = 0; j < a.tensors[i].numel(); ++j)
        CHECK(a.tensors[i].data[j] == b.tensors[i].data[j]);
    }
  }
}

void test_all_models_all_levels() {
  for (const auto& spec : models::all_models()) {
    const models::Dataset ds = spec.build_dataset(false, 3, 7);
    for (int level = 0; level < 6; ++level) {
      harness::Prepared p =
          harness::prepare(spec, false, passes::PipelineConfig::ablation_level(level));
      harness::RunOptions o;
      o.collect_outputs = true;
      const harness::RunResult r = harness::run_acrobat(p, ds, o);
      CHECK(!r.oom);
      CHECK_EQ(r.outputs.size(), 3);
      for (const auto& out : r.outputs) {
        CHECK(!out.empty());
        for (const float v : out) CHECK(std::isfinite(v));
      }
    }
  }
}

void test_batching_beats_instance_at_a_time() {
  for (const auto& spec : models::all_models()) {
    harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
    const models::Dataset ds = spec.build_dataset(false, 8, 13);
    harness::RunOptions o;
    const long long batched = harness::run_acrobat(p, ds, o).stats.kernel_launches;
    long long solo = 0;
    for (int i = 0; i < 8; ++i) {
      models::Dataset one;
      one.pool = ds.pool;
      one.tensors = ds.tensors;
      one.inputs.push_back(ds.inputs[static_cast<std::size_t>(i)]);
      solo += harness::run_acrobat(p, one, o).stats.kernel_launches;
    }
    if (batched >= solo)
      std::printf("model %s: batched=%lld solo=%lld\n", spec.name.c_str(), batched, solo);
    CHECK(batched < solo);
  }
}

void test_dynet_berxit_oom() {
  const models::ModelSpec& spec = models::model_by_name("Berxit");
  harness::Prepared p = harness::prepare(spec, true, baselines::dynet_pipeline_config());
  baselines::DynetOptions dop;
  dop.memory_cap_bytes = 4u << 20;
  const models::Dataset big = spec.build_dataset(true, 64, 3);
  CHECK(baselines::run_dynet(p, big, dop).oom);
  const models::Dataset small = spec.build_dataset(true, 8, 3);
  CHECK(!baselines::run_dynet(p, small, dop).oom);
}

void test_tuner_improves_worst_schedules() {
  const models::ModelSpec& spec = models::model_by_name("NestedRNN");
  harness::Prepared p = harness::prepare(spec, false, passes::PipelineConfig{});
  KernelRegistry& reg = p.compiled.module.registry;
  autosched::reset_schedules(reg, 0);
  std::vector<int> before;
  for (std::size_t i = 0; i < reg.num_kernels(); ++i)
    before.push_back(reg.kernel(static_cast<int>(i)).variant);
  autosched::tune(reg, std::vector<double>(reg.num_kernels(), 1.0), 1000);
  bool any_changed = false;
  for (std::size_t i = 0; i < reg.num_kernels(); ++i)
    if (reg.kernel(static_cast<int>(i)).variant != before[i]) any_changed = true;
  CHECK(any_changed);  // at least one multi-variant kernel prefers v>0
}

}  // namespace

int main() {
  test_datasets_deterministic();
  test_all_models_all_levels();
  test_batching_beats_instance_at_a_time();
  test_dynet_berxit_oom();
  test_tuner_improves_worst_schedules();
  return acrobat::test::finish("test_models");
}
