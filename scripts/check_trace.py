#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON exported by acrobat/trace.

Usage: check_trace.py <trace.json> [--require trigger,batch,memo,shed]

Structural checks (DESIGN.md §9):
  - the file parses and has a traceEvents array with at least one named track
  - complete-event ("X") spans on each (pid, tid) track nest properly:
    sorted by start time, no span partially overlaps an enclosing one
  - every "batch" span is contained in a "trigger" span — a batch executed
    outside a trigger would mean the instrumentation (or the engine) lost
    the trigger boundary
  - each --require token names an event kind that must appear at least
    once; tokens prefix-match ("memo" accepts memo_hit and memo_miss)

Exemplar "slow_request" spans live on sibling tracks (tid >= 1000) and are
[admit, completion] intervals of concurrent requests, so they legitimately
overlap and are exempt from the nesting check.

Exit 0 when clean, 1 with a report otherwise. CI runs this on the trace
that fleet_frontier exports under ACROBAT_TRACE_JSON.
"""
import argparse
import json
import sys
from collections import defaultdict

# Timestamps are microseconds printed with ns resolution (%.3f); allow one
# ulp of that rounding when comparing span boundaries.
EPS = 0.0015


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--require", default="",
                    help="comma-separated event-name prefixes that must appear")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_trace: cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        sys.exit(f"check_trace: {args.trace} has no traceEvents")

    errors = []
    tracks = defaultdict(list)   # (pid, tid) -> [span dict]
    names_seen = set()
    track_names = 0

    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "thread_name":
                track_names += 1
            continue
        if ph == "C":
            val = e.get("args", {}).get("value")
            if not isinstance(val, (int, float)):
                errors.append(f"event {i}: counter {e.get('name')!r} "
                              f"has non-numeric value {val!r}")
            continue
        name = e.get("name", "")
        names_seen.add(name)
        if ph == "X":
            ts, dur = e.get("ts"), e.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
                errors.append(f"event {i}: span {name!r} missing ts/dur")
                continue
            if dur < 0:
                errors.append(f"event {i}: span {name!r} has negative dur {dur}")
                continue
            key = (e.get("pid", 0), e.get("tid", 0))
            tracks[key].append({"ts": ts, "end": ts + dur, "name": name, "i": i})
        elif ph == "i":
            if not isinstance(e.get("ts"), (int, float)):
                errors.append(f"event {i}: instant {name!r} missing ts")
        else:
            errors.append(f"event {i}: unknown phase {ph!r}")

    if track_names == 0:
        errors.append("no thread_name metadata events (no named tracks)")

    # Proper nesting per track; batch spans must sit inside a trigger span.
    for (pid, tid), spans in sorted(tracks.items()):
        if tid >= 1000:
            continue  # exemplar tracks: overlapping request intervals
        spans.sort(key=lambda s: (s["ts"], -s["end"]))
        stack = []
        for s in spans:
            while stack and stack[-1]["end"] <= s["ts"] + EPS:
                stack.pop()
            if stack and s["end"] > stack[-1]["end"] + EPS:
                errors.append(
                    f"track pid={pid} tid={tid}: span {s['name']!r} "
                    f"[{s['ts']:.3f}, {s['end']:.3f}] overlaps enclosing "
                    f"{stack[-1]['name']!r} ending {stack[-1]['end']:.3f} "
                    f"(event {s['i']})")
            if s["name"] == "batch" and not any(
                    t["name"] == "trigger" for t in stack):
                errors.append(
                    f"track pid={pid} tid={tid}: batch span at {s['ts']:.3f} "
                    f"not inside a trigger span (event {s['i']})")
            stack.append(s)

    for token in filter(None, (t.strip() for t in args.require.split(","))):
        if not any(n.startswith(token) for n in names_seen):
            errors.append(f"required event {token!r} never appears "
                          f"(saw: {', '.join(sorted(names_seen))})")

    n_spans = sum(len(s) for s in tracks.values())
    if errors:
        for msg in errors:
            print(f"check_trace: {msg}", file=sys.stderr)
        sys.exit(1)
    print(f"check_trace: OK — {len(events)} events, {n_spans} spans over "
          f"{len(tracks)} span tracks, {track_names} named tracks")


if __name__ == "__main__":
    main()
