#!/usr/bin/env python3
"""Diff the hermetic counter fields of a BENCH_engine.json against a golden.

Usage: check_bench_counters.py <emitted.json> <golden.json>

Only exact counters are compared (kernel_launches, gather_bytes,
flat_batches, stacked_batches, scheduling_allocs, and the schedule-memo
hit/miss/eviction counts) — they are deterministic for a fixed trace and
binary. Timing fields (*_ns) are machine-dependent
context and are ignored. Exit 0 on match, 1 with a per-row report on drift:
a launch-count or gather-byte regression in the engine hot path fails CI
even when wall times happen to look fine.
"""
import json
import sys

COUNTERS = (
    "kernel_launches",
    "gather_bytes",
    "flat_batches",
    "stacked_batches",
    "scheduling_allocs",
    "sched_cache_hits",
    "sched_cache_misses",
    "sched_cache_evictions",
    # Steady-state serving rows (ISSUE 7): deterministic under the
    # all-arrivals-at-t0 cohort recipe; absent (None == None) on the
    # engine-only rows, so old goldens keep passing.
    "requests",
    "triggers",
    "shed",
    # Token-level decoding rows (ISSUE 8): exact for the fixed dataset seed;
    # absent on pre-decode rows, same None == None tolerance as above.
    "tokens",
    "cancelled",
    # Ingress rows (ISSUE 9, BENCH_net.json): admission/shed accounting is
    # exact for a fixed closed-loop trace even though the latency columns
    # are wall-clock context; absent everywhere else, same tolerance.
    "completed",
    "rejected_429",
    "errors",
    "conn_drops",
    "worker_deaths",
    # Fault-tolerance rows (ISSUE 10): zero on fault-free runs by contract —
    # a nonzero respawn or degraded-entry count on a clean benchmark run is
    # exactly the regression this check exists to catch. Absent on older
    # goldens, same None == None tolerance as above.
    "worker_respawns",
    "client_retries",
    "degraded_entries",
)


def rows_by_config(path):
    with open(path) as f:
        doc = json.load(f)
    return {row["config"]: row for row in doc["rows"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    emitted = rows_by_config(sys.argv[1])
    golden = rows_by_config(sys.argv[2])
    failures = []
    for config in sorted(set(emitted) | set(golden)):
        if config not in emitted:
            failures.append(f"{config}: missing from emitted output")
            continue
        if config not in golden:
            failures.append(f"{config}: not in golden (new config? regenerate the golden)")
            continue
        for key in COUNTERS:
            got, want = emitted[config].get(key), golden[config].get(key)
            if got != want:
                failures.append(f"{config}: {key} = {got}, golden {want}")
    if failures:
        print(f"BENCH counter drift vs {sys.argv[2]}:")
        for f in failures:
            print(f"  {f}")
        print(
            "If the change is intentional, regenerate the golden:\n"
            "  ACROBAT_BENCH_ITERS=1 ACROBAT_LAUNCH_NS=0 "
            "ACROBAT_BENCH_JSON=bench/golden/BENCH_engine.json ./build/ablation_scheduler"
        )
        sys.exit(1)
    print(f"bench counters match golden ({len(golden)} configs x {len(COUNTERS)} counters)")


if __name__ == "__main__":
    main()
