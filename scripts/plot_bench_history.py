#!/usr/bin/env python3
"""Plot the per-PR trajectory of golden bench counters across git history.

Usage: plot_bench_history.py [--counter kernel_launches] [--config PREFIX]
                             [--golden bench/golden/BENCH_engine.json]
                             [--tsv] [--png out.png]

Walks every commit that touched the golden counter file, loads each
revision with `git show`, and renders one series per bench config: how
kernel launches (or gather bytes, scheduling allocs, ...) moved PR over
PR. The default output is an ASCII chart plus a final-vs-first delta
column — the "did the hot path get better or worse" view ISSUE 7 asks
for. --tsv dumps machine-readable rows instead; --png uses matplotlib
when it happens to be installed (never required).
"""
import argparse
import json
import subprocess
import sys

WIDTH = 44  # ASCII chart columns


def git(*args):
    return subprocess.run(("git",) + args, capture_output=True, text=True,
                          check=True).stdout


def load_history(golden):
    revs = git("log", "--format=%H %s", "--reverse", "--", golden).splitlines()
    history = []  # [(sha, subject, {config: row})]
    for line in revs:
        sha, _, subject = line.partition(" ")
        try:
            doc = json.loads(git("show", f"{sha}:{golden}"))
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            continue  # file absent or unparsable at that revision
        history.append((sha[:10], subject,
                        {r["config"]: r for r in doc.get("rows", [])}))
    return history


def spark(values):
    lo, hi = min(values), max(values)
    if hi == lo:
        return "·" * len(values)
    ramp = "▁▂▃▄▅▆▇█"
    return "".join(
        ramp[int((v - lo) / (hi - lo) * (len(ramp) - 1))] for v in values)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--counter", default="kernel_launches")
    ap.add_argument("--config", default="",
                    help="only configs whose name starts with this prefix")
    ap.add_argument("--golden", default="bench/golden/BENCH_engine.json")
    ap.add_argument("--tsv", action="store_true")
    ap.add_argument("--png", default="")
    args = ap.parse_args()

    history = load_history(args.golden)
    if not history:
        sys.exit(f"plot_bench_history: no git history for {args.golden}")

    configs = sorted({c for _, _, rows in history for c in rows
                      if c.startswith(args.config)})
    if not configs:
        sys.exit(f"plot_bench_history: no configs match {args.config!r}")

    # series[config] = [value-or-None per revision]
    series = {
        c: [rows[c].get(args.counter) if c in rows else None
            for _, _, rows in history]
        for c in configs
    }

    if args.tsv:
        print("\t".join(["config"] + [sha for sha, _, _ in history]))
        for c in configs:
            print("\t".join([c] + ["" if v is None else str(v)
                                   for v in series[c]]))
        return

    if args.png:
        try:
            import matplotlib
            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError:
            sys.exit("plot_bench_history: matplotlib not installed; "
                     "use --tsv or the default ASCII output")
        xs = range(len(history))
        for c in configs:
            plt.plot(xs, [v for v in series[c]], label=c, marker="o")
        plt.xticks(list(xs), [sha for sha, _, _ in history], rotation=45,
                   fontsize=6)
        plt.ylabel(args.counter)
        plt.legend(fontsize=6)
        plt.tight_layout()
        plt.savefig(args.png, dpi=150)
        print(f"wrote {args.png}")
        return

    print(f"{args.counter} across {len(history)} revisions of {args.golden}")
    for i, (sha, subject, _) in enumerate(history):
        print(f"  [{i}] {sha}  {subject[:70]}")
    print()
    namew = max(len(c) for c in configs)
    for c in configs:
        vals = [v for v in series[c] if v is not None]
        if not vals:
            continue
        first, last = vals[0], vals[-1]
        delta = ("      =" if last == first else
                 f"{100.0 * (last - first) / first:+6.1f}%" if first else
                 "    new")
        chart = spark(vals) if len(vals) > 1 else "·"
        print(f"  {c:<{namew}}  {chart:<{WIDTH}} "
              f"first={first:<10} last={last:<10} {delta}")


if __name__ == "__main__":
    main()
